file(REMOVE_RECURSE
  "../bench/fig16_tiling"
  "../bench/fig16_tiling.pdb"
  "CMakeFiles/fig16_tiling.dir/fig16_tiling.cc.o"
  "CMakeFiles/fig16_tiling.dir/fig16_tiling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
