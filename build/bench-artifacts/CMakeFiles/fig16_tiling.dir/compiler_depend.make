# Empty compiler generated dependencies file for fig16_tiling.
# This may be replaced when dependencies are built.
