# Empty compiler generated dependencies file for fig05_footprint.
# This may be replaced when dependencies are built.
