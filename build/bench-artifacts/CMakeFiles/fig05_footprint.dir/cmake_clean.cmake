file(REMOVE_RECURSE
  "../bench/fig05_footprint"
  "../bench/fig05_footprint.pdb"
  "CMakeFiles/fig05_footprint.dir/fig05_footprint.cc.o"
  "CMakeFiles/fig05_footprint.dir/fig05_footprint.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
