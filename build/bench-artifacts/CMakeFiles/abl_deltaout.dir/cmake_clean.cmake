file(REMOVE_RECURSE
  "../bench/abl_deltaout"
  "../bench/abl_deltaout.pdb"
  "CMakeFiles/abl_deltaout.dir/abl_deltaout.cc.o"
  "CMakeFiles/abl_deltaout.dir/abl_deltaout.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_deltaout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
