# Empty dependencies file for abl_deltaout.
# This may be replaced when dependencies are built.
