# Empty dependencies file for fig03_term_cdf.
# This may be replaced when dependencies are built.
