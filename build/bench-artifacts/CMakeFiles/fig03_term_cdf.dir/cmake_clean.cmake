file(REMOVE_RECURSE
  "../bench/fig03_term_cdf"
  "../bench/fig03_term_cdf.pdb"
  "CMakeFiles/fig03_term_cdf.dir/fig03_term_cdf.cc.o"
  "CMakeFiles/fig03_term_cdf.dir/fig03_term_cdf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_term_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
