file(REMOVE_RECURSE
  "../bench/tab06_power"
  "../bench/tab06_power.pdb"
  "CMakeFiles/tab06_power.dir/tab06_power.cc.o"
  "CMakeFiles/tab06_power.dir/tab06_power.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab06_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
