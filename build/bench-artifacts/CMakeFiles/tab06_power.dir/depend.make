# Empty dependencies file for tab06_power.
# This may be replaced when dependencies are built.
