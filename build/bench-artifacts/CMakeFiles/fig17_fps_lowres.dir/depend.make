# Empty dependencies file for fig17_fps_lowres.
# This may be replaced when dependencies are built.
