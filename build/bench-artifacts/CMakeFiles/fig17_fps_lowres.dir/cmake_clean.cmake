file(REMOVE_RECURSE
  "../bench/fig17_fps_lowres"
  "../bench/fig17_fps_lowres.pdb"
  "CMakeFiles/fig17_fps_lowres.dir/fig17_fps_lowres.cc.o"
  "CMakeFiles/fig17_fps_lowres.dir/fig17_fps_lowres.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_fps_lowres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
