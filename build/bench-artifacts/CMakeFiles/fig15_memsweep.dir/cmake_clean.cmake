file(REMOVE_RECURSE
  "../bench/fig15_memsweep"
  "../bench/fig15_memsweep.pdb"
  "CMakeFiles/fig15_memsweep.dir/fig15_memsweep.cc.o"
  "CMakeFiles/fig15_memsweep.dir/fig15_memsweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_memsweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
