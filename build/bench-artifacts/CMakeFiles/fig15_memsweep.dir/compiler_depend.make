# Empty compiler generated dependencies file for fig15_memsweep.
# This may be replaced when dependencies are built.
