file(REMOVE_RECURSE
  "../bench/fig02_heatmap"
  "../bench/fig02_heatmap.pdb"
  "CMakeFiles/fig02_heatmap.dir/fig02_heatmap.cc.o"
  "CMakeFiles/fig02_heatmap.dir/fig02_heatmap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_heatmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
