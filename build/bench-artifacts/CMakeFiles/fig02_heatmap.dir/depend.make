# Empty dependencies file for fig02_heatmap.
# This may be replaced when dependencies are built.
