# Empty compiler generated dependencies file for fig14_traffic.
# This may be replaced when dependencies are built.
