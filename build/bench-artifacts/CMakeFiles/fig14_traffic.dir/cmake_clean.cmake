file(REMOVE_RECURSE
  "../bench/fig14_traffic"
  "../bench/fig14_traffic.pdb"
  "CMakeFiles/fig14_traffic.dir/fig14_traffic.cc.o"
  "CMakeFiles/fig14_traffic.dir/fig14_traffic.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
