file(REMOVE_RECURSE
  "../bench/ext_variants"
  "../bench/ext_variants.pdb"
  "CMakeFiles/ext_variants.dir/ext_variants.cc.o"
  "CMakeFiles/ext_variants.dir/ext_variants.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
