# Empty compiler generated dependencies file for ext_variants.
# This may be replaced when dependencies are built.
