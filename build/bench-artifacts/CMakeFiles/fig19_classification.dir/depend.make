# Empty dependencies file for fig19_classification.
# This may be replaced when dependencies are built.
