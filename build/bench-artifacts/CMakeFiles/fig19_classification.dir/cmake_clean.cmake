file(REMOVE_RECURSE
  "../bench/fig19_classification"
  "../bench/fig19_classification.pdb"
  "CMakeFiles/fig19_classification.dir/fig19_classification.cc.o"
  "CMakeFiles/fig19_classification.dir/fig19_classification.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_classification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
