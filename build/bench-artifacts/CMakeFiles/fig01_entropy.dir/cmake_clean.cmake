file(REMOVE_RECURSE
  "../bench/fig01_entropy"
  "../bench/fig01_entropy.pdb"
  "CMakeFiles/fig01_entropy.dir/fig01_entropy.cc.o"
  "CMakeFiles/fig01_entropy.dir/fig01_entropy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
