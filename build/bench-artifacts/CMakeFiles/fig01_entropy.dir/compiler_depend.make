# Empty compiler generated dependencies file for fig01_entropy.
# This may be replaced when dependencies are built.
