# Empty compiler generated dependencies file for fig20_scnn.
# This may be replaced when dependencies are built.
