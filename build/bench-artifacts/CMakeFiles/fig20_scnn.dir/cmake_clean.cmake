file(REMOVE_RECURSE
  "../bench/fig20_scnn"
  "../bench/fig20_scnn.pdb"
  "CMakeFiles/fig20_scnn.dir/fig20_scnn.cc.o"
  "CMakeFiles/fig20_scnn.dir/fig20_scnn.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_scnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
