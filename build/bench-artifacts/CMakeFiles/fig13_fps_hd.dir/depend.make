# Empty dependencies file for fig13_fps_hd.
# This may be replaced when dependencies are built.
