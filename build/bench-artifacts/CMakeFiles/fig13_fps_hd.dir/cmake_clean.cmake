file(REMOVE_RECURSE
  "../bench/fig13_fps_hd"
  "../bench/fig13_fps_hd.pdb"
  "CMakeFiles/fig13_fps_hd.dir/fig13_fps_hd.cc.o"
  "CMakeFiles/fig13_fps_hd.dir/fig13_fps_hd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_fps_hd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
