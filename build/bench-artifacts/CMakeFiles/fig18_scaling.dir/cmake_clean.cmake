file(REMOVE_RECURSE
  "../bench/fig18_scaling"
  "../bench/fig18_scaling.pdb"
  "CMakeFiles/fig18_scaling.dir/fig18_scaling.cc.o"
  "CMakeFiles/fig18_scaling.dir/fig18_scaling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
