file(REMOVE_RECURSE
  "../bench/tab03_precisions"
  "../bench/tab03_precisions.pdb"
  "CMakeFiles/tab03_precisions.dir/tab03_precisions.cc.o"
  "CMakeFiles/tab03_precisions.dir/tab03_precisions.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_precisions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
