# Empty dependencies file for tab03_precisions.
# This may be replaced when dependencies are built.
