file(REMOVE_RECURSE
  "../bench/abl_selective"
  "../bench/abl_selective.pdb"
  "CMakeFiles/abl_selective.dir/abl_selective.cc.o"
  "CMakeFiles/abl_selective.dir/abl_selective.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_selective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
