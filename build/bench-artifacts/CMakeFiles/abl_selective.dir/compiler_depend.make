# Empty compiler generated dependencies file for abl_selective.
# This may be replaced when dependencies are built.
