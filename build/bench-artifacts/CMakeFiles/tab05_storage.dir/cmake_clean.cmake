file(REMOVE_RECURSE
  "../bench/tab05_storage"
  "../bench/tab05_storage.pdb"
  "CMakeFiles/tab05_storage.dir/tab05_storage.cc.o"
  "CMakeFiles/tab05_storage.dir/tab05_storage.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab05_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
