# Empty dependencies file for tab05_storage.
# This may be replaced when dependencies are built.
