file(REMOVE_RECURSE
  "../bench/fig04_potential"
  "../bench/fig04_potential.pdb"
  "CMakeFiles/fig04_potential.dir/fig04_potential.cc.o"
  "CMakeFiles/fig04_potential.dir/fig04_potential.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
