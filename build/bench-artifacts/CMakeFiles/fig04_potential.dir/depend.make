# Empty dependencies file for fig04_potential.
# This may be replaced when dependencies are built.
