file(REMOVE_RECURSE
  "../bench/abl_correlation"
  "../bench/abl_correlation.pdb"
  "CMakeFiles/abl_correlation.dir/abl_correlation.cc.o"
  "CMakeFiles/abl_correlation.dir/abl_correlation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
