# Empty compiler generated dependencies file for abl_correlation.
# This may be replaced when dependencies are built.
