
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/activity.cc" "src/sim/CMakeFiles/diffy_sim.dir/activity.cc.o" "gcc" "src/sim/CMakeFiles/diffy_sim.dir/activity.cc.o.d"
  "/root/repo/src/sim/diffy_sim.cc" "src/sim/CMakeFiles/diffy_sim.dir/diffy_sim.cc.o" "gcc" "src/sim/CMakeFiles/diffy_sim.dir/diffy_sim.cc.o.d"
  "/root/repo/src/sim/functional.cc" "src/sim/CMakeFiles/diffy_sim.dir/functional.cc.o" "gcc" "src/sim/CMakeFiles/diffy_sim.dir/functional.cc.o.d"
  "/root/repo/src/sim/memsys.cc" "src/sim/CMakeFiles/diffy_sim.dir/memsys.cc.o" "gcc" "src/sim/CMakeFiles/diffy_sim.dir/memsys.cc.o.d"
  "/root/repo/src/sim/pra.cc" "src/sim/CMakeFiles/diffy_sim.dir/pra.cc.o" "gcc" "src/sim/CMakeFiles/diffy_sim.dir/pra.cc.o.d"
  "/root/repo/src/sim/runner.cc" "src/sim/CMakeFiles/diffy_sim.dir/runner.cc.o" "gcc" "src/sim/CMakeFiles/diffy_sim.dir/runner.cc.o.d"
  "/root/repo/src/sim/scnn.cc" "src/sim/CMakeFiles/diffy_sim.dir/scnn.cc.o" "gcc" "src/sim/CMakeFiles/diffy_sim.dir/scnn.cc.o.d"
  "/root/repo/src/sim/stripes.cc" "src/sim/CMakeFiles/diffy_sim.dir/stripes.cc.o" "gcc" "src/sim/CMakeFiles/diffy_sim.dir/stripes.cc.o.d"
  "/root/repo/src/sim/vaa.cc" "src/sim/CMakeFiles/diffy_sim.dir/vaa.cc.o" "gcc" "src/sim/CMakeFiles/diffy_sim.dir/vaa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/diffy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/diffy_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/diffy_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/diffy_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/encode/CMakeFiles/diffy_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/diffy_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/diffy_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
