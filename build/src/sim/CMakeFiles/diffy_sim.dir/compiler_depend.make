# Empty compiler generated dependencies file for diffy_sim.
# This may be replaced when dependencies are built.
