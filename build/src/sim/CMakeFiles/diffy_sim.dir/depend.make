# Empty dependencies file for diffy_sim.
# This may be replaced when dependencies are built.
