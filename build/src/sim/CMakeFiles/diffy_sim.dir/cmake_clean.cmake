file(REMOVE_RECURSE
  "CMakeFiles/diffy_sim.dir/activity.cc.o"
  "CMakeFiles/diffy_sim.dir/activity.cc.o.d"
  "CMakeFiles/diffy_sim.dir/diffy_sim.cc.o"
  "CMakeFiles/diffy_sim.dir/diffy_sim.cc.o.d"
  "CMakeFiles/diffy_sim.dir/functional.cc.o"
  "CMakeFiles/diffy_sim.dir/functional.cc.o.d"
  "CMakeFiles/diffy_sim.dir/memsys.cc.o"
  "CMakeFiles/diffy_sim.dir/memsys.cc.o.d"
  "CMakeFiles/diffy_sim.dir/pra.cc.o"
  "CMakeFiles/diffy_sim.dir/pra.cc.o.d"
  "CMakeFiles/diffy_sim.dir/runner.cc.o"
  "CMakeFiles/diffy_sim.dir/runner.cc.o.d"
  "CMakeFiles/diffy_sim.dir/scnn.cc.o"
  "CMakeFiles/diffy_sim.dir/scnn.cc.o.d"
  "CMakeFiles/diffy_sim.dir/stripes.cc.o"
  "CMakeFiles/diffy_sim.dir/stripes.cc.o.d"
  "CMakeFiles/diffy_sim.dir/vaa.cc.o"
  "CMakeFiles/diffy_sim.dir/vaa.cc.o.d"
  "libdiffy_sim.a"
  "libdiffy_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffy_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
