file(REMOVE_RECURSE
  "libdiffy_sim.a"
)
