# Empty dependencies file for diffy_encode.
# This may be replaced when dependencies are built.
