file(REMOVE_RECURSE
  "libdiffy_encode.a"
)
