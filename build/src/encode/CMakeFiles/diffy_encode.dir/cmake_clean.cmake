file(REMOVE_RECURSE
  "CMakeFiles/diffy_encode.dir/bitstream.cc.o"
  "CMakeFiles/diffy_encode.dir/bitstream.cc.o.d"
  "CMakeFiles/diffy_encode.dir/footprint.cc.o"
  "CMakeFiles/diffy_encode.dir/footprint.cc.o.d"
  "CMakeFiles/diffy_encode.dir/schemes.cc.o"
  "CMakeFiles/diffy_encode.dir/schemes.cc.o.d"
  "libdiffy_encode.a"
  "libdiffy_encode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffy_encode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
