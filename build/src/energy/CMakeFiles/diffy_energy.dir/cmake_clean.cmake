file(REMOVE_RECURSE
  "CMakeFiles/diffy_energy.dir/model.cc.o"
  "CMakeFiles/diffy_energy.dir/model.cc.o.d"
  "libdiffy_energy.a"
  "libdiffy_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffy_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
