# Empty dependencies file for diffy_energy.
# This may be replaced when dependencies are built.
