file(REMOVE_RECURSE
  "libdiffy_energy.a"
)
