file(REMOVE_RECURSE
  "libdiffy_analysis.a"
)
