# Empty compiler generated dependencies file for diffy_analysis.
# This may be replaced when dependencies are built.
