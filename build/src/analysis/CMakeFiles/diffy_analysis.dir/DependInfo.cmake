
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/entropy.cc" "src/analysis/CMakeFiles/diffy_analysis.dir/entropy.cc.o" "gcc" "src/analysis/CMakeFiles/diffy_analysis.dir/entropy.cc.o.d"
  "/root/repo/src/analysis/heatmap.cc" "src/analysis/CMakeFiles/diffy_analysis.dir/heatmap.cc.o" "gcc" "src/analysis/CMakeFiles/diffy_analysis.dir/heatmap.cc.o.d"
  "/root/repo/src/analysis/precision.cc" "src/analysis/CMakeFiles/diffy_analysis.dir/precision.cc.o" "gcc" "src/analysis/CMakeFiles/diffy_analysis.dir/precision.cc.o.d"
  "/root/repo/src/analysis/terms.cc" "src/analysis/CMakeFiles/diffy_analysis.dir/terms.cc.o" "gcc" "src/analysis/CMakeFiles/diffy_analysis.dir/terms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/diffy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/diffy_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/diffy_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/diffy_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
