file(REMOVE_RECURSE
  "CMakeFiles/diffy_analysis.dir/entropy.cc.o"
  "CMakeFiles/diffy_analysis.dir/entropy.cc.o.d"
  "CMakeFiles/diffy_analysis.dir/heatmap.cc.o"
  "CMakeFiles/diffy_analysis.dir/heatmap.cc.o.d"
  "CMakeFiles/diffy_analysis.dir/precision.cc.o"
  "CMakeFiles/diffy_analysis.dir/precision.cc.o.d"
  "CMakeFiles/diffy_analysis.dir/terms.cc.o"
  "CMakeFiles/diffy_analysis.dir/terms.cc.o.d"
  "libdiffy_analysis.a"
  "libdiffy_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffy_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
