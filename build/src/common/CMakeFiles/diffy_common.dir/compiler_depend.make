# Empty compiler generated dependencies file for diffy_common.
# This may be replaced when dependencies are built.
