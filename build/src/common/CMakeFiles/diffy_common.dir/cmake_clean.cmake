file(REMOVE_RECURSE
  "CMakeFiles/diffy_common.dir/bitops.cc.o"
  "CMakeFiles/diffy_common.dir/bitops.cc.o.d"
  "CMakeFiles/diffy_common.dir/cli.cc.o"
  "CMakeFiles/diffy_common.dir/cli.cc.o.d"
  "CMakeFiles/diffy_common.dir/fixed_point.cc.o"
  "CMakeFiles/diffy_common.dir/fixed_point.cc.o.d"
  "CMakeFiles/diffy_common.dir/rng.cc.o"
  "CMakeFiles/diffy_common.dir/rng.cc.o.d"
  "CMakeFiles/diffy_common.dir/stats.cc.o"
  "CMakeFiles/diffy_common.dir/stats.cc.o.d"
  "CMakeFiles/diffy_common.dir/table.cc.o"
  "CMakeFiles/diffy_common.dir/table.cc.o.d"
  "libdiffy_common.a"
  "libdiffy_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffy_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
