file(REMOVE_RECURSE
  "libdiffy_common.a"
)
