file(REMOVE_RECURSE
  "libdiffy_arch.a"
)
