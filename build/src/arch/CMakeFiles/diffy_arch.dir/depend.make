# Empty dependencies file for diffy_arch.
# This may be replaced when dependencies are built.
