file(REMOVE_RECURSE
  "CMakeFiles/diffy_arch.dir/config.cc.o"
  "CMakeFiles/diffy_arch.dir/config.cc.o.d"
  "CMakeFiles/diffy_arch.dir/memtech.cc.o"
  "CMakeFiles/diffy_arch.dir/memtech.cc.o.d"
  "libdiffy_arch.a"
  "libdiffy_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffy_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
