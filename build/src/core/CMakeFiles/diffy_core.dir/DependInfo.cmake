
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/differential_conv.cc" "src/core/CMakeFiles/diffy_core.dir/differential_conv.cc.o" "gcc" "src/core/CMakeFiles/diffy_core.dir/differential_conv.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/core/CMakeFiles/diffy_core.dir/experiment.cc.o" "gcc" "src/core/CMakeFiles/diffy_core.dir/experiment.cc.o.d"
  "/root/repo/src/core/trace_cache.cc" "src/core/CMakeFiles/diffy_core.dir/trace_cache.cc.o" "gcc" "src/core/CMakeFiles/diffy_core.dir/trace_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/diffy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/diffy_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/diffy_image.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/diffy_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/diffy_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/encode/CMakeFiles/diffy_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/diffy_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/diffy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/diffy_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
