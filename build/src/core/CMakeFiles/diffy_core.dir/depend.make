# Empty dependencies file for diffy_core.
# This may be replaced when dependencies are built.
