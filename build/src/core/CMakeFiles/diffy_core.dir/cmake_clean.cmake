file(REMOVE_RECURSE
  "CMakeFiles/diffy_core.dir/differential_conv.cc.o"
  "CMakeFiles/diffy_core.dir/differential_conv.cc.o.d"
  "CMakeFiles/diffy_core.dir/experiment.cc.o"
  "CMakeFiles/diffy_core.dir/experiment.cc.o.d"
  "CMakeFiles/diffy_core.dir/trace_cache.cc.o"
  "CMakeFiles/diffy_core.dir/trace_cache.cc.o.d"
  "libdiffy_core.a"
  "libdiffy_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffy_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
