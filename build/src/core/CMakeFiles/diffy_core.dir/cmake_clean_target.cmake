file(REMOVE_RECURSE
  "libdiffy_core.a"
)
