# Empty compiler generated dependencies file for diffy_nn.
# This may be replaced when dependencies are built.
