# Empty dependencies file for diffy_nn.
# This may be replaced when dependencies are built.
