file(REMOVE_RECURSE
  "CMakeFiles/diffy_nn.dir/executor.cc.o"
  "CMakeFiles/diffy_nn.dir/executor.cc.o.d"
  "CMakeFiles/diffy_nn.dir/layer.cc.o"
  "CMakeFiles/diffy_nn.dir/layer.cc.o.d"
  "CMakeFiles/diffy_nn.dir/models.cc.o"
  "CMakeFiles/diffy_nn.dir/models.cc.o.d"
  "CMakeFiles/diffy_nn.dir/trace.cc.o"
  "CMakeFiles/diffy_nn.dir/trace.cc.o.d"
  "libdiffy_nn.a"
  "libdiffy_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffy_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
