file(REMOVE_RECURSE
  "libdiffy_nn.a"
)
