
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/executor.cc" "src/nn/CMakeFiles/diffy_nn.dir/executor.cc.o" "gcc" "src/nn/CMakeFiles/diffy_nn.dir/executor.cc.o.d"
  "/root/repo/src/nn/layer.cc" "src/nn/CMakeFiles/diffy_nn.dir/layer.cc.o" "gcc" "src/nn/CMakeFiles/diffy_nn.dir/layer.cc.o.d"
  "/root/repo/src/nn/models.cc" "src/nn/CMakeFiles/diffy_nn.dir/models.cc.o" "gcc" "src/nn/CMakeFiles/diffy_nn.dir/models.cc.o.d"
  "/root/repo/src/nn/trace.cc" "src/nn/CMakeFiles/diffy_nn.dir/trace.cc.o" "gcc" "src/nn/CMakeFiles/diffy_nn.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/diffy_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/diffy_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/diffy_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
