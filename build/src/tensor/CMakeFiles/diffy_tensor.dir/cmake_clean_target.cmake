file(REMOVE_RECURSE
  "libdiffy_tensor.a"
)
