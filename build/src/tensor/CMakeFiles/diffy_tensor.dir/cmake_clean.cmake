file(REMOVE_RECURSE
  "CMakeFiles/diffy_tensor.dir/tensor.cc.o"
  "CMakeFiles/diffy_tensor.dir/tensor.cc.o.d"
  "libdiffy_tensor.a"
  "libdiffy_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffy_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
