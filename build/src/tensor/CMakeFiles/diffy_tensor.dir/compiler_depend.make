# Empty compiler generated dependencies file for diffy_tensor.
# This may be replaced when dependencies are built.
