# Empty dependencies file for diffy_tensor.
# This may be replaced when dependencies are built.
