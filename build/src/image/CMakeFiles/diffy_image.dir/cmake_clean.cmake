file(REMOVE_RECURSE
  "CMakeFiles/diffy_image.dir/catalog.cc.o"
  "CMakeFiles/diffy_image.dir/catalog.cc.o.d"
  "CMakeFiles/diffy_image.dir/synth.cc.o"
  "CMakeFiles/diffy_image.dir/synth.cc.o.d"
  "libdiffy_image.a"
  "libdiffy_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffy_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
