# Empty dependencies file for diffy_image.
# This may be replaced when dependencies are built.
