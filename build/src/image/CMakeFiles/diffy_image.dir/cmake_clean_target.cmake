file(REMOVE_RECURSE
  "libdiffy_image.a"
)
