# Empty dependencies file for diffy_tests.
# This may be replaced when dependencies are built.
