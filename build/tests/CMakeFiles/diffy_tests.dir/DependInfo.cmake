
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_analysis.cc" "tests/CMakeFiles/diffy_tests.dir/test_analysis.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_analysis.cc.o.d"
  "/root/repo/tests/test_arch.cc" "tests/CMakeFiles/diffy_tests.dir/test_arch.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_arch.cc.o.d"
  "/root/repo/tests/test_bitops.cc" "tests/CMakeFiles/diffy_tests.dir/test_bitops.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_bitops.cc.o.d"
  "/root/repo/tests/test_codecs.cc" "tests/CMakeFiles/diffy_tests.dir/test_codecs.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_codecs.cc.o.d"
  "/root/repo/tests/test_diffconv.cc" "tests/CMakeFiles/diffy_tests.dir/test_diffconv.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_diffconv.cc.o.d"
  "/root/repo/tests/test_executor.cc" "tests/CMakeFiles/diffy_tests.dir/test_executor.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_executor.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/diffy_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/diffy_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_fixed_point.cc" "tests/CMakeFiles/diffy_tests.dir/test_fixed_point.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_fixed_point.cc.o.d"
  "/root/repo/tests/test_functional.cc" "tests/CMakeFiles/diffy_tests.dir/test_functional.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_functional.cc.o.d"
  "/root/repo/tests/test_image.cc" "tests/CMakeFiles/diffy_tests.dir/test_image.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_image.cc.o.d"
  "/root/repo/tests/test_layer_models.cc" "tests/CMakeFiles/diffy_tests.dir/test_layer_models.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_layer_models.cc.o.d"
  "/root/repo/tests/test_memsys_energy.cc" "tests/CMakeFiles/diffy_tests.dir/test_memsys_energy.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_memsys_energy.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/diffy_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_scaling.cc" "tests/CMakeFiles/diffy_tests.dir/test_scaling.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_scaling.cc.o.d"
  "/root/repo/tests/test_sims.cc" "tests/CMakeFiles/diffy_tests.dir/test_sims.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_sims.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/diffy_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_table_cli.cc" "tests/CMakeFiles/diffy_tests.dir/test_table_cli.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_table_cli.cc.o.d"
  "/root/repo/tests/test_tensor.cc" "tests/CMakeFiles/diffy_tests.dir/test_tensor.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_tensor.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/diffy_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/diffy_tests.dir/test_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/diffy_core.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/diffy_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/diffy_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/encode/CMakeFiles/diffy_encode.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/diffy_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/diffy_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/diffy_image.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/diffy_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/diffy_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/diffy_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
