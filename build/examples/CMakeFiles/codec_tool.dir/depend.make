# Empty dependencies file for codec_tool.
# This may be replaced when dependencies are built.
