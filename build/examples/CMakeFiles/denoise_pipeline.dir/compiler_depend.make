# Empty compiler generated dependencies file for denoise_pipeline.
# This may be replaced when dependencies are built.
