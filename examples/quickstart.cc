/**
 * @file
 * Quickstart: trace one CI-DNN on a synthetic scene and compare the
 * three accelerator designs end to end.
 *
 *   ./examples/quickstart [--net DnCNN] [--crop 64] [--frame-h 1080]
 *                         [--frame-w 1920] [--mem DDR4-3200]
 *
 * Prints the per-design frame rate and speedups at the target
 * resolution, plus the differential-convolution exactness check on
 * the first layer.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "core/differential_conv.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    const std::string net_name = args.getString("net", "DnCNN");

    NetworkSpec net = makeNetwork(net_name);
    std::printf("Network: %s (%d conv layers, %zu KB max layer weights)\n",
                net.name.c_str(), net.convLayerCount(),
                net.maxLayerWeightBytes() / 1024);

    // Trace one scene.
    TraceCache cache(params.cacheDir);
    SceneParams scene = defaultEvalScenes(1, params.crop).front();
    NetworkTrace trace = cache.get(net, scene);
    std::printf("Traced %zu layers at %dx%d crop.\n\n",
                trace.layers.size(), params.crop, params.crop);

    // Differential convolution is exact: check layer 1.
    const LayerTrace &l0 = trace.layers.front();
    TensorI32 direct = convolveDirect(l0.imap, l0.weights, l0.spec.stride,
                                      l0.spec.dilation);
    TensorI32 differential = convolveDifferential(
        l0.imap, l0.weights, l0.spec.stride, l0.spec.dilation);
    std::printf("Differential convolution bit-exact on %s: %s\n",
                l0.spec.name.c_str(),
                direct == differential ? "YES" : "NO");

    ConvWorkCount wd = countDirectWork(l0.imap, l0.weights, l0.spec.stride,
                                       l0.spec.dilation);
    ConvWorkCount wf = countDifferentialWork(l0.imap, l0.weights,
                                             l0.spec.stride,
                                             l0.spec.dilation);
    std::printf("Effectual terms, direct vs differential: %.2f vs %.2f "
                "per MAC (%.2fx less work)\n\n",
                static_cast<double>(wd.multiplierTerms) / wd.macs,
                static_cast<double>(wf.multiplierTerms) / wf.macs,
                static_cast<double>(wd.multiplierTerms) /
                    static_cast<double>(wf.multiplierTerms));

    // Frame-level comparison of the three designs.
    MemTech mem = experimentMemTech(params);
    AcceleratorConfig vaa = defaultVaaConfig();
    AcceleratorConfig pra = defaultPraConfig();
    AcceleratorConfig dfy = defaultDiffyConfig();
    pra.compression = Compression::DeltaD16;

    FramePerf perf_vaa = simulateFrame(trace, vaa, mem,
                                       params.frameHeight,
                                       params.frameWidth);
    FramePerf perf_pra = simulateFrame(trace, pra, mem,
                                       params.frameHeight,
                                       params.frameWidth);
    FramePerf perf_dfy = simulateFrame(trace, dfy, mem,
                                       params.frameHeight,
                                       params.frameWidth);

    TextTable table("Frame performance at " +
                    std::to_string(params.frameWidth) + "x" +
                    std::to_string(params.frameHeight) + " (" +
                    mem.label() + ")");
    table.setHeader({"Design", "Cycles/frame", "FPS", "vs VAA"});
    auto row = [&](const char *name, const FramePerf &perf) {
        table.addRow({name, TextTable::num(perf.totalCycles, 0),
                      TextTable::num(perf.fps(1e9), 2),
                      TextTable::factor(perf_vaa.totalCycles /
                                        perf.totalCycles)});
    };
    row("VAA", perf_vaa);
    row("PRA", perf_pra);
    row("Diffy", perf_dfy);
    table.print();
    return 0;
}
