/**
 * @file
 * Example: design-space exploration with the public API.
 *
 * Sweeps Diffy tile counts and memory technologies for a chosen model
 * and prints the performance/area Pareto candidates for a target
 * frame rate — the kind of study an SoC architect would run before
 * committing to a configuration.
 *
 *   ./examples/design_space [--net FFDNet] [--target-fps 30]
 *                           [--frame-w 1920 --frame-h 1080]
 */

#include <cstdio>
#include <stdexcept>

#include "common/cli.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "energy/model.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    const std::string net_name = args.getString("net", "FFDNet");
    double target_fps = 30.0;
    try {
        target_fps = args.getDouble("target-fps", 30.0);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    NetworkSpec net = makeNetwork(net_name);
    auto traced = traceSuite({net}, params);
    const TracedNetwork &tn = traced.front();

    std::printf("Design space for %s at %dx%d, target %.0f FPS\n\n",
                net.name.c_str(), params.frameWidth, params.frameHeight,
                target_fps);

    TextTable table("Diffy configurations (DeltaD16)");
    table.setHeader({"Tiles", "Memory", "FPS", "Area (mm^2)", "Power (W)",
                     "Meets target"});

    for (int tiles : {2, 4, 8, 16, 32}) {
        for (const auto &mem : fig18MemoryLadder()) {
            AcceleratorConfig cfg = defaultDiffyConfig();
            cfg.tiles = tiles;
            cfg.spatialWorkSharing = true;
            double fps = averageFps(tn, cfg, mem, params);
            // Skip clearly dominated rows to keep the table readable:
            // report the weakest memory that still feeds this tile
            // count (within 2%) plus every configuration that meets
            // the target.
            AcceleratorConfig ideal = cfg;
            ideal.compression = Compression::Ideal;
            double roof = averageFps(tn, ideal, mem, params);
            bool fed = fps >= 0.98 * roof;
            bool meets = fps >= target_fps;
            if (!fed && !meets)
                continue;

            const auto &trace = tn.traces.front();
            auto compute = simulateCompute(trace, cfg);
            auto perf =
                combineWithMemory(trace, compute, cfg, mem,
                                  params.frameHeight, params.frameWidth);
            auto rep = buildEnergyReport(trace, compute, perf, cfg);
            // Scale area/power crudely with tile count relative to the
            // 4-tile reference model.
            double tile_scale = static_cast<double>(tiles) / 4.0;
            table.addRow({std::to_string(tiles), mem.label(),
                          TextTable::num(fps, 1),
                          TextTable::num(rep.totalMm2 * tile_scale, 1),
                          TextTable::num(rep.totalWatts * tile_scale, 2),
                          meets ? "yes" : "no"});
            break; // weakest adequate memory found for this tile count
        }
    }
    table.print();

    std::printf("Reading: pick the first row that meets the target; "
                "rows above it show what weaker configurations "
                "deliver.\n");
    return 0;
}
