/**
 * @file
 * Example: an end-to-end "camera pipeline" study.
 *
 * Simulates a smartphone imaging stack running DnCNN denoising on
 * noisy sensor output at a chosen resolution, comparing how the three
 * accelerator designs handle it and what the delta storage does to
 * the off-chip traffic a battery-powered device would pay for.
 *
 *   ./examples/denoise_pipeline [--frame-w 1920 --frame-h 1080]
 *                               [--noise 0.05] [--crop 64]
 */

#include <cstdio>
#include <stdexcept>

#include "analysis/terms.hh"
#include "common/cli.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "encode/footprint.hh"
#include "energy/model.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    double noise = 0.05;
    try {
        noise = args.getDouble("noise", 0.05);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    // A noisy sensor capture: nature scene + Gaussian shot noise.
    SceneParams scene;
    scene.kind = SceneKind::Nature;
    scene.width = params.crop;
    scene.height = params.crop;
    scene.seed = 2024;
    scene.noiseSigma = noise;

    NetworkSpec net = makeDnCnn();
    TraceCache cache(params.cacheDir);
    NetworkTrace trace = cache.get(net, scene);
    MemTech mem = experimentMemTech(params);

    std::printf("Denoising pipeline: %s on a %.0f%%-noise capture, "
                "target %dx%d, %s\n\n",
                net.name.c_str(), noise * 100, params.frameWidth,
                params.frameHeight, mem.label().c_str());

    TextTable table("Design comparison");
    table.setHeader({"Design", "FPS", "ms/frame", "Off-chip MB/frame",
                     "On-chip energy (mJ)", "DRAM energy (mJ)"});
    for (auto make_cfg : {defaultVaaConfig, defaultPraConfig,
                          defaultDiffyConfig}) {
        AcceleratorConfig cfg = make_cfg();
        if (cfg.design != Design::Vaa)
            cfg.compression = Compression::DeltaD16;
        auto compute = simulateCompute(trace, cfg);
        FramePerf perf =
            combineWithMemory(trace, compute, cfg, mem,
                              params.frameHeight, params.frameWidth);
        EnergyReport rep =
            buildEnergyReport(trace, compute, perf, cfg);
        double traffic_mb =
            frameTrafficBytes(trace, cfg.compression,
                              params.frameHeight, params.frameWidth) /
            (1024.0 * 1024.0);
        table.addRow({to_string(cfg.design),
                      TextTable::num(perf.fps(cfg.clockHz), 2),
                      TextTable::num(1e3 * perf.totalCycles /
                                     cfg.clockHz, 1),
                      TextTable::num(traffic_mb, 1),
                      TextTable::num(rep.onChipJoules * 1e3, 1),
                      TextTable::num(rep.dramJoules * 1e3, 1)});
    }
    table.print();

    // How much does the sensor noise itself cost Diffy? Noise breaks
    // spatial correlation, so the first layers see wider deltas.
    TextTable sweep("Diffy FPS vs sensor noise");
    sweep.setHeader({"Noise sigma", "FPS", "Delta terms/value (L1)"});
    for (double sigma : {0.0, 0.02, 0.05, 0.1}) {
        SceneParams s = scene;
        s.noiseSigma = sigma;
        NetworkTrace t = cache.get(net, s);
        AcceleratorConfig cfg = defaultDiffyConfig();
        FramePerf perf = simulateFrame(t, cfg, mem, params.frameHeight,
                                       params.frameWidth);
        TermStats delta = deltaTermStats(t.layers.front().imap);
        sweep.addRow({TextTable::num(sigma, 2),
                      TextTable::num(perf.fps(cfg.clockHz), 2),
                      TextTable::num(delta.meanTerms(), 2)});
    }
    sweep.print();
    return 0;
}
