/**
 * @file
 * Example: standalone activation-compression explorer.
 *
 * Traces a network on a scene, then reports per-layer compressed
 * sizes for every scheme and verifies the lossless round-trips on the
 * real bitstreams — a debugging/inspection tool for the encode
 * module.
 *
 *   ./examples/codec_tool [--net VDSR] [--scene city] [--crop 64]
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "encode/schemes.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    const std::string net_name = args.getString("net", "VDSR");
    const std::string scene_name = args.getString("scene", "city");

    SceneParams scene;
    scene.kind = sceneKindFromString(scene_name);
    scene.width = params.crop;
    scene.height = params.crop;
    scene.seed = 77;

    NetworkSpec net = makeNetwork(net_name);
    TraceCache cache(params.cacheDir);
    NetworkTrace trace = cache.get(net, scene);

    std::printf("Compression study: %s on a '%s' scene (%dx%d)\n\n",
                net.name.c_str(), scene_name.c_str(), params.crop,
                params.crop);

    const Compression schemes[] = {
        Compression::Rlez,   Compression::Rle,    Compression::RawD16,
        Compression::DeltaD16,
    };

    TextTable table("Bits/value by layer (16b uncompressed)");
    std::vector<std::string> header = {"Layer", "Sparsity"};
    for (auto s : schemes)
        header.push_back(to_string(s));
    table.setHeader(header);

    std::size_t roundtrip_failures = 0;
    for (const auto &layer : trace.layers) {
        std::size_t zeros = 0;
        for (std::size_t i = 0; i < layer.imap.size(); ++i)
            zeros += layer.imap.data()[i] == 0;
        std::vector<std::string> row = {
            layer.spec.name,
            TextTable::percent(static_cast<double>(zeros) /
                               layer.imap.size())};
        for (auto scheme : schemes) {
            auto codec = makeCodec(scheme);
            EncodedTensor enc = codec->encode(layer.imap);
            if (!(codec->decode(enc) == layer.imap))
                ++roundtrip_failures;
            row.push_back(TextTable::num(
                static_cast<double>(enc.bits) / layer.imap.size()));
        }
        table.addRow(row);
    }
    table.print();

    std::printf("Lossless round-trip failures: %zu (expected 0)\n",
                roundtrip_failures);
    return roundtrip_failures == 0 ? 0 : 1;
}
