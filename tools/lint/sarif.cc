#include "sarif.hh"

#include <cstdio>
#include <map>
#include <sstream>

namespace diffy::lint
{

std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 8);
    for (char c : text) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace
{

void
appendResult(std::ostringstream &os, const Finding &finding,
             const std::map<std::string, std::size_t> &ruleIndex,
             bool baselined, bool first)
{
    if (!first)
        os << ",";
    os << "\n      {\n"
       << "        \"ruleId\": \"" << jsonEscape(finding.rule)
       << "\",\n";
    auto it = ruleIndex.find(finding.rule);
    if (it != ruleIndex.end())
        os << "        \"ruleIndex\": " << it->second << ",\n";
    os << "        \"level\": \"error\",\n"
       << "        \"message\": { \"text\": \""
       << jsonEscape(finding.message) << "\" },\n"
       << "        \"locations\": [\n"
       << "          {\n"
       << "            \"physicalLocation\": {\n"
       << "              \"artifactLocation\": {\n"
       << "                \"uri\": \"" << jsonEscape(finding.file)
       << "\",\n"
       << "                \"uriBaseId\": \"%SRCROOT%\"\n"
       << "              },\n"
       << "              \"region\": { \"startLine\": "
       << (finding.line > 0 ? finding.line : 1) << " }\n"
       << "            }\n"
       << "          }\n"
       << "        ]";
    if (baselined) {
        os << ",\n        \"suppressions\": [\n"
           << "          {\n"
           << "            \"kind\": \"external\",\n"
           << "            \"justification\": \"listed in "
              "tools/lint/baseline.txt (pre-existing finding under "
              "burn-down)\"\n"
           << "          }\n"
           << "        ]";
    }
    os << "\n      }";
}

} // namespace

std::string
sarifJson(const std::vector<Finding> &fresh,
          const std::vector<Finding> &baselined)
{
    const std::vector<RuleInfo> rules = ruleCatalog();
    std::map<std::string, std::size_t> ruleIndex;
    for (std::size_t i = 0; i < rules.size(); ++i)
        ruleIndex[rules[i].id] = i;

    std::ostringstream os;
    os << "{\n"
       << "  \"$schema\": "
          "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
       << "  \"version\": \"2.1.0\",\n"
       << "  \"runs\": [\n"
       << "    {\n"
       << "      \"tool\": {\n"
       << "        \"driver\": {\n"
       << "          \"name\": \"diffy-lint\",\n"
       << "          \"version\": \"2.0.0\",\n"
       << "          \"informationUri\": "
          "\"https://example.invalid/diffy/DESIGN.md\",\n"
       << "          \"rules\": [";
    for (std::size_t i = 0; i < rules.size(); ++i) {
        if (i > 0)
            os << ",";
        os << "\n            {\n"
           << "              \"id\": \"" << jsonEscape(rules[i].id)
           << "\",\n"
           << "              \"shortDescription\": { \"text\": \""
           << jsonEscape(rules[i].summary) << "\" }\n"
           << "            }";
    }
    os << "\n          ]\n"
       << "        }\n"
       << "      },\n"
       << "      \"results\": [";
    bool first = true;
    for (const Finding &f : fresh) {
        appendResult(os, f, ruleIndex, false, first);
        first = false;
    }
    for (const Finding &f : baselined) {
        appendResult(os, f, ruleIndex, true, first);
        first = false;
    }
    if (first)
        os << "]";
    else
        os << "\n      ]";
    os << "\n    }\n"
       << "  ]\n"
       << "}\n";
    return os.str();
}

} // namespace diffy::lint
