/**
 * @file
 * diffy-lint pass 2: the analyses.
 *
 * Per-file rules (R1–R10's single-file parts) read one FileModel;
 * cross-file analyses read the whole tree's models at once:
 *
 *   L1  include-graph layering — the actual `#include` graph between
 *       src/ top-level directories must match the layer DAG declared
 *       in tools/lint/layers.txt exactly: no cycles, no undeclared
 *       edges, no declared-but-unused edges (full-src scans only);
 *   R10 lock-order graph — per-function acquisition order harvested
 *       in pass 1 merges into one graph over src/runtime, src/serve
 *       and src/core/trace_cache; any cycle is a potential deadlock.
 *
 * The rule catalogue and Finding type live in lint.hh (the public
 * API); this header is internal to the engine and the self-tests.
 */

#ifndef DIFFY_TOOLS_LINT_ANALYSES_HH
#define DIFFY_TOOLS_LINT_ANALYSES_HH

#include <string>
#include <vector>

#include "lint.hh"
#include "model.hh"

namespace diffy::lint
{

/** The parsed layer DAG (tools/lint/layers.txt). */
struct LayerSpec
{
    struct Decl
    {
        std::string layer;
        int line = 0;                   ///< 1-based line in the spec
        std::vector<std::string> deps;  ///< declared allowed edges
    };
    std::string relPath;  ///< spec path as reported in findings
    std::vector<Decl> decls;
    /// Malformed lines, reported as L1 findings against the spec.
    std::vector<std::pair<int, std::string>> errors;
};

/** Parse a layers.txt: `layer: dep dep ...`, '#' comments, blanks. */
LayerSpec parseLayerSpec(const std::string &rel_path,
                         const std::string &contents);

/** Run every single-file rule over @p model. */
void runFileAnalyses(const FileModel &model,
                     std::vector<Finding> &out);

/**
 * Run the cross-file analyses over the whole tree. @p spec may be
 * null (no layers.txt: L1 is skipped). @p full_src_scan gates the
 * declared-but-unused edge check — on a partial scan an edge's
 * includes may simply not have been read.
 */
void runTreeAnalyses(const std::vector<FileModel> &models,
                     const LayerSpec *spec, bool full_src_scan,
                     std::vector<Finding> &out);

} // namespace diffy::lint

#endif // DIFFY_TOOLS_LINT_ANALYSES_HH
