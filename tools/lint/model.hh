/**
 * @file
 * diffy-lint pass 1: the per-file model.
 *
 * `buildFileModel()` parses one source file into a lightweight,
 * policy-free fact base — include edges, in-loop allocation sites,
 * lock-acquisition order and blocking calls made while a lock is
 * held. Pass 2 (analyses.hh) interprets these facts: per-file rules
 * read one model, cross-file analyses (include-graph layering, the
 * lock-order graph) read the whole tree's models at once. The model
 * records everything it sees regardless of path; rule path scopes are
 * policy and live with the analyses.
 */

#ifndef DIFFY_TOOLS_LINT_MODEL_HH
#define DIFFY_TOOLS_LINT_MODEL_HH

#include <set>
#include <string>
#include <vector>

#include "scanner.hh"

namespace diffy::lint
{

/** One `#include "..."` directive (system includes are not modeled). */
struct IncludeSite
{
    int line = 0;        ///< 1-based
    std::string target;  ///< the quoted path, verbatim
};

/** One heap-allocation / container-growth / string-build site. */
struct GrowthSite
{
    int line = 0;
    /// "new" | "make_unique" | "make_shared" | "push_back" |
    /// "emplace_back" | "resize" | "reserve" | "string" | "to_string"
    /// | "ostringstream"
    std::string kind;
    std::string what;    ///< object chain (`result.layers`) or detail
    int loopDepth = 0;   ///< enclosing loop-body depth at the site
};

/**
 * One lock-order edge: @c held was already held when @c acquired was
 * taken. Mutex names are normalized to their last path component
 * (`this->mu_`, `shard->mutex` → `mu_`, `mutex`) so the cross-file
 * graph unifies member mutexes by name.
 */
struct LockOrderEdge
{
    int line = 0;            ///< line of the inner acquisition
    std::string held;
    std::string acquired;
};

/** One known-blocking call made while at least one lock was held. */
struct BlockingSite
{
    int line = 0;
    std::string call;        ///< the matched blocking callee
    std::string heldMutex;   ///< one of the mutexes held at the call
};

/** Everything pass 1 knows about one file. */
struct FileModel
{
    std::string relPath;
    std::vector<std::string> rawLines;  ///< verbatim source lines
    std::vector<std::string> lines;     ///< sanitized (scanner.hh)
    Suppressions allow;                 ///< parsed from rawLines

    std::vector<IncludeSite> includes;
    std::vector<GrowthSite> growth;     ///< only sites with loopDepth>0
    /// Objects `.reserve()`d / `.resize()`d at loop depth 0 somewhere
    /// in the file — the pre-sized-append exemption for R9.
    std::set<std::string> presized;
    /// Objects constructed/assigned with a scratchAlloc() allocator
    /// anywhere in the file. Their growth draws from the ambient
    /// frame arena (common/pool.hh) — recycled by rewind(), not a
    /// per-iteration heap allocation — so R9 exempts them.
    std::set<std::string> arenaBacked;
    std::vector<LockOrderEdge> lockEdges;
    std::vector<BlockingSite> blocking;
    /// Every distinct normalized mutex name acquired in this file.
    std::set<std::string> mutexes;
};

/** Parse @p contents (as @p rel_path) into its fact base. */
FileModel buildFileModel(const std::string &rel_path,
                         const std::string &contents);

} // namespace diffy::lint

#endif // DIFFY_TOOLS_LINT_MODEL_HH
