#include "scanner.hh"

#include <algorithm>
#include <cctype>
#include <regex>
#include <sstream>

namespace diffy::lint
{

namespace
{

/**
 * If the `"` at @p quote opens a raw string literal, return the length
 * of the encoding-prefix+R run that precedes it (1 for `R"`, 2 for
 * `uR"`/`UR"`/`LR"`, 3 for `u8R"`); 0 when this is an ordinary string.
 * The character before the prefix must not be an identifier character
 * (`FOOBAR"x"` is macro-concatenation of an identifier, not a raw
 * string).
 */
std::size_t
rawPrefixLength(const std::string &text, std::size_t quote)
{
    static const char *prefixes[] = {"u8R", "uR", "UR", "LR", "R"};
    for (const char *p : prefixes) {
        const std::size_t n = std::string(p).size();
        if (quote < n)
            continue;
        if (text.compare(quote - n, n, p) != 0)
            continue;
        if (quote > n) {
            const char before = text[quote - n - 1];
            if (std::isalnum(static_cast<unsigned char>(before)) ||
                before == '_')
                continue;
        }
        return n;
    }
    return 0;
}

} // namespace

std::string
sanitize(const std::string &text)
{
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
    };
    std::string out(text);
    State state = State::Code;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                // Raw strings are blanked as a unit: find the
                // `R"delim(` opener, then the matching `)delim"`
                // terminator. Nothing inside — quotes, escapes,
                // comment markers — re-enters Code state.
                if (rawPrefixLength(text, i) > 0) {
                    std::size_t open = text.find('(', i + 1);
                    // A raw-string delimiter is at most 16 chars and
                    // contains no whitespace; anything else means the
                    // `"` was ordinary after all.
                    if (open != std::string::npos && open - i <= 17) {
                        const std::string delim =
                            text.substr(i + 1, open - i - 1);
                        const std::string closer = ")" + delim + "\"";
                        std::size_t end = text.find(closer, open + 1);
                        std::size_t stop =
                            end == std::string::npos
                                ? text.size()
                                : end + closer.size();
                        for (std::size_t j = i; j < stop; ++j) {
                            if (text[j] != '\n')
                                out[j] = ' ';
                        }
                        i = stop - 1;
                        break;
                    }
                }
                state = State::String;
            } else if (c == '\'') {
                state = State::Char;
            }
            break;
          case State::LineComment:
            if (c == '\n')
                state = State::Code;
            else
                out[i] = ' ';
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                out[i] = out[i + 1] = ' ';
                state = State::Code;
                ++i;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::String:
          case State::Char:
            if (c == '\\' && next != '\0' && next != '\n') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
            } else if ((state == State::String && c == '"') ||
                       (state == State::Char && c == '\'')) {
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string::size_type start = 0;
    while (start <= text.size()) {
        std::string::size_type end = text.find('\n', start);
        if (end == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return lines;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

Suppressions::Suppressions(const std::vector<std::string> &raw_lines)
{
    static const std::regex pattern(
        R"(diffy-lint:\s*allow\(([^)]*)\))");
    for (std::size_t i = 0; i < raw_lines.size(); ++i) {
        const std::string &line = raw_lines[i];
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            pattern);
             it != std::sregex_iterator(); ++it) {
            std::string ids = (*it)[1].str();
            std::string id;
            std::istringstream is(ids);
            while (std::getline(is, id, ',')) {
                id.erase(std::remove_if(id.begin(), id.end(),
                                        [](unsigned char ch) {
                                            return std::isspace(ch) !=
                                                   0;
                                        }),
                         id.end());
                if (id.empty())
                    continue;
                // The two-line window: the marker's own line N and
                // line N+1, nothing else (see scanner.hh).
                byLine_[static_cast<int>(i) + 1].insert(id);
                byLine_[static_cast<int>(i) + 2].insert(id);
            }
        }
    }
}

bool
Suppressions::covers(int line, const std::string &rule) const
{
    auto it = byLine_.find(line);
    return it != byLine_.end() && it->second.count(rule) > 0;
}

std::vector<int>
LoopTracker::depths(const std::string &line)
{
    static const std::regex header(R"(\b(?:for|while)\s*\()");
    std::vector<std::size_t> headerParens;
    for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                        header);
         it != std::sregex_iterator(); ++it) {
        headerParens.push_back(
            static_cast<std::size_t>(it->position()) +
            it->str().size() - 1);
    }
    std::size_t nextHeader = 0;

    std::vector<int> depth(line.size() + 1, 0);
    for (std::size_t i = 0; i <= line.size(); ++i) {
        depth[i] = static_cast<int>(loopStack_.size()) +
                   bracelessBodies_;
        if (i == line.size())
            break;
        const char c = line[i];
        if (headerDepth_ == 0 && nextHeader < headerParens.size() &&
            i == headerParens[nextHeader]) {
            // The '(' opening a for/while header.
            ++nextHeader;
            headerDepth_ = 1;
            awaitingBody_ = false;
            continue;
        }
        if (headerDepth_ > 0) {
            if (c == '(')
                ++headerDepth_;
            else if (c == ')') {
                --headerDepth_;
                if (headerDepth_ == 0)
                    awaitingBody_ = true;
            }
            continue;
        }
        if (awaitingBody_) {
            if (std::isspace(static_cast<unsigned char>(c)))
                continue;
            awaitingBody_ = false;
            if (c == '{') {
                ++braceDepth_;
                loopStack_.push_back(braceDepth_);
                continue;
            }
            // Braceless body: one virtual scope until ';'.
            ++bracelessBodies_;
            // fall through to classify c normally
        }
        if (c == '{') {
            ++braceDepth_;
        } else if (c == '}') {
            if (!loopStack_.empty() &&
                loopStack_.back() == braceDepth_)
                loopStack_.pop_back();
            --braceDepth_;
        } else if (c == ';' && bracelessBodies_ > 0 &&
                   headerDepth_ == 0) {
            bracelessBodies_ = 0;
        }
    }
    return depth;
}

} // namespace diffy::lint
