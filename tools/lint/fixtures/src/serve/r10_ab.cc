// Half of the cross-file inversion pair: acquires shard, then stats.
// Clean on its own; the deadlock only exists against the opposite
// order in src/core/trace_cache_r10.cc.
#include <mutex>

std::mutex shard_mu;
std::mutex stats_mu;

void
recordServe()
{
    std::lock_guard<std::mutex> shard(shard_mu);
    std::lock_guard<std::mutex> stats(stats_mu);
}
