// R9 fixture: arena-backed growth in a hot loop must NOT fire.
// Containers constructed with a scratchAlloc() allocator draw from
// the ambient frame arena (common/pool.hh); per-iteration growth
// bumps the arena, which rewind() recycles, so no heap traffic.

void
serveFrames(int frames)
{
    for (int f = 0; f < frames; ++f) {
        ByteVec payload(scratchAlloc<unsigned char>());
        for (int i = 0; i < 64; ++i)
            payload.push_back(static_cast<unsigned char>(i));

        AlignedVec<int> stream(scratchAlloc<int>());
        stream.reserve(64);
        for (int i = 0; i < 64; ++i)
            stream.push_back(i);
    }
}
