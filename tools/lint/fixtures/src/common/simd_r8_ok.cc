// R8 no-fire fixture: src/common/simd* is the sanctioned home for
// raw intrinsics, so the same patterns must not fire here.
#include <immintrin.h>

namespace diffy::simd
{

int
sanctionedIntrinsicFixture(const int *p)
{
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    return _mm_cvtsi128_si32(v);
}

} // namespace diffy::simd
