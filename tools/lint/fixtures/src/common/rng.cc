// R3 must-not-fire fixture: src/common/rng is the one module allowed
// to construct generators (this mirrors the real rng.cc's path).
#include <random>

namespace diffy
{

unsigned
rngInternalFixture()
{
    std::mt19937 gen(7);
    return gen();
}

} // namespace diffy
