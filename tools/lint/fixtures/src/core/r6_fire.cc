// Must-fire fixture for R6: a clock read outside src/obs/src/runtime.
#include <chrono>

double
elapsedSeconds(std::chrono::steady_clock::time_point start)
{
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start).count();
}
