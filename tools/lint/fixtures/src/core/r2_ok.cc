// R2 must-not-fire fixture: the thread_local cache is exposed through
// an accessor, has a clear hook, and registers it centrally.
#include <cstdint>
#include <unordered_map>

#include "common/cache_registry.hh"

namespace diffy
{

namespace
{

std::unordered_map<std::uint64_t, int> &
fixtureCache()
{
    thread_local std::unordered_map<std::uint64_t, int> cache;
    return cache;
}

} // namespace

void
clearFixtureCache()
{
    fixtureCache().clear();
}

DIFFY_REGISTER_THREAD_CACHE(fixture_memo, clearFixtureCache);

int
memoizedFixture(std::uint64_t key)
{
    auto &cache = fixtureCache();
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    const int value = static_cast<int>(key % 7);
    cache.emplace(key, value);
    return value;
}

} // namespace diffy
