// The other half of the cross-file inversion pair: acquires stats,
// then shard — the opposite of src/serve/r10_ab.cc. Clean on its
// own; the tree scan that reads both files reports the cycle.
#include <mutex>

extern std::mutex shard_mu;
extern std::mutex stats_mu;

void
flushTrace()
{
    std::lock_guard<std::mutex> stats(stats_mu);
    std::lock_guard<std::mutex> shard(shard_mu);
}
