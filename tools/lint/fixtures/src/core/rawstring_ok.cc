// Raw-string blind spot regression: rule-triggering text inside
// R"(...)" literals (plain, prefixed, custom-delimited) is string
// content, not code. The v1 scanner only blanked ordinary quoted
// strings and fired R3/R4/R8 on all of these.
#include <string>

const char *kPlain = R"(std::mt19937 gen(42); rand();)";
const char *kDelim = R"re(br.read(4); br.readSigned(8) " unbalanced)re";
const char *kWide = u8R"(_mm_add_ps(a, b); #include <immintrin.h>)";

std::string
describeRules()
{
    // A ')' followed by '"' inside the literal must not end it early.
    return R"q(catch (...) { std::random_device rd; })q";
}
