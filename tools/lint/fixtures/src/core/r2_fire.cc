// R2 must-fire fixture: a thread_local memo cache with no clear hook
// registered — the stale-memo hazard across sweep reconfigurations.
#include <cstdint>
#include <unordered_map>

namespace diffy
{

int
memoizedFixture(std::uint64_t key)
{
    thread_local std::unordered_map<std::uint64_t, int> cache;
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    const int value = static_cast<int>(key % 7);
    cache.emplace(key, value);
    return value;
}

} // namespace diffy
