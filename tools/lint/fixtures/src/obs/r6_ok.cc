// Must-not-fire fixture for R6: the same clock read is legal inside
// src/obs (and src/runtime), where timing is centralized.
#include <chrono>

double
elapsedSeconds(std::chrono::steady_clock::time_point start)
{
    auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start).count();
}
