// R5 must-not-fire fixture: canonical guard, fully qualified names.
#ifndef DIFFY_ARCH_R5_OK_HH
#define DIFFY_ARCH_R5_OK_HH

#include <string>

namespace diffy
{

inline std::string
fixtureName()
{
    return "r5";
}

} // namespace diffy

#endif // DIFFY_ARCH_R5_OK_HH
