// R5 must-fire fixture: a using-directive at namespace scope and an
// include guard that does not match the canonical path-derived name.
#ifndef WRONG_GUARD_NAME
#define WRONG_GUARD_NAME

#include <string>

using namespace std;

namespace diffy
{

inline string
fixtureName()
{
    return "r5";
}

} // namespace diffy

#endif // WRONG_GUARD_NAME
