// R3 must-fire fixture: ad-hoc RNG construction outside
// src/common/rng breaks seed-reproducibility of the sweeps.
#include <cstdlib>
#include <random>

namespace diffy
{

int
noisyFixture()
{
    std::mt19937 gen(42);
    std::uniform_int_distribution<int> dist(0, 9);
    return dist(gen) + rand() % 3;
}

} // namespace diffy
