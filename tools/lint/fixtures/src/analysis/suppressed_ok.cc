// Suppression fixture: each violation carries (or follows) a
// diffy-lint allow() comment, so the file must lint clean. Exercises
// both the same-line and preceding-line suppression forms.
#include <random>

namespace diffy
{

unsigned
suppressedFixture()
{
    std::mt19937 gen(3); // diffy-lint: allow(R3): fixture exercises suppression
    // diffy-lint: allow(R3): preceding-line form
    std::random_device rd;
    return gen() + rd();
}

} // namespace diffy
