// R10 must-not-fire: consistent acquisition order everywhere, and
// the sanctioned drop-the-lock-before-blocking idiom (unlock() before
// the sleep, re-lock after).
#include <chrono>
#include <mutex>
#include <thread>

std::mutex mu_a;
std::mutex mu_b;

void
consistentForward()
{
    std::lock_guard<std::mutex> la(mu_a);
    std::lock_guard<std::mutex> lb(mu_b);
}

void
consistentForwardAgain()
{
    std::unique_lock<std::mutex> la(mu_a);
    std::unique_lock<std::mutex> lb(mu_b);
}

void
dropBeforeBlocking()
{
    std::unique_lock<std::mutex> lock(mu_a);
    lock.unlock();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    lock.lock();
}
