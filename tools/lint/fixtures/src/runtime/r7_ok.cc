// Must-not-fire fixture for R7: every bare catch (...) here does
// something with the failure — captures it, rethrows it, or records
// it to an obs counter.
#include <exception>

void mightThrow();
void bumpCounter(const char *name); // stand-in for obs counter(...)

std::exception_ptr
captureFailure()
{
    try {
        mightThrow();
    } catch (...) {
        return std::current_exception();
    }
    return nullptr;
}

void
cleanupThenRethrow(int *inFlight)
{
    try {
        mightThrow();
    } catch (...) {
        --*inFlight;
        throw;
    }
}
