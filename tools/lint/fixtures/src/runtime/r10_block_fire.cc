// R10 must-fire: blocking the thread while a lock is held stalls
// every waiter behind the sleep.
#include <chrono>
#include <mutex>
#include <thread>

std::mutex mu;

void
blockUnderLock()
{
    std::lock_guard<std::mutex> guard(mu);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
}
