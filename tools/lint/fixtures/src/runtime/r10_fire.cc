// R10 must-fire, single file: two functions acquire the same two
// mutexes in opposite orders — the classic lock-order inversion.
#include <mutex>

std::mutex mu_a;
std::mutex mu_b;

void
forward()
{
    std::lock_guard<std::mutex> la(mu_a);
    std::lock_guard<std::mutex> lb(mu_b);
}

void
backward()
{
    std::lock_guard<std::mutex> lb(mu_b);
    std::lock_guard<std::mutex> la(mu_a);
}
