// Must-fire fixture for R7: a bare catch (...) that swallows the
// failure — no rethrow, no capture, no taxonomy, no counter.
void mightThrow();

bool
swallowEverything()
{
    try {
        mightThrow();
    } catch (...) {
        return false;
    }
    return true;
}
