// R9 scope check: src/nn is outside the rule's hot-path dirs
// (src/sim, src/serve, src/encode), so per-iteration growth here is
// not a finding.
#include <vector>

void
buildTopology(int n, std::vector<int> &out)
{
    for (int i = 0; i < n; ++i)
        out.push_back(i);
}
