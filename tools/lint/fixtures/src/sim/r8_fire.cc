// R8 must-fire fixture: raw SIMD intrinsics outside src/common/simd*
// bypass the dispatch table and its scalar-oracle contract. Fires on
// the vendor header, an x86 _mm* call, and a NEON v*q_* call.
#include <immintrin.h>

namespace diffy
{

int
rawIntrinsicFixture(const int *p)
{
    __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    int lane = _mm_cvtsi128_si32(v);
    lane += static_cast<int>(vaddvq_s32(vdupq_n_s32(lane)));
    return lane;
}

} // namespace diffy
