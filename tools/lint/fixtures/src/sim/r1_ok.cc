// R1 must-not-fire fixture: integer tallies inside the loop nest,
// double conversion at stat assembly (depth <= 1), and a
// vector<double> accumulated outside any nest.
#include <cstdint>
#include <vector>

namespace diffy
{

double
walkFixture(int rows, int cols, const std::vector<double> &weights)
{
    std::int64_t cycles = 0;
    for (int y = 0; y < rows; ++y) {
        for (int x = 0; x < cols; ++x) {
            cycles += 1;
        }
    }

    // Stat assembly: depth-1 accumulation over per-layer doubles is
    // the intended conversion point.
    double total = 0.0;
    for (double w : weights) {
        total += w;
    }
    return static_cast<double>(cycles) + total;
}

} // namespace diffy
