// Multi-rule suppression: one comma-separated allow() list covers
// several rules on the same line (and the next).
#include <memory>
#include <random>

void
multiAllow(int n)
{
    for (int i = 0; i < n; ++i) {
        std::mt19937 g(1); auto p = std::make_unique<int>(i); // diffy-lint: allow(R3,R9)
        (void)g;
        (void)p;
    }
}
