// R9 must-not-fire: the sanctioned zero-allocation-steady-state
// shapes. Pre-sized append, buffers hoisted out of the loop, string
// assembly at report level (loop depth 0).
#include <memory>
#include <string>
#include <vector>

void
r9Ok(int n)
{
    std::vector<int> values;
    values.reserve(static_cast<std::size_t>(n)); // pre-sized at depth 0
    auto scratch = std::make_unique<int[]>(16);  // allocated once
    for (int i = 0; i < n; ++i) {
        values.push_back(i); // growth into reserved capacity
        scratch[i % 16] = i; // reuse, no per-iteration allocation
    }
    std::string report = "n=" + std::to_string(n); // depth 0 assembly
    (void)report;
}
