// R1 must-fire fixture: a float tally accumulated inside a sim loop
// nest. This is the exact pattern PR 3 removed from the pallet walk.
namespace diffy
{

double
walkFixture(int rows, int cols)
{
    double cycles = 0.0;
    for (int y = 0; y < rows; ++y) {
        for (int x = 0; x < cols; ++x) {
            cycles += 1.0;
        }
    }
    return cycles;
}

} // namespace diffy
