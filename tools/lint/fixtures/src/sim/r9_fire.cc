// R9 must-fire: every allocation kind the rule knows, inside a loop.
#include <memory>
#include <sstream>
#include <string>
#include <vector>

void
r9Fire(int n)
{
    std::vector<int> values;
    for (int i = 0; i < n; ++i) {
        values.push_back(i);                      // no loop-external reserve
        auto boxed = std::make_unique<int>(i);    // per-iteration heap
        int *raw = new int(i);                    // per-iteration heap
        std::string label = std::to_string(i);    // string build + to_string
        std::ostringstream os;                    // stream per iteration
        os << *boxed << *raw << label;
        delete raw;
    }
}
