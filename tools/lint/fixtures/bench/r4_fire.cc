// R4 must-fire fixture: raw BitReader reads outside the codec
// internals bypass the hardened tryDecode/DecodeResult path.
#include <cstdint>
#include <vector>

#include "encode/bitstream.hh"

namespace diffy
{

std::uint32_t
rawDecodeFixture(const std::vector<std::uint8_t> &bytes)
{
    BitReader br(bytes);
    std::uint32_t header = br.read(4);
    std::int32_t payload = br.readSigned(8);
    return header + static_cast<std::uint32_t>(payload);
}

} // namespace diffy
