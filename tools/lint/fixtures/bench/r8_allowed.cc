// R8 suppression fixture: an intrinsic outside the dispatch layer
// lints clean when it carries the explicit allow() escape (e.g. a
// one-off experiment that has not been promoted to a kernel yet).
namespace diffy
{

unsigned
allowedIntrinsicFixture(unsigned x)
{
    // diffy-lint: allow(R8): bench-local experiment, not a hot kernel
    return static_cast<unsigned>(_mm_popcnt_u32(x));
}

} // namespace diffy
