// R4 must-not-fire fixture: external callers decode through the
// structured tryRead path and never touch the throwing raw reads.
#include <cstdint>
#include <vector>

#include "encode/bitstream.hh"

namespace diffy
{

bool
structuredDecodeFixture(const std::vector<std::uint8_t> &bytes,
                        std::uint32_t &header)
{
    BitReader br(bytes);
    return br.tryRead(4, header);
}

} // namespace diffy
