#ifndef DIFFY_A_A_HH
#define DIFFY_A_A_HH
#include "b/b.hh"
#endif // DIFFY_A_A_HH
