#ifndef DIFFY_A_A_HH
#define DIFFY_A_A_HH
#endif // DIFFY_A_A_HH
