#ifndef DIFFY_B_B_HH
#define DIFFY_B_B_HH
#include "a/a.hh"
#endif // DIFFY_B_B_HH
