#ifndef DIFFY_B_B_HH
#define DIFFY_B_B_HH
#endif // DIFFY_B_B_HH
