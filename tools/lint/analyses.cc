#include "analyses.hh"

#include <algorithm>
#include <cctype>
#include <functional>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <unordered_set>

namespace diffy::lint
{

namespace
{

void
addFinding(std::vector<Finding> &out, const Suppressions &allow,
           const std::string &file, int line, const char *rule,
           std::string message)
{
    if (allow.covers(line, rule))
        return;
    out.push_back(Finding{file, line, rule, std::move(message)});
}

/* ------------------------------------------------------------------ */
/* R1: float/double accumulation in src/sim loop nests (depth >= 2)    */
/* ------------------------------------------------------------------ */

void
ruleR1(const FileModel &model, std::vector<Finding> &out)
{
    if (!startsWith(model.relPath, "src/sim/"))
        return;
    const std::vector<std::string> &lines = model.lines;

    // Single sequential pass: the set of identifiers currently known
    // to be float/double evolves as declarations go by, so an integer
    // re-declaration (`std::int64_t cycles` after a `double cycles`
    // struct member) takes over — within a function, declaration
    // precedes use, so "latest declaration wins" is the right
    // resolution for a file-scoped heuristic.
    static const std::regex decl(
        R"(\b(?:float|double)\s+([A-Za-z_]\w*))");
    static const std::regex vecDecl(
        R"(\bvector\s*<\s*(?:float|double)\s*>\s+([A-Za-z_]\w*))");
    static const std::regex intDecl(
        R"(\b(?:(?:std::)?u?int(?:8|16|32|64)_t|(?:std::)?size_t|(?:std::)?ptrdiff_t|int|long|short|unsigned)\s+([A-Za-z_]\w*))");
    static const std::regex intVecDecl(
        R"(\bvector\s*<\s*[^<>]*\bu?int[^<>]*>\s+([A-Za-z_]\w*))");
    static const std::regex accum(
        R"(([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*\+=)");
    std::unordered_set<std::string> floatIdents;
    LoopTracker tracker;
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            decl);
             it != std::sregex_iterator(); ++it) {
            // Skip function declarations: `double foo(...)`.
            std::size_t after =
                static_cast<std::size_t>(it->position()) +
                it->str().size();
            while (after < line.size() &&
                   std::isspace(
                       static_cast<unsigned char>(line[after])))
                ++after;
            if (after < line.size() && line[after] == '(')
                continue;
            floatIdents.insert((*it)[1].str());
        }
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            vecDecl);
             it != std::sregex_iterator(); ++it)
            floatIdents.insert((*it)[1].str());
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            intDecl);
             it != std::sregex_iterator(); ++it)
            floatIdents.erase((*it)[1].str());
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            intVecDecl);
             it != std::sregex_iterator(); ++it)
            floatIdents.erase((*it)[1].str());

        std::vector<int> depth = tracker.depths(line);
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            accum);
             it != std::sregex_iterator(); ++it) {
            const std::string ident = (*it)[1].str();
            if (floatIdents.count(ident) == 0)
                continue;
            const auto col = static_cast<std::size_t>(it->position());
            if (depth[col] < 2)
                continue;
            addFinding(out, model.allow, model.relPath,
                       static_cast<int>(li) + 1, "R1",
                       "float/double tally '" + ident +
                           "' accumulated inside a sim loop nest; "
                           "tally in an integer and convert at stat "
                           "assembly (determinism contract)");
        }
    }
}

/* ------------------------------------------------------------------ */
/* R2: thread_local memo caches must register a clear hook             */
/* ------------------------------------------------------------------ */

void
ruleR2(const FileModel &model, std::vector<Finding> &out)
{
    if (model.relPath == "src/common/cache_registry.hh" ||
        model.relPath == "src/common/cache_registry.cc")
        return;
    static const std::regex tl(R"(\bthread_local\b)");
    static const std::regex reg(R"(\bDIFFY_REGISTER_THREAD_CACHE\s*\()");
    bool registers = false;
    for (const std::string &line : model.lines) {
        if (std::regex_search(line, reg)) {
            registers = true;
            break;
        }
    }
    if (registers)
        return;
    for (std::size_t li = 0; li < model.lines.size(); ++li) {
        if (std::regex_search(model.lines[li], tl)) {
            addFinding(out, model.allow, model.relPath,
                       static_cast<int>(li) + 1, "R2",
                       "thread_local cache without a registered clear "
                       "hook; add DIFFY_REGISTER_THREAD_CACHE in this "
                       "file (common/cache_registry.hh)");
        }
    }
}

/* ------------------------------------------------------------------ */
/* R3: RNG construction outside src/common/rng                         */
/* ------------------------------------------------------------------ */

void
ruleR3(const FileModel &model, std::vector<Finding> &out)
{
    if (startsWith(model.relPath, "src/common/rng."))
        return;
    static const std::regex rng(
        R"(\bmt19937(?:_64)?\b|\brandom_device\b|\bsrand\s*\(|\brand\s*\()");
    for (std::size_t li = 0; li < model.lines.size(); ++li) {
        auto begin = std::sregex_iterator(model.lines[li].begin(),
                                          model.lines[li].end(), rng);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            addFinding(out, model.allow, model.relPath,
                       static_cast<int>(li) + 1, "R3",
                       "RNG construction '" + it->str() +
                           "' outside src/common/rng; use the seeded "
                           "Rng (splitmix64/xoshiro) streams");
        }
    }
}

/* ------------------------------------------------------------------ */
/* R4: raw BitReader::read* decode calls outside src/encode            */
/* ------------------------------------------------------------------ */

void
ruleR4(const FileModel &model, std::vector<Finding> &out)
{
    if (startsWith(model.relPath, "src/encode/"))
        return;
    const std::vector<std::string> &lines = model.lines;

    // Pass 1: variables declared (or bound) as BitReader.
    static const std::regex decl(
        R"(\bBitReader\s*&?\s+([A-Za-z_]\w*))");
    std::unordered_set<std::string> readers;
    for (const std::string &line : lines) {
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            decl);
             it != std::sregex_iterator(); ++it)
            readers.insert((*it)[1].str());
    }

    // Pass 2: raw read calls on those variables (or on a temporary).
    static const std::regex call(
        R"(\b([A-Za-z_]\w*)\s*\.\s*(read|readSigned)\s*\()");
    static const std::regex tempCall(
        R"(\bBitReader\s*\([^)]*\)\s*\.\s*(read|readSigned)\s*\()");
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            call);
             it != std::sregex_iterator(); ++it) {
            if (readers.count((*it)[1].str()) == 0)
                continue;
            addFinding(out, model.allow, model.relPath,
                       static_cast<int>(li) + 1, "R4",
                       "raw BitReader::" + (*it)[2].str() +
                           "() outside codec internals; decode via "
                           "ActivationCodec::tryDecode/DecodeResult");
        }
        if (std::regex_search(line, tempCall)) {
            addFinding(out, model.allow, model.relPath,
                       static_cast<int>(li) + 1, "R4",
                       "raw BitReader read on a temporary outside "
                       "codec internals; decode via "
                       "ActivationCodec::tryDecode/DecodeResult");
        }
    }
}

/* ------------------------------------------------------------------ */
/* R5: header hygiene                                                  */
/* ------------------------------------------------------------------ */

/** Canonical include-guard macro for a header path. */
std::string
expectedGuard(const std::string &rel_path)
{
    std::string p = rel_path;
    if (startsWith(p, "src/"))
        p = p.substr(4);
    std::string guard = "DIFFY_";
    for (char c : p) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        else
            guard += '_';
    }
    return guard; // e.g. common/rng.hh -> DIFFY_COMMON_RNG_HH
}

void
ruleR5(const FileModel &model, std::vector<Finding> &out)
{
    if (!endsWith(model.relPath, ".hh"))
        return;
    const std::vector<std::string> &lines = model.lines;

    static const std::regex usingNs(R"(\busing\s+namespace\b)");
    for (std::size_t li = 0; li < lines.size(); ++li) {
        if (std::regex_search(lines[li], usingNs)) {
            addFinding(out, model.allow, model.relPath,
                       static_cast<int>(li) + 1, "R5",
                       "using-directive in a header leaks into every "
                       "includer; qualify names instead");
        }
    }

    static const std::regex pragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
    static const std::regex ifndef(R"(^\s*#\s*ifndef\s+(\w+))");
    static const std::regex define(R"(^\s*#\s*define\s+(\w+))");
    const std::string want = expectedGuard(model.relPath);

    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        std::smatch m;
        if (std::regex_search(line, pragmaOnce)) {
            addFinding(out, model.allow, model.relPath,
                       static_cast<int>(li) + 1, "R5",
                       "#pragma once; the project convention is a "
                       "canonical " +
                           want + " include guard");
            return;
        }
        if (std::regex_search(line, m, ifndef)) {
            const std::string guard = m[1].str();
            bool defined = false;
            for (std::size_t dj = li + 1;
                 dj < lines.size() && dj <= li + 3; ++dj) {
                std::smatch dm;
                if (std::regex_search(lines[dj], dm, define) &&
                    dm[1].str() == guard) {
                    defined = true;
                    break;
                }
            }
            if (!defined) {
                addFinding(out, model.allow, model.relPath,
                           static_cast<int>(li) + 1, "R5",
                           "include guard #ifndef " + guard +
                               " is not followed by its #define");
            } else if (guard != want) {
                addFinding(out, model.allow, model.relPath,
                           static_cast<int>(li) + 1, "R5",
                           "include guard " + guard +
                               " does not match the canonical " + want);
            }
            return;
        }
        // Skip leading comments/blank lines; any other preprocessor
        // or code line before the guard means the guard is missing.
        std::string stripped = line;
        stripped.erase(std::remove_if(stripped.begin(), stripped.end(),
                                      [](unsigned char c) {
                                          return std::isspace(c) != 0;
                                      }),
                       stripped.end());
        if (!stripped.empty())
            break;
    }
    addFinding(out, model.allow, model.relPath, 1, "R5",
               "missing include guard; expected #ifndef " + want);
}

/* ------------------------------------------------------------------ */
/* R6: clock reads outside the observability/runtime timing layers     */
/* ------------------------------------------------------------------ */

void
ruleR6(const FileModel &model, std::vector<Finding> &out)
{
    if (startsWith(model.relPath, "src/obs/") ||
        startsWith(model.relPath, "src/runtime/"))
        return;
    static const std::regex clockNow(
        R"(\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\()");
    for (std::size_t li = 0; li < model.lines.size(); ++li) {
        auto begin = std::sregex_iterator(model.lines[li].begin(),
                                          model.lines[li].end(),
                                          clockNow);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            addFinding(out, model.allow, model.relPath,
                       static_cast<int>(li) + 1, "R6",
                       "clock read '" + it->str() +
                           ")' outside src/obs + src/runtime; time via "
                           "obs::Span / obs::ScopedLatency so timing "
                           "stays centralized");
        }
    }
}

/* ------------------------------------------------------------------ */
/* R7: a bare catch (...) must rethrow or record the failure           */
/* ------------------------------------------------------------------ */

void
ruleR7(const FileModel &model, std::vector<Finding> &out)
{
    // No path scope: the rule applies tree-wide — every layer owns
    // its errors.
    const std::vector<std::string> &lines = model.lines;
    static const std::regex bareCatch(R"(\bcatch\s*\(\s*\.\.\.\s*\))");
    // Evidence the handler did something with the failure: rethrowing
    // (throw; / rethrow_exception), capturing it for later
    // (current_exception), classifying it into the taxonomy
    // (classifyException / SweepReport / a FailureKind result), or
    // recording to an obs counter (counter(...) / .add(...)).
    static const std::regex marker(
        R"(\bthrow\b|\bcurrent_exception\b|\brethrow_exception\b|\bclassifyException\b|\bSweepReport\b|\bFailureKind\b|\bcounter\s*\(|\.\s*add\s*\()");
    for (std::size_t li = 0; li < lines.size(); ++li) {
        std::smatch m;
        if (!std::regex_search(lines[li], m, bareCatch))
            continue;
        // Collect the brace-matched handler body that follows.
        std::string body;
        int depth = 0;
        bool opened = false;
        bool closed = false;
        std::size_t col = static_cast<std::size_t>(m.position()) +
                          m.str().size();
        for (std::size_t lj = li; lj < lines.size() && !closed;
             ++lj, col = 0) {
            const std::string &cur = lines[lj];
            for (; col < cur.size(); ++col) {
                const char c = cur[col];
                if (c == '{') {
                    ++depth;
                    opened = true;
                } else if (c == '}') {
                    --depth;
                    if (opened && depth == 0) {
                        closed = true;
                        break;
                    }
                }
                if (opened)
                    body += c;
            }
            body += '\n';
        }
        if (!opened || std::regex_search(body, marker))
            continue;
        addFinding(out, model.allow, model.relPath,
                   static_cast<int>(li) + 1, "R7",
                   "bare catch (...) swallows the failure; rethrow, "
                   "capture via current_exception, classify into the "
                   "failure taxonomy (classifyException/SweepReport), "
                   "or record it to an obs counter (DESIGN.md §12)");
    }
}

/* ------------------------------------------------------------------ */
/* R8: SIMD intrinsics live only in src/common/simd*                   */
/* ------------------------------------------------------------------ */

void
ruleR8(const FileModel &model, std::vector<Finding> &out)
{
    // The dispatch layer itself is the one sanctioned home for raw
    // intrinsics (simd.hh/cc, simd_x86.hh, simd_sse4/avx2/neon.cc).
    if (startsWith(model.relPath, "src/common/simd"))
        return;
    // x86 `_mm*(...)` / `_mm256*(...)` and NEON q-register
    // `v*q_*(...)` calls; any real intrinsic use also needs the
    // vendor header, so the include pattern backstops spellings the
    // call patterns miss.
    static const std::regex intrinCall(
        R"(\b(_mm\w*|v[a-z][a-z0-9]*q_[a-z0-9_]+)\s*\()");
    static const std::regex intrinHeader(
        R"(^\s*#\s*include\s*<(?:[a-z0-9_]*intrin\.h|arm_neon\.h|arm_sve\.h)>)");
    for (std::size_t li = 0; li < model.lines.size(); ++li) {
        const std::string &line = model.lines[li];
        if (std::regex_search(line, intrinHeader)) {
            addFinding(out, model.allow, model.relPath,
                       static_cast<int>(li) + 1, "R8",
                       "vendor intrinsics header outside "
                       "src/common/simd*; add a kernel to the dispatch "
                       "table (common/simd.hh) instead");
            continue;
        }
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            intrinCall);
             it != std::sregex_iterator(); ++it) {
            addFinding(out, model.allow, model.relPath,
                       static_cast<int>(li) + 1, "R8",
                       "SIMD intrinsic '" + (*it)[1].str() +
                           "' outside src/common/simd*; add a kernel "
                           "to the dispatch table (common/simd.hh) "
                           "instead");
        }
    }
}

/* ------------------------------------------------------------------ */
/* R9: allocation discipline in hot-path loop bodies                   */
/* ------------------------------------------------------------------ */

bool
inR9Scope(const std::string &rel_path)
{
    return startsWith(rel_path, "src/sim/") ||
           startsWith(rel_path, "src/serve/") ||
           startsWith(rel_path, "src/encode/");
}

void
ruleR9(const FileModel &model, std::vector<Finding> &out)
{
    if (!inR9Scope(model.relPath))
        return;
    for (const GrowthSite &g : model.growth) {
        std::string message;
        if (g.kind == "new" || g.kind == "make_unique" ||
            g.kind == "make_shared") {
            message = "heap allocation (" +
                      (g.kind == "new" ? std::string("new")
                                       : "make_" + g.what) +
                      ") inside a hot-path loop body; allocate the "
                      "buffer once outside the loop and reuse it "
                      "(zero-allocation steady state, ROADMAP item 5)";
        } else if (g.kind == "push_back" || g.kind == "emplace_back") {
            // The pre-sized-append pattern is sanctioned: growth into
            // capacity reserved at loop depth 0 never reallocates.
            // Arena-backed containers (constructed with a
            // scratchAlloc() allocator) are sanctioned too: their
            // growth bumps the frame arena, which rewind() recycles.
            if (model.presized.count(g.what) > 0 ||
                model.arenaBacked.count(g.what) > 0)
                continue;
            message = "'" + g.what + "." + g.kind +
                      "' inside a loop without a loop-external "
                      "reserve()/resize() of '" + g.what +
                      "'; pre-size the container outside the loop so "
                      "iterations never reallocate";
        } else if (g.kind == "resize" || g.kind == "reserve") {
            if (model.arenaBacked.count(g.what) > 0)
                continue;
            message = "'" + g.what + "." + g.kind +
                      "' inside a loop body reallocates per "
                      "iteration; hoist the sizing out of the loop "
                      "and reuse the buffer";
        } else if (g.kind == "string") {
            message = "std::string '" + g.what +
                      "' built inside a loop body allocates per "
                      "iteration; hoist the buffer out of the loop "
                      "or assemble strings at stat/report level";
        } else if (g.kind == "to_string") {
            message = "std::to_string inside a loop body allocates "
                      "per iteration; format at stat/report assembly "
                      "instead";
        } else if (g.kind == "ostringstream") {
            message = "stringstream '" + g.what +
                      "' built inside a loop body allocates per "
                      "iteration; hoist it out of the loop and "
                      "str(\"\")-reset, or format at report level";
        } else {
            continue;
        }
        addFinding(out, model.allow, model.relPath, g.line, "R9",
                   std::move(message));
    }
}

/* ------------------------------------------------------------------ */
/* R10: lock discipline                                                */
/* ------------------------------------------------------------------ */

bool
inR10Scope(const std::string &rel_path)
{
    return startsWith(rel_path, "src/runtime/") ||
           startsWith(rel_path, "src/serve/") ||
           startsWith(rel_path, "src/core/trace_cache");
}

void
ruleR10Blocking(const FileModel &model, std::vector<Finding> &out)
{
    if (!inR10Scope(model.relPath))
        return;
    for (const BlockingSite &b : model.blocking) {
        addFinding(out, model.allow, model.relPath, b.line, "R10",
                   "blocking call '" + b.call +
                       "' while holding lock '" + b.heldMutex +
                       "'; drop the lock first (unlock(), or narrow "
                       "the guard scope) so waiters are never stalled "
                       "behind I/O or sleeps");
    }
}

/**
 * Merge every in-scope file's lock-order edges into one graph and
 * report each cycle (potential deadlock) once, at its
 * lexicographically first edge site.
 */
void
analyzeLockOrder(const std::vector<FileModel> &models,
                 std::vector<Finding> &out)
{
    struct Site
    {
        std::string file;
        int line = 0;
    };
    // Edge (held -> acquired) -> first site, deterministically: the
    // models arrive sorted by path and edges by line.
    std::map<std::pair<std::string, std::string>, Site> edges;
    std::map<std::string, const Suppressions *> allowByFile;
    for (const FileModel &m : models) {
        if (!inR10Scope(m.relPath))
            continue;
        allowByFile[m.relPath] = &m.allow;
        for (const LockOrderEdge &e : m.lockEdges) {
            auto key = std::make_pair(e.held, e.acquired);
            if (edges.find(key) == edges.end())
                edges[key] = Site{m.relPath, e.line};
        }
    }

    // Adjacency over normalized mutex names.
    std::map<std::string, std::vector<std::string>> graph;
    for (const auto &[key, site] : edges)
        graph[key.first].push_back(key.second);

    // DFS cycle extraction with a canonical form so each cycle is
    // reported exactly once regardless of entry point.
    std::set<std::string> reportedCycles;
    std::vector<std::string> stack;
    std::set<std::string> onStack;
    std::set<std::string> done;

    auto reportCycle = [&](const std::vector<std::string> &cycle) {
        // Canonicalize: rotate so the smallest mutex name leads.
        std::size_t lead = 0;
        for (std::size_t i = 1; i < cycle.size(); ++i)
            if (cycle[i] < cycle[lead])
                lead = i;
        std::vector<std::string> canon;
        for (std::size_t i = 0; i < cycle.size(); ++i)
            canon.push_back(cycle[(lead + i) % cycle.size()]);
        std::string key;
        for (const std::string &n : canon)
            key += n + ">";
        if (!reportedCycles.insert(key).second)
            return;

        std::string chain;
        std::vector<Site> sites;
        for (std::size_t i = 0; i < canon.size(); ++i) {
            const std::string &from = canon[i];
            const std::string &to = canon[(i + 1) % canon.size()];
            const Site &s = edges.at({from, to});
            sites.push_back(s);
            chain += from + " -> " + to + " (" + s.file + ":" +
                     std::to_string(s.line) + ")";
            if (i + 1 < canon.size())
                chain += ", ";
        }
        // Anchor at the lexicographically first participating site.
        const Site *anchor = &sites.front();
        for (const Site &s : sites)
            if (s.file < anchor->file ||
                (s.file == anchor->file && s.line < anchor->line))
                anchor = &s;
        const Suppressions *allow = allowByFile.count(anchor->file)
                                        ? allowByFile[anchor->file]
                                        : nullptr;
        if (allow != nullptr &&
            allow->covers(anchor->line, "R10"))
            return;
        out.push_back(Finding{
            anchor->file, anchor->line, "R10",
            "lock-order inversion (potential deadlock): " + chain +
                "; pick one global acquisition order and stick to "
                "it"});
    };

    std::function<void(const std::string &)> dfs =
        [&](const std::string &node) {
            stack.push_back(node);
            onStack.insert(node);
            auto it = graph.find(node);
            if (it != graph.end()) {
                for (const std::string &next : it->second) {
                    if (onStack.count(next)) {
                        // Extract the cycle node..next from the stack.
                        std::vector<std::string> cycle;
                        bool in = false;
                        for (const std::string &n : stack) {
                            if (n == next)
                                in = true;
                            if (in)
                                cycle.push_back(n);
                        }
                        reportCycle(cycle);
                    } else if (!done.count(next)) {
                        dfs(next);
                    }
                }
            }
            onStack.erase(node);
            stack.pop_back();
            done.insert(node);
        };
    for (const auto &[node, targets] : graph) {
        (void)targets;
        if (!done.count(node))
            dfs(node);
    }
}

/* ------------------------------------------------------------------ */
/* L1: include-graph layering                                          */
/* ------------------------------------------------------------------ */

/** Top-level src/ layer of a model, or "" when not under src/. */
std::string
layerOf(const std::string &rel_path)
{
    if (!startsWith(rel_path, "src/"))
        return "";
    const std::string rest = rel_path.substr(4);
    const std::string::size_type slash = rest.find('/');
    if (slash == std::string::npos)
        return "";
    return rest.substr(0, slash);
}

void
analyzeLayering(const std::vector<FileModel> &models,
                const LayerSpec &spec, bool full_src_scan,
                std::vector<Finding> &out)
{
    for (const auto &[line, message] : spec.errors)
        out.push_back(Finding{spec.relPath, line, "L1", message});

    std::set<std::string> declaredLayers;
    std::map<std::string, int> declLine;
    std::set<std::pair<std::string, std::string>> declaredEdges;
    for (const LayerSpec::Decl &d : spec.decls) {
        declaredLayers.insert(d.layer);
        declLine[d.layer] = d.line;
        for (const std::string &dep : d.deps)
            declaredEdges.insert({d.layer, dep});
    }
    for (const LayerSpec::Decl &d : spec.decls) {
        for (const std::string &dep : d.deps) {
            if (declaredLayers.count(dep) == 0)
                out.push_back(Finding{
                    spec.relPath, d.line, "L1",
                    "layer '" + d.layer + "' depends on '" + dep +
                        "', which is not itself declared as a "
                        "layer"});
        }
    }

    struct Site
    {
        std::string file;
        int line = 0;
    };
    std::set<std::string> seenLayers;
    std::map<std::string, Site> layerFirstFile;
    for (const FileModel &m : models) {
        const std::string layer = layerOf(m.relPath);
        if (layer.empty())
            continue;
        if (seenLayers.insert(layer).second)
            layerFirstFile[layer] = Site{m.relPath, 1};
    }

    // An include target is a layer edge when its first path component
    // names a known layer (declared or seen): `common/bitops.hh` from
    // src/sim is sim -> common; `lint.hh` (no slash) is same-dir.
    std::map<std::pair<std::string, std::string>, Site> actualEdges;
    std::map<std::string, const Suppressions *> allowByFile;
    for (const FileModel &m : models) {
        const std::string fromLayer = layerOf(m.relPath);
        if (fromLayer.empty())
            continue;
        allowByFile[m.relPath] = &m.allow;
        for (const IncludeSite &inc : m.includes) {
            const std::string::size_type slash = inc.target.find('/');
            if (slash == std::string::npos)
                continue;
            const std::string toLayer = inc.target.substr(0, slash);
            if (toLayer == fromLayer)
                continue;
            if (declaredLayers.count(toLayer) == 0 &&
                seenLayers.count(toLayer) == 0)
                continue;
            auto key = std::make_pair(fromLayer, toLayer);
            if (actualEdges.find(key) == actualEdges.end())
                actualEdges[key] = Site{m.relPath, inc.line};
        }
    }

    // Every layer present in the tree must be declared.
    for (const std::string &layer : seenLayers) {
        if (declaredLayers.count(layer) == 0) {
            const Site &s = layerFirstFile[layer];
            out.push_back(Finding{
                s.file, s.line, "L1",
                "src/" + layer + " is not declared in " +
                    spec.relPath +
                    "; add a 'layer: deps...' line placing it in "
                    "the DAG"});
        }
    }

    // Undeclared actual edges.
    for (const auto &[edge, site] : actualEdges) {
        if (declaredEdges.count(edge) > 0)
            continue;
        const Suppressions *allow = allowByFile.count(site.file)
                                        ? allowByFile[site.file]
                                        : nullptr;
        if (allow != nullptr && allow->covers(site.line, "L1"))
            continue;
        out.push_back(Finding{
            site.file, site.line, "L1",
            "include edge '" + edge.first + " -> " + edge.second +
                "' is not declared in " + spec.relPath +
                "; either this include breaks the layering or the "
                "DAG needs the new edge (declare it explicitly)"});
    }

    // Declared edges with no include behind them (full scans only: a
    // partial scan simply may not have read the including file).
    if (full_src_scan) {
        for (const auto &edge : declaredEdges) {
            if (actualEdges.count(edge) > 0)
                continue;
            out.push_back(Finding{
                spec.relPath, declLine[edge.first], "L1",
                "declared edge '" + edge.first + " -> " + edge.second +
                    "' has no #include behind it; remove it from the "
                    "DAG (declared edges are a contract, not a "
                    "wishlist)"});
        }
    }

    // Cycles in the ACTUAL graph (the declared DAG may also contain
    // cycles; those surface here too once the edges exist, and the
    // spec's own cycles are caught by the fixture tests).
    std::map<std::string, std::vector<std::string>> graph;
    for (const auto &[edge, site] : actualEdges) {
        (void)site;
        graph[edge.first].push_back(edge.second);
    }
    std::set<std::string> reported;
    std::vector<std::string> stack;
    std::set<std::string> onStack;
    std::set<std::string> done;
    std::function<void(const std::string &)> dfs =
        [&](const std::string &node) {
            stack.push_back(node);
            onStack.insert(node);
            auto it = graph.find(node);
            if (it != graph.end()) {
                for (const std::string &next : it->second) {
                    if (onStack.count(next)) {
                        std::vector<std::string> cycle;
                        bool in = false;
                        for (const std::string &n : stack) {
                            if (n == next)
                                in = true;
                            if (in)
                                cycle.push_back(n);
                        }
                        std::size_t lead = 0;
                        for (std::size_t i = 1; i < cycle.size(); ++i)
                            if (cycle[i] < cycle[lead])
                                lead = i;
                        std::rotate(cycle.begin(),
                                    cycle.begin() +
                                        static_cast<std::ptrdiff_t>(
                                            lead),
                                    cycle.end());
                        std::string key;
                        std::string chain;
                        for (const std::string &n : cycle) {
                            key += n + ">";
                            chain += n + " -> ";
                        }
                        chain += cycle.front();
                        if (reported.insert(key).second) {
                            const Site &s = actualEdges.at(
                                {cycle.front(),
                                 cycle[1 % cycle.size()]});
                            out.push_back(Finding{
                                s.file, s.line, "L1",
                                "include cycle between src/ layers: " +
                                    chain +
                                    "; break the cycle (extract the "
                                    "shared piece downward)"});
                        }
                    } else if (!done.count(next)) {
                        dfs(next);
                    }
                }
            }
            onStack.erase(node);
            stack.pop_back();
            done.insert(node);
        };
    for (const auto &[node, targets] : graph) {
        (void)targets;
        if (!done.count(node))
            dfs(node);
    }
}

} // namespace

/* ------------------------------------------------------------------ */
/* Public entry points                                                 */
/* ------------------------------------------------------------------ */

LayerSpec
parseLayerSpec(const std::string &rel_path,
               const std::string &contents)
{
    LayerSpec spec;
    spec.relPath = rel_path;
    const std::vector<std::string> lines = splitLines(contents);
    for (std::size_t li = 0; li < lines.size(); ++li) {
        std::string line = lines[li];
        const std::string::size_type hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        bool blank = true;
        for (char c : line)
            if (!std::isspace(static_cast<unsigned char>(c)))
                blank = false;
        if (blank)
            continue;
        const std::string::size_type colon = line.find(':');
        if (colon == std::string::npos) {
            spec.errors.push_back(
                {static_cast<int>(li) + 1,
                 "malformed layer line (expected 'layer: dep "
                 "dep ...'): " +
                     line});
            continue;
        }
        LayerSpec::Decl decl;
        decl.line = static_cast<int>(li) + 1;
        std::istringstream name(line.substr(0, colon));
        name >> decl.layer;
        std::string extra;
        if (decl.layer.empty() || (name >> extra)) {
            spec.errors.push_back(
                {static_cast<int>(li) + 1,
                 "malformed layer name before ':': " + line});
            continue;
        }
        std::istringstream deps(line.substr(colon + 1));
        std::string dep;
        while (deps >> dep)
            decl.deps.push_back(dep);
        spec.decls.push_back(std::move(decl));
    }
    return spec;
}

void
runFileAnalyses(const FileModel &model, std::vector<Finding> &out)
{
    ruleR1(model, out);
    ruleR2(model, out);
    ruleR3(model, out);
    ruleR4(model, out);
    ruleR5(model, out);
    ruleR6(model, out);
    ruleR7(model, out);
    ruleR8(model, out);
    ruleR9(model, out);
    ruleR10Blocking(model, out);
}

void
runTreeAnalyses(const std::vector<FileModel> &models,
                const LayerSpec *spec, bool full_src_scan,
                std::vector<Finding> &out)
{
    analyzeLockOrder(models, out);
    if (spec != nullptr)
        analyzeLayering(models, *spec, full_src_scan, out);
}

} // namespace diffy::lint
