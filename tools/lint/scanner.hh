/**
 * @file
 * diffy-lint pass-1 scanner utilities: literal/comment stripping
 * (including raw strings), line splitting, the suppression parser and
 * the loop-depth tracker. These are the lexical primitives the file
 * model (model.hh) and every analysis (analyses.hh) are built on —
 * they know nothing about rules or paths.
 */

#ifndef DIFFY_TOOLS_LINT_SCANNER_HH
#define DIFFY_TOOLS_LINT_SCANNER_HH

#include <map>
#include <set>
#include <string>
#include <vector>

namespace diffy::lint
{

/**
 * Replace the contents of comments and string/char literals with
 * spaces, preserving the line structure and the column of every
 * surviving token. Rule patterns quoted in prose (or in this linter's
 * own pattern strings) therefore never fire. Escapes inside literals
 * are honoured, and raw string literals (`R"delim(...)delim"`, with
 * any of the u8/u/U/L encoding prefixes) are blanked as a unit — an
 * unescaped `"` inside a raw string body does not leak the remainder
 * of the literal into "code".
 */
std::string sanitize(const std::string &text);

/** Split @p text into lines ('\n' separated, no terminators kept). */
std::vector<std::string> splitLines(const std::string &text);

bool startsWith(const std::string &s, const std::string &prefix);
bool endsWith(const std::string &s, const std::string &suffix);

/**
 * Per-line suppression sets parsed from the RAW source (suppressions
 * live in comments, which the sanitizer strips).
 *
 * The window is exactly two lines: `// diffy-lint: allow(Rn)` on line
 * N covers findings on lines N and N+1 and nothing else — a trailing
 * comment suppresses its own statement, a pure comment line
 * suppresses the statement directly below it, and a blank line in
 * between voids the suppression. Multiple rules may share one marker
 * (`allow(R9,R10)`), and multiple `allow(...)` markers on the same
 * line all apply.
 */
class Suppressions
{
  public:
    Suppressions() = default;
    explicit Suppressions(const std::vector<std::string> &raw_lines);

    bool covers(int line, const std::string &rule) const;

  private:
    std::map<int, std::set<std::string>> byLine_;
};

/**
 * Tracks how many loop bodies enclose each column of each sanitized
 * line. A small character machine: `for`/`while` headers are located
 * per line by regex, the machine then follows the header's
 * parenthesis span and binds the following `{` to a loop scope (or,
 * for a braceless body, keeps a virtual scope open until the
 * terminating `;`). Known limit: a braceless loop whose body spans
 * multiple physical lines only deepens its own line — the project
 * style braces every multi-line body, and rule R1 additionally
 * requires two enclosing loops to fire, so outer braced nests carry
 * the depth in practice. Feed lines strictly in order.
 */
class LoopTracker
{
  public:
    /** Effective loop depth for every column of @p line (size+1). */
    std::vector<int> depths(const std::string &line);

  private:
    int braceDepth_ = 0;
    std::vector<int> loopStack_;
    int headerDepth_ = 0;
    bool awaitingBody_ = false;
    int bracelessBodies_ = 0;
};

} // namespace diffy::lint

#endif // DIFFY_TOOLS_LINT_SCANNER_HH
