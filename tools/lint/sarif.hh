/**
 * @file
 * SARIF 2.1.0 output for diffy-lint, the interchange format GitHub
 * code scanning consumes to annotate PRs. One run, one driver
 * ("diffy-lint"), the full rule catalogue as reportingDescriptors,
 * one result per finding with a physicalLocation region. Baselined
 * findings are included with a `suppressions` entry (kind
 * "external"), so code scanning shows them as suppressed instead of
 * annotating them — the burn-down list stays visible without failing
 * the gate.
 */

#ifndef DIFFY_TOOLS_LINT_SARIF_HH
#define DIFFY_TOOLS_LINT_SARIF_HH

#include <string>
#include <vector>

#include "lint.hh"

namespace diffy::lint
{

/** The complete SARIF document as a JSON string (trailing newline). */
std::string sarifJson(const std::vector<Finding> &fresh,
                      const std::vector<Finding> &baselined);

/** JSON string-escape (quotes, backslashes, control chars). */
std::string jsonEscape(const std::string &text);

} // namespace diffy::lint

#endif // DIFFY_TOOLS_LINT_SARIF_HH
