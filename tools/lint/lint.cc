#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace diffy::lint
{

namespace
{

namespace fs = std::filesystem;

/* ------------------------------------------------------------------ */
/* Source preprocessing                                                */
/* ------------------------------------------------------------------ */

/**
 * Replace the contents of comments and string/char literals with
 * spaces, preserving the line structure and the column of every
 * surviving token. Rule patterns quoted in prose (or in this linter's
 * own pattern strings) therefore never fire. Escapes inside literals
 * are honoured; raw strings are not parsed specially (the project
 * style does not use them).
 */
std::string
sanitize(const std::string &text)
{
    enum class State
    {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
    };
    std::string out(text);
    State state = State::Code;
    for (std::size_t i = 0; i < text.size(); ++i) {
        const char c = text[i];
        const char next = i + 1 < text.size() ? text[i + 1] : '\0';
        switch (state) {
          case State::Code:
            if (c == '/' && next == '/') {
                state = State::LineComment;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '/' && next == '*') {
                state = State::BlockComment;
                out[i] = out[i + 1] = ' ';
                ++i;
            } else if (c == '"') {
                state = State::String;
            } else if (c == '\'') {
                state = State::Char;
            }
            break;
          case State::LineComment:
            if (c == '\n')
                state = State::Code;
            else
                out[i] = ' ';
            break;
          case State::BlockComment:
            if (c == '*' && next == '/') {
                out[i] = out[i + 1] = ' ';
                state = State::Code;
                ++i;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
          case State::String:
          case State::Char:
            if (c == '\\' && next != '\0' && next != '\n') {
                out[i] = ' ';
                out[i + 1] = ' ';
                ++i;
            } else if ((state == State::String && c == '"') ||
                       (state == State::Char && c == '\'')) {
                state = State::Code;
            } else if (c != '\n') {
                out[i] = ' ';
            }
            break;
        }
    }
    return out;
}

std::vector<std::string>
splitLines(const std::string &text)
{
    std::vector<std::string> lines;
    std::string::size_type start = 0;
    while (start <= text.size()) {
        std::string::size_type end = text.find('\n', start);
        if (end == std::string::npos) {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return lines;
}

bool
startsWith(const std::string &s, const std::string &prefix)
{
    return s.rfind(prefix, 0) == 0;
}

bool
endsWith(const std::string &s, const std::string &suffix)
{
    return s.size() >= suffix.size() &&
           s.compare(s.size() - suffix.size(), suffix.size(), suffix) ==
               0;
}

/* ------------------------------------------------------------------ */
/* Suppressions                                                        */
/* ------------------------------------------------------------------ */

/**
 * Per-line suppression sets parsed from the RAW source (suppressions
 * live in comments, which the sanitizer strips). A suppression on
 * line N covers findings on lines N and N+1.
 */
class Suppressions
{
  public:
    explicit Suppressions(const std::vector<std::string> &raw_lines)
    {
        static const std::regex pattern(
            R"(diffy-lint:\s*allow\(([^)]*)\))");
        for (std::size_t i = 0; i < raw_lines.size(); ++i) {
            std::smatch m;
            if (!std::regex_search(raw_lines[i], m, pattern))
                continue;
            std::string ids = m[1].str();
            std::string id;
            std::istringstream is(ids);
            while (std::getline(is, id, ',')) {
                id.erase(std::remove_if(id.begin(), id.end(),
                                        [](unsigned char ch) {
                                            return std::isspace(ch) !=
                                                   0;
                                        }),
                         id.end());
                if (id.empty())
                    continue;
                byLine_[static_cast<int>(i) + 1].insert(id);
                byLine_[static_cast<int>(i) + 2].insert(id);
            }
        }
    }

    bool covers(int line, const std::string &rule) const
    {
        auto it = byLine_.find(line);
        return it != byLine_.end() && it->second.count(rule) > 0;
    }

  private:
    std::map<int, std::set<std::string>> byLine_;
};

/* ------------------------------------------------------------------ */
/* Loop-depth tracking (rule R1)                                       */
/* ------------------------------------------------------------------ */

/**
 * Tracks how many loop bodies enclose each column of each sanitized
 * line. A small character machine: `for`/`while` headers are located
 * per line by regex, the machine then follows the header's
 * parenthesis span and binds the following `{` to a loop scope (or,
 * for a braceless body, keeps a virtual scope open until the
 * terminating `;`). Known limit: a braceless loop whose body spans
 * multiple physical lines only deepens its own line — the project
 * style braces every multi-line body, and rule R1 additionally
 * requires two enclosing loops to fire, so outer braced nests carry
 * the depth in practice.
 */
class LoopTracker
{
  public:
    /** Effective loop depth for every column of @p line. */
    std::vector<int> depths(const std::string &line)
    {
        static const std::regex header(R"(\b(?:for|while)\s*\()");
        std::vector<std::size_t> headerParens;
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            header);
             it != std::sregex_iterator(); ++it) {
            headerParens.push_back(
                static_cast<std::size_t>(it->position()) +
                it->str().size() - 1);
        }
        std::size_t nextHeader = 0;

        std::vector<int> depth(line.size() + 1, 0);
        for (std::size_t i = 0; i <= line.size(); ++i) {
            depth[i] = static_cast<int>(loopStack_.size()) +
                       bracelessBodies_;
            if (i == line.size())
                break;
            const char c = line[i];
            if (headerDepth_ == 0 && nextHeader < headerParens.size() &&
                i == headerParens[nextHeader]) {
                // The '(' opening a for/while header.
                ++nextHeader;
                headerDepth_ = 1;
                awaitingBody_ = false;
                continue;
            }
            if (headerDepth_ > 0) {
                if (c == '(')
                    ++headerDepth_;
                else if (c == ')') {
                    --headerDepth_;
                    if (headerDepth_ == 0)
                        awaitingBody_ = true;
                }
                continue;
            }
            if (awaitingBody_) {
                if (std::isspace(static_cast<unsigned char>(c)))
                    continue;
                awaitingBody_ = false;
                if (c == '{') {
                    ++braceDepth_;
                    loopStack_.push_back(braceDepth_);
                    continue;
                }
                // Braceless body: one virtual scope until ';'.
                ++bracelessBodies_;
                // fall through to classify c normally
            }
            if (c == '{') {
                ++braceDepth_;
            } else if (c == '}') {
                if (!loopStack_.empty() &&
                    loopStack_.back() == braceDepth_)
                    loopStack_.pop_back();
                --braceDepth_;
            } else if (c == ';' && bracelessBodies_ > 0 &&
                       headerDepth_ == 0) {
                bracelessBodies_ = 0;
            }
        }
        return depth;
    }

  private:
    int braceDepth_ = 0;
    std::vector<int> loopStack_;
    int headerDepth_ = 0;
    bool awaitingBody_ = false;
    int bracelessBodies_ = 0;
};

/* ------------------------------------------------------------------ */
/* Individual rules                                                    */
/* ------------------------------------------------------------------ */

void
addFinding(std::vector<Finding> &out, const Suppressions &allow,
           const std::string &file, int line, const char *rule,
           std::string message)
{
    if (allow.covers(line, rule))
        return;
    out.push_back(Finding{file, line, rule, std::move(message)});
}

/** R1: float/double accumulation in src/sim loop nests (depth >= 2). */
void
ruleR1(const std::string &rel_path,
       const std::vector<std::string> &lines, const Suppressions &allow,
       std::vector<Finding> &out)
{
    if (!startsWith(rel_path, "src/sim/"))
        return;

    // Single sequential pass: the set of identifiers currently known
    // to be float/double evolves as declarations go by, so an integer
    // re-declaration (`std::int64_t cycles` after a `double cycles`
    // struct member) takes over — within a function, declaration
    // precedes use, so "latest declaration wins" is the right
    // resolution for a file-scoped heuristic.
    static const std::regex decl(
        R"(\b(?:float|double)\s+([A-Za-z_]\w*))");
    static const std::regex vecDecl(
        R"(\bvector\s*<\s*(?:float|double)\s*>\s+([A-Za-z_]\w*))");
    static const std::regex intDecl(
        R"(\b(?:(?:std::)?u?int(?:8|16|32|64)_t|(?:std::)?size_t|(?:std::)?ptrdiff_t|int|long|short|unsigned)\s+([A-Za-z_]\w*))");
    static const std::regex intVecDecl(
        R"(\bvector\s*<\s*[^<>]*\bu?int[^<>]*>\s+([A-Za-z_]\w*))");
    static const std::regex accum(
        R"(([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?\s*\+=)");
    std::unordered_set<std::string> floatIdents;
    LoopTracker tracker;
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            decl);
             it != std::sregex_iterator(); ++it) {
            // Skip function declarations: `double foo(...)`.
            std::size_t after =
                static_cast<std::size_t>(it->position()) +
                it->str().size();
            while (after < line.size() &&
                   std::isspace(
                       static_cast<unsigned char>(line[after])))
                ++after;
            if (after < line.size() && line[after] == '(')
                continue;
            floatIdents.insert((*it)[1].str());
        }
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            vecDecl);
             it != std::sregex_iterator(); ++it)
            floatIdents.insert((*it)[1].str());
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            intDecl);
             it != std::sregex_iterator(); ++it)
            floatIdents.erase((*it)[1].str());
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            intVecDecl);
             it != std::sregex_iterator(); ++it)
            floatIdents.erase((*it)[1].str());

        std::vector<int> depth = tracker.depths(line);
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            accum);
             it != std::sregex_iterator(); ++it) {
            const std::string ident = (*it)[1].str();
            if (floatIdents.count(ident) == 0)
                continue;
            const auto col = static_cast<std::size_t>(it->position());
            if (depth[col] < 2)
                continue;
            addFinding(out, allow, rel_path,
                       static_cast<int>(li) + 1, "R1",
                       "float/double tally '" + ident +
                           "' accumulated inside a sim loop nest; "
                           "tally in an integer and convert at stat "
                           "assembly (determinism contract)");
        }
    }
}

/** R2: thread_local memo caches must register a clear hook. */
void
ruleR2(const std::string &rel_path,
       const std::vector<std::string> &lines, const Suppressions &allow,
       std::vector<Finding> &out)
{
    if (rel_path == "src/common/cache_registry.hh" ||
        rel_path == "src/common/cache_registry.cc")
        return;
    static const std::regex tl(R"(\bthread_local\b)");
    static const std::regex reg(R"(\bDIFFY_REGISTER_THREAD_CACHE\s*\()");
    bool registers = false;
    for (const std::string &line : lines) {
        if (std::regex_search(line, reg)) {
            registers = true;
            break;
        }
    }
    if (registers)
        return;
    for (std::size_t li = 0; li < lines.size(); ++li) {
        if (std::regex_search(lines[li], tl)) {
            addFinding(out, allow, rel_path, static_cast<int>(li) + 1,
                       "R2",
                       "thread_local cache without a registered clear "
                       "hook; add DIFFY_REGISTER_THREAD_CACHE in this "
                       "file (common/cache_registry.hh)");
        }
    }
}

/** R3: RNG construction outside src/common/rng. */
void
ruleR3(const std::string &rel_path,
       const std::vector<std::string> &lines, const Suppressions &allow,
       std::vector<Finding> &out)
{
    if (startsWith(rel_path, "src/common/rng."))
        return;
    static const std::regex rng(
        R"(\bmt19937(?:_64)?\b|\brandom_device\b|\bsrand\s*\(|\brand\s*\()");
    for (std::size_t li = 0; li < lines.size(); ++li) {
        auto begin = std::sregex_iterator(lines[li].begin(),
                                          lines[li].end(), rng);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            addFinding(out, allow, rel_path, static_cast<int>(li) + 1,
                       "R3",
                       "RNG construction '" + it->str() +
                           "' outside src/common/rng; use the seeded "
                           "Rng (splitmix64/xoshiro) streams");
        }
    }
}

/** R4: raw BitReader::read* decode calls outside src/encode. */
void
ruleR4(const std::string &rel_path,
       const std::vector<std::string> &lines, const Suppressions &allow,
       std::vector<Finding> &out)
{
    if (startsWith(rel_path, "src/encode/"))
        return;

    // Pass 1: variables declared (or bound) as BitReader.
    static const std::regex decl(
        R"(\bBitReader\s*&?\s+([A-Za-z_]\w*))");
    std::unordered_set<std::string> readers;
    for (const std::string &line : lines) {
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            decl);
             it != std::sregex_iterator(); ++it)
            readers.insert((*it)[1].str());
    }

    // Pass 2: raw read calls on those variables (or on a temporary).
    static const std::regex call(
        R"(\b([A-Za-z_]\w*)\s*\.\s*(read|readSigned)\s*\()");
    static const std::regex tempCall(
        R"(\bBitReader\s*\([^)]*\)\s*\.\s*(read|readSigned)\s*\()");
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            call);
             it != std::sregex_iterator(); ++it) {
            if (readers.count((*it)[1].str()) == 0)
                continue;
            addFinding(out, allow, rel_path, static_cast<int>(li) + 1,
                       "R4",
                       "raw BitReader::" + (*it)[2].str() +
                           "() outside codec internals; decode via "
                           "ActivationCodec::tryDecode/DecodeResult");
        }
        if (std::regex_search(line, tempCall)) {
            addFinding(out, allow, rel_path, static_cast<int>(li) + 1,
                       "R4",
                       "raw BitReader read on a temporary outside "
                       "codec internals; decode via "
                       "ActivationCodec::tryDecode/DecodeResult");
        }
    }
}

/** Canonical include-guard macro for a header path. */
std::string
expectedGuard(const std::string &rel_path)
{
    std::string p = rel_path;
    if (startsWith(p, "src/"))
        p = p.substr(4);
    std::string guard = "DIFFY_";
    for (char c : p) {
        if (std::isalnum(static_cast<unsigned char>(c)))
            guard += static_cast<char>(
                std::toupper(static_cast<unsigned char>(c)));
        else
            guard += '_';
    }
    return guard; // e.g. common/rng.hh -> DIFFY_COMMON_RNG_HH
}

/** R5: header hygiene (using-directives, canonical include guards). */
void
ruleR5(const std::string &rel_path,
       const std::vector<std::string> &lines, const Suppressions &allow,
       std::vector<Finding> &out)
{
    if (!endsWith(rel_path, ".hh"))
        return;

    static const std::regex usingNs(R"(\busing\s+namespace\b)");
    for (std::size_t li = 0; li < lines.size(); ++li) {
        if (std::regex_search(lines[li], usingNs)) {
            addFinding(out, allow, rel_path, static_cast<int>(li) + 1,
                       "R5",
                       "using-directive in a header leaks into every "
                       "includer; qualify names instead");
        }
    }

    static const std::regex pragmaOnce(R"(^\s*#\s*pragma\s+once\b)");
    static const std::regex ifndef(R"(^\s*#\s*ifndef\s+(\w+))");
    static const std::regex define(R"(^\s*#\s*define\s+(\w+))");
    const std::string want = expectedGuard(rel_path);

    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        std::smatch m;
        if (std::regex_search(line, pragmaOnce)) {
            addFinding(out, allow, rel_path, static_cast<int>(li) + 1,
                       "R5",
                       "#pragma once; the project convention is a "
                       "canonical " +
                           want + " include guard");
            return;
        }
        if (std::regex_search(line, m, ifndef)) {
            const std::string guard = m[1].str();
            bool defined = false;
            for (std::size_t dj = li + 1;
                 dj < lines.size() && dj <= li + 3; ++dj) {
                std::smatch dm;
                if (std::regex_search(lines[dj], dm, define) &&
                    dm[1].str() == guard) {
                    defined = true;
                    break;
                }
            }
            if (!defined) {
                addFinding(out, allow, rel_path,
                           static_cast<int>(li) + 1, "R5",
                           "include guard #ifndef " + guard +
                               " is not followed by its #define");
            } else if (guard != want) {
                addFinding(out, allow, rel_path,
                           static_cast<int>(li) + 1, "R5",
                           "include guard " + guard +
                               " does not match the canonical " + want);
            }
            return;
        }
        // Skip leading comments/blank lines; any other preprocessor
        // or code line before the guard means the guard is missing.
        std::string stripped = line;
        stripped.erase(std::remove_if(stripped.begin(), stripped.end(),
                                      [](unsigned char c) {
                                          return std::isspace(c) != 0;
                                      }),
                       stripped.end());
        if (!stripped.empty())
            break;
    }
    addFinding(out, allow, rel_path, 1, "R5",
               "missing include guard; expected #ifndef " + want);
}

/** R6: clock reads outside the observability/runtime timing layers. */
void
ruleR6(const std::string &rel_path,
       const std::vector<std::string> &lines, const Suppressions &allow,
       std::vector<Finding> &out)
{
    if (startsWith(rel_path, "src/obs/") ||
        startsWith(rel_path, "src/runtime/"))
        return;
    static const std::regex clockNow(
        R"(\b(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\()");
    for (std::size_t li = 0; li < lines.size(); ++li) {
        auto begin = std::sregex_iterator(lines[li].begin(),
                                          lines[li].end(), clockNow);
        for (auto it = begin; it != std::sregex_iterator(); ++it) {
            addFinding(out, allow, rel_path, static_cast<int>(li) + 1,
                       "R6",
                       "clock read '" + it->str() +
                           ")' outside src/obs + src/runtime; time via "
                           "obs::Span / obs::ScopedLatency so timing "
                           "stays centralized");
        }
    }
}

/** R7: a bare catch (...) must rethrow or record the failure. */
void
ruleR7(const std::string &rel_path,
       const std::vector<std::string> &lines, const Suppressions &allow,
       std::vector<Finding> &out)
{
    // No path scope: the rule applies tree-wide — every layer owns
    // its errors.
    static const std::regex bareCatch(R"(\bcatch\s*\(\s*\.\.\.\s*\))");
    // Evidence the handler did something with the failure: rethrowing
    // (throw; / rethrow_exception), capturing it for later
    // (current_exception), classifying it into the taxonomy
    // (classifyException / SweepReport / a FailureKind result), or
    // recording to an obs counter (counter(...) / .add(...)).
    static const std::regex marker(
        R"(\bthrow\b|\bcurrent_exception\b|\brethrow_exception\b|\bclassifyException\b|\bSweepReport\b|\bFailureKind\b|\bcounter\s*\(|\.\s*add\s*\()");
    for (std::size_t li = 0; li < lines.size(); ++li) {
        std::smatch m;
        if (!std::regex_search(lines[li], m, bareCatch))
            continue;
        // Collect the brace-matched handler body that follows.
        std::string body;
        int depth = 0;
        bool opened = false;
        bool closed = false;
        std::size_t col = static_cast<std::size_t>(m.position()) +
                          m.str().size();
        for (std::size_t lj = li; lj < lines.size() && !closed;
             ++lj, col = 0) {
            const std::string &cur = lines[lj];
            for (; col < cur.size(); ++col) {
                const char c = cur[col];
                if (c == '{') {
                    ++depth;
                    opened = true;
                } else if (c == '}') {
                    --depth;
                    if (opened && depth == 0) {
                        closed = true;
                        break;
                    }
                }
                if (opened)
                    body += c;
            }
            body += '\n';
        }
        if (!opened || std::regex_search(body, marker))
            continue;
        addFinding(out, allow, rel_path, static_cast<int>(li) + 1,
                   "R7",
                   "bare catch (...) swallows the failure; rethrow, "
                   "capture via current_exception, classify into the "
                   "failure taxonomy (classifyException/SweepReport), "
                   "or record it to an obs counter (DESIGN.md §12)");
    }
}

/** R8: SIMD intrinsics live only in src/common/simd*. */
void
ruleR8(const std::string &rel_path,
       const std::vector<std::string> &lines, const Suppressions &allow,
       std::vector<Finding> &out)
{
    // The dispatch layer itself is the one sanctioned home for raw
    // intrinsics (simd.hh/cc, simd_x86.hh, simd_sse4/avx2/neon.cc).
    if (startsWith(rel_path, "src/common/simd"))
        return;
    // x86 `_mm*(...)` / `_mm256*(...)` and NEON q-register
    // `v*q_*(...)` calls; any real intrinsic use also needs the
    // vendor header, so the include pattern backstops spellings the
    // call patterns miss.
    static const std::regex intrinCall(
        R"(\b(_mm\w*|v[a-z][a-z0-9]*q_[a-z0-9_]+)\s*\()");
    static const std::regex intrinHeader(
        R"(^\s*#\s*include\s*<(?:[a-z0-9_]*intrin\.h|arm_neon\.h|arm_sve\.h)>)");
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        if (std::regex_search(line, intrinHeader)) {
            addFinding(out, allow, rel_path, static_cast<int>(li) + 1,
                       "R8",
                       "vendor intrinsics header outside "
                       "src/common/simd*; add a kernel to the dispatch "
                       "table (common/simd.hh) instead");
            continue;
        }
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            intrinCall);
             it != std::sregex_iterator(); ++it) {
            addFinding(out, allow, rel_path, static_cast<int>(li) + 1,
                       "R8",
                       "SIMD intrinsic '" + (*it)[1].str() +
                           "' outside src/common/simd*; add a kernel "
                           "to the dispatch table (common/simd.hh) "
                           "instead");
        }
    }
}

} // namespace

/* ------------------------------------------------------------------ */
/* Public API                                                          */
/* ------------------------------------------------------------------ */

std::vector<RuleInfo>
ruleCatalog()
{
    return {
        {"R1", "no float/double accumulation in src/sim tally loops "
               "(integer tallies, converted at stat assembly)"},
        {"R2", "every thread_local memo cache registers a clear hook "
               "via DIFFY_REGISTER_THREAD_CACHE"},
        {"R3", "no RNG construction (rand, mt19937, random_device) "
               "outside src/common/rng"},
        {"R4", "no raw BitReader::read*/readSigned calls outside "
               "src/encode (use tryDecode/DecodeResult)"},
        {"R5", "header hygiene: no using-directives in headers, "
               "canonical DIFFY_<PATH>_HH include guards"},
        {"R6", "no std::chrono::*_clock::now() outside src/obs + "
               "src/runtime (timing flows through obs::Span / "
               "obs::ScopedLatency)"},
        {"R7", "no bare catch (...) that swallows the failure "
               "(rethrow, capture, classify into the taxonomy, or "
               "record to an obs counter)"},
        {"R8", "no raw SIMD intrinsics (_mm*, NEON v*q_*) or vendor "
               "intrinsics headers outside src/common/simd* (kernels "
               "go through the dispatch table)"},
    };
}

std::vector<Finding>
lintFile(const std::string &rel_path, const std::string &contents)
{
    const std::vector<std::string> raw = splitLines(contents);
    const std::vector<std::string> lines =
        splitLines(sanitize(contents));
    const Suppressions allow(raw);

    std::vector<Finding> out;
    ruleR1(rel_path, lines, allow, out);
    ruleR2(rel_path, lines, allow, out);
    ruleR3(rel_path, lines, allow, out);
    ruleR4(rel_path, lines, allow, out);
    ruleR5(rel_path, lines, allow, out);
    ruleR6(rel_path, lines, allow, out);
    ruleR7(rel_path, lines, allow, out);
    ruleR8(rel_path, lines, allow, out);
    return out;
}

std::vector<Finding>
lintTree(const std::string &root, const std::vector<std::string> &paths,
         std::vector<std::string> *scanned_out)
{
    const fs::path rootPath(root);
    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        const fs::path full = rootPath / p;
        if (fs::is_regular_file(full)) {
            files.push_back(full);
        } else if (fs::is_directory(full)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(full)) {
                if (!entry.is_regular_file())
                    continue;
                const std::string ext =
                    entry.path().extension().string();
                if (ext == ".cc" || ext == ".hh")
                    files.push_back(entry.path());
            }
        } else {
            throw std::runtime_error("diffy-lint: no such path: " +
                                     full.string());
        }
    }

    std::vector<std::string> rels;
    rels.reserve(files.size());
    for (const fs::path &f : files) {
        std::string rel =
            fs::relative(f, rootPath).generic_string();
        if (rel.find("tools/lint/fixtures") != std::string::npos)
            continue; // fixtures exist to violate the rules
        rels.push_back(std::move(rel));
    }
    std::sort(rels.begin(), rels.end());
    rels.erase(std::unique(rels.begin(), rels.end()), rels.end());

    std::vector<Finding> findings;
    for (const std::string &rel : rels) {
        std::ifstream in(rootPath / rel, std::ios::binary);
        if (!in)
            throw std::runtime_error("diffy-lint: cannot read " + rel);
        std::ostringstream buffer;
        buffer << in.rdbuf();
        std::vector<Finding> f = lintFile(rel, buffer.str());
        findings.insert(findings.end(),
                        std::make_move_iterator(f.begin()),
                        std::make_move_iterator(f.end()));
    }
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.rule < b.rule;
              });
    if (scanned_out != nullptr)
        *scanned_out = rels;
    return findings;
}

std::string
formatFinding(const Finding &finding)
{
    return finding.file + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.message;
}

} // namespace diffy::lint
