#include "lint.hh"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "analyses.hh"
#include "model.hh"
#include "scanner.hh"

namespace diffy::lint
{

namespace
{

namespace fs = std::filesystem;

std::string
readFileOrThrow(const fs::path &path, const std::string &label)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("diffy-lint: cannot read " + label);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void
sortFindings(std::vector<Finding> &findings)
{
    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  if (a.rule != b.rule)
                      return a.rule < b.rule;
                  return a.message < b.message;
              });
}

/**
 * True when the requested scan covers the entire src tree — the
 * precondition for L1's declared-but-unused edge check (a partial
 * scan may simply not have read the file carrying an edge's include).
 */
bool
coversFullSrc(const fs::path &root_path, bool root_is_src,
              const std::vector<std::string> &paths)
{
    std::error_code ec;
    fs::path srcDir = root_is_src ? root_path : root_path / "src";
    srcDir = fs::weakly_canonical(srcDir, ec);
    if (ec || srcDir.empty())
        return false;
    for (const std::string &p : paths) {
        fs::path dir =
            fs::weakly_canonical(root_path / p, ec);
        if (ec || !fs::is_directory(dir))
            continue;
        // dir == src, or dir is an ancestor of src (e.g. ".").
        fs::path probe = srcDir;
        while (true) {
            if (probe == dir)
                return true;
            fs::path parent = probe.parent_path();
            if (parent == probe)
                break;
            probe = parent;
        }
    }
    return false;
}

} // namespace

/* ------------------------------------------------------------------ */
/* Public API                                                          */
/* ------------------------------------------------------------------ */

std::vector<RuleInfo>
ruleCatalog()
{
    return {
        {"R1", "no float/double accumulation in src/sim tally loops "
               "(integer tallies, converted at stat assembly)"},
        {"R2", "every thread_local memo cache registers a clear hook "
               "via DIFFY_REGISTER_THREAD_CACHE"},
        {"R3", "no RNG construction (rand, mt19937, random_device) "
               "outside src/common/rng"},
        {"R4", "no raw BitReader::read*/readSigned calls outside "
               "src/encode (use tryDecode/DecodeResult)"},
        {"R5", "header hygiene: no using-directives in headers, "
               "canonical DIFFY_<PATH>_HH include guards"},
        {"R6", "no std::chrono::*_clock::now() outside src/obs + "
               "src/runtime (timing flows through obs::Span / "
               "obs::ScopedLatency)"},
        {"R7", "no bare catch (...) that swallows the failure "
               "(rethrow, capture, classify into the taxonomy, or "
               "record to an obs counter)"},
        {"R8", "no raw SIMD intrinsics (_mm*, NEON v*q_*) or vendor "
               "intrinsics headers outside src/common/simd* (kernels "
               "go through the dispatch table)"},
        {"R9", "no per-iteration allocation in src/sim + src/serve + "
               "src/encode loop bodies: new/make_unique/make_shared, "
               "un-pre-sized vector growth, string building (the "
               "zero-allocation steady-state contract)"},
        {"R10", "lock discipline over src/runtime + src/serve + "
                "src/core/trace_cache: cycle-free cross-file "
                "lock-acquisition order, no blocking call while "
                "holding a lock"},
        {"L1", "src/ include graph matches the layer DAG declared in "
               "tools/lint/layers.txt: no cycles, no undeclared "
               "edges, no declared-but-unused edges"},
    };
}

std::vector<Finding>
lintFile(const std::string &rel_path, const std::string &contents)
{
    std::vector<FileModel> models;
    models.push_back(buildFileModel(rel_path, contents));

    std::vector<Finding> out;
    runFileAnalyses(models.front(), out);
    // The single-file slice of the cross-file pass: intra-file
    // lock-order inversions. L1 needs a layer spec, so only lintTree
    // runs it.
    runTreeAnalyses(models, nullptr, false, out);
    sortFindings(out);
    return out;
}

std::vector<Finding>
lintTree(const std::string &root, const std::vector<std::string> &paths,
         const TreeOptions &options,
         std::vector<std::string> *scanned_out)
{
    const fs::path rootPath(root);
    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        const fs::path full = rootPath / p;
        if (fs::is_regular_file(full)) {
            files.push_back(full);
        } else if (fs::is_directory(full)) {
            for (const auto &entry :
                 fs::recursive_directory_iterator(full)) {
                if (!entry.is_regular_file())
                    continue;
                const std::string ext =
                    entry.path().extension().string();
                if (ext == ".cc" || ext == ".hh")
                    files.push_back(entry.path());
            }
        } else {
            throw std::runtime_error("diffy-lint: no such path: " +
                                     full.string());
        }
    }

    // `--root src` (scanning the src tree directly) loses the src/
    // prefix rule scopes and the layer DAG key on; put it back so
    // both invocations see identical relative paths.
    const bool rootIsSrc =
        fs::weakly_canonical(rootPath).filename() == "src";

    std::vector<std::string> rels;
    rels.reserve(files.size());
    for (const fs::path &f : files) {
        std::string rel =
            fs::relative(f, rootPath).generic_string();
        if (rel.find("tools/lint/fixtures") != std::string::npos)
            continue; // fixtures exist to violate the rules
        if (rootIsSrc)
            rel = "src/" + rel;
        rels.push_back(std::move(rel));
    }
    std::sort(rels.begin(), rels.end());
    rels.erase(std::unique(rels.begin(), rels.end()), rels.end());

    std::vector<FileModel> models;
    models.reserve(rels.size());
    std::vector<Finding> findings;
    for (const std::string &rel : rels) {
        const fs::path onDisk =
            rootIsSrc ? rootPath / rel.substr(4) : rootPath / rel;
        models.push_back(
            buildFileModel(rel, readFileOrThrow(onDisk, rel)));
        runFileAnalyses(models.back(), findings);
    }

    LayerSpec spec;
    bool haveSpec = false;
    if (options.layering) {
        fs::path layersPath;
        std::string specRel = "tools/lint/layers.txt";
        if (!options.layersFile.empty()) {
            layersPath = options.layersFile;
            specRel = options.layersFile;
            if (!fs::is_regular_file(layersPath))
                throw std::runtime_error(
                    "diffy-lint: no such layers file: " +
                    layersPath.string());
        } else {
            for (const fs::path &candidate :
                 {rootPath / "tools/lint/layers.txt",
                  rootPath / ".." / "tools/lint/layers.txt"}) {
                if (fs::is_regular_file(candidate)) {
                    layersPath = candidate;
                    break;
                }
            }
        }
        if (!layersPath.empty()) {
            spec = parseLayerSpec(
                specRel, readFileOrThrow(layersPath, specRel));
            haveSpec = true;
        }
    }

    runTreeAnalyses(models, haveSpec ? &spec : nullptr,
                    coversFullSrc(rootPath, rootIsSrc, paths),
                    findings);
    sortFindings(findings);
    if (scanned_out != nullptr)
        *scanned_out = rels;
    return findings;
}

std::vector<Finding>
lintTree(const std::string &root, const std::vector<std::string> &paths,
         std::vector<std::string> *scanned_out)
{
    return lintTree(root, paths, TreeOptions{}, scanned_out);
}

/* ------------------------------------------------------------------ */
/* Baseline                                                            */
/* ------------------------------------------------------------------ */

Baseline
parseBaseline(const std::string &contents)
{
    Baseline baseline;
    static const std::regex entry(
        R"(^\s*([^\s:][^:]*):(\d+):\s*\[([A-Za-z]\d+)\])");
    const std::vector<std::string> lines = splitLines(contents);
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        bool blank = true;
        for (char c : line)
            if (!std::isspace(static_cast<unsigned char>(c)))
                blank = false;
        if (blank)
            continue;
        std::string::size_type first =
            line.find_first_not_of(" \t");
        if (first != std::string::npos && line[first] == '#')
            continue;
        std::smatch m;
        if (!std::regex_search(line, m, entry)) {
            baseline.errors.push_back(
                {static_cast<int>(li) + 1, line});
            continue;
        }
        baseline.entries.push_back(
            BaselineEntry{m[1].str(), std::stoi(m[2].str()),
                          m[3].str(), static_cast<int>(li) + 1});
    }
    return baseline;
}

BaselineSplit
applyBaseline(const std::vector<Finding> &findings,
              const Baseline &baseline)
{
    BaselineSplit split;
    std::vector<bool> used(baseline.entries.size(), false);
    for (const Finding &f : findings) {
        bool matched = false;
        for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
            const BaselineEntry &e = baseline.entries[i];
            if (e.file == f.file && e.line == f.line &&
                e.rule == f.rule) {
                used[i] = true;
                matched = true;
                break;
            }
        }
        (matched ? split.excluded : split.fresh).push_back(f);
    }
    for (std::size_t i = 0; i < baseline.entries.size(); ++i)
        if (!used[i])
            split.stale.push_back(baseline.entries[i]);
    return split;
}

std::string
formatFinding(const Finding &finding)
{
    return finding.file + ":" + std::to_string(finding.line) + ": [" +
           finding.rule + "] " + finding.message;
}

} // namespace diffy::lint
