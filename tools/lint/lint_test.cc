/**
 * @file
 * diffy-lint self-tests: every rule (R1-R10 and the L1 layering
 * analysis) has at least one must-fire and one must-not-fire fixture
 * under tools/lint/fixtures/, the cross-file analyses are exercised
 * against dedicated fixture trees, the SARIF output parses back into
 * the 2.1.0 shape, the baseline workflow round-trips, the CLI's exit
 * codes are asserted against the real binary, and the full project
 * tree must lint clean modulo the checked-in baseline.
 */

#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hh"
#include "sarif.hh"

namespace
{

using diffy::lint::applyBaseline;
using diffy::lint::Baseline;
using diffy::lint::BaselineSplit;
using diffy::lint::Finding;
using diffy::lint::lintFile;
using diffy::lint::lintTree;
using diffy::lint::parseBaseline;
using diffy::lint::TreeOptions;

std::string
fixturesRoot()
{
    return DIFFY_LINT_FIXTURES_DIR;
}

std::string
sourceRoot()
{
    return DIFFY_LINT_SOURCE_ROOT;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("cannot read " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::set<std::string>
rulesIn(const std::vector<Finding> &findings)
{
    std::set<std::string> rules;
    for (const Finding &f : findings)
        rules.insert(f.rule);
    return rules;
}

/** Expected rule ids per fixture file (empty = must lint clean). */
const std::map<std::string, std::set<std::string>> kFixtureExpectations =
    {
        {"src/sim/r1_fire.cc", {"R1"}},
        {"src/sim/r1_ok.cc", {}},
        {"src/core/r2_fire.cc", {"R2"}},
        {"src/core/r2_ok.cc", {}},
        {"src/analysis/r3_fire.cc", {"R3"}},
        {"src/common/rng.cc", {}},
        {"bench/r4_fire.cc", {"R4"}},
        {"bench/r4_ok.cc", {}},
        {"src/arch/r5_fire.hh", {"R5"}},
        {"src/arch/r5_ok.hh", {}},
        {"src/core/r6_fire.cc", {"R6"}},
        {"src/obs/r6_ok.cc", {}},
        {"src/runtime/r7_fire.cc", {"R7"}},
        {"src/runtime/r7_ok.cc", {}},
        {"src/sim/r8_fire.cc", {"R8"}},
        {"src/common/simd_r8_ok.cc", {}},
        {"bench/r8_allowed.cc", {}},
        {"src/analysis/suppressed_ok.cc", {}},
        {"src/sim/r9_fire.cc", {"R9"}},
        {"src/sim/r9_ok.cc", {}},
        {"src/serve/r9_arena_ok.cc", {}},
        {"src/nn/r9_scope_ok.cc", {}},
        {"src/sim/multi_allow_ok.cc", {}},
        {"src/core/rawstring_ok.cc", {}},
        {"src/runtime/r10_fire.cc", {"R10"}},
        {"src/runtime/r10_block_fire.cc", {"R10"}},
        {"src/runtime/r10_ok.cc", {}},
        // Each half of the cross-file inversion pair is clean alone;
        // CrossFileLockOrderInversion scans them together.
        {"src/serve/r10_ab.cc", {}},
        {"src/core/trace_cache_r10.cc", {}},
};

/** L1 fixture trees: root dir under fixtures/, message needle. */
struct LayerCase
{
    const char *dir;
    const char *needle; ///< "" = must lint clean
};
const LayerCase kLayerCases[] = {
    {"l1/cycle", "include cycle"},
    {"l1/undeclared", "not declared"},
    {"l1/unused", "no #include behind it"},
    {"l1/bad", "malformed layer line"},
    {"l1/ok", ""},
};

TEST(DiffyLint, EveryFixtureMatchesItsExpectation)
{
    for (const auto &[rel, expected] : kFixtureExpectations) {
        std::vector<Finding> findings =
            lintTree(fixturesRoot(), {rel});
        EXPECT_EQ(rulesIn(findings), expected) << rel;
        if (expected.empty()) {
            EXPECT_TRUE(findings.empty()) << rel;
        }
    }
}

TEST(DiffyLint, EveryRuleHasFireAndNoFireCoverage)
{
    std::set<std::string> fired;
    std::set<std::string> cleanCovered;
    for (const auto &[rel, expected] : kFixtureExpectations) {
        fired.insert(expected.begin(), expected.end());
        if (expected.empty())
            cleanCovered.insert(rel);
    }
    for (const LayerCase &c : kLayerCases) {
        if (c.needle[0] == '\0')
            cleanCovered.insert(c.dir);
        else
            fired.insert("L1");
    }
    for (const auto &rule : diffy::lint::ruleCatalog())
        EXPECT_TRUE(fired.count(rule.id)) << rule.id
                                          << " has no must-fire fixture";
    // At least one clean counterpart per rule.
    EXPECT_GE(cleanCovered.size(), diffy::lint::ruleCatalog().size());
}

TEST(DiffyLint, FireFixturesReportExactLines)
{
    // The R1 fixture accumulates on one known line inside the nest.
    std::vector<Finding> r1 =
        lintTree(fixturesRoot(), {"src/sim/r1_fire.cc"});
    ASSERT_EQ(r1.size(), 1u);
    EXPECT_EQ(r1[0].line, 12);
    EXPECT_NE(r1[0].message.find("cycles"), std::string::npos);

    // The R4 fixture has two raw reads on consecutive lines.
    std::vector<Finding> r4 =
        lintTree(fixturesRoot(), {"bench/r4_fire.cc"});
    ASSERT_EQ(r4.size(), 2u);
    EXPECT_EQ(r4[1].line, r4[0].line + 1);

    // The R5 fixture violates both header rules.
    std::vector<Finding> r5 =
        lintTree(fixturesRoot(), {"src/arch/r5_fire.hh"});
    EXPECT_EQ(r5.size(), 2u);

    // The R9 fixture fires once per allocation kind: push_back,
    // make_unique, new, string decl, to_string, stringstream.
    std::vector<Finding> r9 =
        lintTree(fixturesRoot(), {"src/sim/r9_fire.cc"});
    EXPECT_EQ(r9.size(), 6u);
}

TEST(DiffyLint, PatternsInsideCommentsAndStringsDoNotFire)
{
    const std::string contents =
        "// std::mt19937 in a comment\n"
        "const char *s = \"std::mt19937 rand() thread_local\";\n"
        "/* BitReader br; br.read(4); */\n";
    EXPECT_TRUE(lintFile("src/core/strings.cc", contents).empty());
}

TEST(DiffyLint, RawStringLiteralsAreOpaque)
{
    // Plain, prefixed and custom-delimited raw literals are string
    // content, not code (the v1 scanner's blind spot).
    EXPECT_TRUE(lintFile("src/core/raw.cc",
                         "const char *p = R\"(std::mt19937 g(1);)\";\n")
                    .empty());
    EXPECT_TRUE(
        lintFile("src/core/raw.cc",
                 "const char *p = R\"re(rand(); \" dangling)re\";\n")
            .empty());
    EXPECT_TRUE(lintFile("src/core/raw.cc",
                         "const char *p = u8R\"(_mm_add_ps(a, b))\";\n")
                    .empty());

    // Code AFTER the literal on the same line is still scanned.
    std::vector<Finding> after = lintFile(
        "src/core/raw.cc",
        "const char *p = R\"(x)\"; std::mt19937 g(1);\n");
    ASSERT_EQ(after.size(), 1u);
    EXPECT_EQ(after[0].rule, "R3");

    // An identifier ending in R is not a raw-string prefix.
    std::vector<Finding> ident = lintFile(
        "src/core/raw.cc", "int myVarR = 0; std::mt19937 g(1);\n");
    ASSERT_EQ(ident.size(), 1u);
}

TEST(DiffyLint, SuppressionCoversSameAndNextLineOnly)
{
    const std::string suppressed =
        "// diffy-lint: allow(R3)\n"
        "std::mt19937 gen(1);\n";
    EXPECT_TRUE(lintFile("src/core/a.cc", suppressed).empty());

    const std::string tooFar =
        "// diffy-lint: allow(R3)\n"
        "\n"
        "std::mt19937 gen(1);\n";
    EXPECT_EQ(lintFile("src/core/b.cc", tooFar).size(), 1u);

    const std::string wrongRule =
        "std::mt19937 gen(1); // diffy-lint: allow(R4)\n";
    EXPECT_EQ(lintFile("src/core/c.cc", wrongRule).size(), 1u);
}

TEST(DiffyLint, SuppressionAcceptsMultiRuleLists)
{
    // One comma-separated list covers several rules on the marker
    // line and the next.
    const std::string body =
        "void f(int n) {\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        // diffy-lint: allow(R3, R9)\n"
        "        std::mt19937 g(1); auto p = std::make_unique<int>(i);\n"
        "    }\n"
        "}\n";
    EXPECT_TRUE(lintFile("src/sim/multi.cc", body).empty());

    // Without the marker the same line yields both findings.
    const std::string bare =
        "void f(int n) {\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        std::mt19937 g(1); auto p = std::make_unique<int>(i);\n"
        "    }\n"
        "}\n";
    EXPECT_EQ(rulesIn(lintFile("src/sim/multi.cc", bare)),
              (std::set<std::string>{"R3", "R9"}));

    // A list only suppresses the rules it names.
    const std::string partial =
        "void f(int n) {\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        // diffy-lint: allow(R9)\n"
        "        std::mt19937 g(1); auto p = std::make_unique<int>(i);\n"
        "    }\n"
        "}\n";
    EXPECT_EQ(rulesIn(lintFile("src/sim/multi.cc", partial)),
              (std::set<std::string>{"R3"}));

    // Two markers on one line both take effect.
    const std::string twoMarkers =
        "void f(int n) {\n"
        "    for (int i = 0; i < n; ++i) {\n"
        "        // diffy-lint: allow(R3) diffy-lint: allow(R9)\n"
        "        std::mt19937 g(1); auto p = std::make_unique<int>(i);\n"
        "    }\n"
        "}\n";
    EXPECT_TRUE(lintFile("src/sim/multi.cc", twoMarkers).empty());
}

TEST(DiffyLint, CanonicalGuardDerivation)
{
    // src/ prefix is stripped; every other separator becomes '_'.
    const std::string good = "#ifndef DIFFY_SIM_DIFFY_SIM_HH\n"
                             "#define DIFFY_SIM_DIFFY_SIM_HH\n"
                             "#endif\n";
    EXPECT_TRUE(lintFile("src/sim/diffy_sim.hh", good).empty());

    const std::string toolsGood = "#ifndef DIFFY_TOOLS_LINT_LINT_HH\n"
                                  "#define DIFFY_TOOLS_LINT_LINT_HH\n"
                                  "#endif\n";
    EXPECT_TRUE(lintFile("tools/lint/lint.hh", toolsGood).empty());

    std::vector<Finding> missing = lintFile("src/arch/new.hh", "int x;\n");
    ASSERT_EQ(missing.size(), 1u);
    EXPECT_NE(missing[0].message.find("DIFFY_ARCH_NEW_HH"),
              std::string::npos);
}

TEST(DiffyLint, CrossFileLockOrderInversion)
{
    // Each file is clean alone (asserted in the expectations table);
    // scanning both exposes the shard/stats inversion, reported once.
    std::vector<Finding> findings = lintTree(
        fixturesRoot(),
        {"src/serve/r10_ab.cc", "src/core/trace_cache_r10.cc"});
    ASSERT_EQ(findings.size(), 1u);
    EXPECT_EQ(findings[0].rule, "R10");
    EXPECT_NE(findings[0].message.find("inversion"), std::string::npos);
    // The chain names both participating files.
    EXPECT_NE(findings[0].message.find("src/serve/r10_ab.cc"),
              std::string::npos);
    EXPECT_NE(findings[0].message.find("src/core/trace_cache_r10.cc"),
              std::string::npos);
}

TEST(DiffyLint, LayeringFixtureTrees)
{
    for (const LayerCase &c : kLayerCases) {
        const std::string root = fixturesRoot() + "/" + c.dir;
        TreeOptions options;
        options.layersFile = root + "/layers.txt";
        std::vector<Finding> findings =
            lintTree(root, {"src"}, options, nullptr);
        if (c.needle[0] == '\0') {
            EXPECT_TRUE(findings.empty()) << c.dir;
            continue;
        }
        ASSERT_EQ(findings.size(), 1u) << c.dir;
        EXPECT_EQ(findings[0].rule, "L1") << c.dir;
        EXPECT_NE(findings[0].message.find(c.needle),
                  std::string::npos)
            << c.dir << ": " << findings[0].message;
    }
}

TEST(DiffyLint, LayeringUnusedEdgeNeedsFullSrcScan)
{
    // A partial scan may simply not have read the file carrying a
    // declared edge's include, so the unused-edge check stays quiet.
    const std::string root = fixturesRoot() + "/l1/unused";
    TreeOptions options;
    options.layersFile = root + "/layers.txt";
    std::vector<Finding> partial =
        lintTree(root, {"src/b/b.hh"}, options, nullptr);
    EXPECT_TRUE(partial.empty());
}

/* ------------------------------------------------------------------ */
/* Baseline                                                            */
/* ------------------------------------------------------------------ */

TEST(DiffyLintBaseline, ParseSkipsCommentsAndFlagsGarbage)
{
    Baseline b = parseBaseline(
        "# header comment\n"
        "\n"
        "src/encode/schemes.cc:183: [R9] some message\n"
        "not a baseline entry\n"
        "src/core/x.cc:7: [R10] another\n");
    ASSERT_EQ(b.entries.size(), 2u);
    EXPECT_EQ(b.entries[0].file, "src/encode/schemes.cc");
    EXPECT_EQ(b.entries[0].line, 183);
    EXPECT_EQ(b.entries[0].rule, "R9");
    EXPECT_EQ(b.entries[1].rule, "R10");
    ASSERT_EQ(b.errors.size(), 1u);
    EXPECT_EQ(b.errors[0].first, 4);
}

TEST(DiffyLintBaseline, ApplySplitsFreshExcludedStale)
{
    Baseline b = parseBaseline(
        "src/a.cc:1: [R9] old\n"
        "src/gone.cc:9: [R9] removed since\n");
    std::vector<Finding> findings = {
        Finding{"src/a.cc", 1, "R9", "message text may differ"},
        Finding{"src/b.cc", 2, "R3", "new"},
    };
    BaselineSplit split = applyBaseline(findings, b);
    ASSERT_EQ(split.excluded.size(), 1u);
    EXPECT_EQ(split.excluded[0].file, "src/a.cc");
    ASSERT_EQ(split.fresh.size(), 1u);
    EXPECT_EQ(split.fresh[0].file, "src/b.cc");
    ASSERT_EQ(split.stale.size(), 1u);
    EXPECT_EQ(split.stale[0].file, "src/gone.cc");
}

/* ------------------------------------------------------------------ */
/* SARIF: minimal JSON parser + parse-back                             */
/* ------------------------------------------------------------------ */

/** Just enough JSON to parse back what sarifJson() emits. */
struct Json
{
    enum class Kind
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj
    };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    const Json &at(const std::string &key) const { return obj.at(key); }
    const Json &at(std::size_t i) const { return arr.at(i); }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    Json parse()
    {
        Json v = value();
        ws();
        if (pos_ != text_.size())
            throw std::runtime_error("trailing JSON garbage");
        return v;
    }

  private:
    void ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char next()
    {
        if (pos_ >= text_.size())
            throw std::runtime_error("unexpected end of JSON");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (next() != c)
            throw std::runtime_error(std::string("expected '") + c +
                                     "' at " + std::to_string(pos_));
        ++pos_;
    }

    bool consume(char c)
    {
        ws();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    Json value()
    {
        ws();
        const char c = next();
        Json v;
        if (c == '{') {
            v.kind = Json::Kind::Obj;
            ++pos_;
            if (consume('}'))
                return v;
            do {
                ws();
                std::string key = stringLiteral();
                ws();
                expect(':');
                v.obj[key] = value();
            } while (consume(','));
            ws();
            expect('}');
        } else if (c == '[') {
            v.kind = Json::Kind::Arr;
            ++pos_;
            if (consume(']'))
                return v;
            do {
                v.arr.push_back(value());
            } while (consume(','));
            ws();
            expect(']');
        } else if (c == '"') {
            v.kind = Json::Kind::Str;
            v.str = stringLiteral();
        } else if (c == 't' || c == 'f') {
            v.kind = Json::Kind::Bool;
            v.boolean = c == 't';
            pos_ += v.boolean ? 4 : 5;
        } else if (c == 'n') {
            pos_ += 4;
        } else {
            v.kind = Json::Kind::Num;
            std::size_t used = 0;
            v.number = std::stod(text_.substr(pos_), &used);
            pos_ += used;
        }
        return v;
    }

    std::string stringLiteral()
    {
        expect('"');
        std::string out;
        while (next() != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            const char esc = next();
            ++pos_;
            switch (esc) {
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                const unsigned code = static_cast<unsigned>(std::stoul(
                    text_.substr(pos_, 4), nullptr, 16));
                pos_ += 4;
                out += static_cast<char>(code);
                break;
              }
              default:
                out += esc; // \" \\ \/
            }
        }
        ++pos_; // closing quote
        return out;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

TEST(DiffyLintSarif, ParsesBackInto210Shape)
{
    const std::vector<Finding> fresh = {
        Finding{"src/sim/hot.cc", 7, "R9",
                "message with \"quotes\", a \\ backslash\nand a newline"},
    };
    const std::vector<Finding> baselined = {
        Finding{"src/encode/schemes.cc", 183, "R9", "pre-existing"},
    };
    Json doc =
        JsonParser(diffy::lint::sarifJson(fresh, baselined)).parse();

    EXPECT_EQ(doc.at("version").str, "2.1.0");
    EXPECT_NE(doc.at("$schema").str.find("sarif-2.1.0"),
              std::string::npos);
    ASSERT_EQ(doc.at("runs").arr.size(), 1u);
    const Json &run = doc.at("runs").at(0u);

    const Json &driver = run.at("tool").at("driver");
    EXPECT_EQ(driver.at("name").str, "diffy-lint");
    const std::vector<diffy::lint::RuleInfo> catalog =
        diffy::lint::ruleCatalog();
    ASSERT_EQ(driver.at("rules").arr.size(), catalog.size());
    for (std::size_t i = 0; i < catalog.size(); ++i) {
        const Json &rule = driver.at("rules").at(i);
        EXPECT_EQ(rule.at("id").str, catalog[i].id);
        EXPECT_EQ(rule.at("shortDescription").at("text").str,
                  catalog[i].summary);
    }

    ASSERT_EQ(run.at("results").arr.size(), 2u);
    const Json &first = run.at("results").at(0u);
    EXPECT_EQ(first.at("ruleId").str, "R9");
    // ruleIndex points back at the matching catalog entry.
    const std::size_t idx =
        static_cast<std::size_t>(first.at("ruleIndex").number);
    EXPECT_EQ(driver.at("rules").at(idx).at("id").str, "R9");
    EXPECT_EQ(first.at("level").str, "error");
    // The message round-trips through the JSON escaping.
    EXPECT_EQ(first.at("message").at("text").str, fresh[0].message);
    const Json &loc =
        first.at("locations").at(0u).at("physicalLocation");
    EXPECT_EQ(loc.at("artifactLocation").at("uri").str,
              "src/sim/hot.cc");
    EXPECT_EQ(loc.at("artifactLocation").at("uriBaseId").str,
              "%SRCROOT%");
    EXPECT_EQ(loc.at("region").at("startLine").number, 7.0);
    EXPECT_EQ(first.obj.count("suppressions"), 0u);

    // The baselined finding carries an external suppression.
    const Json &second = run.at("results").at(1u);
    ASSERT_EQ(second.at("suppressions").arr.size(), 1u);
    EXPECT_EQ(second.at("suppressions").at(0u).at("kind").str,
              "external");
}

TEST(DiffyLintSarif, EmptyResultsStillParse)
{
    Json doc = JsonParser(diffy::lint::sarifJson({}, {})).parse();
    EXPECT_TRUE(
        doc.at("runs").at(0u).at("results").arr.empty());
}

/* ------------------------------------------------------------------ */
/* Whole-tree gate                                                     */
/* ------------------------------------------------------------------ */

TEST(DiffyLint, FullProjectTreeIsCleanModuloBaseline)
{
    std::vector<std::string> scanned;
    std::vector<Finding> findings = lintTree(
        sourceRoot(), {"src", "bench", "tests", "tools"}, &scanned);
    const Baseline baseline = parseBaseline(
        readFile(sourceRoot() + "/tools/lint/baseline.txt"));
    EXPECT_TRUE(baseline.errors.empty());
    const BaselineSplit split = applyBaseline(findings, baseline);

    std::string rendered;
    for (const Finding &f : split.fresh)
        rendered += diffy::lint::formatFinding(f) + "\n";
    EXPECT_TRUE(split.fresh.empty()) << rendered;
    // The baseline is exact: every entry still matches a finding.
    for (const auto &e : split.stale)
        ADD_FAILURE() << "stale baseline entry: " << e.file << ":"
                      << e.line << " [" << e.rule << "]";
    // The scan actually covered the tree (and skipped the fixtures).
    EXPECT_GT(scanned.size(), 100u);
    for (const std::string &rel : scanned)
        EXPECT_EQ(rel.find("tools/lint/fixtures"), std::string::npos);
}

/* ------------------------------------------------------------------ */
/* CLI                                                                 */
/* ------------------------------------------------------------------ */

/** Exit status of a spawned process, -1 on abnormal termination. */
int
runBinary(const std::string &args)
{
    const std::string cmd =
        std::string(DIFFY_LINT_BINARY) + " " + args + " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    if (status == -1 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

TEST(DiffyLintCli, ExitCodesAreAsserted)
{
    // Findings in the fixture tree -> 1.
    EXPECT_EQ(runBinary("--root " + fixturesRoot() + " src bench"), 1);
    // A clean fixture alone -> 0.
    EXPECT_EQ(runBinary("--root " + fixturesRoot() +
                        " src/arch/r5_ok.hh"),
              0);
    // The real tree -> 0 (the CI gate: baseline-excluded findings
    // are listed on stderr but do not fail the run).
    EXPECT_EQ(runBinary("--root " + sourceRoot() +
                        " src bench tests tools"),
              0);
    // Without the baseline the tree is *still* clean -> 0: the R9
    // baseline burned down to zero entries, so the gate now rests on
    // the tree itself being lint-clean.
    EXPECT_EQ(runBinary("--root " + sourceRoot() +
                        " --no-baseline src bench tests tools"),
              0);
    // A missing path -> 2 (usage/I-O error).
    EXPECT_EQ(runBinary("--root " + fixturesRoot() + " no/such/dir"), 2);
    // Bad flag -> 2.
    EXPECT_EQ(runBinary("--frobnicate"), 2);
    // A named baseline that does not exist -> 2.
    EXPECT_EQ(runBinary("--root " + fixturesRoot() +
                        " --baseline /no/such/baseline.txt src"),
              2);
}

TEST(DiffyLintCli, RootAcceptsEqualsForm)
{
    // --root=DIR is the same as --root DIR (serving configs get
    // verbose; every CLI in the tree accepts both forms).
    EXPECT_EQ(runBinary("--root=" + fixturesRoot() +
                        " src/arch/r5_ok.hh"),
              0);
    EXPECT_EQ(runBinary("--root=" + fixturesRoot() + " src bench"), 1);
    // An empty value is a usage error, not a scan of "".
    EXPECT_EQ(runBinary("--root= src"), 2);
}

TEST(DiffyLintCli, ListRulesExitsZero)
{
    EXPECT_EQ(runBinary("--list-rules"), 0);
}

TEST(DiffyLintCli, SarifFlagWritesTheReport)
{
    const std::string out = ::testing::TempDir() + "diffy_lint.sarif";
    std::remove(out.c_str());
    EXPECT_EQ(runBinary("--root " + fixturesRoot() + " --sarif " + out +
                        " src/sim/r9_fire.cc"),
              1);
    Json doc = JsonParser(readFile(out)).parse();
    EXPECT_EQ(doc.at("version").str, "2.1.0");
    EXPECT_EQ(
        doc.at("runs").at(0u).at("results").arr.size(), 6u);
    std::remove(out.c_str());
}

TEST(DiffyLintCli, UpdateBaselineRoundTrips)
{
    const std::string baseline =
        ::testing::TempDir() + "diffy_lint_baseline.txt";
    std::remove(baseline.c_str());
    // The fire fixture has findings -> 1 against an empty gate...
    EXPECT_EQ(runBinary("--root " + fixturesRoot() +
                        " --no-baseline src/sim/r9_fire.cc"),
              1);
    // ...--update-baseline captures them and exits 0...
    EXPECT_EQ(runBinary("--root " + fixturesRoot() + " --baseline " +
                        baseline +
                        " --update-baseline src/sim/r9_fire.cc"),
              0);
    // ...after which the same scan is green: everything is excluded.
    EXPECT_EQ(runBinary("--root " + fixturesRoot() + " --baseline " +
                        baseline + " src/sim/r9_fire.cc"),
              0);
    std::remove(baseline.c_str());
}

} // namespace
