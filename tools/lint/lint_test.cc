/**
 * @file
 * diffy-lint self-tests: every rule has at least one must-fire and
 * one must-not-fire fixture under tools/lint/fixtures/, the CLI's
 * exit codes are asserted against the real binary, and the full
 * project tree must lint clean.
 */

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.hh"

namespace
{

using diffy::lint::Finding;
using diffy::lint::lintFile;
using diffy::lint::lintTree;

std::string
fixturesRoot()
{
    return DIFFY_LINT_FIXTURES_DIR;
}

std::string
sourceRoot()
{
    return DIFFY_LINT_SOURCE_ROOT;
}

std::set<std::string>
rulesIn(const std::vector<Finding> &findings)
{
    std::set<std::string> rules;
    for (const Finding &f : findings)
        rules.insert(f.rule);
    return rules;
}

/** Expected rule ids per fixture file (empty = must lint clean). */
const std::map<std::string, std::set<std::string>> kFixtureExpectations =
    {
        {"src/sim/r1_fire.cc", {"R1"}},
        {"src/sim/r1_ok.cc", {}},
        {"src/core/r2_fire.cc", {"R2"}},
        {"src/core/r2_ok.cc", {}},
        {"src/analysis/r3_fire.cc", {"R3"}},
        {"src/common/rng.cc", {}},
        {"bench/r4_fire.cc", {"R4"}},
        {"bench/r4_ok.cc", {}},
        {"src/arch/r5_fire.hh", {"R5"}},
        {"src/arch/r5_ok.hh", {}},
        {"src/core/r6_fire.cc", {"R6"}},
        {"src/obs/r6_ok.cc", {}},
        {"src/runtime/r7_fire.cc", {"R7"}},
        {"src/runtime/r7_ok.cc", {}},
        {"src/sim/r8_fire.cc", {"R8"}},
        {"src/common/simd_r8_ok.cc", {}},
        {"bench/r8_allowed.cc", {}},
        {"src/analysis/suppressed_ok.cc", {}},
};

TEST(DiffyLint, EveryFixtureMatchesItsExpectation)
{
    for (const auto &[rel, expected] : kFixtureExpectations) {
        std::vector<Finding> findings =
            lintTree(fixturesRoot(), {rel});
        EXPECT_EQ(rulesIn(findings), expected) << rel;
        if (expected.empty()) {
            EXPECT_TRUE(findings.empty()) << rel;
        }
    }
}

TEST(DiffyLint, EveryRuleHasFireAndNoFireCoverage)
{
    std::set<std::string> fired;
    std::set<std::string> cleanCovered;
    for (const auto &[rel, expected] : kFixtureExpectations) {
        fired.insert(expected.begin(), expected.end());
        if (expected.empty())
            cleanCovered.insert(rel);
    }
    for (const auto &rule : diffy::lint::ruleCatalog())
        EXPECT_TRUE(fired.count(rule.id)) << rule.id
                                          << " has no must-fire fixture";
    // One clean counterpart per rule (r1_ok, r2_ok, rng, r4_ok, r5_ok).
    EXPECT_GE(cleanCovered.size(), diffy::lint::ruleCatalog().size());
}

TEST(DiffyLint, FireFixturesReportExactLines)
{
    // The R1 fixture accumulates on one known line inside the nest.
    std::vector<Finding> r1 =
        lintTree(fixturesRoot(), {"src/sim/r1_fire.cc"});
    ASSERT_EQ(r1.size(), 1u);
    EXPECT_EQ(r1[0].line, 12);
    EXPECT_NE(r1[0].message.find("cycles"), std::string::npos);

    // The R4 fixture has two raw reads on consecutive lines.
    std::vector<Finding> r4 =
        lintTree(fixturesRoot(), {"bench/r4_fire.cc"});
    ASSERT_EQ(r4.size(), 2u);
    EXPECT_EQ(r4[1].line, r4[0].line + 1);

    // The R5 fixture violates both header rules.
    std::vector<Finding> r5 =
        lintTree(fixturesRoot(), {"src/arch/r5_fire.hh"});
    EXPECT_EQ(r5.size(), 2u);
}

TEST(DiffyLint, PatternsInsideCommentsAndStringsDoNotFire)
{
    const std::string contents =
        "// std::mt19937 in a comment\n"
        "const char *s = \"std::mt19937 rand() thread_local\";\n"
        "/* BitReader br; br.read(4); */\n";
    EXPECT_TRUE(lintFile("src/core/strings.cc", contents).empty());
}

TEST(DiffyLint, SuppressionCoversSameAndNextLineOnly)
{
    const std::string suppressed =
        "// diffy-lint: allow(R3)\n"
        "std::mt19937 gen(1);\n";
    EXPECT_TRUE(lintFile("src/core/a.cc", suppressed).empty());

    const std::string tooFar =
        "// diffy-lint: allow(R3)\n"
        "\n"
        "std::mt19937 gen(1);\n";
    EXPECT_EQ(lintFile("src/core/b.cc", tooFar).size(), 1u);

    const std::string wrongRule =
        "std::mt19937 gen(1); // diffy-lint: allow(R4)\n";
    EXPECT_EQ(lintFile("src/core/c.cc", wrongRule).size(), 1u);
}

TEST(DiffyLint, CanonicalGuardDerivation)
{
    // src/ prefix is stripped; every other separator becomes '_'.
    const std::string good = "#ifndef DIFFY_SIM_DIFFY_SIM_HH\n"
                             "#define DIFFY_SIM_DIFFY_SIM_HH\n"
                             "#endif\n";
    EXPECT_TRUE(lintFile("src/sim/diffy_sim.hh", good).empty());

    const std::string toolsGood = "#ifndef DIFFY_TOOLS_LINT_LINT_HH\n"
                                  "#define DIFFY_TOOLS_LINT_LINT_HH\n"
                                  "#endif\n";
    EXPECT_TRUE(lintFile("tools/lint/lint.hh", toolsGood).empty());

    std::vector<Finding> missing = lintFile("src/arch/new.hh", "int x;\n");
    ASSERT_EQ(missing.size(), 1u);
    EXPECT_NE(missing[0].message.find("DIFFY_ARCH_NEW_HH"),
              std::string::npos);
}

TEST(DiffyLint, FullProjectTreeIsClean)
{
    std::vector<std::string> scanned;
    std::vector<Finding> findings = lintTree(
        sourceRoot(), {"src", "bench", "tests", "tools"}, &scanned);
    std::string rendered;
    for (const Finding &f : findings)
        rendered += diffy::lint::formatFinding(f) + "\n";
    EXPECT_TRUE(findings.empty()) << rendered;
    // The scan actually covered the tree (and skipped the fixtures).
    EXPECT_GT(scanned.size(), 100u);
    for (const std::string &rel : scanned)
        EXPECT_EQ(rel.find("tools/lint/fixtures"), std::string::npos);
}

/** Exit status of a spawned process, -1 on abnormal termination. */
int
runBinary(const std::string &args)
{
    const std::string cmd =
        std::string(DIFFY_LINT_BINARY) + " " + args + " > /dev/null 2>&1";
    const int status = std::system(cmd.c_str());
    if (status == -1 || !WIFEXITED(status))
        return -1;
    return WEXITSTATUS(status);
}

TEST(DiffyLintCli, ExitCodesAreAsserted)
{
    // Findings in the fixture tree -> 1.
    EXPECT_EQ(runBinary("--root " + fixturesRoot() + " src bench"), 1);
    // A clean fixture alone -> 0.
    EXPECT_EQ(runBinary("--root " + fixturesRoot() +
                        " src/arch/r5_ok.hh"),
              0);
    // The real tree -> 0 (the CI gate).
    EXPECT_EQ(runBinary("--root " + sourceRoot() +
                        " src bench tests tools"),
              0);
    // A missing path -> 2 (usage/I-O error).
    EXPECT_EQ(runBinary("--root " + fixturesRoot() + " no/such/dir"), 2);
    // Bad flag -> 2.
    EXPECT_EQ(runBinary("--frobnicate"), 2);
}

TEST(DiffyLintCli, RootAcceptsEqualsForm)
{
    // --root=DIR is the same as --root DIR (serving configs get
    // verbose; every CLI in the tree accepts both forms).
    EXPECT_EQ(runBinary("--root=" + fixturesRoot() +
                        " src/arch/r5_ok.hh"),
              0);
    EXPECT_EQ(runBinary("--root=" + fixturesRoot() + " src bench"), 1);
    // An empty value is a usage error, not a scan of "".
    EXPECT_EQ(runBinary("--root= src"), 2);
}

} // namespace
