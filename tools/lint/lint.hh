/**
 * @file
 * diffy-lint: project-invariant static analysis.
 *
 * A deliberately small, heuristic source scanner that machine-checks
 * the contracts the compiler cannot know about (see DESIGN.md §10 for
 * the rule catalogue and the reasoning behind each rule):
 *
 *   R1  no float/double accumulation inside src/sim tally loops —
 *       integer tallies only, converted at stat assembly (the
 *       byte-identical-sweep determinism contract);
 *   R2  every thread_local memo cache registers a clear hook with
 *       DIFFY_REGISTER_THREAD_CACHE (stale-memo hazard across sweep
 *       reconfigurations);
 *   R3  no RNG construction outside src/common/rng — all randomness
 *       flows through seeded splitmix64 job RNGs;
 *   R4  no raw BitReader::read()/readSigned() decode calls outside the
 *       codec internals (src/encode) — external callers use the
 *       structured tryDecode/DecodeResult path;
 *   R5  header hygiene — no namespace-scope `using namespace` in
 *       headers, canonical DIFFY_<PATH>_HH include guards;
 *   R6  no std::chrono::*_clock::now() outside src/obs + src/runtime —
 *       timing flows through obs::Span / obs::ScopedLatency, keeping
 *       the clock reads (and the stdout-purity rule around them)
 *       centralized;
 *   R7  no bare `catch (...)` that swallows the failure — the handler
 *       must rethrow (throw / rethrow_exception), capture it
 *       (current_exception), classify it into the failure taxonomy
 *       (classifyException / SweepReport), or at minimum record it to
 *       an obs counter, so no error path is silently dropped
 *       (DESIGN.md §12).
 *
 * The scanner strips comments and string/char literals before rule
 * matching, so rule patterns quoted in prose (or in this linter's own
 * sources) never fire. Findings can be suppressed at the line level:
 *
 *     some_violation();  // diffy-lint: allow(R4): testing raw reads
 *
 * A suppression on line N covers findings on lines N and N+1, so a
 * pure comment line may precede the offending statement. This is the
 * only suppression mechanism — there are no file- or directory-level
 * escapes; rules with legitimate blanket exemptions encode them as
 * path scopes instead.
 */

#ifndef DIFFY_TOOLS_LINT_LINT_HH
#define DIFFY_TOOLS_LINT_LINT_HH

#include <string>
#include <vector>

namespace diffy::lint
{

/** One rule violation. */
struct Finding
{
    std::string file; ///< path relative to the lint root
    int line = 0;     ///< 1-based
    std::string rule; ///< "R1".."R7"
    std::string message;
};

/** Catalogue entry for --list-rules and the docs. */
struct RuleInfo
{
    std::string id;
    std::string summary;
};

/** The rule catalogue, in rule-id order. */
std::vector<RuleInfo> ruleCatalog();

/**
 * Lint one file. @p rel_path is the path relative to the lint root —
 * rule path scopes (src/sim for R1, src/encode for R4, ...) and the
 * canonical guard name (R5) derive from it.
 */
std::vector<Finding> lintFile(const std::string &rel_path,
                              const std::string &contents);

/**
 * Lint every .cc/.hh file under the given paths (files or directories,
 * relative to @p root). Results are sorted by (file, line, rule) so
 * output is deterministic regardless of directory iteration order.
 * Fixture trees (any path containing "tools/lint/fixtures") are
 * skipped — they exist to violate the rules. When @p scanned_out is
 * non-null it receives the relative paths of every scanned file.
 * @throws std::runtime_error when a path does not exist or a file
 *         cannot be read.
 */
std::vector<Finding> lintTree(const std::string &root,
                              const std::vector<std::string> &paths,
                              std::vector<std::string> *scanned_out
                              = nullptr);

/** "file:line: [Rn] message" — clickable in editors and CI logs. */
std::string formatFinding(const Finding &finding);

} // namespace diffy::lint

#endif // DIFFY_TOOLS_LINT_LINT_HH
