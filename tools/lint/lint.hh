/**
 * @file
 * diffy-lint: project-invariant static analysis.
 *
 * A deliberately small, dependency-free analysis engine that
 * machine-checks the contracts the compiler cannot know about (see
 * DESIGN.md §10 and §15 for the rule catalogue and the reasoning
 * behind each rule). Since v2 it runs in two passes: pass 1 parses
 * every file into a lightweight model (model.hh — include edges, loop
 * extents, lock acquisitions, allocation sites), pass 2 runs the
 * rules (analyses.hh) — per-file rules over one model, cross-file
 * analyses over the whole tree:
 *
 *   R1  no float/double accumulation inside src/sim tally loops —
 *       integer tallies only, converted at stat assembly (the
 *       byte-identical-sweep determinism contract);
 *   R2  every thread_local memo cache registers a clear hook with
 *       DIFFY_REGISTER_THREAD_CACHE (stale-memo hazard across sweep
 *       reconfigurations);
 *   R3  no RNG construction outside src/common/rng — all randomness
 *       flows through seeded splitmix64 job RNGs;
 *   R4  no raw BitReader::read()/readSigned() decode calls outside the
 *       codec internals (src/encode) — external callers use the
 *       structured tryDecode/DecodeResult path;
 *   R5  header hygiene — no namespace-scope `using namespace` in
 *       headers, canonical DIFFY_<PATH>_HH include guards;
 *   R6  no std::chrono::*_clock::now() outside src/obs + src/runtime —
 *       timing flows through obs::Span / obs::ScopedLatency, keeping
 *       the clock reads (and the stdout-purity rule around them)
 *       centralized;
 *   R7  no bare `catch (...)` that swallows the failure — the handler
 *       must rethrow (throw / rethrow_exception), capture it
 *       (current_exception), classify it into the failure taxonomy
 *       (classifyException / SweepReport), or at minimum record it to
 *       an obs counter, so no error path is silently dropped
 *       (DESIGN.md §12);
 *   R8  raw SIMD intrinsics and vendor intrinsics headers live only
 *       in src/common/simd* — kernels go through the dispatch table;
 *   R9  allocation discipline in the hot paths (src/sim, src/serve,
 *       src/encode): no new/make_unique/make_shared, no un-pre-sized
 *       vector growth, no string building inside loop bodies — the
 *       gating rule for the arena refactor (ROADMAP item 5);
 *   R10 lock discipline over src/runtime, src/serve and
 *       src/core/trace_cache: the cross-file lock-acquisition-order
 *       graph must be cycle-free (no potential deadlocks) and no
 *       known-blocking call is made while a lock is held;
 *   L1  include-graph layering: the actual #include graph between
 *       src/ top-level directories must match the layer DAG declared
 *       in tools/lint/layers.txt — no cycles, no undeclared edges,
 *       no declared-but-unused edges.
 *
 * The scanner strips comments and string/char literals — including
 * raw string literals R"(...)" — before rule matching, so rule
 * patterns quoted in prose (or in this linter's own sources) never
 * fire. Findings can be suppressed at the line level:
 *
 *     some_violation();  // diffy-lint: allow(R4): testing raw reads
 *
 * A suppression on line N covers findings on lines N and N+1 exactly
 * (so a pure comment line may precede the offending statement; a
 * blank line in between voids it). `allow(R9,R10)` lists and several
 * allow() markers on one line all apply. This is the only
 * code-level escape; rules with legitimate blanket exemptions encode
 * them as path scopes, and pre-existing findings being burned down
 * live in tools/lint/baseline.txt (see Baseline below).
 */

#ifndef DIFFY_TOOLS_LINT_LINT_HH
#define DIFFY_TOOLS_LINT_LINT_HH

#include <string>
#include <vector>

namespace diffy::lint
{

/** One rule violation. */
struct Finding
{
    std::string file; ///< path relative to the lint root
    int line = 0;     ///< 1-based
    std::string rule; ///< "R1".."R10", "L1"
    std::string message;
};

/** Catalogue entry for --list-rules and the docs. */
struct RuleInfo
{
    std::string id;
    std::string summary;
};

/** The rule catalogue, in rule-id order (R1..R10, then L1). */
std::vector<RuleInfo> ruleCatalog();

/**
 * Lint one file. @p rel_path is the path relative to the lint root —
 * rule path scopes (src/sim for R1, src/encode for R4, ...) and the
 * canonical guard name (R5) derive from it. Runs every per-file rule
 * plus the single-file slice of the cross-file analyses (a lock-order
 * inversion between two functions of the same file is reported here;
 * L1 needs the tree and a layers file, so only lintTree runs it).
 */
std::vector<Finding> lintFile(const std::string &rel_path,
                              const std::string &contents);

/** Knobs for lintTree beyond the scan roots. */
struct TreeOptions
{
    /**
     * Layer-DAG file for L1. Empty = auto-discover
     * <root>/tools/lint/layers.txt, then <root>/../tools/lint/
     * layers.txt (so `--root src` run from the repo root still finds
     * it); L1 is skipped when no file is found.
     */
    std::string layersFile;
    bool layering = true; ///< false disables L1 outright
};

/**
 * Lint every .cc/.hh file under the given paths (files or directories,
 * relative to @p root). Results are sorted by (file, line, rule) so
 * output is deterministic regardless of directory iteration order.
 * Fixture trees (any path containing "tools/lint/fixtures") are
 * skipped — they exist to violate the rules. When @p root itself is a
 * `src` directory, reported paths are normalized back to `src/...` so
 * rule path scopes and the layer DAG apply identically to
 * `--root . src` and `--root src .`. When @p scanned_out is non-null
 * it receives the relative paths of every scanned file.
 * @throws std::runtime_error when a path does not exist or a file
 *         cannot be read.
 */
std::vector<Finding> lintTree(const std::string &root,
                              const std::vector<std::string> &paths,
                              const TreeOptions &options,
                              std::vector<std::string> *scanned_out
                              = nullptr);

/** lintTree with default options (auto-discovered layer DAG). */
std::vector<Finding> lintTree(const std::string &root,
                              const std::vector<std::string> &paths,
                              std::vector<std::string> *scanned_out
                              = nullptr);

/* ------------------------------------------------------------------ */
/* Baseline (tools/lint/baseline.txt)                                  */
/* ------------------------------------------------------------------ */

/**
 * One baselined pre-existing finding. Entries are formatFinding()
 * lines (`file:line: [Rn] message...`); only file, line and rule
 * participate in matching, the message tail is documentation.
 */
struct BaselineEntry
{
    std::string file;
    int line = 0;
    std::string rule;
    int specLine = 0; ///< 1-based line in baseline.txt (diagnostics)
};

/** The parsed baseline: '#' comments and blank lines are skipped. */
struct Baseline
{
    std::vector<BaselineEntry> entries;
    /// Malformed lines: (line number, text). The CLI reports these.
    std::vector<std::pair<int, std::string>> errors;
};

Baseline parseBaseline(const std::string &contents);

/** Findings partitioned against a baseline. */
struct BaselineSplit
{
    std::vector<Finding> fresh;    ///< not baselined: these gate CI
    std::vector<Finding> excluded; ///< baselined, listed explicitly
    /// Baseline entries that matched nothing — stale, remove them.
    std::vector<BaselineEntry> stale;
};

BaselineSplit applyBaseline(const std::vector<Finding> &findings,
                            const Baseline &baseline);

/** "file:line: [Rn] message" — clickable in editors and CI logs. */
std::string formatFinding(const Finding &finding);

} // namespace diffy::lint

#endif // DIFFY_TOOLS_LINT_LINT_HH
