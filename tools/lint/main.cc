/**
 * @file
 * diffy-lint CLI.
 *
 *   diffy_lint [--root DIR] [--list-rules] [--sarif FILE]
 *              [--baseline FILE | --no-baseline] [--update-baseline]
 *              [--layers FILE] [PATH...]
 *
 * PATHs (files or directories, relative to --root, default ".") are
 * scanned for .cc/.hh files; with no PATH the project default
 * `src bench tests tools` is used (pruned to the subset that exists
 * under --root, so `--root src` scans the src tree directly).
 *
 * The baseline (default: <root>/tools/lint/baseline.txt, falling back
 * to <root>/../tools/lint/baseline.txt, skipped when absent) excludes
 * pre-existing findings from the gate: they are still listed
 * explicitly on stderr, and carried as suppressed results in the
 * SARIF output, but only NON-baselined findings fail the run.
 * `--update-baseline` rewrites the baseline to the current findings.
 *
 * Exit status: 0 clean (baseline-excluded findings allowed),
 * 1 non-baselined findings, 2 usage or I/O error — CI treats any
 * nonzero as a failed gate.
 */

#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "lint.hh"
#include "sarif.hh"

namespace
{

namespace fs = std::filesystem;

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--root DIR] [--list-rules] [--sarif FILE]\n"
        "          [--baseline FILE | --no-baseline] "
        "[--update-baseline]\n"
        "          [--layers FILE] [PATH...]\n",
        argv0);
    return 2;
}

/** `--flag value` / `--flag=value` into @p out; -1 error, 0 no, 1 yes. */
int
flagValue(int argc, char **argv, int &i, const std::string &flag,
          std::string &out)
{
    const std::string arg = argv[i];
    if (arg == flag) {
        if (i + 1 >= argc)
            return -1;
        out = argv[++i];
        return out.empty() ? -1 : 1;
    }
    if (arg.rfind(flag + "=", 0) == 0) {
        out = arg.substr(flag.size() + 1);
        return out.empty() ? -1 : 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string sarifPath;
    std::string baselinePath;
    std::string layersPath;
    std::vector<std::string> paths;
    bool listRules = false;
    bool noBaseline = false;
    bool updateBaseline = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        int got;
        if ((got = flagValue(argc, argv, i, "--root", root)) != 0) {
            if (got < 0)
                return usage(argv[0]);
        } else if ((got = flagValue(argc, argv, i, "--sarif",
                                    sarifPath)) != 0) {
            if (got < 0)
                return usage(argv[0]);
        } else if ((got = flagValue(argc, argv, i, "--baseline",
                                    baselinePath)) != 0) {
            if (got < 0)
                return usage(argv[0]);
        } else if ((got = flagValue(argc, argv, i, "--layers",
                                    layersPath)) != 0) {
            if (got < 0)
                return usage(argv[0]);
        } else if (arg == "--list-rules") {
            listRules = true;
        } else if (arg == "--no-baseline") {
            noBaseline = true;
        } else if (arg == "--update-baseline") {
            updateBaseline = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }

    if (listRules) {
        for (const auto &rule : diffy::lint::ruleCatalog())
            std::printf("%s  %s\n", rule.id.c_str(),
                        rule.summary.c_str());
        return 0;
    }

    if (paths.empty()) {
        // Project default, pruned to what exists under --root so
        // `--root src` degrades to scanning the src tree itself.
        for (const char *p : {"src", "bench", "tests", "tools"})
            if (fs::is_directory(fs::path(root) / p))
                paths.push_back(p);
        if (paths.empty())
            paths = {"."};
    }

    try {
        diffy::lint::TreeOptions options;
        options.layersFile = layersPath;
        std::vector<std::string> scanned;
        const std::vector<diffy::lint::Finding> findings =
            diffy::lint::lintTree(root, paths, options, &scanned);

        // Resolve the baseline: explicit path, or the checked-in
        // default next to the layer DAG.
        fs::path baselineFile;
        if (!baselinePath.empty()) {
            baselineFile = baselinePath;
            if (!updateBaseline &&
                !fs::is_regular_file(baselineFile))
                throw std::runtime_error(
                    "diffy-lint: no such baseline: " + baselinePath);
        } else if (!noBaseline) {
            for (const fs::path &candidate :
                 {fs::path(root) / "tools/lint/baseline.txt",
                  fs::path(root) / ".." / "tools/lint/baseline.txt"}) {
                if (fs::is_regular_file(candidate)) {
                    baselineFile = candidate;
                    break;
                }
            }
        }

        if (updateBaseline) {
            if (baselineFile.empty())
                baselineFile =
                    fs::path(root) / "tools/lint/baseline.txt";
            std::ofstream out(baselineFile, std::ios::binary);
            if (!out)
                throw std::runtime_error(
                    "diffy-lint: cannot write baseline " +
                    baselineFile.string());
            out << "# diffy-lint baseline: pre-existing findings "
                   "excluded from the gate.\n"
                   "# One formatFinding() line each (file:line: "
                   "[rule] message); only file, line\n"
                   "# and rule match. Burn entries down; regenerate "
                   "with --update-baseline.\n";
            for (const auto &finding : findings)
                out << diffy::lint::formatFinding(finding) << "\n";
            std::fprintf(stderr,
                         "diffy-lint: wrote %zu baseline entr%s to "
                         "%s\n",
                         findings.size(),
                         findings.size() == 1 ? "y" : "ies",
                         baselineFile.string().c_str());
            return 0;
        }

        diffy::lint::Baseline baseline;
        if (!noBaseline && !baselineFile.empty()) {
            std::ifstream in(baselineFile, std::ios::binary);
            std::string contents(
                (std::istreambuf_iterator<char>(in)),
                std::istreambuf_iterator<char>());
            baseline = diffy::lint::parseBaseline(contents);
            for (const auto &[line, text] : baseline.errors)
                std::fprintf(stderr,
                             "diffy-lint: malformed baseline entry "
                             "%s:%d: %s\n",
                             baselineFile.string().c_str(), line,
                             text.c_str());
        }
        const diffy::lint::BaselineSplit split =
            diffy::lint::applyBaseline(findings, baseline);

        for (const auto &finding : split.fresh)
            std::printf("%s\n",
                        diffy::lint::formatFinding(finding).c_str());
        for (const auto &finding : split.excluded)
            std::fprintf(
                stderr, "baselined: %s\n",
                diffy::lint::formatFinding(finding).c_str());
        for (const auto &entry : split.stale)
            std::fprintf(stderr,
                         "diffy-lint: stale baseline entry (line %d: "
                         "%s:%d [%s]) matches nothing — remove it\n",
                         entry.specLine, entry.file.c_str(),
                         entry.line, entry.rule.c_str());

        if (!sarifPath.empty()) {
            std::ofstream out(sarifPath, std::ios::binary);
            if (!out)
                throw std::runtime_error(
                    "diffy-lint: cannot write SARIF file " +
                    sarifPath);
            out << diffy::lint::sarifJson(split.fresh,
                                          split.excluded);
        }

        std::fprintf(stderr,
                     "diffy-lint: %zu file(s), %zu finding(s), %zu "
                     "baseline-excluded, %zu stale baseline "
                     "entr%s\n",
                     scanned.size(), split.fresh.size(),
                     split.excluded.size(), split.stale.size(),
                     split.stale.size() == 1 ? "y" : "ies");
        return split.fresh.empty() ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}
