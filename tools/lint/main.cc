/**
 * @file
 * diffy-lint CLI.
 *
 *   diffy_lint [--root DIR] [--list-rules] [PATH...]
 *
 * PATHs (files or directories, relative to --root, default ".") are
 * scanned for .cc/.hh files; with no PATH the project default
 * `src bench tests tools` is used. Exit status: 0 clean, 1 findings,
 * 2 usage or I/O error — CI treats any nonzero as a failed gate.
 */

#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "lint.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--root DIR] [--list-rules] [PATH...]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::vector<std::string> paths;
    bool listRules = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc)
                return usage(argv[0]);
            root = argv[++i];
        } else if (arg.rfind("--root=", 0) == 0) {
            root = arg.substr(std::string("--root=").size());
            if (root.empty())
                return usage(argv[0]);
        } else if (arg == "--list-rules") {
            listRules = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            paths.push_back(arg);
        }
    }

    if (listRules) {
        for (const auto &rule : diffy::lint::ruleCatalog())
            std::printf("%s  %s\n", rule.id.c_str(),
                        rule.summary.c_str());
        return 0;
    }

    if (paths.empty())
        paths = {"src", "bench", "tests", "tools"};

    try {
        std::vector<std::string> scanned;
        const std::vector<diffy::lint::Finding> findings =
            diffy::lint::lintTree(root, paths, &scanned);
        for (const auto &finding : findings)
            std::printf("%s\n",
                        diffy::lint::formatFinding(finding).c_str());
        std::fprintf(stderr, "diffy-lint: %zu file(s), %zu finding(s)\n",
                     scanned.size(), findings.size());
        return findings.empty() ? 0 : 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }
}
