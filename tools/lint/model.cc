#include "model.hh"

#include <algorithm>
#include <cctype>
#include <regex>

namespace diffy::lint
{

namespace
{

/* ------------------------------------------------------------------ */
/* Includes (from RAW lines: the sanitizer blanks the quoted path)     */
/* ------------------------------------------------------------------ */

void
harvestIncludes(const std::vector<std::string> &raw_lines,
                FileModel &model)
{
    static const std::regex inc(
        R"re(^\s*#\s*include\s*"([^"]+)")re");
    for (std::size_t li = 0; li < raw_lines.size(); ++li) {
        std::smatch m;
        if (std::regex_search(raw_lines[li], m, inc))
            model.includes.push_back(
                IncludeSite{static_cast<int>(li) + 1, m[1].str()});
    }
}

/* ------------------------------------------------------------------ */
/* Allocation / growth sites (loop-depth aware)                        */
/* ------------------------------------------------------------------ */

void
harvestGrowth(const std::vector<std::string> &lines, FileModel &model)
{
    static const std::regex newExpr(R"(\bnew\s+[A-Za-z_(])");
    static const std::regex makeX(R"(\bmake_(unique|shared)\s*<)");
    static const std::regex containerGrowth(
        R"(([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*(?:\.|->)\s*(push_back|emplace_back|resize|reserve)\s*\()");
    static const std::regex stringDecl(
        R"(\bstring\s+([A-Za-z_]\w*))");
    static const std::regex toString(R"(\bto_string\s*\()");
    static const std::regex sstreamDecl(
        R"(\b[io]?stringstream\s+([A-Za-z_]\w*))");
    // `ByteVec buf(scratchAlloc<..>())`, `stream = TensorI32(...,
    // scratchAlloc<..>())`: the object named left of the initializer
    // draws from the frame arena, exempting it from R9.
    static const std::regex arenaDecl(
        R"(\b([A-Za-z_]\w*)\s*(?:\(|\{|=)[^;]*scratchAlloc)");

    LoopTracker tracker;
    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        const int lineNo = static_cast<int>(li) + 1;
        const std::vector<int> depth = tracker.depths(line);
        auto depthAt = [&](std::ptrdiff_t pos) {
            return depth[static_cast<std::size_t>(pos)];
        };

        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            containerGrowth);
             it != std::sregex_iterator(); ++it) {
            const std::string chain = (*it)[1].str();
            const std::string call = (*it)[2].str();
            const int d = depthAt(it->position());
            if (d == 0) {
                if (call == "reserve" || call == "resize")
                    model.presized.insert(chain);
                continue;
            }
            model.growth.push_back(
                GrowthSite{lineNo, call, chain, d});
        }

        auto scanSimple = [&](const std::regex &re,
                              const char *kind, int group) {
            for (auto it = std::sregex_iterator(line.begin(),
                                                line.end(), re);
                 it != std::sregex_iterator(); ++it) {
                const int d = depthAt(it->position());
                if (d == 0)
                    continue;
                std::string what =
                    group >= 0 ? (*it)[group].str() : it->str();
                model.growth.push_back(
                    GrowthSite{lineNo, kind, std::move(what), d});
            }
        };
        // Arena-backed objects are harvested at *any* depth: a
        // scratch-allocated buffer rebuilt per iteration still
        // recycles arena storage rather than hitting the heap.
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            arenaDecl);
             it != std::sregex_iterator(); ++it)
            model.arenaBacked.insert((*it)[1].str());

        scanSimple(newExpr, "new", -1);
        scanSimple(makeX, "make_unique", 1);
        scanSimple(toString, "to_string", -1);
        scanSimple(sstreamDecl, "ostringstream", 1);

        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            stringDecl);
             it != std::sregex_iterator(); ++it) {
            const int d = depthAt(it->position());
            if (d == 0)
                continue;
            // `string name(...)` / `string name() const` is a
            // function declaration, not a buffer build.
            std::size_t after =
                static_cast<std::size_t>(it->position()) +
                it->str().size();
            while (after < line.size() &&
                   std::isspace(static_cast<unsigned char>(
                       line[after])))
                ++after;
            if (after < line.size() && line[after] == '(')
                continue;
            model.growth.push_back(
                GrowthSite{lineNo, "string", (*it)[1].str(), d});
        }
    }
}

/* ------------------------------------------------------------------ */
/* Lock acquisitions, ordering edges and blocking-while-locked         */
/* ------------------------------------------------------------------ */

/** `this->mu_`, `shard->mutex`, `&r.mutex` → `mu_`, `mutex`, `mutex`. */
std::string
normalizeMutexName(std::string arg)
{
    arg.erase(std::remove_if(arg.begin(), arg.end(),
                             [](unsigned char c) {
                                 return std::isspace(c) != 0;
                             }),
              arg.end());
    while (!arg.empty() && (arg.front() == '&' || arg.front() == '*'))
        arg.erase(arg.begin());
    std::size_t pos;
    while ((pos = arg.find("->")) != std::string::npos)
        arg = arg.substr(pos + 2);
    while ((pos = arg.find('.')) != std::string::npos)
        arg = arg.substr(pos + 1);
    return arg;
}

bool
isLockTag(const std::string &arg)
{
    return arg.find("adopt_lock") != std::string::npos ||
           arg.find("defer_lock") != std::string::npos ||
           arg.find("try_to_lock") != std::string::npos;
}

void
harvestLocks(const std::vector<std::string> &lines, FileModel &model)
{
    // One guard scope: an RAII guard variable (or a bare
    // `mu.lock()`), the normalized mutex it holds, and the brace
    // depth its scope dies at. `lock.unlock()` deactivates it early,
    // `lock.lock()` re-arms it (the trace-cache drop-the-lock-before-
    // blocking idiom).
    struct Guard
    {
        std::string var;
        std::string mutex;
        int depth = 0;
        bool active = true;
    };

    static const std::regex guardDecl(
        R"(\b(lock_guard|unique_lock|scoped_lock|shared_lock)\s*(?:<[^;{}<>]*(?:<[^<>]*>)?[^;{}<>]*>)?\s+([A-Za-z_]\w*)\s*\(([^;{}]*)\))");
    static const std::regex memberCall(
        R"(([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*(?:\.|->)\s*(lock|unlock)\s*\(\s*\))");
    // Calls that block the calling thread. Condition-variable waits
    // are deliberately absent: cv.wait(lock) releases the lock while
    // blocked, which is the sanctioned pattern.
    static const std::regex blockingCall(
        R"(\b(sleep_for|sleep_until|fopen|getline|system)\s*\(|\b([A-Za-z_]\w*(?:(?:\.|->)[A-Za-z_]\w*)*)\s*(?:\.|->)\s*(join)\s*\(\s*\)|\b([io]?fstream)\s+[A-Za-z_]\w*\s*\()");

    enum class Kind
    {
        Acquire,
        MemberLock,
        MemberUnlock,
        Blocking,
    };
    struct Event
    {
        std::size_t col = 0;
        Kind kind = Kind::Acquire;
        std::string var;                  ///< guard/object name
        std::vector<std::string> mutexes; ///< normalized args
        std::string call;                 ///< blocking callee
    };

    std::vector<Guard> guards;
    int braceDepth = 0;

    for (std::size_t li = 0; li < lines.size(); ++li) {
        const std::string &line = lines[li];
        const int lineNo = static_cast<int>(li) + 1;

        std::vector<Event> events;
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            guardDecl);
             it != std::sregex_iterator(); ++it) {
            Event e;
            e.col = static_cast<std::size_t>(it->position());
            e.kind = Kind::Acquire;
            e.var = (*it)[2].str();
            std::string args = (*it)[3].str();
            std::string::size_type start = 0;
            while (start <= args.size()) {
                std::string::size_type comma = args.find(',', start);
                std::string one =
                    comma == std::string::npos
                        ? args.substr(start)
                        : args.substr(start, comma - start);
                if (!one.empty() && !isLockTag(one)) {
                    std::string norm = normalizeMutexName(one);
                    if (!norm.empty())
                        e.mutexes.push_back(std::move(norm));
                }
                if (comma == std::string::npos)
                    break;
                start = comma + 1;
            }
            if (!e.mutexes.empty())
                events.push_back(std::move(e));
        }
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            memberCall);
             it != std::sregex_iterator(); ++it) {
            Event e;
            e.col = static_cast<std::size_t>(it->position());
            e.kind = (*it)[2].str() == "lock" ? Kind::MemberLock
                                              : Kind::MemberUnlock;
            e.var = (*it)[1].str();
            events.push_back(std::move(e));
        }
        for (auto it = std::sregex_iterator(line.begin(), line.end(),
                                            blockingCall);
             it != std::sregex_iterator(); ++it) {
            Event e;
            e.col = static_cast<std::size_t>(it->position());
            e.kind = Kind::Blocking;
            for (int g : {1, 3, 4}) {
                if ((*it)[static_cast<std::size_t>(g)].matched) {
                    e.call = (*it)[static_cast<std::size_t>(g)].str();
                    break;
                }
            }
            events.push_back(std::move(e));
        }
        std::sort(events.begin(), events.end(),
                  [](const Event &a, const Event &b) {
                      return a.col < b.col;
                  });

        auto acquire = [&](const std::vector<std::string> &mutexes,
                           const std::string &var) {
            for (const std::string &m : mutexes) {
                for (const Guard &g : guards) {
                    if (g.active && g.mutex != m)
                        model.lockEdges.push_back(
                            LockOrderEdge{lineNo, g.mutex, m});
                }
                model.mutexes.insert(m);
            }
            // A scoped_lock's mutexes are acquired atomically — the
            // guards land after the edges so no intra-decl edge forms.
            for (const std::string &m : mutexes)
                guards.push_back(Guard{var, m, braceDepth, true});
        };

        std::size_t next = 0;
        for (std::size_t col = 0; col <= line.size(); ++col) {
            while (next < events.size() && events[next].col == col) {
                const Event &e = events[next];
                ++next;
                switch (e.kind) {
                  case Kind::Acquire:
                    acquire(e.mutexes, e.var);
                    break;
                  case Kind::MemberLock: {
                    bool rearmed = false;
                    for (Guard &g : guards) {
                        if (g.var == e.var && !g.active) {
                            g.active = true;
                            rearmed = true;
                            // Re-locking while other locks are held
                            // is an acquisition for ordering purposes.
                            for (const Guard &h : guards)
                                if (h.active && h.mutex != g.mutex &&
                                    &h != &g)
                                    model.lockEdges.push_back(
                                        LockOrderEdge{lineNo, h.mutex,
                                                      g.mutex});
                            break;
                        }
                    }
                    if (!rearmed) {
                        bool isGuardVar = false;
                        for (const Guard &g : guards)
                            if (g.var == e.var && g.active)
                                isGuardVar = true;
                        if (!isGuardVar)
                            acquire({normalizeMutexName(e.var)},
                                    e.var);
                    }
                    break;
                  }
                  case Kind::MemberUnlock: {
                    const std::string norm =
                        normalizeMutexName(e.var);
                    for (Guard &g : guards) {
                        if (g.active &&
                            (g.var == e.var || g.mutex == norm)) {
                            g.active = false;
                            break;
                        }
                    }
                    break;
                  }
                  case Kind::Blocking: {
                    for (const Guard &g : guards) {
                        if (g.active) {
                            model.blocking.push_back(BlockingSite{
                                lineNo, e.call, g.mutex});
                            break;
                        }
                    }
                    break;
                  }
                }
            }
            if (col == line.size())
                break;
            const char c = line[col];
            if (c == '{') {
                ++braceDepth;
            } else if (c == '}') {
                guards.erase(
                    std::remove_if(guards.begin(), guards.end(),
                                   [&](const Guard &g) {
                                       return g.depth >= braceDepth;
                                   }),
                    guards.end());
                --braceDepth;
                if (braceDepth < 0)
                    braceDepth = 0;
            }
        }
    }
}

} // namespace

FileModel
buildFileModel(const std::string &rel_path,
               const std::string &contents)
{
    FileModel model;
    model.relPath = rel_path;
    model.rawLines = splitLines(contents);
    model.lines = splitLines(sanitize(contents));
    model.allow = Suppressions(model.rawLines);
    harvestIncludes(model.rawLines, model);
    harvestGrowth(model.lines, model);
    harvestLocks(model.lines, model);
    return model;
}

} // namespace diffy::lint
