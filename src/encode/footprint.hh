/**
 * @file
 * Storage footprint and off-chip traffic accounting (Figs 5 and 14,
 * Table V).
 *
 * Footprint: total bits to hold the imaps of every layer under a
 * scheme (the paper's Fig 5 metric, normalized to 16b storage).
 *
 * Traffic: bytes moved off-chip per frame under the two-window-row
 * dataflow of Section III-F — every weight read once per layer, every
 * imap read once, every omap written once. Intermediate feature maps
 * are therefore counted twice (one write by the producer layer, one
 * read by the consumer); metadata is included via the codecs' exact
 * bit counts.
 *
 * AM sizing (Table V): the activation memory must hold, for the worst
 * layer, enough input rows for two complete rows of windows at the
 * target frame width, stored at the scheme's measured bits/value.
 */

#ifndef DIFFY_ENCODE_FOOTPRINT_HH
#define DIFFY_ENCODE_FOOTPRINT_HH

#include <vector>

#include "arch/config.hh"
#include "nn/trace.hh"

namespace diffy
{

/** Per-layer compressed-size measurement. */
struct LayerFootprint
{
    std::string layerName;
    std::size_t values = 0;     ///< activation count at trace resolution
    double bitsPerValue = 0.0;  ///< measured, metadata included
    int profiledBits = 16;      ///< per-layer profiled precision used
};

/** Whole-network footprint under one scheme. */
struct NetworkFootprint
{
    Compression scheme = Compression::None;
    std::vector<LayerFootprint> layers;

    /** Total imap bits at the trace resolution. */
    double totalBits() const;

    /** Ratio of this footprint to 16b/value storage. */
    double normalizedTo16b() const;
};

/**
 * Measure the per-layer compressed imap sizes of a trace under a
 * scheme. @p profile supplies per-layer precisions for Profiled; it
 * may be empty for the other schemes.
 */
NetworkFootprint measureFootprint(const NetworkTrace &trace,
                                  Compression scheme,
                                  const std::vector<int> &profile = {});

/**
 * Off-chip traffic in bytes for one frame at the target resolution,
 * extrapolated from the measured bits/value of each layer's imap.
 * Includes weights (16b, once per layer), all imap reads and omap
 * writes. The final omap is charged at its producing layer's
 * compression ratio.
 */
double frameTrafficBytes(const NetworkTrace &trace, Compression scheme,
                         int frame_h, int frame_w,
                         const std::vector<int> &profile = {});

/**
 * Per-layer off-chip traffic (bytes at target resolution) in layer
 * order: weights + imap read + omap write, used by the memory-system
 * overlap model.
 */
std::vector<double> perLayerTrafficBytes(const NetworkTrace &trace,
                                         Compression scheme,
                                         int frame_h, int frame_w,
                                         const std::vector<int> &profile
                                         = {});

/**
 * Drop the calling thread's memoized bits/value and profiled-precision
 * measurements. Registered with the thread-cache registry
 * (common/cache_registry.hh); exposed for benchmarks and tests that
 * need a cold cache.
 */
void clearFootprintCaches();

/**
 * Activation-memory bytes required by the worst layer of a trace at
 * the target frame width under the paper's dataflow (see file
 * comment). Uses measured bits/value per layer.
 */
double amRequiredBytes(const NetworkTrace &trace, Compression scheme,
                       int frame_w,
                       const std::vector<int> &profile = {});

} // namespace diffy

#endif // DIFFY_ENCODE_FOOTPRINT_HH
