/**
 * @file
 * Activation compression codecs (paper Section II-E, Figs 5 and 14).
 *
 * Every scheme is implemented as a real encoder/decoder pair over a
 * bitstream, so compressed sizes are *measured*, metadata included,
 * and losslessness is verified by round-trip tests:
 *
 *  - NoCompression : 16b per value.
 *  - RLEz          : (4b zero-run, 16b value) pairs; runs longer than
 *                    15 continue through explicit zero entries.
 *  - RLE           : (4b run-length, 16b value) pairs over repeated
 *                    values (run length 1..16 per entry).
 *  - Profiled      : fixed per-layer precision p; values saturate to
 *                    p bits (lossless whenever p covers the layer,
 *                    which is how the profiler picks p).
 *  - RawD<g>       : dynamic per-group precision, groups of g values,
 *                    4b width header per group (Dynamic Stripes).
 *  - DeltaD<g>     : RawD over the X-axis delta stream (row-leading
 *                    values raw). Deltas of int16 data need up to 17
 *                    bits, so the group header is 5 bits — one more
 *                    than the paper's raw-value header — keeping the
 *                    codec lossless for arbitrary inputs.
 *
 * Decoding is hardened: tryDecode() accepts *any* byte sequence and
 * returns either a valid tensor or a structured error (DecodeResult)
 * — never a crash, hang, or out-of-bounds read. Encoders additionally
 * record where their metadata fields (group-precision headers, run
 * lengths) sit in the stream, so the fault-injection subsystem
 * (src/fault) can target header bits and payload bits separately.
 */

#ifndef DIFFY_ENCODE_SCHEMES_HH
#define DIFFY_ENCODE_SCHEMES_HH

#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/** Bit interval [first, first + count) inside an encoded stream. */
struct BitRange
{
    std::size_t first = 0;
    std::size_t count = 0;

    bool contains(std::size_t bit) const
    {
        return bit >= first && bit < first + count;
    }

    bool operator==(const BitRange &o) const = default;
};

/** Encoded form of one tensor. */
struct EncodedTensor
{
    Shape3 shape;
    std::size_t bits = 0; ///< exact payload+metadata size in bits
    /// Payload bytes. A ByteVec so encoders can move an arena-backed
    /// BitWriter buffer in without a heap copy (common/pool.hh).
    ByteVec bytes;
    /**
     * Metadata fields of the stream (group-precision headers, RLE run
     * lengths), in stream order. Empty for schemes without metadata.
     * Fault injection uses these to separate header from payload bits.
     */
    std::vector<BitRange> headerBits;

    /**
     * Integrity footer (see sealEncoded()): CRC-32C of the payload
     * bytes plus the bit length at seal time. Not part of the faultable
     * stream — fault injection targets [0, bits), so the footer plays
     * the role of clean out-of-band framing, exactly like the CRC at
     * the end of an on-disk block. Unsealed streams (sealed == false)
     * skip verification entirely.
     */
    bool sealed = false;
    std::uint32_t payloadCrc = 0;
    std::uint64_t payloadBits = 0;
};

/**
 * Record the integrity footer: CRC-32C over the payload bytes and the
 * current bit count. Call after encode() and before the stream is
 * stored or transported; verifyEncoded()/tryDecodeVerified() then
 * detect any later payload corruption.
 */
void sealEncoded(EncodedTensor &enc);

/**
 * True when @p enc passes its integrity footer: bit length unchanged
 * and payload CRC matching. Unsealed streams vacuously pass (there is
 * nothing to check against).
 */
bool verifyEncoded(const EncodedTensor &enc);

/** Outcome classes of a hardened decode. */
enum class DecodeStatus
{
    Ok,          ///< stream decoded to a complete tensor
    BadShape,    ///< negative/overflowing dims or over the decode cap
    Truncated,   ///< stream ended before the tensor was complete
    BadHeader,   ///< a declared group precision exceeds the legal width
    BadChecksum  ///< integrity footer mismatch (detected corruption)
};

std::string to_string(DecodeStatus s);

/**
 * Structured decode failure: thrown by ActivationCodec::decode() and
 * the serialized-stream loaders, carrying the DecodeStatus so callers
 * (the sweep scheduler's failure taxonomy above all) can classify the
 * error without parsing the message.
 */
class DecodeError : public std::runtime_error
{
  public:
    DecodeError(DecodeStatus status, const std::string &message)
        : std::runtime_error(message), status_(status)
    {}

    DecodeStatus status() const { return status_; }

  private:
    DecodeStatus status_;
};

/**
 * Result of a hardened decode: either a valid tensor (ok()) or a
 * structured error with diagnostics. The tensor is only meaningful
 * when ok() — on error it holds whatever prefix decoded cleanly,
 * which the fault-propagation analyzer inspects but ordinary callers
 * should discard.
 */
struct DecodeResult
{
    DecodeStatus status = DecodeStatus::Ok;
    TensorI16 tensor;
    /** Human-readable diagnostic; empty when ok(). */
    std::string message;
    /** Bit position of the first violation (errors only). */
    std::size_t errorBit = 0;
    /** Values written before the error (== volume when ok()). */
    std::size_t valuesDecoded = 0;

    bool ok() const { return status == DecodeStatus::Ok; }
};

/**
 * Upper bound on the element count tryDecode() will allocate for.
 * A hostile EncodedTensor can declare any shape; this cap turns an
 * attempted multi-GB allocation into a clean BadShape error.
 */
inline constexpr std::size_t kMaxDecodeElements = std::size_t{1} << 28;

/** Interface of an activation codec. */
class ActivationCodec
{
  public:
    virtual ~ActivationCodec() = default;

    virtual std::string name() const = 0;

    /** Encode a tensor; the result records its exact bit count. */
    virtual EncodedTensor encode(const TensorI16 &t) const = 0;

    /**
     * Hardened decode: any byte sequence yields a valid tensor or a
     * clean structured error — never undefined behaviour.
     */
    virtual DecodeResult tryDecode(const EncodedTensor &enc) const = 0;

    /**
     * Self-verifying decode: when @p enc is sealed, the integrity
     * footer is checked first and a mismatch returns BadChecksum —
     * corruption is *detected* before the prefix-sum reconstruction
     * can smear it into a plausible-looking wrong tensor. Unsealed
     * streams fall through to tryDecode() unchanged.
     */
    DecodeResult tryDecodeVerified(const EncodedTensor &enc) const;

    /** Decode an encode() result; throws DecodeError on error. */
    TensorI16 decode(const EncodedTensor &enc) const;

    /** Mean bits per value, metadata included. */
    double bitsPerValue(const TensorI16 &t) const;
};

/** 16 bits per value. */
std::unique_ptr<ActivationCodec> makeNoCompressionCodec();

/** Run-length over zeros. */
std::unique_ptr<ActivationCodec> makeRlezCodec();

/** Run-length over repeated values. */
std::unique_ptr<ActivationCodec> makeRleCodec();

/** Fixed per-layer precision (profile-derived). */
std::unique_ptr<ActivationCodec> makeProfiledCodec(int precision_bits);

/** Dynamic per-group precision over raw values. */
std::unique_ptr<ActivationCodec> makeRawDCodec(int group_size);

/**
 * Dynamic per-group precision over X-axis deltas.
 *
 * @param reanchor_interval Error-containment knob: when > 0, every
 *        K-th value of a row (x % K == 0) is stored as an absolute
 *        value rather than a delta. A corrupted delta then propagates
 *        only to the next anchor instead of across the whole row,
 *        trading a small footprint increase for a bounded blast
 *        radius. 0 (the default, the paper's scheme) anchors only at
 *        row heads.
 */
std::unique_ptr<ActivationCodec> makeDeltaDCodec(int group_size,
                                                 int reanchor_interval = 0);

/**
 * Codec for a Compression enum value. Profiled requires the layer's
 * profiled precision; it is ignored by the other schemes. Ideal maps
 * to NoCompression (its effect is modeled as infinite bandwidth by
 * the memory system, not as a smaller stream).
 */
std::unique_ptr<ActivationCodec> makeCodec(Compression scheme,
                                           int profiled_bits = 16);

/**
 * Serialized wire form of an EncodedTensor (DESIGN.md §12):
 *
 *     u32 magic  u32 c  u32 h  u32 w  u64 bits
 *     u32 header_count  (u64 first, u64 count) x header_count
 *     u64 byte_count    payload bytes
 *     u32 crc32c(payload bytes)  u64 bits   <- integrity footer
 *
 * The footer repeats the bit length so a truncated payload and a
 * corrupted payload are distinguishable from each other. saveEncoded()
 * seals @p enc's footer fields as a side effect of computing them.
 */
void saveEncoded(EncodedTensor &enc, std::ostream &os);

/**
 * Load a saveEncoded() stream. The returned tensor is sealed; its
 * footer has been validated against the payload actually read.
 * @throws DecodeError — Truncated on short reads or a bad magic,
 *         BadChecksum on a footer mismatch.
 */
EncodedTensor loadEncoded(std::istream &is);

} // namespace diffy

#endif // DIFFY_ENCODE_SCHEMES_HH
