/**
 * @file
 * Activation compression codecs (paper Section II-E, Figs 5 and 14).
 *
 * Every scheme is implemented as a real encoder/decoder pair over a
 * bitstream, so compressed sizes are *measured*, metadata included,
 * and losslessness is verified by round-trip tests:
 *
 *  - NoCompression : 16b per value.
 *  - RLEz          : (4b zero-run, 16b value) pairs; runs longer than
 *                    15 continue through explicit zero entries.
 *  - RLE           : (4b run-length, 16b value) pairs over repeated
 *                    values (run length 1..16 per entry).
 *  - Profiled      : fixed per-layer precision p; values saturate to
 *                    p bits (lossless whenever p covers the layer,
 *                    which is how the profiler picks p).
 *  - RawD<g>       : dynamic per-group precision, groups of g values,
 *                    4b width header per group (Dynamic Stripes).
 *  - DeltaD<g>     : RawD over the X-axis delta stream (row-leading
 *                    values raw). Deltas of int16 data need up to 17
 *                    bits, so the group header is 5 bits — one more
 *                    than the paper's raw-value header — keeping the
 *                    codec lossless for arbitrary inputs.
 */

#ifndef DIFFY_ENCODE_SCHEMES_HH
#define DIFFY_ENCODE_SCHEMES_HH

#include <memory>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/** Encoded form of one tensor. */
struct EncodedTensor
{
    Shape3 shape;
    std::size_t bits = 0; ///< exact payload+metadata size in bits
    std::vector<std::uint8_t> bytes;
};

/** Interface of an activation codec. */
class ActivationCodec
{
  public:
    virtual ~ActivationCodec() = default;

    virtual std::string name() const = 0;

    /** Encode a tensor; the result records its exact bit count. */
    virtual EncodedTensor encode(const TensorI16 &t) const = 0;

    /** Decode an encode() result back to a tensor. */
    virtual TensorI16 decode(const EncodedTensor &enc) const = 0;

    /** Mean bits per value, metadata included. */
    double bitsPerValue(const TensorI16 &t) const;
};

/** 16 bits per value. */
std::unique_ptr<ActivationCodec> makeNoCompressionCodec();

/** Run-length over zeros. */
std::unique_ptr<ActivationCodec> makeRlezCodec();

/** Run-length over repeated values. */
std::unique_ptr<ActivationCodec> makeRleCodec();

/** Fixed per-layer precision (profile-derived). */
std::unique_ptr<ActivationCodec> makeProfiledCodec(int precision_bits);

/** Dynamic per-group precision over raw values. */
std::unique_ptr<ActivationCodec> makeRawDCodec(int group_size);

/** Dynamic per-group precision over X-axis deltas. */
std::unique_ptr<ActivationCodec> makeDeltaDCodec(int group_size);

/**
 * Codec for a Compression enum value. Profiled requires the layer's
 * profiled precision; it is ignored by the other schemes. Ideal maps
 * to NoCompression (its effect is modeled as infinite bandwidth by
 * the memory system, not as a smaller stream).
 */
std::unique_ptr<ActivationCodec> makeCodec(Compression scheme,
                                           int profiled_bits = 16);

} // namespace diffy

#endif // DIFFY_ENCODE_SCHEMES_HH
