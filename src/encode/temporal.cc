#include "encode/temporal.hh"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "common/aligned.hh"
#include "common/simd.hh"
#include "encode/bitstream.hh"

namespace diffy
{

namespace
{

DecodeResult
truncatedAt(const BitReader &br, std::size_t values_decoded,
            const std::string &what)
{
    DecodeResult r;
    r.status = DecodeStatus::Truncated;
    r.message = "stream ended inside " + what;
    r.errorBit = br.bitPosition();
    r.valuesDecoded = values_decoded;
    return r;
}

/**
 * BadHeader diagnostic assembly, hoisted out of the per-group decode
 * loop (diffy-lint R9); byte-identical to the old in-loop text.
 */
std::string
badHeaderMessage(int bits, int max_bits)
{
    return "temporal group declares " + std::to_string(bits) +
           " bits (legal max " + std::to_string(max_bits) + ")";
}

} // namespace

TemporalCodec::TemporalCodec(int group_size) : groupSize_(group_size)
{
    if (group_size < 1)
        throw std::invalid_argument("TemporalCodec: bad group size");
}

std::string
TemporalCodec::name() const
{
    return "TemporalD" + std::to_string(groupSize_);
}

EncodedTensor
TemporalCodec::encode(const TensorI16 &prev, const TensorI16 &cur) const
{
    if (prev.shape() != cur.shape())
        throw std::invalid_argument(
            "TemporalCodec: reference/current shape mismatch");
    BitWriter bw(scratchAlloc<std::uint8_t>());
    std::vector<BitRange> headers;
    const std::int16_t *p = prev.data();
    const std::int16_t *c = cur.data();
    const std::size_t n = cur.size();
    const auto group = static_cast<std::size_t>(groupSize_);
    headers.reserve((n + group - 1) / group);
    AlignedVec<std::int32_t> deltas(group, scratchAlloc<std::int32_t>());
    const simd::KernelTable &kt = simd::kernels();
    for (std::size_t start = 0; start < n; start += group) {
        const std::size_t len = std::min(group, n - start);
        // One dispatched pass computes the deltas and the group
        // header width (max bitsNeeded) together (common/simd.hh).
        const int bits =
            kt.deltaBits16(p + start, c + start, deltas.data(), len);
        headers.push_back({bw.bitCount(), 5});
        bw.write(static_cast<std::uint32_t>(bits - 1), 5);
        for (std::size_t i = 0; i < len; ++i)
            bw.writeSigned(deltas[i], bits);
    }
    return {cur.shape(), bw.bitCount(), std::move(bw).bytes(),
            std::move(headers)};
}

DecodeResult
TemporalCodec::tryDecode(const TensorI16 &prev,
                         const EncodedTensor &enc) const
{
    DecodeResult r;
    if (enc.shape != prev.shape()) {
        // The reference frame *defines* the stream geometry; a
        // disagreeing declared shape means the stream belongs to a
        // different anchor epoch and must not be trusted.
        r.status = DecodeStatus::BadShape;
        r.message = "temporal stream shape disagrees with its "
                    "reference frame";
        return r;
    }
    const std::size_t n = prev.size();
    TensorI16 t(prev.shape(), scratchAlloc<std::int16_t>());
    const std::int16_t *p = prev.data();
    std::int16_t *out = t.data();
    BitReader br(enc.bytes);
    const auto group = static_cast<std::size_t>(groupSize_);
    AlignedVec<std::int32_t> dbuf(group, scratchAlloc<std::int32_t>());
    const simd::KernelTable &kt = simd::kernels();
    for (std::size_t start = 0; start < n; start += group) {
        const std::size_t len = std::min(group, n - start);
        std::uint32_t hdr = 0;
        if (!br.tryRead(5, hdr))
            return truncatedAt(br, start, "a temporal group header");
        const int bits = static_cast<int>(hdr) + 1;
        if (bits > kMaxFieldBits) {
            r.status = DecodeStatus::BadHeader;
            r.message = badHeaderMessage(bits, kMaxFieldBits);
            r.errorBit = br.bitPosition() - 5;
            r.valuesDecoded = start;
            return r;
        }
        for (std::size_t i = 0; i < len; ++i) {
            if (!br.tryReadSigned(bits, dbuf[i]))
                return truncatedAt(br, start + i, "a temporal field");
        }
        // Fields fit kMaxFieldBits (17) signed bits, within the
        // 18-bit delta contract of the batched saturating add.
        kt.addSat16(p + start, dbuf.data(), out + start, len);
    }
    r.tensor = std::move(t);
    r.valuesDecoded = n;
    return r;
}

TensorI16
TemporalCodec::decode(const TensorI16 &prev, const EncodedTensor &enc) const
{
    DecodeResult r = tryDecode(prev, enc);
    if (!r.ok())
        throw DecodeError(r.status, name() + " decode failed: " + r.message);
    return std::move(r.tensor);
}

double
TemporalCodec::bitsPerValue(const TensorI16 &prev, const TensorI16 &cur) const
{
    if (cur.empty())
        return 0.0;
    return static_cast<double>(encode(prev, cur).bits) /
           static_cast<double>(cur.size());
}

} // namespace diffy
