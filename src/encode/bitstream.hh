/**
 * @file
 * Bit-granular stream writer/reader used by the activation codecs.
 * Fields are packed LSB-first; signed fields use two's complement at
 * the stated width.
 */

#ifndef DIFFY_ENCODE_BITSTREAM_HH
#define DIFFY_ENCODE_BITSTREAM_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/aligned.hh"

namespace diffy
{

/** Append-only bit stream. */
class BitWriter
{
  public:
    BitWriter() = default;

    /** Write into @p alloc's resource (e.g. a per-frame arena). */
    explicit BitWriter(const AlignedAllocator<std::uint8_t> &alloc)
        : bytes_(alloc)
    {}

    /** Append the low @p bits of @p value (1..32 bits). */
    void write(std::uint32_t value, int bits);

    /** Append a signed value in two's complement at @p bits width. */
    void writeSigned(std::int32_t value, int bits);

    /** Number of bits written so far. */
    std::size_t bitCount() const { return bitCount_; }

    /** Finalized byte buffer (zero-padded to a byte boundary). */
    const ByteVec &bytes() const & { return bytes_; }

    /**
     * Move the finalized buffer out (keeps its allocator), so encode
     * paths hand an arena-backed payload to EncodedTensor without a
     * heap copy.
     */
    ByteVec bytes() && { return std::move(bytes_); }

  private:
    ByteVec bytes_;
    std::size_t bitCount_ = 0;
};

/** Sequential reader over a BitWriter's buffer. */
class BitReader
{
  public:
    explicit BitReader(const ByteVec &bytes) : bytes_(bytes) {}

    /** Read @p bits (1..32) as an unsigned value. */
    std::uint32_t read(int bits);

    /** Read @p bits as a sign-extended two's complement value. */
    std::int32_t readSigned(int bits);

    /**
     * Bounds-checked, non-throwing read used by the hardened decode
     * path: returns false — leaving @p value and the read position
     * untouched — when @p bits is outside 1..32 or fewer than @p bits
     * remain in the buffer.
     */
    bool tryRead(int bits, std::uint32_t &value);

    /** Non-throwing counterpart of readSigned(); see tryRead(). */
    bool tryReadSigned(int bits, std::int32_t &value);

    /** Bits consumed so far. */
    std::size_t bitPosition() const { return pos_; }

    /** Bits left before the end of the buffer. */
    std::size_t bitsRemaining() const
    {
        std::size_t total = bytes_.size() * 8;
        return pos_ < total ? total - pos_ : 0;
    }

    /** True if at least @p bits remain. */
    bool hasBits(std::size_t bits) const
    {
        return bits <= bitsRemaining();
    }

  private:
    const ByteVec &bytes_;
    std::size_t pos_ = 0;
};

} // namespace diffy

#endif // DIFFY_ENCODE_BITSTREAM_HH
