/**
 * @file
 * Temporal-delta activation codec (DESIGN.md §13).
 *
 * The spatial codecs (schemes.hh) exploit value similarity *within* a
 * frame; across consecutive video frames the same redundancy exists
 * in time (DeltaCNN / EVA², see PAPERS.md). This codec encodes frame
 * t's activations relative to frame t-1's:
 *
 *     d(c,y,x) = a_t(c,y,x) - a_{t-1}(c,y,x)
 *
 * packed with the DeltaD group scheme — groups of g deltas, a 5-bit
 * width header per group (deltas of int16 data need up to 17 bits).
 * The reference frame is *context*, not part of the stream: both
 * sides of a serving connection already hold frame t-1, so the wire
 * carries only the temporal innovation.
 *
 * Decoding is hardened like every codec here: tryDecode() accepts any
 * byte sequence and returns a valid tensor or a structured error —
 * a stream whose declared shape disagrees with the reference frame is
 * a BadShape, a group header past 17 bits a BadHeader, a short stream
 * a Truncated. The serving path classifies these through the sweep
 * failure taxonomy (runtime/resilience.hh) on a per-stream basis.
 */

#ifndef DIFFY_ENCODE_TEMPORAL_HH
#define DIFFY_ENCODE_TEMPORAL_HH

#include <string>

#include "encode/schemes.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/** Group-coded temporal (frame-to-frame) delta codec. */
class TemporalCodec
{
  public:
    /** Widest legal field: 17 bits covers any int16 - int16 delta. */
    static constexpr int kMaxFieldBits = 17;

    /** @throws std::invalid_argument on a non-positive group size. */
    explicit TemporalCodec(int group_size);

    /** "TemporalD<g>", mirroring the spatial codec naming. */
    std::string name() const;

    int groupSize() const { return groupSize_; }

    /**
     * Encode @p cur relative to @p prev. Shapes must match exactly —
     * a stream is re-anchored (a full keyframe sent out of band)
     * whenever its geometry changes, never silently re-shaped.
     * @throws std::invalid_argument on a shape mismatch.
     */
    EncodedTensor encode(const TensorI16 &prev, const TensorI16 &cur) const;

    /**
     * Hardened decode of @p enc against reference frame @p prev. Any
     * byte sequence yields a valid tensor or a structured error;
     * reconstruction accumulates in 64-bit and saturates to int16, so
     * hostile deltas cannot overflow.
     */
    DecodeResult tryDecode(const TensorI16 &prev,
                           const EncodedTensor &enc) const;

    /** Decode an encode() result; throws DecodeError on error. */
    TensorI16 decode(const TensorI16 &prev, const EncodedTensor &enc) const;

    /** Mean bits per value of cur-given-prev, metadata included. */
    double bitsPerValue(const TensorI16 &prev, const TensorI16 &cur) const;

  private:
    int groupSize_;
};

} // namespace diffy

#endif // DIFFY_ENCODE_TEMPORAL_HH
