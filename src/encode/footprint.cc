#include "encode/footprint.hh"

#include <unordered_map>

#include "analysis/precision.hh"
#include "common/bitops.hh"
#include "common/cache_registry.hh"
#include "encode/schemes.hh"

namespace diffy
{

namespace
{

// thread_local: memoized pure functions; keeps sweep workers
// lock-free (see DESIGN.md §8 shared-state audit). Cleared through
// the central registry (DESIGN.md §10, rule R2).
std::unordered_map<std::uint64_t, double> &
bitsPerValueCache()
{
    thread_local std::unordered_map<std::uint64_t, double> cache;
    return cache;
}

std::unordered_map<std::uint64_t, int> &
profiledBitsCache()
{
    thread_local std::unordered_map<std::uint64_t, int> cache;
    return cache;
}

/**
 * Memoized bits/value measurements. Encoding a layer with a real
 * bitstream is the most expensive part of the traffic model, and the
 * sweep benches query the same (imap, scheme) pairs dozens of times.
 */
double
measuredBitsPerValue(const TensorI16 &imap, Compression scheme,
                     int profiled_bits)
{
    auto &cache = bitsPerValueCache();
    std::uint64_t key = contentHash64(imap.data(),
                                      imap.size() * sizeof(std::int16_t));
    key ^= static_cast<std::uint64_t>(scheme) * 0x9E3779B97F4A7C15ULL;
    key ^= static_cast<std::uint64_t>(profiled_bits) << 32;
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    double bpv = makeCodec(scheme, profiled_bits)->bitsPerValue(imap);
    cache.emplace(key, bpv);
    return bpv;
}

/** Profiled precision of one layer's imap (self-profiled fallback). */
int
layerProfiledBits(const LayerTrace &layer)
{
    auto &cache = profiledBitsCache();
    std::uint64_t key = contentHash64(
        layer.imap.data(), layer.imap.size() * sizeof(std::int16_t));
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    PrecisionProfiler profiler;
    profiler.addLayer(0, layer.imap);
    int bits = profiler.layerPrecision(0);
    cache.emplace(key, bits);
    return bits;
}

/** Spatial value count of the layer's imap at the frame resolution. */
double
imapValuesAtFrame(const LayerTrace &layer, int frame_h, int frame_w)
{
    double h = static_cast<double>(frame_h) / layer.spec.resolutionDivisor;
    double w = static_cast<double>(frame_w) / layer.spec.resolutionDivisor;
    return static_cast<double>(layer.spec.inChannels) * h * w;
}

/** Output value count at frame resolution (the produced omap). */
double
omapValuesAtFrame(const LayerTrace &layer, int frame_h, int frame_w)
{
    double div = static_cast<double>(layer.spec.resolutionDivisor) *
                 layer.spec.stride;
    double h = static_cast<double>(frame_h) / div;
    double w = static_cast<double>(frame_w) / div;
    return static_cast<double>(layer.spec.outChannels) * h * w;
}

} // namespace

void
clearFootprintCaches()
{
    bitsPerValueCache().clear();
    profiledBitsCache().clear();
}

DIFFY_REGISTER_THREAD_CACHE(encode_footprint_memos, clearFootprintCaches);

double
NetworkFootprint::totalBits() const
{
    double bits = 0.0;
    for (const auto &layer : layers)
        bits += static_cast<double>(layer.values) * layer.bitsPerValue;
    return bits;
}

double
NetworkFootprint::normalizedTo16b() const
{
    double raw = 0.0;
    for (const auto &layer : layers)
        raw += static_cast<double>(layer.values) * 16.0;
    return raw > 0.0 ? totalBits() / raw : 0.0;
}

NetworkFootprint
measureFootprint(const NetworkTrace &trace, Compression scheme,
                 const std::vector<int> &profile)
{
    NetworkFootprint fp;
    fp.scheme = scheme;
    fp.layers.reserve(trace.layers.size());
    for (std::size_t li = 0; li < trace.layers.size(); ++li) {
        const LayerTrace &layer = trace.layers[li];
        int prof_bits = li < profile.size() ? profile[li]
                                            : layerProfiledBits(layer);
        LayerFootprint lf;
        lf.layerName = layer.spec.name;
        lf.values = layer.imap.size();
        lf.bitsPerValue =
            measuredBitsPerValue(layer.imap, scheme, prof_bits);
        lf.profiledBits = prof_bits;
        fp.layers.push_back(lf);
    }
    return fp;
}

std::vector<double>
perLayerTrafficBytes(const NetworkTrace &trace, Compression scheme,
                     int frame_h, int frame_w,
                     const std::vector<int> &profile)
{
    NetworkFootprint fp = measureFootprint(trace, scheme, profile);
    std::vector<double> traffic(trace.layers.size(), 0.0);
    for (std::size_t li = 0; li < trace.layers.size(); ++li) {
        const LayerTrace &layer = trace.layers[li];
        double bytes = static_cast<double>(layer.spec.layerWeightBytes());
        // imap read at this layer's measured compression ratio.
        bytes += imapValuesAtFrame(layer, frame_h, frame_w) *
                 fp.layers[li].bitsPerValue / 8.0;
        // omap write: the next layer's imap measures its compressed
        // size; the final layer's omap is charged at its own ratio.
        double omap_bpv = li + 1 < fp.layers.size()
                              ? fp.layers[li + 1].bitsPerValue
                              : fp.layers[li].bitsPerValue;
        bytes += omapValuesAtFrame(layer, frame_h, frame_w) * omap_bpv /
                 8.0;
        traffic[li] = bytes;
    }
    return traffic;
}

double
frameTrafficBytes(const NetworkTrace &trace, Compression scheme,
                  int frame_h, int frame_w,
                  const std::vector<int> &profile)
{
    double total = 0.0;
    for (double t :
         perLayerTrafficBytes(trace, scheme, frame_h, frame_w, profile))
        total += t;
    return total;
}

double
amRequiredBytes(const NetworkTrace &trace, Compression scheme,
                int frame_w,
                const std::vector<int> &profile)
{
    NetworkFootprint fp = measureFootprint(trace, scheme, profile);
    double worst = 0.0;
    for (std::size_t li = 0; li < trace.layers.size(); ++li) {
        const LayerTrace &layer = trace.layers[li];
        // Two complete rows of windows need (effective kernel + stride)
        // input rows at this layer's resolution.
        int rows = layer.spec.effectiveKernel() + layer.spec.stride;
        double width = static_cast<double>(frame_w) /
                       layer.spec.resolutionDivisor;
        double bytes = static_cast<double>(layer.spec.inChannels) * rows *
                       width * fp.layers[li].bitsPerValue / 8.0;
        if (bytes > worst)
            worst = bytes;
    }
    return worst;
}

} // namespace diffy
