#include "encode/schemes.hh"

#include <stdexcept>

#include "common/bitops.hh"
#include "common/fixed_point.hh"
#include "encode/bitstream.hh"

namespace diffy
{

double
ActivationCodec::bitsPerValue(const TensorI16 &t) const
{
    if (t.size() == 0)
        return 0.0;
    return static_cast<double>(encode(t).bits) /
           static_cast<double>(t.size());
}

namespace
{

/** 16 bits per value, no metadata. */
class NoCompressionCodec : public ActivationCodec
{
  public:
    std::string name() const override { return "NoCompression"; }

    EncodedTensor
    encode(const TensorI16 &t) const override
    {
        BitWriter bw;
        const std::int16_t *data = t.data();
        for (std::size_t i = 0; i < t.size(); ++i)
            bw.writeSigned(data[i], 16);
        return {t.shape(), bw.bitCount(), bw.bytes()};
    }

    TensorI16
    decode(const EncodedTensor &enc) const override
    {
        TensorI16 t(enc.shape);
        BitReader br(enc.bytes);
        for (std::size_t i = 0; i < t.size(); ++i)
            t.data()[i] = static_cast<std::int16_t>(br.readSigned(16));
        return t;
    }
};

/**
 * Zero run-length coding: entries of (4b zero-run, 16b value). A run
 * of more than 15 zeros is carried by entries whose value is itself
 * zero. The trailing run is carried by a final entry pair as needed.
 */
class RlezCodec : public ActivationCodec
{
  public:
    std::string name() const override { return "RLEz"; }

    EncodedTensor
    encode(const TensorI16 &t) const override
    {
        BitWriter bw;
        const std::int16_t *data = t.data();
        std::size_t i = 0;
        while (i < t.size()) {
            int run = 0;
            while (i < t.size() && data[i] == 0 && run < 15) {
                ++run;
                ++i;
            }
            if (i < t.size()) {
                bw.write(static_cast<std::uint32_t>(run), 4);
                bw.writeSigned(data[i], 16);
                ++i;
            } else {
                // Trailing zeros: emit them as an explicit zero value.
                bw.write(static_cast<std::uint32_t>(run - 1), 4);
                bw.writeSigned(0, 16);
            }
        }
        return {t.shape(), bw.bitCount(), bw.bytes()};
    }

    TensorI16
    decode(const EncodedTensor &enc) const override
    {
        TensorI16 t(enc.shape);
        BitReader br(enc.bytes);
        std::size_t i = 0;
        while (i < t.size()) {
            int run = static_cast<int>(br.read(4));
            std::int16_t value =
                static_cast<std::int16_t>(br.readSigned(16));
            for (int z = 0; z < run && i < t.size(); ++z)
                t.data()[i++] = 0;
            if (i < t.size())
                t.data()[i++] = value;
        }
        return t;
    }
};

/** Repeat run-length coding: entries of (4b run-1, 16b value). */
class RleCodec : public ActivationCodec
{
  public:
    std::string name() const override { return "RLE"; }

    EncodedTensor
    encode(const TensorI16 &t) const override
    {
        BitWriter bw;
        const std::int16_t *data = t.data();
        std::size_t i = 0;
        while (i < t.size()) {
            std::int16_t value = data[i];
            int run = 1;
            while (i + run < t.size() && data[i + run] == value &&
                   run < 16) {
                ++run;
            }
            bw.write(static_cast<std::uint32_t>(run - 1), 4);
            bw.writeSigned(value, 16);
            i += static_cast<std::size_t>(run);
        }
        return {t.shape(), bw.bitCount(), bw.bytes()};
    }

    TensorI16
    decode(const EncodedTensor &enc) const override
    {
        TensorI16 t(enc.shape);
        BitReader br(enc.bytes);
        std::size_t i = 0;
        while (i < t.size()) {
            int run = static_cast<int>(br.read(4)) + 1;
            std::int16_t value =
                static_cast<std::int16_t>(br.readSigned(16));
            for (int r = 0; r < run && i < t.size(); ++r)
                t.data()[i++] = value;
        }
        return t;
    }
};

/** Fixed-precision coding with saturation. */
class ProfiledCodec : public ActivationCodec
{
  public:
    explicit ProfiledCodec(int precision) : precision_(precision)
    {
        if (precision < 1 || precision > 16)
            throw std::invalid_argument("ProfiledCodec: bad precision");
    }

    std::string
    name() const override
    {
        return "Profiled" + std::to_string(precision_);
    }

    EncodedTensor
    encode(const TensorI16 &t) const override
    {
        const std::int32_t lo = -(1 << (precision_ - 1));
        const std::int32_t hi = (1 << (precision_ - 1)) - 1;
        BitWriter bw;
        const std::int16_t *data = t.data();
        for (std::size_t i = 0; i < t.size(); ++i) {
            std::int32_t v = data[i];
            v = v < lo ? lo : (v > hi ? hi : v);
            bw.writeSigned(v, precision_);
        }
        return {t.shape(), bw.bitCount(), bw.bytes()};
    }

    TensorI16
    decode(const EncodedTensor &enc) const override
    {
        TensorI16 t(enc.shape);
        BitReader br(enc.bytes);
        for (std::size_t i = 0; i < t.size(); ++i) {
            t.data()[i] =
                static_cast<std::int16_t>(br.readSigned(precision_));
        }
        return t;
    }

  private:
    int precision_;
};

/** Dynamic per-group precision over raw values (4b group header). */
class RawDCodec : public ActivationCodec
{
  public:
    explicit RawDCodec(int group_size) : groupSize_(group_size)
    {
        if (group_size < 1)
            throw std::invalid_argument("RawDCodec: bad group size");
    }

    std::string
    name() const override
    {
        return "RawD" + std::to_string(groupSize_);
    }

    EncodedTensor
    encode(const TensorI16 &t) const override
    {
        BitWriter bw;
        const std::int16_t *data = t.data();
        for (std::size_t start = 0; start < t.size();
             start += static_cast<std::size_t>(groupSize_)) {
            std::size_t len = std::min(
                static_cast<std::size_t>(groupSize_), t.size() - start);
            int bits = groupBitsNeeded(data + start, len);
            bw.write(static_cast<std::uint32_t>(bits - 1), 4);
            for (std::size_t i = 0; i < len; ++i)
                bw.writeSigned(data[start + i], bits);
        }
        return {t.shape(), bw.bitCount(), bw.bytes()};
    }

    TensorI16
    decode(const EncodedTensor &enc) const override
    {
        TensorI16 t(enc.shape);
        BitReader br(enc.bytes);
        for (std::size_t start = 0; start < t.size();
             start += static_cast<std::size_t>(groupSize_)) {
            std::size_t len = std::min(
                static_cast<std::size_t>(groupSize_), t.size() - start);
            int bits = static_cast<int>(br.read(4)) + 1;
            for (std::size_t i = 0; i < len; ++i) {
                t.data()[start + i] =
                    static_cast<std::int16_t>(br.readSigned(bits));
            }
        }
        return t;
    }

  private:
    int groupSize_;
};

/**
 * Dynamic per-group precision over the X-axis delta stream. Rows lead
 * with a raw value; deltas span up to 17 bits so the group header is
 * 5 bits (see file comment).
 */
class DeltaDCodec : public ActivationCodec
{
  public:
    explicit DeltaDCodec(int group_size) : groupSize_(group_size)
    {
        if (group_size < 1)
            throw std::invalid_argument("DeltaDCodec: bad group size");
    }

    std::string
    name() const override
    {
        return "DeltaD" + std::to_string(groupSize_);
    }

    EncodedTensor
    encode(const TensorI16 &t) const override
    {
        // Delta stream in row-major within each (channel, row).
        std::vector<std::int32_t> stream;
        stream.reserve(t.size());
        for (int c = 0; c < t.channels(); ++c) {
            for (int y = 0; y < t.height(); ++y) {
                std::int32_t prev = 0;
                for (int x = 0; x < t.width(); ++x) {
                    std::int32_t cur = t.at(c, y, x);
                    stream.push_back(x == 0 ? cur : cur - prev);
                    prev = cur;
                }
            }
        }
        BitWriter bw;
        for (std::size_t start = 0; start < stream.size();
             start += static_cast<std::size_t>(groupSize_)) {
            std::size_t len = std::min(
                static_cast<std::size_t>(groupSize_),
                stream.size() - start);
            int bits = 1;
            for (std::size_t i = 0; i < len; ++i) {
                int b = bitsNeeded(stream[start + i]);
                if (b > bits)
                    bits = b;
            }
            bw.write(static_cast<std::uint32_t>(bits - 1), 5);
            for (std::size_t i = 0; i < len; ++i)
                bw.writeSigned(stream[start + i], bits);
        }
        return {t.shape(), bw.bitCount(), bw.bytes()};
    }

    TensorI16
    decode(const EncodedTensor &enc) const override
    {
        std::vector<std::int32_t> stream(
            Shape3(enc.shape).volume());
        BitReader br(enc.bytes);
        for (std::size_t start = 0; start < stream.size();
             start += static_cast<std::size_t>(groupSize_)) {
            std::size_t len = std::min(
                static_cast<std::size_t>(groupSize_),
                stream.size() - start);
            int bits = static_cast<int>(br.read(5)) + 1;
            for (std::size_t i = 0; i < len; ++i)
                stream[start + i] = br.readSigned(bits);
        }
        TensorI16 t(enc.shape);
        std::size_t pos = 0;
        for (int c = 0; c < t.channels(); ++c) {
            for (int y = 0; y < t.height(); ++y) {
                std::int32_t acc = 0;
                for (int x = 0; x < t.width(); ++x) {
                    if (x == 0)
                        acc = stream[pos];
                    else
                        acc += stream[pos];
                    ++pos;
                    t.at(c, y, x) = saturate16(acc);
                }
            }
        }
        return t;
    }

  private:
    int groupSize_;
};

} // namespace

std::unique_ptr<ActivationCodec>
makeNoCompressionCodec()
{
    return std::make_unique<NoCompressionCodec>();
}

std::unique_ptr<ActivationCodec>
makeRlezCodec()
{
    return std::make_unique<RlezCodec>();
}

std::unique_ptr<ActivationCodec>
makeRleCodec()
{
    return std::make_unique<RleCodec>();
}

std::unique_ptr<ActivationCodec>
makeProfiledCodec(int precision_bits)
{
    return std::make_unique<ProfiledCodec>(precision_bits);
}

std::unique_ptr<ActivationCodec>
makeRawDCodec(int group_size)
{
    return std::make_unique<RawDCodec>(group_size);
}

std::unique_ptr<ActivationCodec>
makeDeltaDCodec(int group_size)
{
    return std::make_unique<DeltaDCodec>(group_size);
}

std::unique_ptr<ActivationCodec>
makeCodec(Compression scheme, int profiled_bits)
{
    switch (scheme) {
      case Compression::None:
      case Compression::Ideal:
        return makeNoCompressionCodec();
      case Compression::Rlez:
        return makeRlezCodec();
      case Compression::Rle:
        return makeRleCodec();
      case Compression::Profiled:
        return makeProfiledCodec(profiled_bits);
      case Compression::RawD8:
        return makeRawDCodec(8);
      case Compression::RawD16:
        return makeRawDCodec(16);
      case Compression::RawD256:
        return makeRawDCodec(256);
      case Compression::DeltaD8:
        return makeDeltaDCodec(8);
      case Compression::DeltaD16:
        return makeDeltaDCodec(16);
      case Compression::DeltaD256:
        return makeDeltaDCodec(256);
    }
    throw std::invalid_argument("makeCodec: unknown scheme");
}

} // namespace diffy
