#include "encode/schemes.hh"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "common/bitops.hh"
#include "common/fixed_point.hh"
#include "common/simd.hh"
#include "encode/bitstream.hh"

namespace diffy
{

std::string
to_string(DecodeStatus s)
{
    switch (s) {
      case DecodeStatus::Ok:
        return "Ok";
      case DecodeStatus::BadShape:
        return "BadShape";
      case DecodeStatus::Truncated:
        return "Truncated";
      case DecodeStatus::BadHeader:
        return "BadHeader";
      case DecodeStatus::BadChecksum:
        return "BadChecksum";
    }
    return "?";
}

void
sealEncoded(EncodedTensor &enc)
{
    enc.payloadCrc = crc32c(enc.bytes.data(), enc.bytes.size());
    enc.payloadBits = enc.bits;
    enc.sealed = true;
}

bool
verifyEncoded(const EncodedTensor &enc)
{
    if (!enc.sealed)
        return true;
    return enc.payloadBits == enc.bits &&
           enc.payloadCrc == crc32c(enc.bytes.data(), enc.bytes.size());
}

DecodeResult
ActivationCodec::tryDecodeVerified(const EncodedTensor &enc) const
{
    if (!verifyEncoded(enc)) {
        DecodeResult r;
        r.status = DecodeStatus::BadChecksum;
        r.message = name() + ": payload fails its integrity footer "
                             "(CRC-32C or bit-length mismatch)";
        return r;
    }
    return tryDecode(enc);
}

TensorI16
ActivationCodec::decode(const EncodedTensor &enc) const
{
    DecodeResult r = tryDecodeVerified(enc);
    if (!r.ok())
        throw DecodeError(r.status,
                          name() + " decode failed: " + r.message);
    return std::move(r.tensor);
}

double
ActivationCodec::bitsPerValue(const TensorI16 &t) const
{
    if (t.empty())
        return 0.0;
    return static_cast<double>(encode(t).bits) /
           static_cast<double>(t.size());
}

namespace
{

/**
 * Validate a decode target shape: every dimension nonnegative and the
 * volume within kMaxDecodeElements (checked multiply-by-multiply so a
 * hostile shape cannot overflow the size_t product either). On
 * failure @p out carries a complete BadShape result.
 */
bool
checkShape(const Shape3 &s, DecodeResult &out)
{
    auto fail = [&](const std::string &msg) {
        out.status = DecodeStatus::BadShape;
        out.message = msg;
        return false;
    };
    if (s.c < 0 || s.h < 0 || s.w < 0)
        return fail("negative dimension in shape");
    std::size_t vol = static_cast<std::size_t>(s.c);
    for (int d : {s.h, s.w}) {
        if (d > 0 && vol > kMaxDecodeElements / static_cast<std::size_t>(d))
            return fail("shape volume exceeds decode cap");
        vol *= static_cast<std::size_t>(d);
    }
    if (vol > kMaxDecodeElements)
        return fail("shape volume exceeds decode cap");
    return true;
}

/**
 * Assemble the BadHeader diagnostic ("<codec> group declares N bits
 * (legal max M)") outside the decode loops, keeping string building
 * out of the per-group path (diffy-lint R9).
 */
std::string
badHeaderMessage(const char *codec, int bits, int max_bits)
{
    return std::string(codec) + " group declares " +
           std::to_string(bits) + " bits (legal max " +
           std::to_string(max_bits) + ")";
}

DecodeResult
truncatedAt(const BitReader &br, std::size_t values_decoded,
            const std::string &what)
{
    DecodeResult r;
    r.status = DecodeStatus::Truncated;
    r.message = "stream ended inside " + what;
    r.errorBit = br.bitPosition();
    r.valuesDecoded = values_decoded;
    return r;
}

/** 16 bits per value, no metadata. */
class NoCompressionCodec : public ActivationCodec
{
  public:
    std::string name() const override { return "NoCompression"; }

    EncodedTensor
    encode(const TensorI16 &t) const override
    {
        BitWriter bw(scratchAlloc<std::uint8_t>());
        const std::int16_t *data = t.data();
        for (std::size_t i = 0; i < t.size(); ++i)
            bw.writeSigned(data[i], 16);
        return {t.shape(), bw.bitCount(), std::move(bw).bytes(), {}};
    }

    DecodeResult
    tryDecode(const EncodedTensor &enc) const override
    {
        DecodeResult r;
        if (!checkShape(enc.shape, r))
            return r;
        TensorI16 t(enc.shape);
        BitReader br(enc.bytes);
        for (std::size_t i = 0; i < t.size(); ++i) {
            std::int32_t v = 0;
            if (!br.tryReadSigned(16, v))
                return truncatedAt(br, i, "a 16b value");
            t.data()[i] = static_cast<std::int16_t>(v);
        }
        r.tensor = std::move(t);
        r.valuesDecoded = r.tensor.size();
        return r;
    }
};

/**
 * Zero run-length coding: entries of (4b zero-run, 16b value). A run
 * of more than 15 zeros is carried by entries whose value is itself
 * zero. The trailing run is carried by a final entry pair as needed.
 */
class RlezCodec : public ActivationCodec
{
  public:
    std::string name() const override { return "RLEz"; }

    EncodedTensor
    encode(const TensorI16 &t) const override
    {
        const std::int16_t *data = t.data();
        // Counting pre-pass mirroring the emit loop below, so the
        // header list is sized exactly and never grows mid-stream.
        std::size_t entries = 0;
        for (std::size_t i = 0; i < t.size();) {
            int run = 0;
            while (i < t.size() && data[i] == 0 && run < 15) {
                ++run;
                ++i;
            }
            ++entries;
            if (i < t.size())
                ++i;
        }
        BitWriter bw(scratchAlloc<std::uint8_t>());
        std::vector<BitRange> headers;
        headers.reserve(entries);
        std::size_t i = 0;
        while (i < t.size()) {
            int run = 0;
            while (i < t.size() && data[i] == 0 && run < 15) {
                ++run;
                ++i;
            }
            headers.push_back({bw.bitCount(), 4});
            if (i < t.size()) {
                bw.write(static_cast<std::uint32_t>(run), 4);
                bw.writeSigned(data[i], 16);
                ++i;
            } else {
                // Trailing zeros: emit them as an explicit zero value.
                bw.write(static_cast<std::uint32_t>(run - 1), 4);
                bw.writeSigned(0, 16);
            }
        }
        return {t.shape(), bw.bitCount(), std::move(bw).bytes(),
                std::move(headers)};
    }

    DecodeResult
    tryDecode(const EncodedTensor &enc) const override
    {
        DecodeResult r;
        if (!checkShape(enc.shape, r))
            return r;
        TensorI16 t(enc.shape);
        BitReader br(enc.bytes);
        std::size_t i = 0;
        while (i < t.size()) {
            std::uint32_t run = 0;
            std::int32_t value = 0;
            if (!br.tryRead(4, run))
                return truncatedAt(br, i, "an RLEz run header");
            if (!br.tryReadSigned(16, value))
                return truncatedAt(br, i, "an RLEz value");
            for (std::uint32_t z = 0; z < run && i < t.size(); ++z)
                t.data()[i++] = 0;
            if (i < t.size())
                t.data()[i++] = static_cast<std::int16_t>(value);
        }
        r.tensor = std::move(t);
        r.valuesDecoded = r.tensor.size();
        return r;
    }
};

/** Repeat run-length coding: entries of (4b run-1, 16b value). */
class RleCodec : public ActivationCodec
{
  public:
    std::string name() const override { return "RLE"; }

    EncodedTensor
    encode(const TensorI16 &t) const override
    {
        const std::int16_t *data = t.data();
        // Counting pre-pass mirroring the emit loop below.
        std::size_t entries = 0;
        for (std::size_t i = 0; i < t.size();) {
            int run = 1;
            while (i + run < t.size() && data[i + run] == data[i] &&
                   run < 16) {
                ++run;
            }
            ++entries;
            i += static_cast<std::size_t>(run);
        }
        BitWriter bw(scratchAlloc<std::uint8_t>());
        std::vector<BitRange> headers;
        headers.reserve(entries);
        std::size_t i = 0;
        while (i < t.size()) {
            std::int16_t value = data[i];
            int run = 1;
            while (i + run < t.size() && data[i + run] == value &&
                   run < 16) {
                ++run;
            }
            headers.push_back({bw.bitCount(), 4});
            bw.write(static_cast<std::uint32_t>(run - 1), 4);
            bw.writeSigned(value, 16);
            i += static_cast<std::size_t>(run);
        }
        return {t.shape(), bw.bitCount(), std::move(bw).bytes(),
                std::move(headers)};
    }

    DecodeResult
    tryDecode(const EncodedTensor &enc) const override
    {
        DecodeResult r;
        if (!checkShape(enc.shape, r))
            return r;
        TensorI16 t(enc.shape);
        BitReader br(enc.bytes);
        std::size_t i = 0;
        while (i < t.size()) {
            std::uint32_t run = 0;
            std::int32_t value = 0;
            if (!br.tryRead(4, run))
                return truncatedAt(br, i, "an RLE run header");
            if (!br.tryReadSigned(16, value))
                return truncatedAt(br, i, "an RLE value");
            for (std::uint32_t k = 0; k <= run && i < t.size(); ++k)
                t.data()[i++] = static_cast<std::int16_t>(value);
        }
        r.tensor = std::move(t);
        r.valuesDecoded = r.tensor.size();
        return r;
    }
};

/** Fixed-precision coding with saturation. */
class ProfiledCodec : public ActivationCodec
{
  public:
    explicit ProfiledCodec(int precision) : precision_(precision)
    {
        if (precision < 1 || precision > 16)
            throw std::invalid_argument("ProfiledCodec: bad precision");
    }

    std::string
    name() const override
    {
        return "Profiled" + std::to_string(precision_);
    }

    EncodedTensor
    encode(const TensorI16 &t) const override
    {
        const std::int32_t lo = -(1 << (precision_ - 1));
        const std::int32_t hi = (1 << (precision_ - 1)) - 1;
        BitWriter bw(scratchAlloc<std::uint8_t>());
        const std::int16_t *data = t.data();
        for (std::size_t i = 0; i < t.size(); ++i) {
            std::int32_t v = data[i];
            v = v < lo ? lo : (v > hi ? hi : v);
            bw.writeSigned(v, precision_);
        }
        return {t.shape(), bw.bitCount(), std::move(bw).bytes(), {}};
    }

    DecodeResult
    tryDecode(const EncodedTensor &enc) const override
    {
        DecodeResult r;
        if (!checkShape(enc.shape, r))
            return r;
        TensorI16 t(enc.shape);
        BitReader br(enc.bytes);
        for (std::size_t i = 0; i < t.size(); ++i) {
            std::int32_t v = 0;
            if (!br.tryReadSigned(precision_, v))
                return truncatedAt(br, i, "a fixed-precision value");
            t.data()[i] = static_cast<std::int16_t>(v);
        }
        r.tensor = std::move(t);
        r.valuesDecoded = r.tensor.size();
        return r;
    }

  private:
    int precision_;
};

/** Dynamic per-group precision over raw values (4b group header). */
class RawDCodec : public ActivationCodec
{
  public:
    explicit RawDCodec(int group_size) : groupSize_(group_size)
    {
        if (group_size < 1)
            throw std::invalid_argument("RawDCodec: bad group size");
    }

    std::string
    name() const override
    {
        return "RawD" + std::to_string(groupSize_);
    }

    EncodedTensor
    encode(const TensorI16 &t) const override
    {
        const std::size_t group = static_cast<std::size_t>(groupSize_);
        BitWriter bw(scratchAlloc<std::uint8_t>());
        std::vector<BitRange> headers;
        headers.reserve((t.size() + group - 1) / group);
        const std::int16_t *data = t.data();
        for (std::size_t start = 0; start < t.size();
             start += static_cast<std::size_t>(groupSize_)) {
            std::size_t len = std::min(
                static_cast<std::size_t>(groupSize_), t.size() - start);
            int bits = groupBitsNeeded(data + start, len);
            headers.push_back({bw.bitCount(), 4});
            bw.write(static_cast<std::uint32_t>(bits - 1), 4);
            for (std::size_t i = 0; i < len; ++i)
                bw.writeSigned(data[start + i], bits);
        }
        return {t.shape(), bw.bitCount(), std::move(bw).bytes(),
                std::move(headers)};
    }

    DecodeResult
    tryDecode(const EncodedTensor &enc) const override
    {
        DecodeResult r;
        if (!checkShape(enc.shape, r))
            return r;
        TensorI16 t(enc.shape);
        BitReader br(enc.bytes);
        for (std::size_t start = 0; start < t.size();
             start += static_cast<std::size_t>(groupSize_)) {
            std::size_t len = std::min(
                static_cast<std::size_t>(groupSize_), t.size() - start);
            std::uint32_t hdr = 0;
            if (!br.tryRead(4, hdr))
                return truncatedAt(br, start, "a RawD group header");
            // hdr + 1 is 1..16: every 4-bit header is a legal width.
            int bits = static_cast<int>(hdr) + 1;
            for (std::size_t i = 0; i < len; ++i) {
                std::int32_t v = 0;
                if (!br.tryReadSigned(bits, v))
                    return truncatedAt(br, start + i, "a RawD value");
                t.data()[start + i] = static_cast<std::int16_t>(v);
            }
        }
        r.tensor = std::move(t);
        r.valuesDecoded = r.tensor.size();
        return r;
    }

  private:
    int groupSize_;
};

/**
 * Dynamic per-group precision over the X-axis delta stream. Rows lead
 * with a raw value; deltas span up to 17 bits so the group header is
 * 5 bits (see file comment). A positive reanchor interval K stores
 * every K-th value of a row as an absolute value, bounding how far a
 * corrupted delta can propagate (the containment knob studied by
 * bench/abl_faults).
 */
class DeltaDCodec : public ActivationCodec
{
  public:
    /** Widest legal field: 17 bits covers any int16 delta. */
    static constexpr int kMaxFieldBits = 17;

    DeltaDCodec(int group_size, int reanchor_interval)
        : groupSize_(group_size), reanchor_(reanchor_interval)
    {
        if (group_size < 1)
            throw std::invalid_argument("DeltaDCodec: bad group size");
        if (reanchor_interval < 0)
            throw std::invalid_argument(
                "DeltaDCodec: bad reanchor interval");
    }

    std::string
    name() const override
    {
        std::string n = "DeltaD" + std::to_string(groupSize_);
        if (reanchor_ > 0)
            n += ".A" + std::to_string(reanchor_);
        return n;
    }

    bool
    isAnchor(int x) const
    {
        return x == 0 || (reanchor_ > 0 && x % reanchor_ == 0);
    }

    EncodedTensor
    encode(const TensorI16 &t) const override
    {
        // Delta stream in row-major within each (channel, row);
        // anchors carry the raw value.
        AlignedVec<std::int32_t> stream(scratchAlloc<std::int32_t>());
        stream.reserve(t.size());
        for (int c = 0; c < t.channels(); ++c) {
            for (int y = 0; y < t.height(); ++y) {
                std::int32_t prev = 0;
                for (int x = 0; x < t.width(); ++x) {
                    std::int32_t cur = t.at(c, y, x);
                    stream.push_back(isAnchor(x) ? cur : cur - prev);
                    prev = cur;
                }
            }
        }
        const std::size_t group = static_cast<std::size_t>(groupSize_);
        BitWriter bw(scratchAlloc<std::uint8_t>());
        std::vector<BitRange> headers;
        headers.reserve((stream.size() + group - 1) / group);
        const simd::KernelTable &kt = simd::kernels();
        for (std::size_t start = 0; start < stream.size();
             start += static_cast<std::size_t>(groupSize_)) {
            std::size_t len = std::min(
                static_cast<std::size_t>(groupSize_),
                stream.size() - start);
            // Group header width via the dispatched OR-fold reduction
            // (common/simd.hh); equals max(1, max bitsNeeded).
            const int bits =
                kt.groupBits32(stream.data() + start, len);
            headers.push_back({bw.bitCount(), 5});
            bw.write(static_cast<std::uint32_t>(bits - 1), 5);
            for (std::size_t i = 0; i < len; ++i)
                bw.writeSigned(stream[start + i], bits);
        }
        return {t.shape(), bw.bitCount(), std::move(bw).bytes(),
                std::move(headers)};
    }

    DecodeResult
    tryDecode(const EncodedTensor &enc) const override
    {
        DecodeResult r;
        if (!checkShape(enc.shape, r))
            return r;
        AlignedVec<std::int32_t> stream(Shape3(enc.shape).volume(),
                                        scratchAlloc<std::int32_t>());
        BitReader br(enc.bytes);
        for (std::size_t start = 0; start < stream.size();
             start += static_cast<std::size_t>(groupSize_)) {
            std::size_t len = std::min(
                static_cast<std::size_t>(groupSize_),
                stream.size() - start);
            std::uint32_t hdr = 0;
            if (!br.tryRead(5, hdr))
                return truncatedAt(br, start, "a DeltaD group header");
            int bits = static_cast<int>(hdr) + 1;
            if (bits > kMaxFieldBits) {
                // A 5-bit header can declare up to 32 bits; anything
                // past 17 cannot come from our encoder and must be
                // rejected rather than trusted.
                r.status = DecodeStatus::BadHeader;
                r.message =
                    badHeaderMessage("DeltaD", bits, kMaxFieldBits);
                r.errorBit = br.bitPosition() - 5;
                r.valuesDecoded = start;
                return r;
            }
            for (std::size_t i = 0; i < len; ++i) {
                if (!br.tryReadSigned(bits, stream[start + i]))
                    return truncatedAt(br, start + i, "a DeltaD field");
            }
        }
        TensorI16 t(enc.shape);
        std::size_t pos = 0;
        for (int c = 0; c < t.channels(); ++c) {
            for (int y = 0; y < t.height(); ++y) {
                // 64-bit accumulator: a hostile stream can feed a long
                // row of maximal deltas, which would overflow int32.
                std::int64_t acc = 0;
                for (int x = 0; x < t.width(); ++x) {
                    if (isAnchor(x))
                        acc = stream[pos];
                    else
                        acc += stream[pos];
                    ++pos;
                    t.at(c, y, x) = saturate16(acc);
                }
            }
        }
        r.tensor = std::move(t);
        r.valuesDecoded = r.tensor.size();
        return r;
    }

  private:
    int groupSize_;
    int reanchor_;
};

} // namespace

std::unique_ptr<ActivationCodec>
makeNoCompressionCodec()
{
    return std::make_unique<NoCompressionCodec>();
}

std::unique_ptr<ActivationCodec>
makeRlezCodec()
{
    return std::make_unique<RlezCodec>();
}

std::unique_ptr<ActivationCodec>
makeRleCodec()
{
    return std::make_unique<RleCodec>();
}

std::unique_ptr<ActivationCodec>
makeProfiledCodec(int precision_bits)
{
    return std::make_unique<ProfiledCodec>(precision_bits);
}

std::unique_ptr<ActivationCodec>
makeRawDCodec(int group_size)
{
    return std::make_unique<RawDCodec>(group_size);
}

std::unique_ptr<ActivationCodec>
makeDeltaDCodec(int group_size, int reanchor_interval)
{
    return std::make_unique<DeltaDCodec>(group_size, reanchor_interval);
}

std::unique_ptr<ActivationCodec>
makeCodec(Compression scheme, int profiled_bits)
{
    switch (scheme) {
      case Compression::None:
      case Compression::Ideal:
        return makeNoCompressionCodec();
      case Compression::Rlez:
        return makeRlezCodec();
      case Compression::Rle:
        return makeRleCodec();
      case Compression::Profiled:
        return makeProfiledCodec(profiled_bits);
      case Compression::RawD8:
        return makeRawDCodec(8);
      case Compression::RawD16:
        return makeRawDCodec(16);
      case Compression::RawD256:
        return makeRawDCodec(256);
      case Compression::DeltaD8:
        return makeDeltaDCodec(8);
      case Compression::DeltaD16:
        return makeDeltaDCodec(16);
      case Compression::DeltaD256:
        return makeDeltaDCodec(256);
    }
    throw std::invalid_argument("makeCodec: unknown scheme");
}

namespace
{

constexpr std::uint32_t kEncodedMagic = 0xD1FFE001;

template <typename T>
void
writeWire(std::ostream &os, T v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readWire(std::istream &is, const char *what)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        throw DecodeError(DecodeStatus::Truncated,
                          std::string("encoded stream ended inside ") +
                              what);
    return v;
}

} // namespace

void
saveEncoded(EncodedTensor &enc, std::ostream &os)
{
    sealEncoded(enc);
    writeWire(os, kEncodedMagic);
    writeWire(os, static_cast<std::uint32_t>(enc.shape.c));
    writeWire(os, static_cast<std::uint32_t>(enc.shape.h));
    writeWire(os, static_cast<std::uint32_t>(enc.shape.w));
    writeWire(os, static_cast<std::uint64_t>(enc.bits));
    writeWire(os, static_cast<std::uint32_t>(enc.headerBits.size()));
    for (const BitRange &r : enc.headerBits) {
        writeWire(os, static_cast<std::uint64_t>(r.first));
        writeWire(os, static_cast<std::uint64_t>(r.count));
    }
    writeWire(os, static_cast<std::uint64_t>(enc.bytes.size()));
    os.write(reinterpret_cast<const char *>(enc.bytes.data()),
             static_cast<std::streamsize>(enc.bytes.size()));
    // Integrity footer: CRC first, then the bit length again, so a
    // truncation inside the payload and a flipped payload bit raise
    // different structured errors on load.
    writeWire(os, enc.payloadCrc);
    writeWire(os, enc.payloadBits);
}

EncodedTensor
loadEncoded(std::istream &is)
{
    if (readWire<std::uint32_t>(is, "the magic") != kEncodedMagic)
        throw DecodeError(DecodeStatus::Truncated,
                          "bad encoded-stream magic");
    EncodedTensor enc;
    enc.shape.c = static_cast<int>(readWire<std::uint32_t>(is, "shape"));
    enc.shape.h = static_cast<int>(readWire<std::uint32_t>(is, "shape"));
    enc.shape.w = static_cast<int>(readWire<std::uint32_t>(is, "shape"));
    enc.bits = static_cast<std::size_t>(
        readWire<std::uint64_t>(is, "the bit count"));
    auto headerCount = readWire<std::uint32_t>(is, "the header count");
    // A hostile count would otherwise drive a huge reserve; each
    // header is 16 wire bytes, so cap via the decode-element cap.
    if (headerCount > kMaxDecodeElements)
        throw DecodeError(DecodeStatus::BadShape,
                          "encoded stream declares an absurd header "
                          "count");
    enc.headerBits.reserve(headerCount);
    for (std::uint32_t i = 0; i < headerCount; ++i) {
        BitRange r;
        r.first = static_cast<std::size_t>(
            readWire<std::uint64_t>(is, "a header range"));
        r.count = static_cast<std::size_t>(
            readWire<std::uint64_t>(is, "a header range"));
        enc.headerBits.push_back(r);
    }
    auto byteCount = readWire<std::uint64_t>(is, "the byte count");
    if (byteCount > (kMaxDecodeElements * 2) + 8)
        throw DecodeError(DecodeStatus::BadShape,
                          "encoded stream declares an absurd byte "
                          "count");
    enc.bytes.resize(static_cast<std::size_t>(byteCount));
    is.read(reinterpret_cast<char *>(enc.bytes.data()),
            static_cast<std::streamsize>(enc.bytes.size()));
    if (!is)
        throw DecodeError(DecodeStatus::Truncated,
                          "encoded stream ended inside the payload");
    enc.payloadCrc = readWire<std::uint32_t>(is, "the footer CRC");
    enc.payloadBits = readWire<std::uint64_t>(is, "the footer length");
    enc.sealed = true;
    if (!verifyEncoded(enc))
        throw DecodeError(DecodeStatus::BadChecksum,
                          "encoded stream fails its integrity footer");
    return enc;
}

} // namespace diffy
