#include "encode/bitstream.hh"

#include <stdexcept>

namespace diffy
{

void
BitWriter::write(std::uint32_t value, int bits)
{
    if (bits < 1 || bits > 32)
        throw std::invalid_argument("BitWriter: bits out of range");
    // Grow to the final byte count up front (value-initialized, same
    // zero bytes push_back(0) appended) so the bit loop never
    // reallocates.
    const std::size_t needed = (bitCount_ + static_cast<std::size_t>(bits) + 7) / 8;
    if (needed > bytes_.size())
        bytes_.resize(needed);
    for (int i = 0; i < bits; ++i) {
        std::size_t bit_index = bitCount_ + i;
        if ((value >> i) & 1)
            bytes_[bit_index / 8] |=
                static_cast<std::uint8_t>(1u << (bit_index % 8));
    }
    bitCount_ += static_cast<std::size_t>(bits);
}

void
BitWriter::writeSigned(std::int32_t value, int bits)
{
    write(static_cast<std::uint32_t>(value) &
              (bits == 32 ? 0xFFFFFFFFu : ((1u << bits) - 1u)),
          bits);
}

std::uint32_t
BitReader::read(int bits)
{
    if (bits < 1 || bits > 32)
        throw std::invalid_argument("BitReader: bits out of range");
    std::uint32_t value = 0;
    if (!tryRead(bits, value))
        throw std::out_of_range("BitReader: stream exhausted");
    return value;
}

bool
BitReader::tryRead(int bits, std::uint32_t &value)
{
    if (bits < 1 || bits > 32)
        return false;
    if (!hasBits(static_cast<std::size_t>(bits)))
        return false;
    std::uint32_t v = 0;
    for (int i = 0; i < bits; ++i) {
        std::size_t bit_index = pos_ + i;
        if ((bytes_[bit_index / 8] >> (bit_index % 8)) & 1)
            v |= 1u << i;
    }
    pos_ += static_cast<std::size_t>(bits);
    value = v;
    return true;
}

bool
BitReader::tryReadSigned(int bits, std::int32_t &value)
{
    std::uint32_t raw = 0;
    if (!tryRead(bits, raw))
        return false;
    if (bits < 32 && (raw & (1u << (bits - 1))))
        raw |= ~((1u << bits) - 1u); // sign extend
    value = static_cast<std::int32_t>(raw);
    return true;
}

std::int32_t
BitReader::readSigned(int bits)
{
    std::uint32_t raw = read(bits);
    if (bits < 32 && (raw & (1u << (bits - 1))))
        raw |= ~((1u << bits) - 1u); // sign extend
    return static_cast<std::int32_t>(raw);
}

} // namespace diffy
