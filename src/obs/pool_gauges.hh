/**
 * @file
 * Publishes the BufferPool process-wide tallies (common/pool.hh) as
 * obs gauges. The pool itself lives in the leaf common layer and
 * cannot see obs, so the orchestrators that own pools (StreamServer,
 * SweepScheduler) call this after each batch / at sweep end.
 *
 *  - pool.bytes_in_use        — heap bytes owned by all live pools
 *  - pool.allocs_steady_state — heap fetches made after a pool was
 *    markSteadyState()'d; the zero-allocation steady-state gate
 *    asserts this reads 0 after warmup.
 */

#ifndef DIFFY_OBS_POOL_GAUGES_HH
#define DIFFY_OBS_POOL_GAUGES_HH

#include "common/pool.hh"
#include "obs/metrics.hh"

namespace diffy::obs
{

inline void
publishPoolGauges()
{
    MetricsRegistry &reg = MetricsRegistry::instance();
    reg.gauge("pool.bytes_in_use")
        .set(static_cast<double>(BufferPool::globalBytesInUse()));
    reg.gauge("pool.allocs_steady_state")
        .set(static_cast<double>(BufferPool::globalSteadyFetches()));
}

} // namespace diffy::obs

#endif // DIFFY_OBS_POOL_GAUGES_HH
