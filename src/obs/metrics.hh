/**
 * @file
 * Process-wide metrics registry: counters, gauges and latency
 * histograms registered by name.
 *
 * Design (DESIGN.md §11): instrumentation sites grab a metric handle
 * once (`MetricsRegistry::instance().counter("trace_cache.hits")`) and
 * record through it on the hot path. Each counter/histogram keeps one
 * shard per recording thread — allocated lazily through a thread-local
 * cache (the same idiom as `common/cache_registry`) — so recording
 * never contends on a shared cache line; `snapshot()` merges the
 * shards. Handles are stable for the process lifetime: the registry is
 * a singleton and never deletes a metric.
 *
 * Recording honours a global enable switch. Metrics are ON by default
 * (a relaxed atomic increment per event is noise next to the work being
 * measured); `MetricsRegistry::setEnabled(false)` turns every record
 * call into an early return that performs **zero allocations** — no
 * shard is ever created for a disabled recording.
 *
 * Reporting is pull-based: `snapshot()` returns plain data and
 * `writeJson()` serializes it. Nothing in this layer ever writes to
 * stdout — the determinism contract reserves stdout for bench tables
 * (stderr and files only).
 */

#ifndef DIFFY_OBS_METRICS_HH
#define DIFFY_OBS_METRICS_HH

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace diffy::obs
{

/** Monotonic event/amount counter, sharded per recording thread. */
class Counter
{
  public:
    /** Add @p n. No-op (and no allocation) while metrics are disabled. */
    void add(std::uint64_t n = 1);

    /** Sum over all shards. */
    std::uint64_t value() const;

    /** Zero every shard (the shards themselves are kept). */
    void reset();

    /** Number of per-thread shards allocated so far (tests). */
    std::size_t shardCount() const;

    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

  private:
    friend class MetricsRegistry;
    Counter() = default;

    struct Shard
    {
        std::atomic<std::uint64_t> value{0};
    };
    Shard &shard();

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

/** Last-write-wins scalar (thread counts, wall seconds, ...). */
class Gauge
{
  public:
    void set(double v);
    double value() const;

    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

  private:
    friend class MetricsRegistry;
    Gauge() = default;

    std::atomic<double> value_{0.0};
};

/**
 * Latency distribution: a merged RunningStat (count/sum/mean/min/max,
 * reusing common/stats.hh) plus a power-of-two histogram over
 * nanoseconds (bucket k holds samples with bit_width(ns) == k).
 * Sharded per recording thread like Counter.
 */
class LatencyHistogram
{
  public:
    struct Snapshot
    {
        RunningStat stat;
        /** Samples bucketed by bit_width of their nanosecond value. */
        Histogram log2Nanos;
    };

    /** Record one sample. No-op while metrics are disabled. */
    void record(double seconds);

    /** Merge every shard. Count/sum/min/max and the integer buckets
     *  are exact regardless of shard order. */
    Snapshot snapshot() const;

    /** Drop all recorded samples (shards are kept). */
    void reset();

    /** Number of per-thread shards allocated so far (tests). */
    std::size_t shardCount() const;

    LatencyHistogram(const LatencyHistogram &) = delete;
    LatencyHistogram &operator=(const LatencyHistogram &) = delete;

  private:
    friend class MetricsRegistry;
    LatencyHistogram() = default;

    struct Shard
    {
        std::mutex mutex; ///< owner-thread writes vs. rare snapshots
        RunningStat stat;
        Histogram buckets;
    };
    Shard &shard();

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Shard>> shards_;
};

/** Plain-data view of every registered metric at one point in time. */
struct MetricsSnapshot
{
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, LatencyHistogram::Snapshot> histograms;
};

/** Process-wide registry. Metrics live for the process lifetime. */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    /** Find-or-create; the returned reference never dangles. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    LatencyHistogram &histogram(const std::string &name);

    /** Merge every metric's shards into plain data. */
    MetricsSnapshot snapshot() const;

    /** Global record switch (ON by default; see file comment). */
    static bool enabled();
    static void setEnabled(bool on);

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  private:
    MetricsRegistry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_;
};

/**
 * RAII timer recording its own lifetime into a LatencyHistogram.
 * Timing is read here, inside src/obs, so instrumented code never
 * touches a clock directly (lint rule R6).
 */
class ScopedLatency
{
  public:
    explicit ScopedLatency(LatencyHistogram &hist);
    ~ScopedLatency();

    ScopedLatency(const ScopedLatency &) = delete;
    ScopedLatency &operator=(const ScopedLatency &) = delete;

  private:
    LatencyHistogram *hist_; ///< null when metrics are disabled
    std::uint64_t startNs_ = 0;
};

/** Serialize a snapshot as JSON (counters/gauges/histograms objects). */
void writeJson(const MetricsSnapshot &snapshot, std::ostream &os);

/**
 * Arrange for a registry snapshot to be written to @p path when the
 * process exits (the shared bench CLI's --metrics-out). The last call
 * wins; an empty path cancels the dump.
 */
void dumpMetricsOnExit(const std::string &path);

} // namespace diffy::obs

#endif // DIFFY_OBS_METRICS_HH
