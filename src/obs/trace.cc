#include "obs/trace.hh"

#include <cstdlib>
#include <fstream>
#include <utility>

namespace diffy::obs
{

namespace
{

/**
 * Small dense thread id for the "tid" lane in the trace viewer.
 * Assigned on first use per thread; monotonically increasing, never
 * reused. This is an identity, not a memo cache — clearing it between
 * sweeps would relabel lanes mid-trace, so it is exempt from the
 * thread-cache registry.
 */
int
currentTid()
{
    static std::atomic<int> next{0};
    // diffy-lint: allow(R2) — thread identity, must survive cache clears
    thread_local int tid = next.fetch_add(1, std::memory_order_relaxed);
    return tid;
}

void
appendEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\' << c;
        else if (static_cast<unsigned char>(c) < 0x20)
            os << ' '; // span names are ASCII identifiers; keep it simple
        else
            os << c;
    }
    os << '"';
}

} // namespace

/* ------------------------------------------------------------------ */
/* Tracer                                                              */
/* ------------------------------------------------------------------ */

Tracer::Tracer(std::string path)
{
    configure(std::move(path));
}

Tracer::~Tracer()
{
    flush();
}

void
Tracer::configure(std::string path)
{
    flush();
    std::lock_guard<std::mutex> lock(mutex_);
    path_ = std::move(path);
    events_.clear();
    enabled_.store(!path_.empty(), std::memory_order_relaxed);
}

void
Tracer::flush()
{
    std::vector<Event> events;
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (path_.empty())
            return;
        path = path_;
        events = events_; // copy: events are kept for later flushes
    }
    std::ofstream out(path);
    if (!out)
        return; // tracing is best-effort; never fail the bench over it
    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    bool first = true;
    for (const Event &e : events) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "{\"name\": ";
        appendEscaped(out, e.name);
        // Chrome trace timestamps are microseconds (doubles are fine:
        // 0.001us resolution keeps nanosecond precision for ~104 days).
        out << ", \"cat\": \"diffy\", \"ph\": \"X\", \"ts\": "
            << static_cast<double>(e.startNs) * 1e-3
            << ", \"dur\": " << static_cast<double>(e.durNs) * 1e-3
            << ", \"pid\": 1, \"tid\": " << e.tid;
        if (e.hasArg)
            out << ", \"args\": {\"index\": " << e.arg << "}";
        out << "}";
    }
    out << "\n]}\n";
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

Tracer &
Tracer::global()
{
    static Tracer tracer([] {
        const char *path = std::getenv("DIFFY_TRACE");
        return std::string(path != nullptr ? path : "");
    }());
    return tracer;
}

std::uint64_t
Tracer::nowNs() const
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
Tracer::record(std::string &&name, std::uint64_t startNs,
               std::uint64_t durNs, std::int64_t arg, bool hasArg)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (path_.empty())
        return; // disabled between span start and end: drop quietly
    events_.push_back(
        Event{std::move(name), startNs, durNs, arg, hasArg, currentTid()});
}

bool
traceEnabled()
{
    return Tracer::global().enabled();
}

/* ------------------------------------------------------------------ */
/* Span                                                                */
/* ------------------------------------------------------------------ */

Span::Span(Tracer &tracer, std::string name)
{
    if (tracer.enabled() && !name.empty()) {
        tracer_ = &tracer;
        name_ = std::move(name);
        startNs_ = tracer.nowNs();
    }
}

Span::Span(Tracer &tracer, std::string name, std::int64_t arg)
    : Span(tracer, std::move(name))
{
    arg_ = arg;
    hasArg_ = tracer_ != nullptr;
}

Span::~Span()
{
    if (tracer_ != nullptr)
        tracer_->record(std::move(name_), startNs_,
                        tracer_->nowNs() - startNs_, arg_, hasArg_);
}

} // namespace diffy::obs
