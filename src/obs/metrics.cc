#include "obs/metrics.hh"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <unordered_map>

#include "common/cache_registry.hh"

namespace diffy::obs
{

namespace
{

std::atomic<bool> &
enabledFlag()
{
    static std::atomic<bool> flag{true};
    return flag;
}

/**
 * Thread-local shard pointer cache: metric address -> this thread's
 * shard. Shards themselves are owned by the metric (they must outlive
 * worker threads so snapshots after a sweep still see their data);
 * this map only avoids the registry lock on the hot path. Clearing it
 * merely forces a re-lookup — the sweep-setup cache clear therefore
 * costs one fresh shard per metric, never data.
 */
std::unordered_map<const void *, void *> &
shardCache()
{
    thread_local std::unordered_map<const void *, void *> cache;
    return cache;
}

void
clearShardCache()
{
    shardCache().clear();
}

DIFFY_REGISTER_THREAD_CACHE(obs_metric_shards, clearShardCache);

std::uint64_t
monotonicNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Power-of-two bucket for a latency sample: bit_width of its nanos. */
std::int64_t
log2NanosBucket(double seconds)
{
    if (!(seconds > 0.0))
        return 0;
    const double nanos = seconds * 1e9;
    // Clamp: anything above ~292 years of nanoseconds is a bug, not a
    // latency; keep the cast defined.
    if (nanos >= 9.2e18)
        return 64;
    return static_cast<std::int64_t>(
        std::bit_width(static_cast<std::uint64_t>(nanos)));
}

} // namespace

/* ------------------------------------------------------------------ */
/* Counter                                                             */
/* ------------------------------------------------------------------ */

Counter::Shard &
Counter::shard()
{
    void *&slot = shardCache()[this];
    if (slot == nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(std::make_unique<Shard>());
        slot = shards_.back().get();
    }
    return *static_cast<Shard *>(slot);
}

void
Counter::add(std::uint64_t n)
{
    if (!MetricsRegistry::enabled())
        return;
    shard().value.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t
Counter::value() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const auto &shard : shards_)
        total += shard->value.load(std::memory_order_relaxed);
    return total;
}

void
Counter::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_)
        shard->value.store(0, std::memory_order_relaxed);
}

std::size_t
Counter::shardCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shards_.size();
}

/* ------------------------------------------------------------------ */
/* Gauge                                                               */
/* ------------------------------------------------------------------ */

void
Gauge::set(double v)
{
    if (!MetricsRegistry::enabled())
        return;
    value_.store(v, std::memory_order_relaxed);
}

double
Gauge::value() const
{
    return value_.load(std::memory_order_relaxed);
}

/* ------------------------------------------------------------------ */
/* LatencyHistogram                                                    */
/* ------------------------------------------------------------------ */

LatencyHistogram::Shard &
LatencyHistogram::shard()
{
    void *&slot = shardCache()[this];
    if (slot == nullptr) {
        std::lock_guard<std::mutex> lock(mutex_);
        shards_.push_back(std::make_unique<Shard>());
        slot = shards_.back().get();
    }
    return *static_cast<Shard *>(slot);
}

void
LatencyHistogram::record(double seconds)
{
    if (!MetricsRegistry::enabled())
        return;
    Shard &s = shard();
    // Uncontended in steady state: only the owning thread records; a
    // snapshot or reset takes the lock briefly and rarely.
    std::lock_guard<std::mutex> lock(s.mutex);
    s.stat.add(seconds);
    s.buckets.add(log2NanosBucket(seconds));
}

LatencyHistogram::Snapshot
LatencyHistogram::snapshot() const
{
    Snapshot out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> shardLock(shard->mutex);
        out.stat.merge(shard->stat);
        out.log2Nanos.merge(shard->buckets);
    }
    return out;
}

void
LatencyHistogram::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &shard : shards_) {
        std::lock_guard<std::mutex> shardLock(shard->mutex);
        shard->stat = RunningStat{};
        shard->buckets = Histogram{};
    }
}

std::size_t
LatencyHistogram::shardCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return shards_.size();
}

/* ------------------------------------------------------------------ */
/* MetricsRegistry                                                     */
/* ------------------------------------------------------------------ */

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry registry;
    return registry;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot.reset(new Counter());
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot.reset(new Gauge());
    return *slot;
}

LatencyHistogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot.reset(new LatencyHistogram());
    return *slot;
}

MetricsSnapshot
MetricsRegistry::snapshot() const
{
    MetricsSnapshot out;
    // Copy the handle lists under the registry lock, then merge each
    // metric outside it — metric merges take per-metric locks and must
    // not nest inside the registry lock held by a concurrent
    // find-or-create.
    std::vector<std::pair<std::string, const Counter *>> counters;
    std::vector<std::pair<std::string, const Gauge *>> gauges;
    std::vector<std::pair<std::string, const LatencyHistogram *>> hists;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[name, metric] : counters_)
            counters.emplace_back(name, metric.get());
        for (const auto &[name, metric] : gauges_)
            gauges.emplace_back(name, metric.get());
        for (const auto &[name, metric] : histograms_)
            hists.emplace_back(name, metric.get());
    }
    for (const auto &[name, metric] : counters)
        out.counters[name] = metric->value();
    for (const auto &[name, metric] : gauges)
        out.gauges[name] = metric->value();
    for (const auto &[name, metric] : hists)
        out.histograms[name] = metric->snapshot();
    return out;
}

bool
MetricsRegistry::enabled()
{
    return enabledFlag().load(std::memory_order_relaxed);
}

void
MetricsRegistry::setEnabled(bool on)
{
    enabledFlag().store(on, std::memory_order_relaxed);
}

/* ------------------------------------------------------------------ */
/* ScopedLatency                                                       */
/* ------------------------------------------------------------------ */

ScopedLatency::ScopedLatency(LatencyHistogram &hist)
    : hist_(MetricsRegistry::enabled() ? &hist : nullptr)
{
    if (hist_ != nullptr)
        startNs_ = monotonicNanos();
}

ScopedLatency::~ScopedLatency()
{
    if (hist_ != nullptr)
        hist_->record(
            static_cast<double>(monotonicNanos() - startNs_) * 1e-9);
}

/* ------------------------------------------------------------------ */
/* JSON snapshot                                                       */
/* ------------------------------------------------------------------ */

namespace
{

void
appendJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
appendJsonNumber(std::ostream &os, double v)
{
    // JSON has no NaN/Inf; clamp to null-adjacent zero (metrics are
    // durations and counts, so non-finite means "nothing recorded").
    if (!std::isfinite(v)) {
        os << 0;
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os << buf;
}

} // namespace

void
writeJson(const MetricsSnapshot &snapshot, std::ostream &os)
{
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, value] : snapshot.counters) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        appendJsonString(os, name);
        os << ": " << value;
    }
    os << (first ? "}" : "\n  }");
    os << ",\n  \"gauges\": {";
    first = true;
    for (const auto &[name, value] : snapshot.gauges) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        appendJsonString(os, name);
        os << ": ";
        appendJsonNumber(os, value);
    }
    os << (first ? "}" : "\n  }");
    os << ",\n  \"histograms\": {";
    first = true;
    for (const auto &[name, hist] : snapshot.histograms) {
        os << (first ? "\n    " : ",\n    ");
        first = false;
        appendJsonString(os, name);
        os << ": {\"count\": " << hist.stat.count() << ", \"sum\": ";
        appendJsonNumber(os, hist.stat.sum());
        os << ", \"mean\": ";
        appendJsonNumber(os, hist.stat.mean());
        os << ", \"min\": ";
        appendJsonNumber(os, hist.stat.min());
        os << ", \"max\": ";
        appendJsonNumber(os, hist.stat.max());
        os << ", \"log2_nanos\": {";
        bool firstBucket = true;
        for (const auto &[bucket, count] : hist.log2Nanos.bins()) {
            if (!firstBucket)
                os << ", ";
            firstBucket = false;
            appendJsonString(os, std::to_string(bucket));
            os << ": " << count;
        }
        os << "}}";
    }
    os << (first ? "}" : "\n  }");
    os << "\n}\n";
}

/* ------------------------------------------------------------------ */
/* Exit-time dump (--metrics-out)                                      */
/* ------------------------------------------------------------------ */

namespace
{

std::mutex dumpMutex;
std::string dumpPath; // guarded by dumpMutex

void
dumpRegisteredMetrics()
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(dumpMutex);
        path = dumpPath;
    }
    if (path.empty())
        return;
    std::ofstream out(path);
    if (!out)
        return; // exit path: nothing sensible to do about I/O errors
    writeJson(MetricsRegistry::instance().snapshot(), out);
}

} // namespace

void
dumpMetricsOnExit(const std::string &path)
{
    // Touch the registry first: the atexit handler must be registered
    // *after* the registry singleton is constructed so it runs before
    // the registry's static destruction.
    MetricsRegistry::instance();
    static bool registered = [] {
        std::atexit(dumpRegisteredMetrics);
        return true;
    }();
    (void)registered;
    std::lock_guard<std::mutex> lock(dumpMutex);
    dumpPath = path;
}

} // namespace diffy::obs
