/**
 * @file
 * Span-based tracing that emits Chrome `trace_event` JSON
 * (chrome://tracing / Perfetto "load trace" format).
 *
 * A `Span` is an RAII scope: construction reads the steady clock,
 * destruction records one complete ("ph":"X") event with the scope's
 * duration. Spans nest naturally — the viewer stacks events per
 * thread lane by timestamp containment.
 *
 * Tracing is OFF by default and zero-cost when disabled: the global
 * tracer is enabled only when the DIFFY_TRACE environment variable
 * names an output file, and a Span constructed against a disabled
 * tracer stores a null tracer and never touches the clock. All clock
 * reads live in this module (lint rule R6 keeps timing centralized in
 * src/obs + src/runtime).
 *
 * Output goes to the configured file only — never stdout (the
 * determinism contract reserves stdout for bench tables). The file is
 * (re)written by flush(); the global tracer flushes at process exit.
 */

#ifndef DIFFY_OBS_TRACE_HH
#define DIFFY_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace diffy::obs
{

/** Collects span events and writes them as Chrome trace JSON. */
class Tracer
{
  public:
    /** Disabled tracer: spans against it are inert. */
    Tracer() = default;

    /** Enabled when @p path is non-empty; see configure(). */
    explicit Tracer(std::string path);

    /** Flushes any buffered events (I/O errors are swallowed). */
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** True when spans are being recorded. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Re-target the tracer: flush the current events (if enabled),
     * drop them, then record to @p path ("" disables). Tests use this
     * to turn the global tracer on and off around a scenario.
     */
    void configure(std::string path);

    /**
     * Write every event recorded so far to the configured path as
     * `{"displayTimeUnit": "ms", "traceEvents": [...]}`. Events are
     * kept, so repeated flushes rewrite a complete file.
     */
    void flush();

    /** Events buffered so far (tests). */
    std::size_t eventCount() const;

    /**
     * The process-wide tracer, configured once from the DIFFY_TRACE
     * environment variable (unset/empty = disabled). Flushed at
     * static destruction, i.e. after main returns.
     */
    static Tracer &global();

  private:
    friend class Span;

    /** Nanoseconds since this tracer's construction. */
    std::uint64_t nowNs() const;
    void record(std::string &&name, std::uint64_t startNs,
                std::uint64_t durNs, std::int64_t arg, bool hasArg);

    struct Event
    {
        std::string name;
        std::uint64_t startNs;
        std::uint64_t durNs;
        std::int64_t arg;
        bool hasArg;
        int tid;
    };

    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
    mutable std::mutex mutex_;
    std::string path_;          ///< guarded by mutex_
    std::vector<Event> events_; ///< guarded by mutex_
    std::atomic<bool> enabled_{false};
};

/** True when the global tracer is recording. Use to skip building
 *  dynamic span names on hot paths. */
bool traceEnabled();

/** RAII trace scope; inert when its tracer is disabled or the name is
 *  empty (pass "" to skip a span cheaply). */
class Span
{
  public:
    explicit Span(std::string name) : Span(Tracer::global(), std::move(name))
    {}
    Span(std::string name, std::int64_t arg)
        : Span(Tracer::global(), std::move(name), arg)
    {}
    Span(Tracer &tracer, std::string name);
    Span(Tracer &tracer, std::string name, std::int64_t arg);
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    Tracer *tracer_ = nullptr; ///< null = inert
    std::string name_;
    std::uint64_t startNs_ = 0;
    std::int64_t arg_ = 0;
    bool hasArg_ = false;
};

} // namespace diffy::obs

#endif // DIFFY_OBS_TRACE_HH
