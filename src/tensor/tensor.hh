/**
 * @file
 * Dense CHW tensors used throughout the reproduction.
 *
 * Activations and weights are stored channel-major (C, H, W), matching
 * the brick layout of the modeled accelerators: a "brick" is 16
 * consecutive channels at one (y, x) position, and a "pallet" is 16
 * bricks at consecutive x positions (PRA/Diffy terminology).
 */

#ifndef DIFFY_TENSOR_TENSOR_HH
#define DIFFY_TENSOR_TENSOR_HH

#include <cassert>
#include <cstdint>
#include <vector>

#include "common/aligned.hh"

namespace diffy
{

/** Shape of a 3D (C, H, W) tensor. */
struct Shape3
{
    int c = 0;
    int h = 0;
    int w = 0;

    std::size_t volume() const
    {
        return static_cast<std::size_t>(c) * h * w;
    }

    bool operator==(const Shape3 &o) const = default;
};

/**
 * Dense 3D tensor with CHW layout.
 *
 * @tparam T element type; the quantized pipeline uses int16_t for
 *           values and int32_t/int64_t for accumulators.
 */
template <typename T>
class Tensor3
{
  public:
    using allocator_type = AlignedAllocator<T>;

    Tensor3() = default;

    explicit Tensor3(Shape3 shape, T fill = T{})
        : shape_(shape), data_(shape.volume(), fill)
    {}

    Tensor3(int c, int h, int w, T fill = T{})
        : Tensor3(Shape3{c, h, w}, fill)
    {}

    /** Allocator-aware construction (e.g. scratchAlloc<T>()). */
    Tensor3(Shape3 shape, const allocator_type &alloc, T fill = T{})
        : shape_(shape), data_(shape.volume(), fill, alloc)
    {}

    Tensor3(int c, int h, int w, const allocator_type &alloc,
            T fill = T{})
        : Tensor3(Shape3{c, h, w}, alloc, fill)
    {}

    /** Allocator-extended copy: same contents, chosen resource. */
    Tensor3(const Tensor3 &o, const allocator_type &alloc)
        : shape_(o.shape_), data_(o.data_, alloc)
    {}

    Tensor3(const Tensor3 &) = default;
    Tensor3(Tensor3 &&) = default;
    Tensor3 &operator=(const Tensor3 &) = default;
    Tensor3 &operator=(Tensor3 &&) = default;

    const Shape3 &shape() const { return shape_; }
    int channels() const { return shape_.c; }
    int height() const { return shape_.h; }
    int width() const { return shape_.w; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    std::size_t
    index(int c, int y, int x) const
    {
        assert(c >= 0 && c < shape_.c);
        assert(y >= 0 && y < shape_.h);
        assert(x >= 0 && x < shape_.w);
        return (static_cast<std::size_t>(c) * shape_.h + y) * shape_.w + x;
    }

    T &at(int c, int y, int x) { return data_[index(c, y, x)]; }
    const T &at(int c, int y, int x) const { return data_[index(c, y, x)]; }

    /**
     * Element access with zero padding outside the spatial extent.
     * Channel indices must always be in range.
     */
    T
    atPadded(int c, int y, int x) const
    {
        if (y < 0 || y >= shape_.h || x < 0 || x >= shape_.w)
            return T{};
        return at(c, y, x);
    }

    /** Extract the spatial crop [y0, y0+h) x [x0, x0+w), all channels. */
    Tensor3<T>
    crop(int y0, int x0, int h, int w) const
    {
        assert(y0 >= 0 && x0 >= 0 && y0 + h <= shape_.h &&
               x0 + w <= shape_.w);
        // Crops are per-frame transients: route through the ambient
        // scratch resource (heap when no ArenaScope is active).
        Tensor3<T> out(shape_.c, h, w, scratchAlloc<T>());
        for (int c = 0; c < shape_.c; ++c) {
            for (int y = 0; y < h; ++y) {
                for (int x = 0; x < w; ++x)
                    out.at(c, y, x) = at(c, y0 + y, x0 + x);
            }
        }
        return out;
    }

    void fill(T v) { data_.assign(data_.size(), v); }

    bool operator==(const Tensor3 &o) const = default;

  private:
    Shape3 shape_;
    // 32-byte aligned so the SIMD kernels' wide accesses to value and
    // term planes start on register boundaries (common/aligned.hh).
    AlignedVec<T> data_;
};

using TensorI16 = Tensor3<std::int16_t>;
using TensorI32 = Tensor3<std::int32_t>;
using TensorF = Tensor3<float>;

/** Shape of a 4D filter bank: K filters of (C, H, W) each. */
struct Shape4
{
    int k = 0;
    int c = 0;
    int h = 0;
    int w = 0;

    std::size_t volume() const
    {
        return static_cast<std::size_t>(k) * c * h * w;
    }

    bool operator==(const Shape4 &o) const = default;
};

/** Dense 4D filter bank, KCHW layout. */
template <typename T>
class Tensor4
{
  public:
    using allocator_type = AlignedAllocator<T>;

    Tensor4() = default;

    explicit Tensor4(Shape4 shape, T fill = T{})
        : shape_(shape), data_(shape.volume(), fill)
    {}

    Tensor4(int k, int c, int h, int w, T fill = T{})
        : Tensor4(Shape4{k, c, h, w}, fill)
    {}

    /** Allocator-aware construction (e.g. scratchAlloc<T>()). */
    Tensor4(Shape4 shape, const allocator_type &alloc, T fill = T{})
        : shape_(shape), data_(shape.volume(), fill, alloc)
    {}

    /** Allocator-extended copy: same contents, chosen resource. */
    Tensor4(const Tensor4 &o, const allocator_type &alloc)
        : shape_(o.shape_), data_(o.data_, alloc)
    {}

    Tensor4(const Tensor4 &) = default;
    Tensor4(Tensor4 &&) = default;
    Tensor4 &operator=(const Tensor4 &) = default;
    Tensor4 &operator=(Tensor4 &&) = default;

    const Shape4 &shape() const { return shape_; }
    int filters() const { return shape_.k; }
    int channels() const { return shape_.c; }
    int height() const { return shape_.h; }
    int width() const { return shape_.w; }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    T *data() { return data_.data(); }
    const T *data() const { return data_.data(); }

    std::size_t
    index(int k, int c, int y, int x) const
    {
        assert(k >= 0 && k < shape_.k);
        assert(c >= 0 && c < shape_.c);
        assert(y >= 0 && y < shape_.h);
        assert(x >= 0 && x < shape_.w);
        return ((static_cast<std::size_t>(k) * shape_.c + c) * shape_.h + y)
                   * shape_.w + x;
    }

    T &at(int k, int c, int y, int x) { return data_[index(k, c, y, x)]; }
    const T &
    at(int k, int c, int y, int x) const
    {
        return data_[index(k, c, y, x)];
    }

    bool operator==(const Tensor4 &o) const = default;

  private:
    Shape4 shape_;
    AlignedVec<T> data_;
};

using FilterBankI16 = Tensor4<std::int16_t>;

/**
 * Compute the X-axis delta representation of an imap: for each row,
 * the x == 0 element stays raw and every other element becomes
 * a(c,y,x) - a(c,y,x-1). This is the storage format Diffy's Delta-out
 * engine writes to the activation memory.
 */
TensorI16 xDeltas(const TensorI16 &t);

/** Inverse of xDeltas(); reconstructs raw values by prefix summation. */
TensorI16 xDeltasInverse(const TensorI16 &deltas);

} // namespace diffy

#endif // DIFFY_TENSOR_TENSOR_HH
