#include "tensor/tensor.hh"

#include "common/fixed_point.hh"

namespace diffy
{

TensorI16
xDeltas(const TensorI16 &t)
{
    TensorI16 out(t.shape(), scratchAlloc<std::int16_t>());
    for (int c = 0; c < t.channels(); ++c) {
        for (int y = 0; y < t.height(); ++y) {
            std::int16_t prev = 0;
            for (int x = 0; x < t.width(); ++x) {
                std::int16_t cur = t.at(c, y, x);
                if (x == 0) {
                    out.at(c, y, x) = cur;
                } else {
                    // Deltas of int16 values span [-65535, 65535]; the
                    // modeled hardware keeps one extra bit internally,
                    // and the quantized executor keeps activations well
                    // inside the range, so saturation is a safe guard.
                    out.at(c, y, x) = saturate16(
                        static_cast<std::int32_t>(cur) -
                        static_cast<std::int32_t>(prev));
                }
                prev = cur;
            }
        }
    }
    return out;
}

TensorI16
xDeltasInverse(const TensorI16 &deltas)
{
    TensorI16 out(deltas.shape(), scratchAlloc<std::int16_t>());
    for (int c = 0; c < deltas.channels(); ++c) {
        for (int y = 0; y < deltas.height(); ++y) {
            std::int32_t acc = 0;
            for (int x = 0; x < deltas.width(); ++x) {
                if (x == 0)
                    acc = deltas.at(c, y, x);
                else
                    acc += deltas.at(c, y, x);
                out.at(c, y, x) = saturate16(acc);
            }
        }
    }
    return out;
}

} // namespace diffy
