#include "analysis/precision.hh"

#include "common/bitops.hh"

namespace diffy
{

void
PrecisionProfiler::addLayer(std::size_t layer_index, const TensorI16 &imap)
{
    if (perLayer_.size() <= layer_index)
        perLayer_.resize(layer_index + 1);
    Histogram &hist = perLayer_[layer_index];
    const std::int16_t *data = imap.data();
    for (std::size_t i = 0; i < imap.size(); ++i)
        hist.add(bitsNeeded(data[i]));
}

void
PrecisionProfiler::addTrace(const NetworkTrace &trace)
{
    for (std::size_t i = 0; i < trace.layers.size(); ++i)
        addLayer(i, trace.layers[i].imap);
}

void
PrecisionProfiler::merge(const PrecisionProfiler &other)
{
    if (perLayer_.size() < other.perLayer_.size())
        perLayer_.resize(other.perLayer_.size());
    for (std::size_t i = 0; i < other.perLayer_.size(); ++i)
        perLayer_[i].merge(other.perLayer_[i]);
}

int
PrecisionProfiler::layerPrecision(std::size_t layer_index,
                                  double coverage) const
{
    if (layer_index >= perLayer_.size() ||
        perLayer_[layer_index].total() == 0) {
        return 16;
    }
    int bits = static_cast<int>(perLayer_[layer_index].quantile(coverage));
    return bits < 1 ? 1 : (bits > 16 ? 16 : bits);
}

std::vector<int>
PrecisionProfiler::profile(double coverage) const
{
    std::vector<int> out(perLayer_.size());
    for (std::size_t i = 0; i < perLayer_.size(); ++i)
        out[i] = layerPrecision(i, coverage);
    return out;
}

namespace
{

double
groupBitsOf(const std::int16_t *data, std::size_t n, int group_size)
{
    if (n == 0)
        return 0.0;
    double total_bits = 0.0;
    for (std::size_t start = 0; start < n;
         start += static_cast<std::size_t>(group_size)) {
        std::size_t len =
            std::min(static_cast<std::size_t>(group_size), n - start);
        int bits = groupBitsNeeded(data + start, len);
        total_bits += static_cast<double>(bits) * static_cast<double>(len);
    }
    return total_bits / static_cast<double>(n);
}

} // namespace

double
dynamicGroupBits(const TensorI16 &t, int group_size)
{
    return groupBitsOf(t.data(), t.size(), group_size);
}

double
dynamicGroupBitsDeltas(const TensorI16 &t, int group_size)
{
    TensorI16 deltas = xDeltas(t);
    return groupBitsOf(deltas.data(), deltas.size(), group_size);
}

} // namespace diffy
