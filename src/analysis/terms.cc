#include "analysis/terms.hh"

#include <algorithm>
#include <array>
#include <vector>

#include "common/bitops.hh"

namespace diffy
{

namespace
{

/**
 * Fold a batch-produced term plane into TermStats: bucket counts are
 * tallied in a flat array (a 32-bit value has at most 32 NAF terms)
 * and committed to the map-backed histogram once per batch, keeping
 * the per-value work at a couple of array ops.
 */
class TermAccumulator
{
  public:
    void
    add(const std::uint8_t *terms, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            ++counts_[terms[i]];
    }

    void
    commit(TermStats &stats) const
    {
        for (std::size_t t = 0; t < counts_.size(); ++t) {
            if (counts_[t] == 0)
                continue;
            stats.termHistogram.add(static_cast<std::int64_t>(t),
                                    counts_[t]);
            stats.values += counts_[t];
            stats.totalTerms += t * counts_[t];
        }
    }

  private:
    std::array<std::uint64_t, 33> counts_{};
};

} // namespace

void
TermStats::merge(const TermStats &other)
{
    termHistogram.merge(other.termHistogram);
    values += other.values;
    zeroValues += other.zeroValues;
    totalTerms += other.totalTerms;
}

TermStats
rawTermStats(const TensorI16 &t)
{
    TermStats stats;
    const std::int16_t *data = t.data();
    const std::size_t n = t.size();
    TermAccumulator acc;
    std::array<std::uint8_t, 4096> plane;
    for (std::size_t i = 0; i < n; i += plane.size()) {
        const std::size_t chunk = std::min(plane.size(), n - i);
        boothTermsPlane(data + i, plane.data(), chunk);
        acc.add(plane.data(), chunk);
        for (std::size_t j = 0; j < chunk; ++j)
            stats.zeroValues += data[i + j] == 0;
    }
    acc.commit(stats);
    return stats;
}

TermStats
deltaTermStats(const TensorI16 &t)
{
    TermStats stats;
    const int w = t.width();
    TermAccumulator acc;
    std::vector<std::int32_t> drow(static_cast<std::size_t>(w));
    std::vector<std::uint8_t> plane(static_cast<std::size_t>(w));
    for (int c = 0; c < t.channels(); ++c) {
        for (int y = 0; y < t.height(); ++y) {
            const std::int16_t *row = t.data() +
                                      (static_cast<std::size_t>(c) *
                                           t.height() +
                                       y) *
                                          w;
            if (w > 0)
                drow[0] = row[0];
            for (int x = 1; x < w; ++x)
                drow[x] =
                    static_cast<std::int32_t>(row[x]) - row[x - 1];
            boothTermsPlane(drow.data(), plane.data(),
                            static_cast<std::size_t>(w));
            acc.add(plane.data(), static_cast<std::size_t>(w));
            for (int x = 0; x < w; ++x)
                stats.zeroValues += drow[x] == 0;
        }
    }
    acc.commit(stats);
    return stats;
}

void
WorkPotential::merge(const WorkPotential &other)
{
    allTerms += other.allTerms;
    rawTerms += other.rawTerms;
    deltaTerms += other.deltaTerms;
}

WorkPotential
layerWorkPotential(const LayerTrace &layer, int baseline_bits)
{
    // Every activation at (c, y, x) is consumed by up to k*k windows
    // (same-padding, stride 1); with stride s only every s-th window
    // row/column uses it. For the work *ratio* the per-activation reuse
    // multiplier is approximately uniform, so we weight every
    // activation by the average reuse factor, which cancels in the
    // speedup ratios and keeps totals proportional to true work.
    const auto &spec = layer.spec;
    const double reuse =
        static_cast<double>(spec.kernel * spec.kernel) /
        (static_cast<double>(spec.stride) * spec.stride);
    const double filters = spec.outChannels;

    TermStats raw = rawTermStats(layer.imap);
    TermStats delta = deltaTermStats(layer.imap);

    WorkPotential wp;
    wp.allTerms = static_cast<double>(raw.values) * baseline_bits * reuse *
                  filters;
    wp.rawTerms =
        static_cast<double>(raw.totalTerms) * reuse * filters;
    wp.deltaTerms =
        static_cast<double>(delta.totalTerms) * reuse * filters;
    return wp;
}

WorkPotential
networkWorkPotential(const NetworkTrace &trace, int baseline_bits)
{
    WorkPotential total;
    for (const auto &layer : trace.layers)
        total.merge(layerWorkPotential(layer, baseline_bits));
    return total;
}

} // namespace diffy
