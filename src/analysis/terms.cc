#include "analysis/terms.hh"

#include "common/bitops.hh"

namespace diffy
{

void
TermStats::merge(const TermStats &other)
{
    termHistogram.merge(other.termHistogram);
    values += other.values;
    zeroValues += other.zeroValues;
    totalTerms += other.totalTerms;
}

TermStats
rawTermStats(const TensorI16 &t)
{
    TermStats stats;
    const std::int16_t *data = t.data();
    for (std::size_t i = 0; i < t.size(); ++i) {
        int terms = boothTerms(data[i]);
        stats.termHistogram.add(terms);
        ++stats.values;
        stats.zeroValues += data[i] == 0;
        stats.totalTerms += static_cast<std::uint64_t>(terms);
    }
    return stats;
}

TermStats
deltaTermStats(const TensorI16 &t)
{
    TermStats stats;
    for (int c = 0; c < t.channels(); ++c) {
        for (int y = 0; y < t.height(); ++y) {
            std::int32_t prev = 0;
            for (int x = 0; x < t.width(); ++x) {
                std::int32_t cur = t.at(c, y, x);
                std::int32_t v = (x == 0) ? cur : cur - prev;
                int terms = boothTerms(v);
                stats.termHistogram.add(terms);
                ++stats.values;
                stats.zeroValues += v == 0;
                stats.totalTerms += static_cast<std::uint64_t>(terms);
                prev = cur;
            }
        }
    }
    return stats;
}

void
WorkPotential::merge(const WorkPotential &other)
{
    allTerms += other.allTerms;
    rawTerms += other.rawTerms;
    deltaTerms += other.deltaTerms;
}

WorkPotential
layerWorkPotential(const LayerTrace &layer, int baseline_bits)
{
    // Every activation at (c, y, x) is consumed by up to k*k windows
    // (same-padding, stride 1); with stride s only every s-th window
    // row/column uses it. For the work *ratio* the per-activation reuse
    // multiplier is approximately uniform, so we weight every
    // activation by the average reuse factor, which cancels in the
    // speedup ratios and keeps totals proportional to true work.
    const auto &spec = layer.spec;
    const double reuse =
        static_cast<double>(spec.kernel * spec.kernel) /
        (static_cast<double>(spec.stride) * spec.stride);
    const double filters = spec.outChannels;

    TermStats raw = rawTermStats(layer.imap);
    TermStats delta = deltaTermStats(layer.imap);

    WorkPotential wp;
    wp.allTerms = static_cast<double>(raw.values) * baseline_bits * reuse *
                  filters;
    wp.rawTerms =
        static_cast<double>(raw.totalTerms) * reuse * filters;
    wp.deltaTerms =
        static_cast<double>(delta.totalTerms) * reuse * filters;
    return wp;
}

WorkPotential
networkWorkPotential(const NetworkTrace &trace, int baseline_bits)
{
    WorkPotential total;
    for (const auto &layer : trace.layers)
        total.merge(layerWorkPotential(layer, baseline_bits));
    return total;
}

} // namespace diffy
