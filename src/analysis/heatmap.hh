/**
 * @file
 * Spatial heatmap extraction for Fig 2: per-(y, x) summaries over the
 * channel dimension of a layer's imap, for the raw values, the X-axis
 * deltas, and the effectual-term reduction of the differential stream.
 * The bench renders these as coarse ASCII intensity maps plus the
 * aggregate statistics the paper quotes (mean terms per activation vs
 * per delta).
 */

#ifndef DIFFY_ANALYSIS_HEATMAP_HH
#define DIFFY_ANALYSIS_HEATMAP_HH

#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace diffy
{

/** One 2D scalar field summarized over channels. */
struct Heatmap
{
    int height = 0;
    int width = 0;
    std::vector<double> values; ///< row-major (y, x)

    double at(int y, int x) const { return values[std::size_t(y) * width + x]; }
    double &at(int y, int x) { return values[std::size_t(y) * width + x]; }
};

/** Mean |value| over channels at each position. */
Heatmap rawMagnitudeHeatmap(const TensorI16 &imap);

/** Mean |X-delta| over channels at each position. */
Heatmap deltaMagnitudeHeatmap(const TensorI16 &imap);

/** Mean Booth terms of the raw value over channels at each position. */
Heatmap rawTermsHeatmap(const TensorI16 &imap);

/** Mean Booth terms of the differential stream at each position. */
Heatmap deltaTermsHeatmap(const TensorI16 &imap);

/**
 * Render a heatmap as ASCII art with the given output resolution
 * (block-averaged), darker glyphs meaning larger values.
 */
std::string renderAscii(const Heatmap &map, int out_h, int out_w);

} // namespace diffy

#endif // DIFFY_ANALYSIS_HEATMAP_HH
