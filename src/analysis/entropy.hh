/**
 * @file
 * Information-content measurements of activation streams (paper Fig 1):
 * the entropy H(A) of the raw activations, the conditional entropy
 * H(A|A') given the X-adjacent activation, and the entropy H(D) of the
 * X-axis deltas. The ratios H(A)/H(A|A') and H(A)/H(D) bound the
 * compression attainable by exploiting spatial correlation.
 */

#ifndef DIFFY_ANALYSIS_ENTROPY_HH
#define DIFFY_ANALYSIS_ENTROPY_HH

#include "common/stats.hh"
#include "nn/trace.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/** Accumulated entropy measurements over one or more value streams. */
class EntropyAccumulator
{
  public:
    /** Add every (value, left-neighbour) pair of a tensor. */
    void addTensor(const TensorI16 &t);

    /** Add all imaps of a network trace. */
    void addTrace(const NetworkTrace &trace);

    /** Merge another accumulator (e.g. from a different input). */
    void merge(const EntropyAccumulator &other);

    /** H(A): entropy of the raw activation values, bits/value. */
    double valueEntropy() const { return values_.entropyBits(); }

    /** H(A|A'): new information given the X-adjacent value. */
    double conditionalEntropy() const
    {
        return joint_.conditionalEntropyBits();
    }

    /** H(D): entropy of the X-axis delta stream. */
    double deltaEntropy() const { return deltas_.entropyBits(); }

    /** Compression potential H(A)/H(A|A'). */
    double conditionalRatio() const;

    /** Compression potential H(A)/H(D). */
    double deltaRatio() const;

  private:
    Histogram values_;
    Histogram deltas_;
    JointHistogram joint_;
};

} // namespace diffy

#endif // DIFFY_ANALYSIS_ENTROPY_HH
