#include "analysis/heatmap.hh"

#include <algorithm>
#include <cmath>

#include "common/bitops.hh"

namespace diffy
{

namespace
{

template <typename Fn>
Heatmap
channelMean(const TensorI16 &imap, Fn &&per_value)
{
    Heatmap map;
    map.height = imap.height();
    map.width = imap.width();
    map.values.assign(static_cast<std::size_t>(map.height) * map.width, 0.0);
    const double inv_c = 1.0 / std::max(1, imap.channels());
    for (int c = 0; c < imap.channels(); ++c) {
        for (int y = 0; y < imap.height(); ++y) {
            std::int32_t prev = 0;
            for (int x = 0; x < imap.width(); ++x) {
                std::int32_t cur = imap.at(c, y, x);
                map.at(y, x) += per_value(cur, prev, x) * inv_c;
                prev = cur;
            }
        }
    }
    return map;
}

} // namespace

Heatmap
rawMagnitudeHeatmap(const TensorI16 &imap)
{
    return channelMean(imap, [](std::int32_t cur, std::int32_t, int) {
        return std::abs(static_cast<double>(cur));
    });
}

Heatmap
deltaMagnitudeHeatmap(const TensorI16 &imap)
{
    return channelMean(imap, [](std::int32_t cur, std::int32_t prev, int x) {
        std::int32_t v = x == 0 ? cur : cur - prev;
        return std::abs(static_cast<double>(v));
    });
}

Heatmap
rawTermsHeatmap(const TensorI16 &imap)
{
    return channelMean(imap, [](std::int32_t cur, std::int32_t, int) {
        return static_cast<double>(boothTerms(cur));
    });
}

Heatmap
deltaTermsHeatmap(const TensorI16 &imap)
{
    return channelMean(imap, [](std::int32_t cur, std::int32_t prev, int x) {
        std::int32_t v = x == 0 ? cur : cur - prev;
        return static_cast<double>(boothTerms(v));
    });
}

std::string
renderAscii(const Heatmap &map, int out_h, int out_w)
{
    static const char kRamp[] = " .:-=+*#%@";
    const int levels = static_cast<int>(sizeof(kRamp)) - 2;

    double lo = 1e300, hi = -1e300;
    for (double v : map.values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    if (map.values.empty() || hi <= lo)
        return "";

    std::string out;
    out.reserve(static_cast<std::size_t>(out_h) * (out_w + 1));
    for (int oy = 0; oy < out_h; ++oy) {
        int y0 = oy * map.height / out_h;
        int y1 = std::max(y0 + 1, (oy + 1) * map.height / out_h);
        for (int ox = 0; ox < out_w; ++ox) {
            int x0 = ox * map.width / out_w;
            int x1 = std::max(x0 + 1, (ox + 1) * map.width / out_w);
            double acc = 0.0;
            int n = 0;
            for (int y = y0; y < y1; ++y) {
                for (int x = x0; x < x1; ++x) {
                    acc += map.at(y, x);
                    ++n;
                }
            }
            double norm = (acc / n - lo) / (hi - lo);
            int idx = static_cast<int>(std::lround(norm * levels));
            idx = std::clamp(idx, 0, levels);
            out.push_back(kRamp[idx]);
        }
        out.push_back('\n');
    }
    return out;
}

} // namespace diffy
