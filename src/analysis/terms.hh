/**
 * @file
 * Effectual-term and sparsity analysis of activation streams.
 *
 * "Effectual terms" are the nonzero signed digits of a value under the
 * modified-Booth recoding used by PRA-style serial accelerators: a
 * value with t terms costs t cycles in a term-serial lane. Comparing
 * the term content of raw activations against their X-axis deltas
 * quantifies the work reduction differential convolution can deliver
 * (paper Figs 2c, 3 and 4).
 */

#ifndef DIFFY_ANALYSIS_TERMS_HH
#define DIFFY_ANALYSIS_TERMS_HH

#include <cstdint>

#include "common/stats.hh"
#include "nn/trace.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/** Term/sparsity statistics of one value stream. */
struct TermStats
{
    Histogram termHistogram; ///< Booth terms per value
    std::uint64_t values = 0;
    std::uint64_t zeroValues = 0;
    std::uint64_t totalTerms = 0;

    double meanTerms() const
    {
        return values ? static_cast<double>(totalTerms) /
                            static_cast<double>(values)
                      : 0.0;
    }

    double sparsity() const
    {
        return values ? static_cast<double>(zeroValues) /
                            static_cast<double>(values)
                      : 0.0;
    }

    void merge(const TermStats &other);
};

/** Term statistics of the raw values of a tensor. */
TermStats rawTermStats(const TensorI16 &t);

/**
 * Term statistics of the X-axis delta stream of a tensor, counting the
 * leftmost element of each row raw — exactly the value stream Diffy's
 * row dataflow processes.
 */
TermStats deltaTermStats(const TensorI16 &t);

/**
 * Work model of Fig 4. Counts for one layer the total term-processing
 * work of three schemes, in units of "term slots":
 *  - ALL  : value-agnostic, 16 slots per activation use;
 *  - RawE : effectual terms of the raw activations;
 *  - DeltaE: effectual terms of the differential stream.
 * Each activation is weighted by the number of windows (filter taps)
 * that consume it, so the totals are proportional to execution work.
 */
struct WorkPotential
{
    double allTerms = 0.0;
    double rawTerms = 0.0;
    double deltaTerms = 0.0;

    double rawSpeedup() const
    {
        return rawTerms > 0.0 ? allTerms / rawTerms : 0.0;
    }
    double deltaSpeedup() const
    {
        return deltaTerms > 0.0 ? allTerms / deltaTerms : 0.0;
    }

    void merge(const WorkPotential &other);
};

/** Work potential of one traced layer (weighted by window reuse). */
WorkPotential layerWorkPotential(const LayerTrace &layer,
                                 int baseline_bits = 16);

/** Work potential accumulated over a whole network trace. */
WorkPotential networkWorkPotential(const NetworkTrace &trace,
                                   int baseline_bits = 16);

} // namespace diffy

#endif // DIFFY_ANALYSIS_TERMS_HH
