/**
 * @file
 * Activation precision profiling (paper Table III and the Profiled /
 * RawD / DeltaD storage schemes).
 *
 * The paper derives one activation precision per layer by profiling,
 * tolerating a negligible output-quality loss. Our substitute keeps a
 * per-layer histogram of minimum two's complement widths and picks the
 * smallest precision covering a configurable fraction of the values
 * (outliers saturate, mirroring quality-preserving truncation).
 */

#ifndef DIFFY_ANALYSIS_PRECISION_HH
#define DIFFY_ANALYSIS_PRECISION_HH

#include <vector>

#include "common/stats.hh"
#include "nn/trace.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/** Coverage used for profiled precisions throughout the repo. */
constexpr double kProfiledCoverage = 0.999;

/** Per-layer profiled precision accumulator. */
class PrecisionProfiler
{
  public:
    /** Record the bit-width of every value of a layer's imap. */
    void addLayer(std::size_t layer_index, const TensorI16 &imap);

    /** Record a whole network trace. */
    void addTrace(const NetworkTrace &trace);

    void merge(const PrecisionProfiler &other);

    /**
     * Profiled precision of layer @p layer_index: the smallest width
     * covering @p coverage of the observed values.
     */
    int layerPrecision(std::size_t layer_index,
                       double coverage = kProfiledCoverage) const;

    /** All per-layer precisions in layer order. */
    std::vector<int> profile(double coverage = kProfiledCoverage) const;

    std::size_t layerCount() const { return perLayer_.size(); }

  private:
    std::vector<Histogram> perLayer_; ///< width histogram per layer
};

/**
 * Dynamic per-group precision statistics (Dynamic Stripes style):
 * average bits/value when each group of @p group_size activations is
 * stored at the group's own minimum width, excluding metadata.
 */
double dynamicGroupBits(const TensorI16 &t, int group_size);

/** Same, over the X-axis delta representation of the tensor. */
double dynamicGroupBitsDeltas(const TensorI16 &t, int group_size);

} // namespace diffy

#endif // DIFFY_ANALYSIS_PRECISION_HH
