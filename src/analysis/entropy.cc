#include "analysis/entropy.hh"

namespace diffy
{

void
EntropyAccumulator::addTensor(const TensorI16 &t)
{
    for (int c = 0; c < t.channels(); ++c) {
        for (int y = 0; y < t.height(); ++y) {
            for (int x = 0; x < t.width(); ++x) {
                std::int32_t cur = t.at(c, y, x);
                values_.add(cur);
                if (x > 0) {
                    std::int32_t prev = t.at(c, y, x - 1);
                    joint_.add(cur, prev);
                    deltas_.add(cur - prev);
                }
            }
        }
    }
}

void
EntropyAccumulator::addTrace(const NetworkTrace &trace)
{
    for (const auto &layer : trace.layers)
        addTensor(layer.imap);
}

void
EntropyAccumulator::merge(const EntropyAccumulator &other)
{
    values_.merge(other.values_);
    deltas_.merge(other.deltas_);
    joint_.merge(other.joint_);
}

double
EntropyAccumulator::conditionalRatio() const
{
    double cond = conditionalEntropy();
    return cond > 0.0 ? valueEntropy() / cond : 0.0;
}

double
EntropyAccumulator::deltaRatio() const
{
    double d = deltaEntropy();
    return d > 0.0 ? valueEntropy() / d : 0.0;
}

} // namespace diffy
