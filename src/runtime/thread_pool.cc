#include "runtime/thread_pool.hh"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hh"

namespace diffy
{

ThreadPool::ThreadPool(int threads)
{
    if (threads <= 0)
        throw std::invalid_argument(
            "ThreadPool: thread count must be positive, got " +
            std::to_string(threads));
    workers_.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workAvailable_.notify_all();
    for (auto &worker : workers_)
        worker.join();
    // A task throwing during the shutdown drain is captured by
    // workerLoop() like any steady-state task — never std::terminate.
    // But a destructor must not throw, so an exception still pending
    // here (the owner skipped wait()) can only be dropped; count the
    // drop so the loss is at least observable.
    if (firstError_)
        obs::MetricsRegistry::instance()
            .counter("thread_pool.dropped_exceptions")
            .add(1);
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            throw std::logic_error("ThreadPool: submit after shutdown");
        queue_.push_back(std::move(job));
        // Backpressure observability (DESIGN.md §13): the gauge tracks
        // the instantaneous queue depth, updated under the queue lock
        // on both enqueue and dequeue so it never drifts from reality.
        obs::MetricsRegistry::instance()
            .gauge("thread_pool.queue_depth")
            .set(static_cast<double>(queue_.size()));
    }
    workAvailable_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    if (firstError_) {
        std::exception_ptr error = std::exchange(firstError_, nullptr);
        lock.unlock();
        std::rethrow_exception(error);
    }
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workAvailable_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            // Graceful shutdown: drain the queue before exiting even
            // when stopping_ is already set.
            if (queue_.empty())
                return;
            job = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
            obs::MetricsRegistry::instance()
                .gauge("thread_pool.queue_depth")
                .set(static_cast<double>(queue_.size()));
        }
        try {
            job();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!firstError_)
                firstError_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
            if (queue_.empty() && active_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace diffy
