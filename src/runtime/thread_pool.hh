/**
 * @file
 * Fixed-size worker thread pool.
 *
 * The pool backs the sweep scheduler (see runtime/sweep.hh) but is
 * usable on its own: submit() enqueues a job, wait() blocks until the
 * queue drains and every in-flight job retires, and destruction is a
 * graceful shutdown — all jobs submitted before the destructor runs
 * are completed, never dropped.
 *
 * A job that throws does not take down its worker thread: the first
 * escaped exception (in completion order) is captured and rethrown by
 * the next wait() call — including jobs that run during the shutdown
 * drain, which must never reach std::terminate. A capture still
 * pending at destruction (the owner never called wait()) is dropped,
 * counted in `thread_pool.dropped_exceptions`. Callers that need
 * deterministic exception selection across jobs (the sweep scheduler
 * does) should catch inside the job and pick a winner themselves.
 */

#ifndef DIFFY_RUNTIME_THREAD_POOL_HH
#define DIFFY_RUNTIME_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace diffy
{

/** Fixed-size thread pool with graceful shutdown. */
class ThreadPool
{
  public:
    /**
     * Spawn @p threads workers.
     * @throws std::invalid_argument when @p threads is not positive.
     */
    explicit ThreadPool(int threads);

    /** Graceful shutdown: completes every queued job, then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Must not be called after shutdown began. */
    void submit(std::function<void()> job);

    /**
     * Block until the queue is empty and no job is executing, then
     * rethrow the first captured job exception, if any.
     */
    void wait();

    /** Number of worker threads. */
    int threadCount() const { return static_cast<int>(workers_.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable workAvailable_;
    std::condition_variable idle_;
    std::size_t active_ = 0;
    bool stopping_ = false;
    std::exception_ptr firstError_;
};

} // namespace diffy

#endif // DIFFY_RUNTIME_THREAD_POOL_HH
