/**
 * @file
 * Failure policy, error taxonomy, and structured sweep reporting
 * (DESIGN.md §12).
 *
 * The sweep scheduler's historical contract was fail_fast: capture
 * per-job exceptions, rethrow the lowest-index one after the sweep
 * drains. That is the right default for benches whose every cell is
 * expected to succeed, but it makes a 10k-cell grid hostage to its
 * worst cell. The types here let a caller opt into keep_going mode:
 * bounded retry with deterministic jittered backoff, a per-job soft
 * deadline enforced by a watchdog, quarantine of cells that exhaust
 * their budget, and a SweepReport that names every non-clean cell
 * with a classified failure kind instead of a bare rethrow.
 *
 * Determinism: retries re-create the SweepJob with the *same*
 * jobSeed(baseSeed, index), so a cell that succeeds on attempt 3
 * produces output byte-identical to a first-try success; backoff
 * durations are seeded from (baseSeed, index, attempt) and affect
 * only the wall clock, never results. The quarantine decision is a
 * retire-time elapsed check, not a watchdog race, so it too is
 * stable across thread counts.
 */

#ifndef DIFFY_RUNTIME_RESILIENCE_HH
#define DIFFY_RUNTIME_RESILIENCE_HH

#include <cstddef>
#include <cstdint>
#include <exception>
#include <iosfwd>
#include <string>
#include <vector>

namespace diffy
{

/** What the scheduler does with a job that exhausts its retries. */
enum class FailurePolicy
{
    FailFast, ///< historical behaviour: lowest-index error rethrown
    KeepGoing ///< quarantine the cell, finish the sweep, report
};

/**
 * Classified cause of a job failure. Decode* kinds mirror
 * DecodeStatus one-for-one (a DecodeError thrown through the sweep
 * body lands in the matching bucket); the rest classify by exception
 * type. Each kind has a matching `sweep.errors.<to_string(kind)>`
 * obs counter.
 */
enum class FailureKind
{
    None,              ///< cell succeeded
    DecodeBadShape,    ///< DecodeStatus::BadShape
    DecodeTruncated,   ///< DecodeStatus::Truncated
    DecodeBadHeader,   ///< DecodeStatus::BadHeader
    DecodeBadChecksum, ///< DecodeStatus::BadChecksum (detected corruption)
    Timeout,           ///< attempt overran the soft deadline
    BadConfig,         ///< std::invalid_argument / std::domain_error
    Io,                ///< filesystem / iostream / system errors
    Unknown            ///< anything else
};

/** Stable snake_case token, doubling as the obs counter suffix. */
std::string to_string(FailureKind k);

/**
 * Map a captured exception to its taxonomy bucket. When @p message is
 * non-null it receives the exception's what() (or a placeholder for
 * non-std exceptions). A null @p error classifies as None.
 */
FailureKind classifyException(const std::exception_ptr &error,
                              std::string *message = nullptr);

/** Per-job failure policy of a sweep (SweepScheduler::setPolicy()). */
struct SweepPolicy
{
    FailurePolicy mode = FailurePolicy::FailFast;
    /** Extra attempts after the first failure (0 = no retry). */
    int maxRetries = 0;
    /**
     * Soft per-attempt deadline in milliseconds; 0 disables it. An
     * attempt that finishes over the deadline is quarantined (kind
     * Timeout) even if its body succeeded — a cell that slow is a
     * bug, and its result must not silently differ from a run where
     * the watchdog got to it first.
     */
    std::int64_t jobTimeoutMs = 0;
    /** Base of the exponential backoff between retries. */
    std::int64_t backoffBaseMicros = 200;

    /** @throws std::invalid_argument on negative knobs. */
    void check() const;
};

/** Fate of one sweep cell; report().cells lists the non-clean ones. */
struct CellOutcome
{
    std::size_t index = 0;
    int attempts = 1;
    bool succeeded = false;
    bool quarantined = false;
    bool timedOut = false;
    FailureKind kind = FailureKind::None;
    /** what() of the last failure (empty on first-try success). */
    std::string message;
};

/**
 * Structured result of a sweep. Deterministic for a deterministic
 * body: cells appear in index order and every field is independent
 * of thread count and scheduling.
 */
struct SweepReport
{
    FailurePolicy mode = FailurePolicy::FailFast;
    std::size_t jobs = 0;
    std::size_t succeeded = 0;
    /** Jobs that succeeded only after at least one retry. */
    std::size_t retriedJobs = 0;
    /** Total extra attempts across all jobs. */
    std::size_t totalRetries = 0;
    std::size_t quarantined = 0;
    std::size_t timedOut = 0;
    /** Non-clean cells (retried, failed, or quarantined), index order. */
    std::vector<CellOutcome> cells;

    /** True when every job succeeded (retries allowed). */
    bool clean() const { return succeeded == jobs; }

    /** True when cell @p index was quarantined — callers printing
     *  per-cell tables must skip these rows to keep surviving-cell
     *  stdout byte-identical across thread counts. */
    bool isQuarantined(std::size_t index) const;

    /** Multi-line human-readable report (one line per listed cell). */
    std::string summary() const;

    /** JSON object (stable key order) for CI artifacts. */
    void writeJson(std::ostream &os) const;
};

} // namespace diffy

#endif // DIFFY_RUNTIME_RESILIENCE_HH
