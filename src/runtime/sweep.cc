#include "runtime/sweep.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "common/cache_registry.hh"
#include "obs/metrics.hh"
#include "obs/pool_gauges.hh"
#include "obs/trace.hh"
#include "runtime/thread_pool.hh"

namespace diffy
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** splitmix64 step (same constants as common/rng.cc). */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

int
checkedThreadCount(long value, const std::string &source)
{
    if (value <= 0)
        throw std::invalid_argument(
            "threads: must be a positive integer (" + source + ")");
    if (value > kMaxSweepThreads)
        throw std::invalid_argument(
            "threads: " + std::to_string(value) + " exceeds the limit of " +
            std::to_string(kMaxSweepThreads) + " (" + source + ")");
    return static_cast<int>(value);
}

/**
 * Registry handles for the sweep metrics, resolved once. The
 * `job_seconds` / `queue_wait_seconds` histograms are per-run (reset
 * at each run() start — SweepStats reads them back); the counters
 * accumulate across sweeps for --metrics-out.
 */
struct SweepMetrics
{
    obs::LatencyHistogram &jobSeconds;
    obs::LatencyHistogram &queueWait;
    obs::Counter &jobs;
    obs::Counter &busyMicros;
    obs::Counter &queueWaitMicros;
    obs::Counter &jobRetries;
    obs::Counter &jobTimeouts;
    obs::Counter &jobsQuarantined;
    obs::Gauge &wallSeconds;
    obs::Gauge &threads;
};

SweepMetrics &
sweepMetrics()
{
    auto &reg = obs::MetricsRegistry::instance();
    static SweepMetrics metrics{
        reg.histogram("sweep.job_seconds"),
        reg.histogram("sweep.queue_wait_seconds"),
        reg.counter("sweep.jobs"),
        reg.counter("sweep.busy_micros"),
        reg.counter("sweep.queue_wait_micros"),
        reg.counter("sweep.job_retries"),
        reg.counter("sweep.job_timeouts"),
        reg.counter("sweep.jobs_quarantined"),
        reg.gauge("sweep.wall_seconds"),
        reg.gauge("sweep.threads"),
    };
    return metrics;
}

/** Per-taxonomy-bucket failure counter (`sweep.errors.<kind>`). */
obs::Counter &
errorCounter(FailureKind kind)
{
    return obs::MetricsRegistry::instance().counter("sweep.errors." +
                                                    to_string(kind));
}

std::uint64_t
micros(double seconds)
{
    return seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e6) : 0;
}

} // namespace

double
SweepStats::utilization() const
{
    double capacity = wallSeconds * threads;
    return capacity > 0.0 ? busySeconds / capacity : 0.0;
}

std::string
SweepStats::summary() const
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    os << "sweep: " << jobs << " jobs on " << threads << " thread"
       << (threads == 1 ? "" : "s") << ", wall " << wallSeconds
       << "s, busy " << busySeconds << "s (job min " << minJobSeconds
       << "s / max " << maxJobSeconds << "s), queue wait "
       << queueWaitSeconds << "s, utilization ";
    os.precision(1);
    os << utilization() * 100.0 << "%";
    return os.str();
}

bool
sweepStatsEnabled()
{
    const char *env = std::getenv("DIFFY_SWEEP_STATS");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
}

void
maybeReportSweepStats(const SweepStats &stats, const std::string &label)
{
    if (!sweepStatsEnabled())
        return;
    std::fprintf(stderr, "%s: %s\n", label.c_str(),
                 stats.summary().c_str());
}

SweepScheduler::SweepScheduler(int threads, std::uint64_t baseSeed)
    : threads_(resolveThreadCount(threads)), baseSeed_(baseSeed),
      arenas_(std::make_unique<ArenaRoster>())
{}

int
SweepScheduler::resolveThreadCount(int requested)
{
    if (requested != 0)
        return checkedThreadCount(requested, "requested");
    const char *env = std::getenv("DIFFY_THREADS");
    if (env == nullptr || *env == '\0')
        return 1;
    char *end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end == env || *end != '\0')
        throw std::invalid_argument(
            "threads: DIFFY_THREADS=\"" + std::string(env) +
            "\" is not an integer");
    return checkedThreadCount(value, "DIFFY_THREADS");
}

std::uint64_t
SweepScheduler::jobSeed(std::uint64_t baseSeed, std::size_t index)
{
    // Two splitmix64 rounds give every (baseSeed, index) pair an
    // avalanche-mixed, collision-resistant stream seed.
    std::uint64_t state = baseSeed;
    splitmix64(state);
    state ^= static_cast<std::uint64_t>(index);
    return splitmix64(state);
}

SweepStats
SweepScheduler::stats() const
{
    SweepMetrics &m = sweepMetrics();
    SweepStats out;
    out.threads = threads_;
    obs::LatencyHistogram::Snapshot jobs = m.jobSeconds.snapshot();
    obs::LatencyHistogram::Snapshot waits = m.queueWait.snapshot();
    out.jobs = jobs.stat.count();
    out.busySeconds = jobs.stat.sum();
    out.minJobSeconds = jobs.stat.min();
    out.maxJobSeconds = jobs.stat.max();
    out.queueWaitSeconds = waits.stat.sum();
    out.wallSeconds = m.wallSeconds.value();
    return out;
}

void
SweepScheduler::run(std::size_t jobCount,
                    const std::function<void(SweepJob &)> &body)
{
    SweepMetrics &metrics = sweepMetrics();
    // Per-run view: stats() reports the most recent sweep only.
    metrics.jobSeconds.reset();
    metrics.queueWait.reset();
    metrics.wallSeconds.set(0.0);
    metrics.threads.set(threads_);
    report_ = SweepReport{};
    report_.mode = policy_.mode;
    report_.jobs = jobCount;
    if (jobCount == 0)
        return;

    // Sweep setup: reset the calling thread's registered memo caches
    // so no stale entry survives a reconfiguration between sweeps. The
    // pool path spawns fresh workers per run(), whose thread_local
    // caches start empty; the serial inline path reuses this thread,
    // which is exactly where leftovers could hide.
    clearRegisteredThreadCaches();

    Clock::time_point sweepStart = Clock::now();
    // Submission timestamps for queue-wait attribution; slot i is
    // written before job i is submitted and read only by job i.
    std::vector<Clock::time_point> submitTimes(jobCount, sweepStart);
    std::vector<CellOutcome> outcomes(jobCount);
    // Jobs actually attempted (the fail_fast serial path stops early;
    // unattempted cells belong in no report bucket).
    std::vector<char> attempted(jobCount, 0);
    // Final (post-retry) errors, for the fail_fast rethrow.
    std::vector<std::exception_ptr> finalErrors(jobCount);

    const double deadlineSeconds =
        policy_.jobTimeoutMs > 0 ? policy_.jobTimeoutMs / 1000.0 : 0.0;
    const int maxAttempts = 1 + std::max(0, policy_.maxRetries);

    // Watchdog bookkeeping. attemptStart[i] holds 1 + nanoseconds
    // since sweepStart of job i's running attempt (0 = idle); the
    // latch makes the mid-flight watchdog and the retire-time check
    // bump `sweep.job_timeouts` exactly once per overrunning job.
    // Only the retire-time elapsed check decides quarantine — the
    // watchdog provides live observability, never behaviour, so the
    // outcome cannot depend on the watchdog's scan phase.
    std::vector<std::atomic<std::int64_t>> attemptStart(jobCount);
    std::vector<std::atomic<bool>> overrunCounted(jobCount);

    auto nanosSinceSweepStart = [&](Clock::time_point t) {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   t - sweepStart)
            .count();
    };

    auto noteOverrun = [&](std::size_t index) {
        if (!overrunCounted[index].exchange(true))
            metrics.jobTimeouts.add(1);
    };

    auto runJob = [&](std::size_t index, bool pooled) {
        CellOutcome &out = outcomes[index];
        out.index = index;
        attempted[index] = 1;
        Clock::time_point firstStart = Clock::now();
        double queueWait =
            pooled ? std::chrono::duration<double>(firstStart -
                                                   submitTimes[index])
                         .count()
                   : 0.0;
        // Backoff jitter stream: separate namespace from the job's
        // value stream so adding retries never perturbs results.
        std::uint64_t backoffState =
            jobSeed(baseSeed_ ^ 0xC2B2AE3D27D4EB4FULL, index);

        // Per-job arena lease: slabs recycled across jobs through
        // freeArenas_, returned on every exit path below.
        std::unique_ptr<FrameArena> arenaLease = acquireArena();
        struct LeaseReturn
        {
            SweepScheduler &sched;
            std::unique_ptr<FrameArena> &arena;
            ~LeaseReturn() { sched.releaseArena(std::move(arena)); }
        } leaseReturn{*this, arenaLease};

        for (int attempt = 0; attempt < maxAttempts; ++attempt) {
            out.attempts = attempt + 1;
            Clock::time_point jobStart = Clock::now();
            attemptStart[index].store(1 + nanosSinceSweepStart(jobStart),
                                      std::memory_order_release);
            std::exception_ptr error;
            double elapsed;
            {
                obs::Span span(obs::Tracer::global(), "sweep.job",
                               static_cast<std::int64_t>(index));
                try {
                    // Retries re-create the job with the *same* seed:
                    // a retry-success is byte-identical to a
                    // first-try success. The arena is rewound per
                    // attempt so a failed attempt's scratch never
                    // leaks into the retry.
                    arenaLease->rewind();
                    SweepJob job{index, Rng(jobSeed(baseSeed_, index))};
                    job.arena = arenaLease.get();
                    body(job);
                } catch (...) {
                    error = std::current_exception();
                }
                elapsed = secondsSince(jobStart);
            }
            attemptStart[index].store(0, std::memory_order_release);
            metrics.jobSeconds.record(elapsed);
            metrics.queueWait.record(attempt == 0 ? queueWait : 0.0);
            metrics.jobs.add(1);
            metrics.busyMicros.add(micros(elapsed));
            if (attempt == 0)
                metrics.queueWaitMicros.add(micros(queueWait));

            // Retire-time deadline check: authoritative and
            // deterministic (callers inject overruns far beyond the
            // deadline, so the comparison is stable). A timed-out
            // attempt is never retried — a cell that slow is a bug,
            // and retrying it would stall the whole sweep again.
            if (deadlineSeconds > 0.0 && elapsed > deadlineSeconds) {
                noteOverrun(index);
                out.timedOut = true;
                out.succeeded = false;
                out.kind = FailureKind::Timeout;
                out.message =
                    "attempt " + std::to_string(attempt + 1) +
                    " overran the " +
                    std::to_string(policy_.jobTimeoutMs) +
                    "ms deadline";
                errorCounter(FailureKind::Timeout).add(1);
                finalErrors[index] = std::make_exception_ptr(
                    std::runtime_error("sweep job " +
                                       std::to_string(index) + ": " +
                                       out.message));
                return;
            }
            if (!error) {
                out.succeeded = true;
                out.kind = FailureKind::None;
                out.message.clear();
                return;
            }
            out.kind = classifyException(error, &out.message);
            errorCounter(out.kind).add(1);
            if (attempt + 1 >= maxAttempts) {
                out.succeeded = false;
                finalErrors[index] = error;
                return;
            }
            metrics.jobRetries.add(1);
            // Deterministic jittered exponential backoff: duration
            // derived from (baseSeed, index, attempt) only. Affects
            // wall clock, never results.
            std::int64_t base = policy_.backoffBaseMicros
                                << std::min(attempt, 10);
            if (base > 0) {
                std::uint64_t jitter =
                    splitmix64(backoffState) %
                    static_cast<std::uint64_t>(base + 1);
                std::this_thread::sleep_for(std::chrono::microseconds(
                    base + static_cast<std::int64_t>(jitter)));
            }
        }
    };

    // Mid-flight watchdog: surfaces overruns in `sweep.job_timeouts`
    // while the offending job is still running, so a hung sweep is
    // diagnosable from a live metrics scrape.
    std::atomic<bool> watchdogStop{false};
    std::thread watchdog;
    if (deadlineSeconds > 0.0) {
        watchdog = std::thread([&] {
            const auto tick = std::chrono::milliseconds(
                std::clamp<std::int64_t>(policy_.jobTimeoutMs / 4, 1, 50));
            const std::int64_t deadlineNanos =
                policy_.jobTimeoutMs * 1'000'000;
            while (!watchdogStop.load(std::memory_order_acquire)) {
                std::int64_t now = nanosSinceSweepStart(Clock::now());
                for (std::size_t i = 0; i < jobCount; ++i) {
                    std::int64_t started =
                        attemptStart[i].load(std::memory_order_acquire);
                    if (started != 0 &&
                        now - (started - 1) > deadlineNanos)
                        noteOverrun(i);
                }
                std::this_thread::sleep_for(tick);
            }
        });
    }

    auto stopWatchdog = [&] {
        if (watchdog.joinable()) {
            watchdogStop.store(true, std::memory_order_release);
            watchdog.join();
        }
    };

    try {
        if (threads_ == 1 || jobCount == 1) {
            // Inline serial execution: identical job contexts and
            // reduction order, no pool overhead. This is the reference
            // behaviour every thread count must reproduce
            // byte-for-byte.
            for (std::size_t i = 0; i < jobCount; ++i) {
                runJob(i, false);
                // Historical fail_fast contract: the serial path stops
                // at the first failing job.
                if (finalErrors[i] &&
                    policy_.mode == FailurePolicy::FailFast)
                    break;
            }
        } else {
            std::size_t workerCount = std::min<std::size_t>(
                static_cast<std::size_t>(threads_), jobCount);
            {
                ThreadPool pool(static_cast<int>(workerCount));
                for (std::size_t i = 0; i < jobCount; ++i) {
                    submitTimes[i] = Clock::now();
                    pool.submit([&runJob, i] { runJob(i, true); });
                }
                pool.wait();
            }
        }
    } catch (...) {
        stopWatchdog();
        throw;
    }
    stopWatchdog();

    // Reduce outcomes in index order into the deterministic report.
    const bool keepGoing = policy_.mode == FailurePolicy::KeepGoing;
    for (std::size_t i = 0; i < jobCount; ++i) {
        if (!attempted[i])
            continue;
        CellOutcome &out = outcomes[i];
        if (out.succeeded) {
            ++report_.succeeded;
            if (out.attempts > 1) {
                ++report_.retriedJobs;
                report_.totalRetries +=
                    static_cast<std::size_t>(out.attempts - 1);
                report_.cells.push_back(out);
            }
            continue;
        }
        report_.totalRetries +=
            static_cast<std::size_t>(out.attempts - 1);
        if (out.timedOut)
            ++report_.timedOut;
        if (keepGoing) {
            out.quarantined = true;
            ++report_.quarantined;
            metrics.jobsQuarantined.add(1);
        }
        report_.cells.push_back(out);
    }

    metrics.wallSeconds.set(secondsSince(sweepStart));
    obs::publishPoolGauges();

    if (!keepGoing) {
        // Deterministic failure: the lowest-index error wins, no
        // matter which job happened to fail first on the clock.
        for (const auto &error : finalErrors)
            if (error)
                std::rethrow_exception(error);
    }
}

std::unique_ptr<FrameArena>
SweepScheduler::acquireArena()
{
    {
        std::lock_guard<std::mutex> lock(arenas_->mu);
        if (!arenas_->freeArenas.empty()) {
            std::unique_ptr<FrameArena> arena =
                std::move(arenas_->freeArenas.back());
            arenas_->freeArenas.pop_back();
            return arena;
        }
    }
    // First lease on this scheduler (or more workers than ever
    // before): the only path that grows the arena roster.
    return std::make_unique<FrameArena>(arenas_->pool);
}

void
SweepScheduler::releaseArena(std::unique_ptr<FrameArena> arena)
{
    if (!arena)
        return;
    arena->rewind();
    std::lock_guard<std::mutex> lock(arenas_->mu);
    arenas_->freeArenas.push_back(std::move(arena));
}

} // namespace diffy
