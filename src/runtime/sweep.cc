#include "runtime/sweep.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <stdexcept>

#include "common/cache_registry.hh"
#include "runtime/thread_pool.hh"

namespace diffy
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** splitmix64 step (same constants as common/rng.cc). */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

int
checkedThreadCount(long value, const std::string &source)
{
    if (value <= 0)
        throw std::invalid_argument(
            "threads: must be a positive integer (" + source + ")");
    if (value > kMaxSweepThreads)
        throw std::invalid_argument(
            "threads: " + std::to_string(value) + " exceeds the limit of " +
            std::to_string(kMaxSweepThreads) + " (" + source + ")");
    return static_cast<int>(value);
}

} // namespace

double
SweepStats::utilization() const
{
    double capacity = wallSeconds * threads;
    return capacity > 0.0 ? busySeconds / capacity : 0.0;
}

std::string
SweepStats::summary() const
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    os << "sweep: " << jobs << " jobs on " << threads << " thread"
       << (threads == 1 ? "" : "s") << ", wall " << wallSeconds
       << "s, busy " << busySeconds << "s (job min " << minJobSeconds
       << "s / max " << maxJobSeconds << "s), utilization ";
    os.precision(1);
    os << utilization() * 100.0 << "%";
    return os.str();
}

bool
sweepStatsEnabled()
{
    const char *env = std::getenv("DIFFY_SWEEP_STATS");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
}

void
maybeReportSweepStats(const SweepStats &stats, const std::string &label)
{
    if (!sweepStatsEnabled())
        return;
    std::fprintf(stderr, "%s: %s\n", label.c_str(),
                 stats.summary().c_str());
}

SweepScheduler::SweepScheduler(int threads, std::uint64_t baseSeed)
    : threads_(resolveThreadCount(threads)), baseSeed_(baseSeed)
{}

int
SweepScheduler::resolveThreadCount(int requested)
{
    if (requested != 0)
        return checkedThreadCount(requested, "requested");
    const char *env = std::getenv("DIFFY_THREADS");
    if (env == nullptr || *env == '\0')
        return 1;
    char *end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end == env || *end != '\0')
        throw std::invalid_argument(
            "threads: DIFFY_THREADS=\"" + std::string(env) +
            "\" is not an integer");
    return checkedThreadCount(value, "DIFFY_THREADS");
}

std::uint64_t
SweepScheduler::jobSeed(std::uint64_t baseSeed, std::size_t index)
{
    // Two splitmix64 rounds give every (baseSeed, index) pair an
    // avalanche-mixed, collision-resistant stream seed.
    std::uint64_t state = baseSeed;
    splitmix64(state);
    state ^= static_cast<std::uint64_t>(index);
    return splitmix64(state);
}

void
SweepScheduler::run(std::size_t jobCount,
                    const std::function<void(SweepJob &)> &body)
{
    stats_ = SweepStats{};
    stats_.threads = threads_;
    stats_.jobs = jobCount;
    if (jobCount == 0)
        return;

    // Sweep setup: reset the calling thread's registered memo caches
    // so no stale entry survives a reconfiguration between sweeps. The
    // pool path spawns fresh workers per run(), whose thread_local
    // caches start empty; the serial inline path reuses this thread,
    // which is exactly where leftovers could hide.
    clearRegisteredThreadCaches();

    std::vector<double> jobSeconds(jobCount, 0.0);
    Clock::time_point sweepStart = Clock::now();

    auto executeJob = [&](std::size_t index) {
        Clock::time_point jobStart = Clock::now();
        SweepJob job{index, Rng(jobSeed(baseSeed_, index))};
        body(job);
        jobSeconds[index] = secondsSince(jobStart);
    };

    if (threads_ == 1 || jobCount == 1) {
        // Inline serial execution: identical job contexts and
        // reduction order, no pool overhead. This is the reference
        // behaviour every thread count must reproduce byte-for-byte.
        for (std::size_t i = 0; i < jobCount; ++i)
            executeJob(i);
    } else {
        std::size_t workerCount =
            std::min<std::size_t>(static_cast<std::size_t>(threads_),
                                  jobCount);
        std::vector<std::exception_ptr> errors(jobCount);
        {
            ThreadPool pool(static_cast<int>(workerCount));
            for (std::size_t i = 0; i < jobCount; ++i) {
                pool.submit([&, i] {
                    try {
                        executeJob(i);
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                });
            }
            pool.wait();
        }
        // Deterministic failure: the lowest-index error wins, no
        // matter which job happened to fail first on the clock.
        for (const auto &error : errors)
            if (error)
                std::rethrow_exception(error);
    }

    stats_.wallSeconds = secondsSince(sweepStart);
    stats_.minJobSeconds = jobSeconds[0];
    for (double s : jobSeconds) {
        stats_.busySeconds += s;
        stats_.minJobSeconds = std::min(stats_.minJobSeconds, s);
        stats_.maxJobSeconds = std::max(stats_.maxJobSeconds, s);
    }
}

} // namespace diffy
