#include "runtime/sweep.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <stdexcept>

#include "common/cache_registry.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/thread_pool.hh"

namespace diffy
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/** splitmix64 step (same constants as common/rng.cc). */
std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

int
checkedThreadCount(long value, const std::string &source)
{
    if (value <= 0)
        throw std::invalid_argument(
            "threads: must be a positive integer (" + source + ")");
    if (value > kMaxSweepThreads)
        throw std::invalid_argument(
            "threads: " + std::to_string(value) + " exceeds the limit of " +
            std::to_string(kMaxSweepThreads) + " (" + source + ")");
    return static_cast<int>(value);
}

/**
 * Registry handles for the sweep metrics, resolved once. The
 * `job_seconds` / `queue_wait_seconds` histograms are per-run (reset
 * at each run() start — SweepStats reads them back); the counters
 * accumulate across sweeps for --metrics-out.
 */
struct SweepMetrics
{
    obs::LatencyHistogram &jobSeconds;
    obs::LatencyHistogram &queueWait;
    obs::Counter &jobs;
    obs::Counter &busyMicros;
    obs::Counter &queueWaitMicros;
    obs::Gauge &wallSeconds;
    obs::Gauge &threads;
};

SweepMetrics &
sweepMetrics()
{
    auto &reg = obs::MetricsRegistry::instance();
    static SweepMetrics metrics{
        reg.histogram("sweep.job_seconds"),
        reg.histogram("sweep.queue_wait_seconds"),
        reg.counter("sweep.jobs"),
        reg.counter("sweep.busy_micros"),
        reg.counter("sweep.queue_wait_micros"),
        reg.gauge("sweep.wall_seconds"),
        reg.gauge("sweep.threads"),
    };
    return metrics;
}

std::uint64_t
micros(double seconds)
{
    return seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e6) : 0;
}

} // namespace

double
SweepStats::utilization() const
{
    double capacity = wallSeconds * threads;
    return capacity > 0.0 ? busySeconds / capacity : 0.0;
}

std::string
SweepStats::summary() const
{
    std::ostringstream os;
    os.precision(3);
    os << std::fixed;
    os << "sweep: " << jobs << " jobs on " << threads << " thread"
       << (threads == 1 ? "" : "s") << ", wall " << wallSeconds
       << "s, busy " << busySeconds << "s (job min " << minJobSeconds
       << "s / max " << maxJobSeconds << "s), queue wait "
       << queueWaitSeconds << "s, utilization ";
    os.precision(1);
    os << utilization() * 100.0 << "%";
    return os.str();
}

bool
sweepStatsEnabled()
{
    const char *env = std::getenv("DIFFY_SWEEP_STATS");
    return env != nullptr && *env != '\0' && std::string(env) != "0";
}

void
maybeReportSweepStats(const SweepStats &stats, const std::string &label)
{
    if (!sweepStatsEnabled())
        return;
    std::fprintf(stderr, "%s: %s\n", label.c_str(),
                 stats.summary().c_str());
}

SweepScheduler::SweepScheduler(int threads, std::uint64_t baseSeed)
    : threads_(resolveThreadCount(threads)), baseSeed_(baseSeed)
{}

int
SweepScheduler::resolveThreadCount(int requested)
{
    if (requested != 0)
        return checkedThreadCount(requested, "requested");
    const char *env = std::getenv("DIFFY_THREADS");
    if (env == nullptr || *env == '\0')
        return 1;
    char *end = nullptr;
    long value = std::strtol(env, &end, 10);
    if (end == env || *end != '\0')
        throw std::invalid_argument(
            "threads: DIFFY_THREADS=\"" + std::string(env) +
            "\" is not an integer");
    return checkedThreadCount(value, "DIFFY_THREADS");
}

std::uint64_t
SweepScheduler::jobSeed(std::uint64_t baseSeed, std::size_t index)
{
    // Two splitmix64 rounds give every (baseSeed, index) pair an
    // avalanche-mixed, collision-resistant stream seed.
    std::uint64_t state = baseSeed;
    splitmix64(state);
    state ^= static_cast<std::uint64_t>(index);
    return splitmix64(state);
}

SweepStats
SweepScheduler::stats() const
{
    SweepMetrics &m = sweepMetrics();
    SweepStats out;
    out.threads = threads_;
    obs::LatencyHistogram::Snapshot jobs = m.jobSeconds.snapshot();
    obs::LatencyHistogram::Snapshot waits = m.queueWait.snapshot();
    out.jobs = jobs.stat.count();
    out.busySeconds = jobs.stat.sum();
    out.minJobSeconds = jobs.stat.min();
    out.maxJobSeconds = jobs.stat.max();
    out.queueWaitSeconds = waits.stat.sum();
    out.wallSeconds = m.wallSeconds.value();
    return out;
}

void
SweepScheduler::run(std::size_t jobCount,
                    const std::function<void(SweepJob &)> &body)
{
    SweepMetrics &metrics = sweepMetrics();
    // Per-run view: stats() reports the most recent sweep only.
    metrics.jobSeconds.reset();
    metrics.queueWait.reset();
    metrics.wallSeconds.set(0.0);
    metrics.threads.set(threads_);
    if (jobCount == 0)
        return;

    // Sweep setup: reset the calling thread's registered memo caches
    // so no stale entry survives a reconfiguration between sweeps. The
    // pool path spawns fresh workers per run(), whose thread_local
    // caches start empty; the serial inline path reuses this thread,
    // which is exactly where leftovers could hide.
    clearRegisteredThreadCaches();

    Clock::time_point sweepStart = Clock::now();
    // Submission timestamps for queue-wait attribution; slot i is
    // written before job i is submitted and read only by job i.
    std::vector<Clock::time_point> submitTimes(jobCount, sweepStart);

    auto executeJob = [&](std::size_t index, bool pooled) {
        Clock::time_point jobStart = Clock::now();
        double queueWait =
            pooled ? std::chrono::duration<double>(jobStart -
                                                   submitTimes[index])
                         .count()
                   : 0.0;
        double elapsed;
        {
            obs::Span span(obs::Tracer::global(), "sweep.job",
                           static_cast<std::int64_t>(index));
            SweepJob job{index, Rng(jobSeed(baseSeed_, index))};
            body(job);
            elapsed = secondsSince(jobStart);
        }
        metrics.jobSeconds.record(elapsed);
        metrics.queueWait.record(queueWait);
        metrics.jobs.add(1);
        metrics.busyMicros.add(micros(elapsed));
        metrics.queueWaitMicros.add(micros(queueWait));
    };

    if (threads_ == 1 || jobCount == 1) {
        // Inline serial execution: identical job contexts and
        // reduction order, no pool overhead. This is the reference
        // behaviour every thread count must reproduce byte-for-byte.
        for (std::size_t i = 0; i < jobCount; ++i)
            executeJob(i, false);
    } else {
        std::size_t workerCount =
            std::min<std::size_t>(static_cast<std::size_t>(threads_),
                                  jobCount);
        std::vector<std::exception_ptr> errors(jobCount);
        {
            ThreadPool pool(static_cast<int>(workerCount));
            for (std::size_t i = 0; i < jobCount; ++i) {
                submitTimes[i] = Clock::now();
                pool.submit([&, i] {
                    try {
                        executeJob(i, true);
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                });
            }
            pool.wait();
        }
        // Deterministic failure: the lowest-index error wins, no
        // matter which job happened to fail first on the clock.
        for (const auto &error : errors)
            if (error)
                std::rethrow_exception(error);
    }

    metrics.wallSeconds.set(secondsSince(sweepStart));
}

} // namespace diffy
