#include "runtime/resilience.hh"

#include <algorithm>
#include <ios>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "encode/schemes.hh"

namespace diffy
{

std::string
to_string(FailureKind k)
{
    switch (k) {
    case FailureKind::None: return "none";
    case FailureKind::DecodeBadShape: return "decode_bad_shape";
    case FailureKind::DecodeTruncated: return "decode_truncated";
    case FailureKind::DecodeBadHeader: return "decode_bad_header";
    case FailureKind::DecodeBadChecksum: return "decode_bad_checksum";
    case FailureKind::Timeout: return "timeout";
    case FailureKind::BadConfig: return "bad_config";
    case FailureKind::Io: return "io";
    case FailureKind::Unknown: return "unknown";
    }
    return "unknown";
}

namespace
{

FailureKind
kindOfDecodeStatus(DecodeStatus s)
{
    switch (s) {
    case DecodeStatus::Ok: return FailureKind::None;
    case DecodeStatus::BadShape: return FailureKind::DecodeBadShape;
    case DecodeStatus::Truncated: return FailureKind::DecodeTruncated;
    case DecodeStatus::BadHeader: return FailureKind::DecodeBadHeader;
    case DecodeStatus::BadChecksum: return FailureKind::DecodeBadChecksum;
    }
    return FailureKind::Unknown;
}

} // namespace

FailureKind
classifyException(const std::exception_ptr &error, std::string *message)
{
    if (message != nullptr)
        message->clear();
    if (!error)
        return FailureKind::None;
    try {
        std::rethrow_exception(error);
    } catch (const DecodeError &e) {
        if (message != nullptr)
            *message = e.what();
        return kindOfDecodeStatus(e.status());
    } catch (const std::ios_base::failure &e) {
        if (message != nullptr)
            *message = e.what();
        return FailureKind::Io;
    } catch (const std::system_error &e) {
        // Covers std::filesystem::filesystem_error too.
        if (message != nullptr)
            *message = e.what();
        return FailureKind::Io;
    } catch (const std::invalid_argument &e) {
        if (message != nullptr)
            *message = e.what();
        return FailureKind::BadConfig;
    } catch (const std::domain_error &e) {
        if (message != nullptr)
            *message = e.what();
        return FailureKind::BadConfig;
    } catch (const std::exception &e) {
        if (message != nullptr)
            *message = e.what();
        return FailureKind::Unknown;
    } catch (...) {
        if (message != nullptr)
            *message = "(non-standard exception)";
        return FailureKind::Unknown;
    }
}

void
SweepPolicy::check() const
{
    if (maxRetries < 0)
        throw std::invalid_argument(
            "sweep policy: maxRetries must be >= 0, got " +
            std::to_string(maxRetries));
    if (jobTimeoutMs < 0)
        throw std::invalid_argument(
            "sweep policy: jobTimeoutMs must be >= 0, got " +
            std::to_string(jobTimeoutMs));
    if (backoffBaseMicros < 0)
        throw std::invalid_argument(
            "sweep policy: backoffBaseMicros must be >= 0, got " +
            std::to_string(backoffBaseMicros));
}

bool
SweepReport::isQuarantined(std::size_t index) const
{
    // cells is index-sorted; it stays small (non-clean cells only),
    // so a binary search is already generous.
    auto it = std::lower_bound(cells.begin(), cells.end(), index,
                               [](const CellOutcome &c, std::size_t i) {
                                   return c.index < i;
                               });
    return it != cells.end() && it->index == index && it->quarantined;
}

std::string
SweepReport::summary() const
{
    std::ostringstream os;
    os << "sweep report: " << succeeded << "/" << jobs << " cells ok";
    if (retriedJobs > 0)
        os << ", " << retriedJobs << " recovered by retry ("
           << totalRetries << " retries total)";
    if (quarantined > 0)
        os << ", " << quarantined << " quarantined";
    if (timedOut > 0)
        os << " (" << timedOut << " over deadline)";
    for (const CellOutcome &c : cells) {
        os << "\n  cell " << c.index << ": "
           << (c.quarantined ? "quarantined"
                             : (c.succeeded ? "recovered" : "failed"))
           << " after " << c.attempts << " attempt"
           << (c.attempts == 1 ? "" : "s") << " [" << to_string(c.kind)
           << "]";
        if (!c.message.empty())
            os << " " << c.message;
    }
    return os.str();
}

namespace
{

void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char ch : s) {
        switch (ch) {
        case '"': os << "\\\""; break;
        case '\\': os << "\\\\"; break;
        case '\n': os << "\\n"; break;
        case '\t': os << "\\t"; break;
        default:
            if (static_cast<unsigned char>(ch) < 0x20)
                os << ' ';
            else
                os << ch;
        }
    }
    os << '"';
}

} // namespace

void
SweepReport::writeJson(std::ostream &os) const
{
    os << "{\n"
       << "  \"mode\": \""
       << (mode == FailurePolicy::KeepGoing ? "keep_going" : "fail_fast")
       << "\",\n"
       << "  \"jobs\": " << jobs << ",\n"
       << "  \"succeeded\": " << succeeded << ",\n"
       << "  \"retried_jobs\": " << retriedJobs << ",\n"
       << "  \"total_retries\": " << totalRetries << ",\n"
       << "  \"quarantined\": " << quarantined << ",\n"
       << "  \"timed_out\": " << timedOut << ",\n"
       << "  \"cells\": [";
    bool first = true;
    for (const CellOutcome &c : cells) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    {\"index\": " << c.index
           << ", \"attempts\": " << c.attempts << ", \"state\": \""
           << (c.quarantined ? "quarantined"
                             : (c.succeeded ? "recovered" : "failed"))
           << "\", \"kind\": \"" << to_string(c.kind)
           << "\", \"timed_out\": " << (c.timedOut ? "true" : "false")
           << ", \"message\": ";
        writeJsonString(os, c.message);
        os << "}";
    }
    os << (first ? "]\n" : "\n  ]\n") << "}\n";
}

} // namespace diffy
