/**
 * @file
 * Deterministic parallel sweep scheduler.
 *
 * Every evaluation in the reproduction is an embarrassingly parallel
 * sweep over models x scenes x accelerator configurations. The
 * scheduler maps such a grid — flattened to jobCount jobs — onto a
 * fixed-size thread pool and reduces the results **in submission
 * order**, so a bench's output tables are byte-identical to the serial
 * run at any thread count (including 1, which runs inline with no
 * pool at all).
 *
 * Determinism contract:
 *  - job i writes only result slot i; slots are preallocated, so no
 *    reduction step depends on completion order;
 *  - job i receives an Rng seeded from (baseSeed, i) via splitmix64,
 *    never from a shared or thread-indexed stream;
 *  - exceptions are captured per job and the one with the lowest job
 *    index is rethrown after the sweep drains, so failure behaviour
 *    does not depend on scheduling either.
 *
 * Failure policy (DESIGN.md §12): setPolicy() selects fail_fast
 * (the default above) or keep_going, bounded retries with
 * deterministic jittered backoff, and a per-job soft deadline. Every
 * run() builds a SweepReport — under keep_going, failing cells are
 * quarantined into the report instead of rethrown, and callers must
 * consult report().isQuarantined(i) before printing cell i.
 *
 * Timing lives in the obs::MetricsRegistry (DESIGN.md §11): run()
 * resets the per-run `sweep.job_seconds` / `sweep.queue_wait_seconds`
 * histograms, emits a `sweep.job` trace span per job, and bumps the
 * cumulative `sweep.jobs` / `sweep.busy_micros` /
 * `sweep.queue_wait_micros` counters. SweepStats is a plain-data view
 * computed from the registry on demand.
 */

#ifndef DIFFY_RUNTIME_SWEEP_HH
#define DIFFY_RUNTIME_SWEEP_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "common/pool.hh"
#include "common/rng.hh"
#include "runtime/resilience.hh"

namespace diffy
{

/** Upper bound on accepted thread counts (beyond it is a config bug). */
inline constexpr int kMaxSweepThreads = 1024;

/** Per-job context handed to sweep job bodies. */
struct SweepJob
{
    /** Index of this job in submission order. */
    std::size_t index;
    /** Private generator seeded from (baseSeed, index). */
    Rng rng;
    /**
     * Per-job scratch arena leased from the scheduler's BufferPool,
     * rewound before every attempt. Opt-in: bodies that want recycled
     * frame storage allocate through it (or install it as the ambient
     * scratch resource via ArenaScope for the extent of the body).
     * The scheduler deliberately does *not* install an ambient scope
     * itself — some job bodies hand containers to caches that outlive
     * the job (e.g. the trace cache), and those must stay heap-backed.
     * Never null inside a body; invalid after the body returns.
     */
    FrameArena *arena = nullptr;
};

/**
 * Timing counters of the most recent sweep — a snapshot view over the
 * process-wide metrics registry (the `sweep.*` metrics), not a
 * separately maintained tally. All zeros when metrics are disabled.
 */
struct SweepStats
{
    int threads = 1;
    std::size_t jobs = 0;
    /** End-to-end sweep duration. */
    double wallSeconds = 0.0;
    /** Sum of per-job execution times. */
    double busySeconds = 0.0;
    /** Sum of per-job queue waits (submit -> start; 0 when inline). */
    double queueWaitSeconds = 0.0;
    /** Extremes over the per-job execution times. */
    double minJobSeconds = 0.0;
    double maxJobSeconds = 0.0;

    /** Fraction of the worker-seconds spent executing jobs. */
    double utilization() const;

    /** One-line human-readable report. */
    std::string summary() const;
};

/** Maps a flattened experiment grid onto a thread pool. */
class SweepScheduler
{
  public:
    /**
     * @param threads  worker count; 0 resolves via DIFFY_THREADS
     *                 (falling back to 1). See resolveThreadCount().
     * @param baseSeed seed namespace for the per-job generators.
     * @throws std::invalid_argument on a non-positive or absurd
     *         resolved thread count.
     */
    explicit SweepScheduler(int threads = 0, std::uint64_t baseSeed = 0);

    /** Resolved worker count (>= 1). */
    int threads() const { return threads_; }

    /**
     * Resolve a requested thread count: a positive request wins;
     * 0 defers to the DIFFY_THREADS environment variable, defaulting
     * to 1 when unset. Values outside [1, kMaxSweepThreads] — from
     * either source — raise std::invalid_argument naming the source.
     */
    static int resolveThreadCount(int requested);

    /** Deterministic per-job seed: splitmix64 over (baseSeed, index). */
    static std::uint64_t jobSeed(std::uint64_t baseSeed,
                                 std::size_t index);

    /**
     * Install the failure policy for subsequent map()/forEach() calls.
     * @throws std::invalid_argument on negative knobs (SweepPolicy::check).
     */
    void setPolicy(const SweepPolicy &policy)
    {
        policy.check();
        policy_ = policy;
    }

    const SweepPolicy &policy() const { return policy_; }

    /**
     * Structured outcome of the most recent map()/forEach() call on
     * *this* scheduler. Under fail_fast a failing sweep still throws;
     * the report reflects whatever was recorded before the rethrow.
     */
    const SweepReport &report() const { return report_; }

    /**
     * Run @p jobCount jobs and return their results in job-index
     * order. The result type must be default-constructible (slots are
     * preallocated). @p fn may run on any worker thread; it must only
     * touch shared state that is itself thread-safe.
     *
     * Under keep_going, quarantined cells hold a default-constructed
     * value regardless of why they were quarantined — including a
     * body that completed but overran its deadline, whose return
     * value is discarded so every quarantine cause looks the same to
     * the caller.
     */
    template <typename Fn>
    auto map(std::size_t jobCount, Fn &&fn)
        -> std::vector<std::invoke_result_t<Fn &, SweepJob &>>
    {
        using R = std::invoke_result_t<Fn &, SweepJob &>;
        static_assert(std::is_default_constructible_v<R>,
                      "sweep results are reduced into preallocated slots");
        std::vector<R> results(jobCount);
        run(jobCount,
            [&results, &fn](SweepJob &job) { results[job.index] = fn(job); });
        for (const CellOutcome &cell : report_.cells)
            if (cell.quarantined)
                results[cell.index] = R{};
        return results;
    }

    /** Run @p jobCount jobs for their side effects only. */
    void forEach(std::size_t jobCount,
                 const std::function<void(SweepJob &)> &body)
    {
        run(jobCount, body);
    }

    /**
     * Counters of the most recent map()/forEach() call, computed from
     * the registry's per-run `sweep.*` metrics. Note these are global:
     * the latest run() of *any* scheduler resets them.
     */
    SweepStats stats() const;

  private:
    void run(std::size_t jobCount,
             const std::function<void(SweepJob &)> &body);

    /** Lease a rewound arena (recycled from freeArenas_ when possible). */
    std::unique_ptr<FrameArena> acquireArena();
    /** Return a lease; its slabs stay attached for the next job. */
    void releaseArena(std::unique_ptr<FrameArena> arena);

    /**
     * Recycled job scratch: the pool plus the idle-arena free list.
     * pool is declared before freeArenas so every arena dies first
     * (reverse member destruction order). Held behind a unique_ptr —
     * BufferPool and std::mutex are immovable, and schedulers are
     * returned by value (makeSweepScheduler).
     */
    struct ArenaRoster
    {
        BufferPool pool;
        std::mutex mu;
        std::vector<std::unique_ptr<FrameArena>> freeArenas;
    };

    int threads_;
    std::uint64_t baseSeed_;
    SweepPolicy policy_;
    SweepReport report_;
    std::unique_ptr<ArenaRoster> arenas_;
};

/** True when the DIFFY_SWEEP_STATS environment variable is set. */
bool sweepStatsEnabled();

/**
 * Print "<label>: <stats.summary()>" to stderr when DIFFY_SWEEP_STATS
 * is set. Stderr, never stdout: the determinism contract covers the
 * tables on stdout, while timing is inherently run-dependent.
 */
void maybeReportSweepStats(const SweepStats &stats,
                           const std::string &label);

} // namespace diffy

#endif // DIFFY_RUNTIME_SWEEP_HH
