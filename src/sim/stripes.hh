/**
 * @file
 * Cycle model of Dynamic Stripes (DS) and of the differential variant
 * the paper's related-work section proposes.
 *
 * DS processes activations bit-serially at a dynamically detected
 * per-group precision: a synchronization group costs as many cycles
 * as the two's complement width of its widest value. The paper notes
 * "since deltas are smaller values than the activations, their
 * precision requirements will be lower as well" — i.e. Dynamic
 * Stripes should also benefit from differential convolution. This
 * module realizes that proposal: DsDelta feeds the X-delta stream to
 * the same precision-serial grid, giving a lower-cost sibling of
 * Diffy (simpler lanes, coarser win).
 */

#ifndef DIFFY_SIM_STRIPES_HH
#define DIFFY_SIM_STRIPES_HH

#include "arch/config.hh"
#include "sim/activity.hh"

namespace diffy
{

/** Simulate one layer on Dynamic Stripes (raw values). */
LayerComputeStats simulateStripesLayer(const LayerTrace &layer,
                                       const AcceleratorConfig &cfg,
                                       bool differential = false);

/** Simulate a whole network on DS; @p differential enables DS+delta. */
NetworkComputeResult simulateStripes(const NetworkTrace &trace,
                                     const AcceleratorConfig &cfg,
                                     bool differential = false);

} // namespace diffy

#endif // DIFFY_SIM_STRIPES_HH
