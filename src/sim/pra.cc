#include "sim/pra.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <unordered_map>
#include <vector>

#include "common/bitops.hh"
#include "common/cache_registry.hh"
#include "common/simd.hh"

namespace diffy
{

namespace
{

/** Raw outcome of one pallet walk, before filter-group scaling. */
struct WalkResult
{
    double cycles = 0.0;
    double usefulTerms = 0.0;
};

/**
 * Memoization of pallet walks. The walk depends only on the imap
 * contents/shape, the kernel geometry and the (lanes, columns,
 * differential) grid parameters — not on filter counts, tiles, the
 * memory system or the compression scheme, all of which the sweep
 * benches vary. Keyed by a 64-bit content hash mixed with the
 * geometry, which is ~50x cheaper than the walk itself.
 */
std::uint64_t
walkKey(const LayerTrace &layer, int lanes, int cols, bool differential,
        WalkCost cost)
{
    std::uint64_t h = contentHash64(layer.imap.data(),
                                    layer.imap.size() *
                                        sizeof(std::int16_t));
    auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    };
    mix(static_cast<std::uint64_t>(layer.imap.channels()));
    mix(static_cast<std::uint64_t>(layer.imap.height()));
    mix(static_cast<std::uint64_t>(layer.imap.width()));
    mix(static_cast<std::uint64_t>(layer.spec.kernel));
    mix(static_cast<std::uint64_t>(layer.spec.stride));
    mix(static_cast<std::uint64_t>(layer.spec.dilation));
    mix(static_cast<std::uint64_t>(lanes));
    mix(static_cast<std::uint64_t>(cols));
    mix(differential ? 2 : 1);
    mix(static_cast<std::uint64_t>(cost) + 11);
    return h;
}

std::unordered_map<std::uint64_t, WalkResult> &
walkCache()
{
    // thread_local: sweep workers memoize independently. The cached
    // walk is a pure function of its key, so per-thread duplication
    // costs only memory, while a shared map would need a lock on the
    // hottest path of the timing model.
    thread_local std::unordered_map<std::uint64_t, WalkResult> cache;
    return cache;
}

/** Expand a walk result into full per-configuration layer stats. */
LayerComputeStats
assembleStats(const LayerTrace &layer, const AcceleratorConfig &cfg,
              const WalkResult &walk)
{
    const auto &spec = layer.spec;
    const int out_h = layer.outHeight();
    const int out_w = layer.outWidth();
    const double filter_groups = cfg.filterGroups(spec.outChannels);
    const double spatial = cfg.spatialSplit(spec.outChannels);

    LayerComputeStats stats;
    stats.layerName = spec.name;
    stats.computeCycles = walk.cycles * filter_groups / spatial;
    stats.traceOutputs =
        static_cast<double>(out_h) * out_w * spec.outChannels;
    stats.traceMacs = static_cast<double>(out_h) * out_w *
                      spec.outChannels *
                      static_cast<double>(spec.macsPerOutput());
    stats.totalSlots = stats.computeCycles * cfg.tiles *
                       cfg.filtersPerTile * cfg.termsPerFilter *
                       cfg.windowColumns;
    // Each effectual term is consumed once per actual filter; unused
    // filter lanes show up as idle slots (filter underutilization).
    stats.usefulSlots = walk.usefulTerms * spec.outChannels;
    return stats;
}

/**
 * The uncached pallet walk. Term counts live in flat uint8 planes
 * (half the cache footprint of the int16 imap) addressed through
 * hoisted row base pointers; cycle and term tallies accumulate in
 * integers — every step cost is a small integer, so the int64 totals
 * convert exactly to the doubles the old double-accumulating walk
 * produced, keeping bench output byte-identical.
 */
WalkResult
walkLayer(const LayerTrace &layer, const AcceleratorConfig &cfg,
          bool differential, WalkCost cost)
{
    const auto &spec = layer.spec;
    const int out_h = layer.outHeight();
    const int out_w = layer.outWidth();
    const int cols = cfg.windowColumns;
    const int lanes = cfg.termsPerFilter;

    const TermTensors tt = computeTermTensors(layer, cost);
    const TensorI16 &imap = layer.imap;
    const int in_h = imap.height();
    const int in_w = imap.width();
    const int k = spec.kernel;
    const int d = spec.dilation;
    const int s = spec.stride;
    const int pad = spec.samePad();
    const int c_bricks = (spec.inChannels + lanes - 1) / lanes;

    const std::uint8_t *raw_base = tt.raw.data();
    const std::uint8_t *delta_base = tt.delta.data();
    const std::size_t chan_stride =
        static_cast<std::size_t>(in_h) * in_w;

    std::int64_t cycles = 0;
    std::int64_t useful_terms = 0;

    // Per-SIP weight staging lets the window columns of a pallet slip
    // against each other; they synchronize only when the pallet
    // retires (the next pallet needs the shared dispatcher). Within a
    // column, the termsPerFilter activation lanes of a step share the
    // SIP adder tree and advance at the pace of their widest value.
    std::vector<std::int64_t> col_cycles(static_cast<std::size_t>(cols));
    std::vector<std::uint8_t> step_max(static_cast<std::size_t>(cols));
    const simd::KernelTable &kt = simd::kernels();

    for (int oy = 0; oy < out_h; ++oy) {
        for (int px = 0; px < out_w; px += cols) {
            const int cols_here = std::min(cols, out_w - px);
            std::fill(col_cycles.begin(),
                      col_cycles.begin() + cols_here, 0);
            for (int cb = 0; cb < c_bricks; ++cb) {
                const int c_lo = cb * lanes;
                const int c_hi =
                    std::min(c_lo + lanes, spec.inChannels);
                for (int ky = 0; ky < k; ++ky) {
                    const int iy = oy * s + ky * d - pad;
                    if (iy < 0 || iy >= in_h) {
                        // Padding rows: zero terms; every column still
                        // spends the minimum cycle per kx step.
                        for (int j = 0; j < cols_here; ++j)
                            col_cycles[j] += k;
                        continue;
                    }
                    const std::size_t row_off =
                        static_cast<std::size_t>(iy) * in_w;
                    for (int kx = 0; kx < k; ++kx) {
                        // ix of window column j is x0 + j*s; interior
                        // columns [j_lo, j_hi) have ix in [0, in_w).
                        const int x0 = px * s + kx * d - pad;
                        int j_lo = x0 < 0 ? (-x0 + s - 1) / s : 0;
                        if (j_lo > cols_here)
                            j_lo = cols_here;
                        int j_hi =
                            x0 < in_w
                                ? std::min(cols_here,
                                           (in_w - 1 - x0) / s + 1)
                                : 0;
                        if (j_hi < j_lo)
                            j_hi = j_lo;
                        std::fill(step_max.begin(),
                                  step_max.begin() + cols_here,
                                  std::uint8_t{0});

                        // Boundary columns: taps in the zero padding
                        // contribute nothing, except the differential
                        // case where the tap reads padding but the
                        // previous window's tap did not — the delta is
                        // -a[ix-s], whose term count equals the raw
                        // count at ix-s.
                        auto boundaryColumn = [&](int j) {
                            const int ix = x0 + j * s;
                            const bool raw =
                                !differential || px + j == 0;
                            if (raw || ix - s < 0 || ix - s >= in_w)
                                return;
                            const std::size_t off =
                                row_off + static_cast<std::size_t>(ix) -
                                s;
                            int sm = 0;
                            for (int c = c_lo; c < c_hi; ++c) {
                                const int t =
                                    raw_base[c * chan_stride + off];
                                useful_terms += t;
                                if (t > sm)
                                    sm = t;
                            }
                            step_max[j] =
                                static_cast<std::uint8_t>(sm);
                        };
                        for (int j = 0; j < j_lo; ++j)
                            boundaryColumn(j);
                        for (int j = j_hi; j < cols_here; ++j)
                            boundaryColumn(j);

                        // Interior columns are all in bounds; all of
                        // them read the delta stream in differential
                        // mode except window x == 0 (the raw anchor of
                        // each output row), peeled off below so the
                        // main loop is branch-free.
                        int ji = j_lo;
                        if (differential && px == 0 && j_lo == 0 &&
                            j_hi > 0) {
                            const std::size_t off =
                                row_off + static_cast<std::size_t>(x0);
                            int sm = 0;
                            for (int c = c_lo; c < c_hi; ++c) {
                                const int t =
                                    raw_base[c * chan_stride + off];
                                useful_terms += t;
                                if (t > sm)
                                    sm = t;
                            }
                            step_max[0] =
                                static_cast<std::uint8_t>(sm);
                            ji = 1;
                        }
                        if (ji < j_hi) {
                            // Interior block: one dispatched kernel
                            // call sums every term and records the
                            // per-column max over the channel rows
                            // (wide loads; common/simd.hh). The
                            // kernel overwrites its colMax span,
                            // which is disjoint from the boundary
                            // and anchor columns handled above.
                            const std::uint8_t *plane =
                                differential ? delta_base : raw_base;
                            const std::uint8_t *block =
                                plane + c_lo * chan_stride + row_off +
                                (x0 +
                                 static_cast<std::ptrdiff_t>(ji) * s);
                            useful_terms += kt.walkSumMax(
                                block, chan_stride,
                                static_cast<std::size_t>(c_hi - c_lo),
                                s, step_max.data() + ji, j_hi - ji);
                        }

                        for (int j = 0; j < cols_here; ++j)
                            col_cycles[j] +=
                                step_max[j] > 1 ? step_max[j] : 1;
                    }
                }
            }
            std::int64_t pallet = 0;
            for (int j = 0; j < cols_here; ++j)
                pallet = std::max(pallet, col_cycles[j]);
            cycles += pallet;
        }
    }

    return WalkResult{static_cast<double>(cycles),
                      static_cast<double>(useful_terms)};
}

} // namespace

void
clearWalkCache()
{
    walkCache().clear();
}

DIFFY_REGISTER_THREAD_CACHE(sim_pra_walk, clearWalkCache);

LayerComputeStats
simulateTermSerialLayer(const LayerTrace &layer,
                        const AcceleratorConfig &cfg, bool differential,
                        WalkCost cost)
{
    const int cols = cfg.windowColumns;
    const int lanes = cfg.termsPerFilter;

    const std::uint64_t key =
        walkKey(layer, lanes, cols, differential, cost);
    auto cached = walkCache().find(key);
    if (cached != walkCache().end())
        return assembleStats(layer, cfg, cached->second);

    WalkResult result = walkLayer(layer, cfg, differential, cost);
    walkCache().emplace(key, result);
    return assembleStats(layer, cfg, result);
}

LayerComputeStats
simulatePraLayer(const LayerTrace &layer, const AcceleratorConfig &cfg)
{
    return simulateTermSerialLayer(layer, cfg, /*differential=*/false);
}

NetworkComputeResult
simulatePra(const NetworkTrace &trace, const AcceleratorConfig &cfg)
{
    NetworkComputeResult result;
    result.network = trace.network;
    result.layers.reserve(trace.layers.size());
    for (const auto &layer : trace.layers)
        result.layers.push_back(simulatePraLayer(layer, cfg));
    return result;
}

} // namespace diffy
