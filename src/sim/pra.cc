#include "sim/pra.hh"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/bitops.hh"

namespace diffy
{

namespace
{

/** Raw outcome of one pallet walk, before filter-group scaling. */
struct WalkResult
{
    double cycles = 0.0;
    double usefulTerms = 0.0;
};

/**
 * Memoization of pallet walks. The walk depends only on the imap
 * contents/shape, the kernel geometry and the (lanes, columns,
 * differential) grid parameters — not on filter counts, tiles, the
 * memory system or the compression scheme, all of which the sweep
 * benches vary. Keyed by a 64-bit FNV-1a content hash mixed with the
 * geometry, which is ~50x cheaper than the walk itself.
 */
std::uint64_t
walkKey(const LayerTrace &layer, int lanes, int cols, bool differential,
        WalkCost cost)
{
    std::uint64_t h = contentHash64(layer.imap.data(),
                                    layer.imap.size() *
                                        sizeof(std::int16_t));
    auto mix = [&h](std::uint64_t v) {
        h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    };
    mix(static_cast<std::uint64_t>(layer.imap.channels()));
    mix(static_cast<std::uint64_t>(layer.imap.height()));
    mix(static_cast<std::uint64_t>(layer.imap.width()));
    mix(static_cast<std::uint64_t>(layer.spec.kernel));
    mix(static_cast<std::uint64_t>(layer.spec.stride));
    mix(static_cast<std::uint64_t>(layer.spec.dilation));
    mix(static_cast<std::uint64_t>(lanes));
    mix(static_cast<std::uint64_t>(cols));
    mix(differential ? 2 : 1);
    mix(static_cast<std::uint64_t>(cost) + 11);
    return h;
}

std::unordered_map<std::uint64_t, WalkResult> &
walkCache()
{
    // thread_local: sweep workers memoize independently. The cached
    // walk is a pure function of its key, so per-thread duplication
    // costs only memory, while a shared map would need a lock on the
    // hottest path of the timing model.
    thread_local std::unordered_map<std::uint64_t, WalkResult> cache;
    return cache;
}

/** Expand a walk result into full per-configuration layer stats. */
LayerComputeStats
assembleStats(const LayerTrace &layer, const AcceleratorConfig &cfg,
              const WalkResult &walk)
{
    const auto &spec = layer.spec;
    const int out_h = layer.outHeight();
    const int out_w = layer.outWidth();
    const double filter_groups = cfg.filterGroups(spec.outChannels);
    const double spatial = cfg.spatialSplit(spec.outChannels);

    LayerComputeStats stats;
    stats.layerName = spec.name;
    stats.computeCycles = walk.cycles * filter_groups / spatial;
    stats.traceOutputs =
        static_cast<double>(out_h) * out_w * spec.outChannels;
    stats.traceMacs = static_cast<double>(out_h) * out_w *
                      spec.outChannels *
                      static_cast<double>(spec.macsPerOutput());
    stats.totalSlots = stats.computeCycles * cfg.tiles *
                       cfg.filtersPerTile * cfg.termsPerFilter *
                       cfg.windowColumns;
    // Each effectual term is consumed once per actual filter; unused
    // filter lanes show up as idle slots (filter underutilization).
    stats.usefulSlots = walk.usefulTerms * spec.outChannels;
    return stats;
}

} // namespace

} // namespace diffy

namespace diffy
{

LayerComputeStats
simulateTermSerialLayer(const LayerTrace &layer,
                        const AcceleratorConfig &cfg, bool differential,
                        WalkCost cost)
{
    const auto &spec = layer.spec;
    const int out_h = layer.outHeight();
    const int out_w = layer.outWidth();
    const int cols = cfg.windowColumns;
    const int lanes = cfg.termsPerFilter;

    const std::uint64_t key =
        walkKey(layer, lanes, cols, differential, cost);
    auto cached = walkCache().find(key);
    if (cached != walkCache().end())
        return assembleStats(layer, cfg, cached->second);

    const TermTensors tt = computeTermTensors(layer, cost);
    const TensorI16 &imap = layer.imap;
    const int in_h = imap.height();
    const int in_w = imap.width();
    const int k = spec.kernel;
    const int d = spec.dilation;
    const int s = spec.stride;
    const int pad = spec.samePad();
    const int c_bricks = (spec.inChannels + lanes - 1) / lanes;

    double cycles = 0.0;
    double useful_terms = 0.0;

    // Per-SIP weight staging lets the window columns of a pallet slip
    // against each other; they synchronize only when the pallet
    // retires (the next pallet needs the shared dispatcher). Within a
    // column, the termsPerFilter activation lanes of a step share the
    // SIP adder tree and advance at the pace of their widest value.
    std::vector<double> col_cycles(static_cast<std::size_t>(cols));

    for (int oy = 0; oy < out_h; ++oy) {
        for (int px = 0; px < out_w; px += cols) {
            const int cols_here = std::min(cols, out_w - px);
            std::fill(col_cycles.begin(), col_cycles.end(), 0.0);
            for (int cb = 0; cb < c_bricks; ++cb) {
                const int c_lo = cb * lanes;
                const int c_hi =
                    std::min(c_lo + lanes, spec.inChannels);
                for (int ky = 0; ky < k; ++ky) {
                    const int iy = oy * s + ky * d - pad;
                    if (iy < 0 || iy >= in_h) {
                        // Padding rows: zero terms; every column still
                        // spends the minimum cycle per kx step.
                        for (int j = 0; j < cols_here; ++j)
                            col_cycles[j] += static_cast<double>(k);
                        continue;
                    }
                    for (int kx = 0; kx < k; ++kx) {
                        for (int j = 0; j < cols_here; ++j) {
                            const int wx = px + j;
                            const int ix = wx * s + kx * d - pad;
                            const bool raw = !differential || wx == 0;
                            int step_max = 0;
                            if (ix >= 0 && ix < in_w) {
                                const auto &terms =
                                    raw ? tt.raw : tt.delta;
                                for (int c = c_lo; c < c_hi; ++c) {
                                    int t = terms.at(c, iy, ix);
                                    useful_terms += t;
                                    if (t > step_max)
                                        step_max = t;
                                }
                            } else if (!raw && ix - s >= 0 &&
                                       ix - s < in_w) {
                                // The tap reads padding but the
                                // previous window's tap did not: the
                                // delta is -a[ix-s], whose Booth terms
                                // equal the raw terms at ix-s.
                                for (int c = c_lo; c < c_hi; ++c) {
                                    int t = tt.raw.at(c, iy, ix - s);
                                    useful_terms += t;
                                    if (t > step_max)
                                        step_max = t;
                                }
                            }
                            col_cycles[j] += std::max(1, step_max);
                        }
                    }
                }
            }
            double pallet = 0.0;
            for (int j = 0; j < cols_here; ++j)
                pallet = std::max(pallet, col_cycles[j]);
            cycles += pallet;
        }
    }

    WalkResult result{cycles, useful_terms};
    walkCache().emplace(key, result);
    return assembleStats(layer, cfg, result);
}

LayerComputeStats
simulatePraLayer(const LayerTrace &layer, const AcceleratorConfig &cfg)
{
    return simulateTermSerialLayer(layer, cfg, /*differential=*/false);
}

NetworkComputeResult
simulatePra(const NetworkTrace &trace, const AcceleratorConfig &cfg)
{
    NetworkComputeResult result;
    result.network = trace.network;
    result.layers.reserve(trace.layers.size());
    for (const auto &layer : trace.layers)
        result.layers.push_back(simulatePraLayer(layer, cfg));
    return result;
}

} // namespace diffy
