#include "sim/vaa.hh"

#include <cmath>

namespace diffy
{

LayerComputeStats
simulateVaaLayer(const LayerTrace &layer, const AcceleratorConfig &cfg)
{
    const auto &spec = layer.spec;
    const int out_h = layer.outHeight();
    const int out_w = layer.outWidth();
    const double windows = static_cast<double>(out_h) * out_w;

    const int lanes = cfg.termsPerFilter; // activations per brick step
    const double brick_steps =
        std::ceil(static_cast<double>(spec.inChannels) / lanes) *
        spec.kernel * spec.kernel;
    const double filter_groups = cfg.filterGroups(spec.outChannels);
    const double spatial = cfg.spatialSplit(spec.outChannels);

    LayerComputeStats stats;
    stats.layerName = spec.name;
    stats.computeCycles = windows * brick_steps * filter_groups / spatial;
    stats.traceOutputs = windows * spec.outChannels;
    stats.traceMacs = windows * static_cast<double>(spec.macsPerOutput()) *
                      spec.outChannels;
    // Lane slots: every cycle the whole grid is clocked.
    stats.totalSlots = stats.computeCycles * cfg.tiles *
                       cfg.filtersPerTile * lanes;
    // Useful slots: one per MAC actually needed.
    stats.usefulSlots = stats.traceMacs;
    return stats;
}

NetworkComputeResult
simulateVaa(const NetworkTrace &trace, const AcceleratorConfig &cfg)
{
    NetworkComputeResult result;
    result.network = trace.network;
    result.layers.reserve(trace.layers.size());
    for (const auto &layer : trace.layers)
        result.layers.push_back(simulateVaaLayer(layer, cfg));
    return result;
}

} // namespace diffy
