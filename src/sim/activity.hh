/**
 * @file
 * Shared pre-computation for the cycle-level simulators: per-value
 * effectual-term tensors for the raw and differential activation
 * streams of a layer.
 *
 * For a layer with stride S, the differential stream feeds window
 * column x with the element-wise difference between its window and
 * the window at x-1, i.e. the input-side delta at distance S. The
 * first window of each output row is processed raw; input positions
 * whose "previous window" tap falls into the zero padding naturally
 * degenerate to the raw value (delta against zero).
 */

#ifndef DIFFY_SIM_ACTIVITY_HH
#define DIFFY_SIM_ACTIVITY_HH

#include <cstdint>

#include "nn/trace.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/** Booth-term counts for the two value streams of one layer. */
struct TermTensors
{
    /** Terms of the raw imap value at (c, y, x). */
    Tensor3<std::uint8_t> raw;
    /**
     * Terms of the stride-distance X-delta at (c, y, x):
     * boothTerms(a[x] - a[x - S]), or the raw terms for x < S.
     */
    Tensor3<std::uint8_t> delta;
};

/**
 * Per-value cost metric of a serial lane:
 *  - BoothTerms: effectual-term serial (PRA/Diffy) — cycles equal the
 *    nonzero NAF digits of the value;
 *  - BitSerial: precision-serial (Dynamic Stripes) — cycles equal the
 *    two's complement width of the value (zero still needs 1 bit).
 */
enum class WalkCost
{
    BoothTerms,
    BitSerial
};

/** Compute both cost tensors for a traced layer under @p cost. */
TermTensors computeTermTensors(const LayerTrace &layer,
                               WalkCost cost = WalkCost::BoothTerms);

/** Aggregate compute-side statistics of one simulated layer. */
struct LayerComputeStats
{
    std::string layerName;
    /** Cycles the compute grid needs at the trace resolution. */
    double computeCycles = 0.0;
    /** Term-processing slots that did useful work. */
    double usefulSlots = 0.0;
    /** Total term-processing slots elapsed (cycles x grid size). */
    double totalSlots = 0.0;
    /** Output activations produced at the trace resolution. */
    double traceOutputs = 0.0;
    /** MAC count at the trace resolution (work-invariant). */
    double traceMacs = 0.0;

    double usefulFraction() const
    {
        return totalSlots > 0.0 ? usefulSlots / totalSlots : 0.0;
    }
};

/** Compute result over a whole network. */
struct NetworkComputeResult
{
    std::string network;
    std::vector<LayerComputeStats> layers;

    double totalComputeCycles() const
    {
        double total = 0.0;
        for (const auto &l : layers)
            total += l.computeCycles;
        return total;
    }
};

} // namespace diffy

#endif // DIFFY_SIM_ACTIVITY_HH
