/**
 * @file
 * Cycle model of SCNN (Parashar et al.) for the Fig 20 comparison.
 *
 * SCNN keeps activations stationary, spatially tiled across an 8x8
 * grid of processing elements; per input channel, each PE forms the
 * cartesian product of 4-wide nonzero-activation and nonzero-weight
 * vectors on a 4x4 multiplier array (1024 multipliers total, matching
 * the 1K-MAC/cycle normalization of Table IV):
 *
 *   cycles(PE) = sum_c ceil(nnzA(c, tile+halo) / 4)
 *                      x ceil(nnzW(c, all filters) / 4)
 *   layer cycles = max over PEs x crossbar-contention factor
 *
 * Vector fragmentation (the ceils), tile halos and the accumulator-
 * crossbar contention factor capture SCNN's main overheads on
 * CI-DNNs. Weight sparsity variants (SCNN50/75/90) are produced by
 * seeded random pruning in the executor.
 */

#ifndef DIFFY_SIM_SCNN_HH
#define DIFFY_SIM_SCNN_HH

#include "arch/config.hh"
#include "sim/activity.hh"

namespace diffy
{

/** SCNN machine parameters. */
struct ScnnConfig
{
    int peRows = 8;
    int peCols = 8;
    int actVector = 4;    ///< I: activations per cartesian step
    int weightVector = 4; ///< F: weights per cartesian step
    /** Output-crossbar / accumulator-bank contention factor. */
    double contention = 1.1;
    double clockHz = 1e9;
};

/** Simulate one layer on SCNN. */
LayerComputeStats simulateScnnLayer(const LayerTrace &layer,
                                    const ScnnConfig &cfg);

/** Simulate a whole network trace on SCNN. */
NetworkComputeResult simulateScnn(const NetworkTrace &trace,
                                  const ScnnConfig &cfg = {});

} // namespace diffy

#endif // DIFFY_SIM_SCNN_HH
