#include "sim/runner.hh"

#include <stdexcept>

#include "sim/pra.hh"
#include "sim/vaa.hh"

namespace diffy
{

NetworkComputeResult
simulateCompute(const NetworkTrace &trace, const AcceleratorConfig &cfg,
                DiffyMode diffy_mode)
{
    cfg.validated(); // fail with a field-level message, not a 0-division
    switch (cfg.design) {
      case Design::Vaa:
        return simulateVaa(trace, cfg);
      case Design::Pra:
        return simulatePra(trace, cfg);
      case Design::Diffy:
        return simulateDiffy(trace, cfg, diffy_mode);
    }
    throw std::invalid_argument("simulateCompute: unknown design");
}

FramePerf
simulateFrame(const NetworkTrace &trace, const AcceleratorConfig &cfg,
              const MemTech &mem, int frame_h, int frame_w,
              DiffyMode diffy_mode)
{
    NetworkComputeResult compute =
        simulateCompute(trace, cfg, diffy_mode);
    return combineWithMemory(trace, compute, cfg, mem, frame_h, frame_w);
}

} // namespace diffy
