#include "sim/runner.hh"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/pra.hh"
#include "sim/vaa.hh"

namespace diffy
{

namespace
{

/** Registry handles for the simulator counters, resolved once. */
struct SimMetrics
{
    obs::Counter &computeRuns;
    obs::Counter &frames;
    obs::Counter &cyclesTotal;
};

SimMetrics &
simMetrics()
{
    auto &reg = obs::MetricsRegistry::instance();
    static SimMetrics metrics{
        reg.counter("sim.compute_runs"),
        reg.counter("sim.frames"),
        reg.counter("sim.cycles_total"),
    };
    return metrics;
}

} // namespace

NetworkComputeResult
simulateCompute(const NetworkTrace &trace, const AcceleratorConfig &cfg,
                DiffyMode diffy_mode)
{
    cfg.validated(); // fail with a field-level message, not a 0-division
    simMetrics().computeRuns.add(1);
    switch (cfg.design) {
      case Design::Vaa:
        return simulateVaa(trace, cfg);
      case Design::Pra:
        return simulatePra(trace, cfg);
      case Design::Diffy:
        return simulateDiffy(trace, cfg, diffy_mode);
    }
    throw std::invalid_argument("simulateCompute: unknown design");
}

FramePerf
simulateFrame(const NetworkTrace &trace, const AcceleratorConfig &cfg,
              const MemTech &mem, int frame_h, int frame_w,
              DiffyMode diffy_mode)
{
    obs::Span span(obs::Tracer::global(), "sim.frame");
    NetworkComputeResult compute =
        simulateCompute(trace, cfg, diffy_mode);
    FramePerf perf =
        combineWithMemory(trace, compute, cfg, mem, frame_h, frame_w);
    SimMetrics &metrics = simMetrics();
    metrics.frames.add(1);
    if (perf.totalCycles > 0.0) {
        metrics.cyclesTotal.add(
            static_cast<std::uint64_t>(std::llround(perf.totalCycles)));
    }
    return perf;
}

} // namespace diffy
