#include "sim/functional.hh"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace diffy
{

void
OffsetGenerator::load(std::int32_t value)
{
    offsets_.clear();
    // A 33-bit NAF has at most 17 nonzero digits (no two adjacent),
    // so the digit loop below never reallocates.
    offsets_.reserve(17);
    cursor_ = 0;
    std::int64_t v = value;
    std::uint8_t exponent = 0;
    while (v != 0) {
        if (v & 1) {
            std::int64_t d = 2 - (v & 3); // +1 or -1 (NAF digit)
            offsets_.push_back({exponent, d < 0});
            v -= d;
        }
        v >>= 1;
        ++exponent;
    }
}

std::int64_t
OffsetGenerator::apply(std::int16_t weight, Oneffset offset)
{
    std::int64_t shifted = static_cast<std::int64_t>(weight)
                           << offset.exponent;
    return offset.negative ? -shifted : shifted;
}

TensorI32
strideDeltas(const TensorI32 &t, int stride)
{
    TensorI32 out(t.shape());
    for (int c = 0; c < t.channels(); ++c) {
        for (int y = 0; y < t.height(); ++y) {
            for (int x = 0; x < t.width(); ++x) {
                std::int32_t cur = t.at(c, y, x);
                std::int32_t prev =
                    x >= stride ? t.at(c, y, x - stride) : 0;
                out.at(c, y, x) = cur - prev;
            }
        }
    }
    return out;
}

TensorI32
strideDeltasInverse(const TensorI32 &deltas, int stride)
{
    TensorI32 out(deltas.shape());
    for (int c = 0; c < deltas.channels(); ++c) {
        for (int y = 0; y < deltas.height(); ++y) {
            for (int x = 0; x < deltas.width(); ++x) {
                std::int32_t prev =
                    x >= stride ? out.at(c, y, x - stride) : 0;
                out.at(c, y, x) = deltas.at(c, y, x) + prev;
            }
        }
    }
    return out;
}

namespace
{

/**
 * One SIP column's processing of a single brick step: every lane
 * recodes its value and streams offsets against the per-filter
 * weights; the column's step cost is the longest lane stream (the
 * lanes share the adder tree scheduling), minimum one cycle.
 */
struct StepOutcome
{
    int cycles = 1;
    std::uint64_t terms = 0;
};

} // namespace

FunctionalResult
runFunctionalTile(const LayerTrace &layer, const AcceleratorConfig &cfg,
                  bool differential, int stride_next)
{
    const auto &spec = layer.spec;
    const TensorI16 &imap = layer.imap;
    const FilterBankI16 &weights = layer.weights;
    if (weights.channels() != imap.channels())
        throw std::invalid_argument("functional tile: channel mismatch");

    const int out_h = layer.outHeight();
    const int out_w = layer.outWidth();
    const int filters = spec.outChannels;
    const int cols = cfg.windowColumns;
    const int lanes = cfg.termsPerFilter;
    const int in_h = imap.height();
    const int in_w = imap.width();
    const int k = spec.kernel;
    const int d = spec.dilation;
    const int s = spec.stride;
    const int pad = spec.samePad();
    const int c_bricks = (spec.inChannels + lanes - 1) / lanes;

    FunctionalResult result;
    result.omap = TensorI32(filters, out_h, out_w);

    // Accumulators for the windows of the current pallet: one per
    // (filter, column). These play the role of the AB_out registers.
    std::vector<std::int64_t> acc(
        static_cast<std::size_t>(filters) * cols);
    std::vector<OffsetGenerator> lane_gens(
        static_cast<std::size_t>(lanes));
    // Cycle tallies are integers (every step cost is a small integer);
    // they convert exactly to the double stats at assembly below,
    // keeping the determinism contract float-free in the loop nest
    // (diffy-lint rule R1).
    std::vector<std::int64_t> col_cycles(static_cast<std::size_t>(cols));
    std::int64_t total_cycles = 0;

    for (int oy = 0; oy < out_h; ++oy) {
        for (int px = 0; px < out_w; px += cols) {
            const int cols_here = std::min(cols, out_w - px);
            std::fill(acc.begin(), acc.end(), 0);
            std::fill(col_cycles.begin(), col_cycles.end(),
                      std::int64_t{0});

            for (int cb = 0; cb < c_bricks; ++cb) {
                const int c_lo = cb * lanes;
                const int c_hi =
                    std::min(c_lo + lanes, spec.inChannels);
                for (int ky = 0; ky < k; ++ky) {
                    const int iy = oy * s + ky * d - pad;
                    const bool row_padded = iy < 0 || iy >= in_h;
                    for (int kx = 0; kx < k; ++kx) {
                        for (int j = 0; j < cols_here; ++j) {
                            if (row_padded) {
                                col_cycles[j] += 1;
                                continue;
                            }
                            const int wx = px + j;
                            const int ix = wx * s + kx * d - pad;
                            const bool raw = !differential || wx == 0;
                            const int ixp = ix - s;
                            // A step does work when the tap is in
                            // bounds, or — differentially — when the
                            // previous window's tap was (the delta is
                            // then 0 - prev at the padding edge).
                            const bool active =
                                (ix >= 0 && ix < in_w) ||
                                (!raw && ixp >= 0 && ixp < in_w);
                            int step_cost = 0;
                            if (active) {
                                for (int c = c_lo; c < c_hi; ++c) {
                                    std::int32_t cur =
                                        (ix >= 0 && ix < in_w)
                                            ? imap.at(c, iy, ix)
                                            : 0;
                                    std::int32_t value = cur;
                                    if (!raw) {
                                        std::int32_t prev =
                                            (ixp >= 0 && ixp < in_w)
                                                ? imap.at(c, iy, ixp)
                                                : 0;
                                        value = cur - prev;
                                    }
                                    OffsetGenerator &gen =
                                        lane_gens[c - c_lo];
                                    gen.load(value);
                                    step_cost = std::max(
                                        step_cost,
                                        static_cast<int>(
                                            gen.remaining()));
                                    // Stream the lane's offsets into
                                    // every filter's accumulator
                                    // (the SIP rows share the
                                    // activation lane).
                                    while (!gen.exhausted()) {
                                        Oneffset off = gen.next();
                                        ++result.termsProcessed;
                                        for (int f = 0; f < filters;
                                             ++f) {
                                            acc[std::size_t(f) * cols +
                                                j] +=
                                                OffsetGenerator::apply(
                                                    weights.at(f, c, ky,
                                                               kx),
                                                    off);
                                        }
                                    }
                                }
                            }
                            col_cycles[j] +=
                                std::max(1, step_cost);
                        }
                    }
                }
            }

            // Pallet barrier: the dispatcher moves on when the
            // slowest column retires.
            std::int64_t pallet = 0;
            for (int j = 0; j < cols_here; ++j)
                pallet = std::max(pallet, col_cycles[j]);
            total_cycles += pallet;

            // Differential Reconstruction cascade: column j adds the
            // reconstructed output of column j-1. Column 0 holds a
            // raw (complete) result for the first pallet of the row;
            // for later pallets its base is the last column of the
            // previous pallet (already reconstructed in omap).
            for (int f = 0; f < filters; ++f) {
                std::int64_t base = 0;
                if (differential && px > 0)
                    base = result.omap.at(f, oy, px - 1);
                for (int j = 0; j < cols_here; ++j) {
                    std::int64_t value = acc[std::size_t(f) * cols + j];
                    if (differential) {
                        base += value;
                        value = base;
                    }
                    if (value >
                            std::numeric_limits<std::int32_t>::max() ||
                        value <
                            std::numeric_limits<std::int32_t>::min()) {
                        throw std::overflow_error(
                            "functional tile: accumulator overflow");
                    }
                    result.omap.at(f, oy, px + j) =
                        static_cast<std::int32_t>(value);
                }
            }
        }
    }

    // Stat assembly: the exact integer tally becomes the double the
    // result struct carries (cycle counts stay far below 2^53).
    result.computeCycles = static_cast<double>(total_cycles);

    // Delta-out engine: write the omap back in delta form at the next
    // layer's stride distance.
    result.deltaOmap = strideDeltas(result.omap, stride_next);
    return result;
}

} // namespace diffy
