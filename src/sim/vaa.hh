/**
 * @file
 * Cycle model of the baseline Value-Agnostic Accelerator (VAA), a
 * DaDianNao-style design (paper Section III-A, Fig 6).
 *
 * Each tile holds filtersPerTile inner-product units of lanesPerFilter
 * multiplier lanes. Per cycle a tile broadcasts one activation brick
 * (termsPerFilter consecutive channels of one window) to all its IPs.
 * Execution time is value-independent:
 *
 *   cycles = windows x Kh x Kw x ceil(C / termsPerFilter)
 *            x ceil(K / (tiles x filtersPerTile))
 *
 * which exactly accounts the channel- and filter-underutilization the
 * paper highlights for first/last layers.
 */

#ifndef DIFFY_SIM_VAA_HH
#define DIFFY_SIM_VAA_HH

#include "arch/config.hh"
#include "sim/activity.hh"

namespace diffy
{

/** Simulate one layer on VAA. */
LayerComputeStats simulateVaaLayer(const LayerTrace &layer,
                                   const AcceleratorConfig &cfg);

/** Simulate a whole network trace on VAA. */
NetworkComputeResult simulateVaa(const NetworkTrace &trace,
                                 const AcceleratorConfig &cfg);

} // namespace diffy

#endif // DIFFY_SIM_VAA_HH
