/**
 * @file
 * Top-level simulation driver: dispatches a trace to the timing model
 * selected by an AcceleratorConfig and combines it with the memory
 * system, yielding frame-level performance.
 */

#ifndef DIFFY_SIM_RUNNER_HH
#define DIFFY_SIM_RUNNER_HH

#include "arch/config.hh"
#include "arch/memtech.hh"
#include "sim/activity.hh"
#include "sim/diffy_sim.hh"
#include "sim/memsys.hh"

namespace diffy
{

/** Run the compute-side timing model selected by @p cfg.design. */
NetworkComputeResult simulateCompute(const NetworkTrace &trace,
                                     const AcceleratorConfig &cfg,
                                     DiffyMode diffy_mode
                                     = DiffyMode::Differential);

/**
 * Full frame simulation: compute + off-chip overlap + analytic scaling
 * from the trace crop to frame_h x frame_w.
 */
FramePerf simulateFrame(const NetworkTrace &trace,
                        const AcceleratorConfig &cfg, const MemTech &mem,
                        int frame_h, int frame_w,
                        DiffyMode diffy_mode = DiffyMode::Differential);

} // namespace diffy

#endif // DIFFY_SIM_RUNNER_HH
