#include "sim/stripes.hh"

#include "sim/pra.hh"

namespace diffy
{

LayerComputeStats
simulateStripesLayer(const LayerTrace &layer, const AcceleratorConfig &cfg,
                     bool differential)
{
    return simulateTermSerialLayer(layer, cfg, differential,
                                   WalkCost::BitSerial);
}

NetworkComputeResult
simulateStripes(const NetworkTrace &trace, const AcceleratorConfig &cfg,
                bool differential)
{
    NetworkComputeResult result;
    result.network = trace.network;
    result.layers.reserve(trace.layers.size());
    for (const auto &layer : trace.layers) {
        result.layers.push_back(
            simulateStripesLayer(layer, cfg, differential));
    }
    return result;
}

} // namespace diffy
