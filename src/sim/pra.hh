/**
 * @file
 * Cycle model of the Bit-Pragmatic (PRA) value-aware accelerator
 * (paper Section III-B, Fig 7).
 *
 * A PRA tile processes a pallet — windowColumns consecutive windows
 * along the X axis — term-serially: per step, termsPerFilter channel
 * lanes per window column each stream the effectual (Booth-encoded)
 * terms of their activation. Because the tile's columns share the
 * weight fetch, a step completes only when the activation with the
 * most terms in the (lanes x columns) synchronization group is done
 * ("cross-lane synchronization", the main source of idle cycles).
 *
 * An all-zero synchronization group still costs one cycle.
 */

#ifndef DIFFY_SIM_PRA_HH
#define DIFFY_SIM_PRA_HH

#include "arch/config.hh"
#include "sim/activity.hh"

namespace diffy
{

/**
 * Shared implementation for PRA and Diffy: walk the layer's pallet
 * grid accumulating max-terms step costs. When @p differential is
 * true, window columns beyond the first window of each output row
 * read the delta stream, as in Diffy's row dataflow.
 */
LayerComputeStats simulateTermSerialLayer(const LayerTrace &layer,
                                          const AcceleratorConfig &cfg,
                                          bool differential,
                                          WalkCost cost
                                          = WalkCost::BoothTerms);

/**
 * Drop this thread's memoized pallet walks. The walk cache is keyed by
 * imap content and geometry, so repeated simulations of the same layer
 * are normally free; the micro-kernel benchmarks clear it between
 * iterations to time the real walk.
 */
void clearWalkCache();

/** Simulate one layer on PRA. */
LayerComputeStats simulatePraLayer(const LayerTrace &layer,
                                   const AcceleratorConfig &cfg);

/** Simulate a whole network trace on PRA. */
NetworkComputeResult simulatePra(const NetworkTrace &trace,
                                 const AcceleratorConfig &cfg);

} // namespace diffy

#endif // DIFFY_SIM_PRA_HH
