#include "sim/scnn.hh"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace diffy
{

LayerComputeStats
simulateScnnLayer(const LayerTrace &layer, const ScnnConfig &cfg)
{
    const auto &spec = layer.spec;
    const TensorI16 &imap = layer.imap;
    const int in_h = imap.height();
    const int in_w = imap.width();
    const int c_count = spec.inChannels;
    const int halo = spec.effectiveKernel() - 1;

    // Per-channel nonzero weight counts across all filters.
    std::vector<std::int64_t> nnz_w(c_count, 0);
    for (int f = 0; f < layer.weights.filters(); ++f) {
        for (int c = 0; c < c_count; ++c) {
            for (int ky = 0; ky < spec.kernel; ++ky) {
                for (int kx = 0; kx < spec.kernel; ++kx)
                    nnz_w[c] += layer.weights.at(f, c, ky, kx) != 0;
            }
        }
    }

    const int tile_h = (in_h + cfg.peRows - 1) / cfg.peRows;
    const int tile_w = (in_w + cfg.peCols - 1) / cfg.peCols;

    // Integer tallies only inside the tile walk (diffy-lint rule R1):
    // step counts are exact ceil-divs, so the int64 totals convert
    // exactly to the double stats assembled below — byte-identical to
    // the old std::ceil double accumulation (values stay far below
    // 2^53).
    std::int64_t worst_pe_cycles = 0;
    std::int64_t total_products = 0;
    for (int py = 0; py < cfg.peRows; ++py) {
        for (int px = 0; px < cfg.peCols; ++px) {
            // Tile bounds including replicated halo activations.
            const int y0 = std::max(0, py * tile_h - halo / 2);
            const int y1 = std::min(in_h, (py + 1) * tile_h + halo / 2);
            const int x0 = std::max(0, px * tile_w - halo / 2);
            const int x1 = std::min(in_w, (px + 1) * tile_w + halo / 2);
            std::int64_t pe_cycles = 0;
            for (int c = 0; c < c_count; ++c) {
                std::int64_t nnz_a = 0;
                for (int y = y0; y < y1; ++y) {
                    for (int x = x0; x < x1; ++x)
                        nnz_a += imap.at(c, y, x) != 0;
                }
                if (nnz_a == 0 || nnz_w[c] == 0)
                    continue;
                const std::int64_t a_steps =
                    (nnz_a + cfg.actVector - 1) / cfg.actVector;
                const std::int64_t w_steps =
                    (nnz_w[c] + cfg.weightVector - 1) / cfg.weightVector;
                pe_cycles += a_steps * w_steps;
                total_products += nnz_a * nnz_w[c];
            }
            worst_pe_cycles = std::max(worst_pe_cycles, pe_cycles);
        }
    }

    const int out_h = layer.outHeight();
    const int out_w = layer.outWidth();

    LayerComputeStats stats;
    stats.layerName = spec.name;
    stats.computeCycles =
        static_cast<double>(worst_pe_cycles) * cfg.contention;
    stats.traceOutputs =
        static_cast<double>(out_h) * out_w * spec.outChannels;
    stats.traceMacs = static_cast<double>(out_h) * out_w *
                      spec.outChannels *
                      static_cast<double>(spec.macsPerOutput());
    stats.totalSlots = stats.computeCycles * cfg.peRows * cfg.peCols *
                       cfg.actVector * cfg.weightVector;
    stats.usefulSlots = static_cast<double>(total_products);
    return stats;
}

NetworkComputeResult
simulateScnn(const NetworkTrace &trace, const ScnnConfig &cfg)
{
    NetworkComputeResult result;
    result.network = trace.network;
    result.layers.reserve(trace.layers.size());
    for (const auto &layer : trace.layers)
        result.layers.push_back(simulateScnnLayer(layer, cfg));
    return result;
}

} // namespace diffy
