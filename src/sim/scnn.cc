#include "sim/scnn.hh"

#include <algorithm>
#include <cmath>
#include <vector>

namespace diffy
{

LayerComputeStats
simulateScnnLayer(const LayerTrace &layer, const ScnnConfig &cfg)
{
    const auto &spec = layer.spec;
    const TensorI16 &imap = layer.imap;
    const int in_h = imap.height();
    const int in_w = imap.width();
    const int c_count = spec.inChannels;
    const int halo = spec.effectiveKernel() - 1;

    // Per-channel nonzero weight counts across all filters.
    std::vector<std::int64_t> nnz_w(c_count, 0);
    for (int f = 0; f < layer.weights.filters(); ++f) {
        for (int c = 0; c < c_count; ++c) {
            for (int ky = 0; ky < spec.kernel; ++ky) {
                for (int kx = 0; kx < spec.kernel; ++kx)
                    nnz_w[c] += layer.weights.at(f, c, ky, kx) != 0;
            }
        }
    }

    const int tile_h = (in_h + cfg.peRows - 1) / cfg.peRows;
    const int tile_w = (in_w + cfg.peCols - 1) / cfg.peCols;

    double worst_pe_cycles = 0.0;
    double total_products = 0.0;
    for (int py = 0; py < cfg.peRows; ++py) {
        for (int px = 0; px < cfg.peCols; ++px) {
            // Tile bounds including replicated halo activations.
            const int y0 = std::max(0, py * tile_h - halo / 2);
            const int y1 = std::min(in_h, (py + 1) * tile_h + halo / 2);
            const int x0 = std::max(0, px * tile_w - halo / 2);
            const int x1 = std::min(in_w, (px + 1) * tile_w + halo / 2);
            double pe_cycles = 0.0;
            for (int c = 0; c < c_count; ++c) {
                std::int64_t nnz_a = 0;
                for (int y = y0; y < y1; ++y) {
                    for (int x = x0; x < x1; ++x)
                        nnz_a += imap.at(c, y, x) != 0;
                }
                if (nnz_a == 0 || nnz_w[c] == 0)
                    continue;
                const double a_steps = std::ceil(
                    static_cast<double>(nnz_a) / cfg.actVector);
                const double w_steps = std::ceil(
                    static_cast<double>(nnz_w[c]) / cfg.weightVector);
                pe_cycles += a_steps * w_steps;
                total_products += static_cast<double>(nnz_a) *
                                  static_cast<double>(nnz_w[c]);
            }
            worst_pe_cycles = std::max(worst_pe_cycles, pe_cycles);
        }
    }

    const int out_h = layer.outHeight();
    const int out_w = layer.outWidth();

    LayerComputeStats stats;
    stats.layerName = spec.name;
    stats.computeCycles = worst_pe_cycles * cfg.contention;
    stats.traceOutputs =
        static_cast<double>(out_h) * out_w * spec.outChannels;
    stats.traceMacs = static_cast<double>(out_h) * out_w *
                      spec.outChannels *
                      static_cast<double>(spec.macsPerOutput());
    stats.totalSlots = stats.computeCycles * cfg.peRows * cfg.peCols *
                       cfg.actVector * cfg.weightVector;
    stats.usefulSlots = total_products;
    return stats;
}

NetworkComputeResult
simulateScnn(const NetworkTrace &trace, const ScnnConfig &cfg)
{
    NetworkComputeResult result;
    result.network = trace.network;
    result.layers.reserve(trace.layers.size());
    for (const auto &layer : trace.layers)
        result.layers.push_back(simulateScnnLayer(layer, cfg));
    return result;
}

} // namespace diffy
