/**
 * @file
 * Functional (value-computing) model of a Diffy tile.
 *
 * The analytic models in pra.cc/diffy_sim.cc count cycles from value
 * statistics. This module implements the datapath itself:
 *
 *  - OffsetGenerator: converts a 16-bit value into its stream of
 *    signed power-of-two "oneffsets" (modified Booth recoding), the
 *    form PRA/Diffy lanes consume one per cycle.
 *  - FunctionalSip: a serial inner-product column — per step, each
 *    activation lane shifts the corresponding weight by the offset
 *    exponent and adds or subtracts it into the accumulator.
 *  - FunctionalTile: executes one convolutional layer through the
 *    full Diffy pipeline — pallets of window columns processed
 *    differentially (column 0 of each row raw), the cascaded
 *    Differential Reconstruction pass, and the Delta-out engine
 *    writing the omap back in stride-aware delta form.
 *
 * The test suite proves two strong properties:
 *  1. outputs are bit-exact against direct fixed-point convolution;
 *  2. the cycle count equals the analytic timing model's count,
 *     cross-validating the two implementations.
 */

#ifndef DIFFY_SIM_FUNCTIONAL_HH
#define DIFFY_SIM_FUNCTIONAL_HH

#include <cstdint>
#include <vector>

#include "arch/config.hh"
#include "nn/trace.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/** One effectual term: the weight is shifted by exponent and
 * added (negative == false) or subtracted (negative == true). */
struct Oneffset
{
    std::uint8_t exponent = 0;
    bool negative = false;
};

/**
 * Modified-Booth offset generator. load() recodes a value; next()
 * yields one oneffset per call until exhausted. Zero values produce
 * an empty stream.
 */
class OffsetGenerator
{
  public:
    /** Recode @p value; any previous stream is discarded. */
    void load(std::int32_t value);

    /** True when no offsets remain. */
    bool exhausted() const { return cursor_ >= offsets_.size(); }

    /** Offsets remaining in the stream. */
    std::size_t remaining() const { return offsets_.size() - cursor_; }

    /** Pop the next oneffset; undefined when exhausted. */
    Oneffset next() { return offsets_[cursor_++]; }

    /**
     * Apply one oneffset to a weight: (w << exponent), negated when
     * the offset is negative — the SIP lane's shift-and-add datapath.
     */
    static std::int64_t apply(std::int16_t weight, Oneffset offset);

  private:
    std::vector<Oneffset> offsets_;
    std::size_t cursor_ = 0;
};

/** Result of running a layer through the functional tile. */
struct FunctionalResult
{
    /** Pre-activation outputs, bit-exact vs convolveDirect(). */
    TensorI32 omap;
    /** Cycles the SIP grid spent (analytic-model comparable). */
    double computeCycles = 0.0;
    /** Total oneffsets processed across all lanes. */
    std::uint64_t termsProcessed = 0;
    /**
     * The omap as the Delta-out engine writes it to the AM: deltas at
     * the next layer's stride distance along X (per channel and row,
     * the first strideNext values stay raw).
     */
    TensorI32 deltaOmap;
};

/**
 * Execute one traced layer through the functional Diffy pipeline.
 *
 * @param layer        traced layer (imap + weights + geometry)
 * @param cfg          tile geometry (windowColumns, termsPerFilter)
 * @param differential process deltas (Diffy) or raw values (PRA mode)
 * @param stride_next  the next layer's stride, used by Delta-out
 */
FunctionalResult runFunctionalTile(const LayerTrace &layer,
                                   const AcceleratorConfig &cfg,
                                   bool differential = true,
                                   int stride_next = 1);

/**
 * Delta-out encoding at an arbitrary stride distance: element x keeps
 * raw for x < stride, otherwise stores v[x] - v[x - stride].
 */
TensorI32 strideDeltas(const TensorI32 &t, int stride);

/** Inverse of strideDeltas(). */
TensorI32 strideDeltasInverse(const TensorI32 &deltas, int stride);

} // namespace diffy

#endif // DIFFY_SIM_FUNCTIONAL_HH
