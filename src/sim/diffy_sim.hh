/**
 * @file
 * Cycle model of the Diffy accelerator (paper Section III, Figs 9-10).
 *
 * Diffy is PRA with two additions:
 *
 *  - Differential Reconstruction (DR) engines per SIP: window columns
 *    process the delta stream; outputs are reconstructed by a cascaded
 *    column-to-column addition, overlapped with the (much longer)
 *    processing of the next pallet. Only the first window of each
 *    output row is computed from raw values — subsequent pallets get
 *    their base from column 15 of the previous pallet, round-robin.
 *
 *  - A Delta-out engine per tile that writes output bricks back to the
 *    activation memory as deltas (two steps per output brick). It runs
 *    concurrently with pallet processing; a pallet can only retire
 *    when the engine has drained the previous pallet's bricks, which
 *    the model enforces as a per-pallet occupancy floor.
 *
 * A per-layer raw-mode fallback mirrors the DR multiplexer that lets
 * Diffy revert to normal convolution where deltas would hurt.
 */

#ifndef DIFFY_SIM_DIFFY_SIM_HH
#define DIFFY_SIM_DIFFY_SIM_HH

#include "arch/config.hh"
#include "sim/activity.hh"

namespace diffy
{

/** Per-layer policy for the differential mode. */
enum class DiffyMode
{
    Differential, ///< always process deltas (paper's default)
    Raw,          ///< force normal convolution (fallback mux)
    Auto          ///< per-layer: pick whichever simulates faster
};

/** Simulate one layer on Diffy with the given mode. */
LayerComputeStats simulateDiffyLayer(const LayerTrace &layer,
                                     const AcceleratorConfig &cfg,
                                     DiffyMode mode
                                     = DiffyMode::Differential);

/** Simulate a whole network trace on Diffy. */
NetworkComputeResult simulateDiffy(const NetworkTrace &trace,
                                   const AcceleratorConfig &cfg,
                                   DiffyMode mode
                                   = DiffyMode::Differential);

} // namespace diffy

#endif // DIFFY_SIM_DIFFY_SIM_HH
