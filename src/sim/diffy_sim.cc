#include "sim/diffy_sim.hh"

#include <cstdint>

#include "sim/pra.hh"

namespace diffy
{

namespace
{

/**
 * Delta-out occupancy per pallet: each of the windowColumns output
 * bricks takes two steps (fetch+activate the reference brick, then
 * subtract and write), per concurrent filter brick. Integer by
 * construction; kept integral until the floor comparison.
 */
std::int64_t
deltaOutCyclesPerPallet(const AcceleratorConfig &cfg)
{
    const int filter_bricks = (cfg.filtersPerTile + 15) / 16;
    return std::int64_t{2} * cfg.windowColumns * filter_bricks;
}

/** Apply the Delta-out occupancy floor to a differential result. */
LayerComputeStats
applyDeltaOutFloor(LayerComputeStats stats, const LayerTrace &layer,
                   const AcceleratorConfig &cfg)
{
    const int out_w = layer.outWidth();
    const int out_h = layer.outHeight();
    // Spatial work-sharing spreads the pallets (and their Delta-out
    // write-backs) across the surplus tiles. The pallet count is an
    // exact integer (ceil-div), scaled by the spatial split only at
    // the end.
    const std::int64_t pallet_rows =
        (out_w + cfg.windowColumns - 1) / cfg.windowColumns;
    const double pallets =
        static_cast<double>(out_h * pallet_rows) /
        cfg.spatialSplit(layer.spec.outChannels);
    const double floor_cycles =
        pallets * static_cast<double>(deltaOutCyclesPerPallet(cfg));
    if (stats.computeCycles < floor_cycles) {
        // The engine, not the SIP grid, paces the layer.
        const double scale = floor_cycles / stats.computeCycles;
        stats.computeCycles = floor_cycles;
        stats.totalSlots *= scale;
    }
    return stats;
}

} // namespace

LayerComputeStats
simulateDiffyLayer(const LayerTrace &layer, const AcceleratorConfig &cfg,
                   DiffyMode mode)
{
    if (mode == DiffyMode::Raw)
        return simulateTermSerialLayer(layer, cfg, /*differential=*/false);

    LayerComputeStats diff = applyDeltaOutFloor(
        simulateTermSerialLayer(layer, cfg, /*differential=*/true), layer,
        cfg);
    if (mode == DiffyMode::Differential)
        return diff;

    LayerComputeStats raw =
        simulateTermSerialLayer(layer, cfg, /*differential=*/false);
    return diff.computeCycles <= raw.computeCycles ? diff : raw;
}

NetworkComputeResult
simulateDiffy(const NetworkTrace &trace, const AcceleratorConfig &cfg,
              DiffyMode mode)
{
    NetworkComputeResult result;
    result.network = trace.network;
    result.layers.reserve(trace.layers.size());
    for (const auto &layer : trace.layers)
        result.layers.push_back(simulateDiffyLayer(layer, cfg, mode));
    return result;
}

} // namespace diffy
