#include "sim/activity.hh"

#include "common/bitops.hh"

namespace diffy
{

TermTensors
computeTermTensors(const LayerTrace &layer, WalkCost cost)
{
    const TensorI16 &imap = layer.imap;
    const int stride = layer.spec.stride;
    auto metric = [cost](std::int32_t v) -> std::uint8_t {
        if (cost == WalkCost::BoothTerms)
            return static_cast<std::uint8_t>(boothTerms(v));
        return static_cast<std::uint8_t>(bitsNeeded(v));
    };
    TermTensors tt;
    tt.raw = Tensor3<std::uint8_t>(imap.shape());
    tt.delta = Tensor3<std::uint8_t>(imap.shape());
    for (int c = 0; c < imap.channels(); ++c) {
        for (int y = 0; y < imap.height(); ++y) {
            for (int x = 0; x < imap.width(); ++x) {
                std::int32_t cur = imap.at(c, y, x);
                tt.raw.at(c, y, x) = metric(cur);
                std::int32_t prev =
                    x >= stride ? imap.at(c, y, x - stride) : 0;
                tt.delta.at(c, y, x) = metric(cur - prev);
            }
        }
    }
    return tt;
}

} // namespace diffy
