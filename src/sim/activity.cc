#include "sim/activity.hh"

#include "common/aligned.hh"
#include "common/bitops.hh"

namespace diffy
{

TermTensors
computeTermTensors(const LayerTrace &layer, WalkCost cost)
{
    const TensorI16 &imap = layer.imap;
    const int stride = layer.spec.stride;
    const int channels = imap.channels();
    const int h = imap.height();
    const int w = imap.width();

    TermTensors tt;
    tt.raw = Tensor3<std::uint8_t>(imap.shape());
    tt.delta = Tensor3<std::uint8_t>(imap.shape());

    // Raw plane: one contiguous batched pass over the whole imap.
    const std::int16_t *src = imap.data();
    if (cost == WalkCost::BoothTerms)
        boothTermsPlane(src, tt.raw.data(), imap.size());
    else
        bitsNeededPlane(src, tt.raw.data(), imap.size());

    // Delta plane: deltas of int16 values need 17 bits, so each row is
    // staged in an int32 scratch row and batch-converted. Positions
    // x < stride have no in-row predecessor and stay raw (delta
    // against zero).
    AlignedVec<std::int32_t> drow(static_cast<std::size_t>(w));
    const int head = stride < w ? stride : w;
    for (int c = 0; c < channels; ++c) {
        for (int y = 0; y < h; ++y) {
            const std::int16_t *row =
                src + (static_cast<std::size_t>(c) * h + y) * w;
            std::uint8_t *dst =
                tt.delta.data() +
                (static_cast<std::size_t>(c) * h + y) * w;
            for (int x = 0; x < head; ++x)
                drow[x] = row[x];
            for (int x = head; x < w; ++x)
                drow[x] = static_cast<std::int32_t>(row[x]) -
                          row[x - stride];
            if (cost == WalkCost::BoothTerms)
                boothTermsPlane(drow.data(), dst,
                                static_cast<std::size_t>(w));
            else
                bitsNeededPlane(drow.data(), dst,
                                static_cast<std::size_t>(w));
        }
    }
    return tt;
}

} // namespace diffy
