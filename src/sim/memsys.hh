/**
 * @file
 * Memory-system and frame-scaling model (paper Section III-F).
 *
 * The dataflow reads each weight and input activation once per layer
 * and writes each output activation at most once, with the AM double-
 * buffering two window rows so that compute, imap prefetch and omap
 * write-back overlap. A layer therefore takes
 *
 *   layer_cycles = max(compute_cycles, traffic_bytes / bytes_per_cycle)
 *
 * Compute cycles are measured on a representative crop and scaled to
 * the target frame analytically (the models are fully convolutional,
 * so per-window work statistics are translation invariant).
 */

#ifndef DIFFY_SIM_MEMSYS_HH
#define DIFFY_SIM_MEMSYS_HH

#include <vector>

#include "arch/config.hh"
#include "arch/memtech.hh"
#include "nn/trace.hh"
#include "sim/activity.hh"

namespace diffy
{

/** Combined per-layer performance at the target frame resolution. */
struct LayerPerf
{
    std::string layerName;
    double computeCycles = 0.0; ///< scaled to the frame
    double memoryCycles = 0.0;  ///< traffic / bandwidth
    double cycles = 0.0;        ///< max of the two (overlapped)
    double usefulFraction = 0.0;///< of all lane slots over `cycles`
    double idleFraction = 0.0;  ///< sync / underutilization
    double stallFraction = 0.0; ///< waiting on off-chip memory
};

/** Whole-frame performance summary. */
struct FramePerf
{
    std::string network;
    int frameHeight = 0;
    int frameWidth = 0;
    std::vector<LayerPerf> layers;
    double totalCycles = 0.0;

    double fps(double clock_hz) const
    {
        return totalCycles > 0.0 ? clock_hz / totalCycles : 0.0;
    }
};

/**
 * Combine a compute result with the off-chip traffic of @p scheme over
 * @p mem, scaling from the trace resolution to frame_h x frame_w.
 * Compression::Ideal disables the memory bound entirely.
 */
FramePerf combineWithMemory(const NetworkTrace &trace,
                            const NetworkComputeResult &compute,
                            const AcceleratorConfig &cfg,
                            const MemTech &mem, int frame_h, int frame_w);

} // namespace diffy

#endif // DIFFY_SIM_MEMSYS_HH
