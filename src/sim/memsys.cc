#include "sim/memsys.hh"

#include <cmath>
#include <stdexcept>

#include "encode/footprint.hh"

namespace diffy
{

FramePerf
combineWithMemory(const NetworkTrace &trace,
                  const NetworkComputeResult &compute,
                  const AcceleratorConfig &cfg, const MemTech &mem,
                  int frame_h, int frame_w)
{
    if (trace.layers.size() != compute.layers.size())
        throw std::invalid_argument("combineWithMemory: layer mismatch");

    const bool ideal = cfg.compression == Compression::Ideal;
    std::vector<double> traffic;
    if (!ideal) {
        traffic = perLayerTrafficBytes(trace, cfg.compression, frame_h,
                                       frame_w);
    }
    const double bytes_per_cycle = mem.bytesPerCycle(cfg.clockHz);

    FramePerf perf;
    perf.network = trace.network;
    perf.frameHeight = frame_h;
    perf.frameWidth = frame_w;
    perf.layers.reserve(trace.layers.size());

    for (std::size_t li = 0; li < trace.layers.size(); ++li) {
        const LayerTrace &lt = trace.layers[li];
        const LayerComputeStats &cs = compute.layers[li];

        // Scale compute from the trace crop to the frame.
        const int div = lt.spec.resolutionDivisor;
        const double frame_out_h =
            lt.spec.outDim(std::max(1, frame_h / div));
        const double frame_out_w =
            lt.spec.outDim(std::max(1, frame_w / div));
        const double trace_out =
            static_cast<double>(lt.outHeight()) * lt.outWidth();
        const double scale =
            trace_out > 0.0 ? frame_out_h * frame_out_w / trace_out : 0.0;

        LayerPerf lp;
        lp.layerName = lt.spec.name;
        lp.computeCycles = cs.computeCycles * scale;
        lp.memoryCycles =
            ideal ? 0.0 : traffic[li] / bytes_per_cycle;
        lp.cycles = std::max(lp.computeCycles, lp.memoryCycles);
        if (lp.cycles > 0.0) {
            const double compute_frac = lp.computeCycles / lp.cycles;
            lp.stallFraction = 1.0 - compute_frac;
            lp.usefulFraction = cs.usefulFraction() * compute_frac;
            lp.idleFraction =
                compute_frac * (1.0 - cs.usefulFraction());
        }
        perf.totalCycles += lp.cycles;
        perf.layers.push_back(lp);
    }
    return perf;
}

} // namespace diffy
