#include "arch/config.hh"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace diffy
{

std::string
ConfigValidation::summary() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < issues.size(); ++i) {
        if (i)
            os << "; ";
        os << issues[i].field << ": " << issues[i].message;
    }
    return os.str();
}

std::string
to_string(Design d)
{
    switch (d) {
      case Design::Vaa:
        return "VAA";
      case Design::Pra:
        return "PRA";
      case Design::Diffy:
        return "Diffy";
    }
    return "?";
}

std::string
to_string(Compression c)
{
    switch (c) {
      case Compression::None:
        return "NoCompression";
      case Compression::Rlez:
        return "RLEz";
      case Compression::Rle:
        return "RLE";
      case Compression::Profiled:
        return "Profiled";
      case Compression::RawD8:
        return "RawD8";
      case Compression::RawD16:
        return "RawD16";
      case Compression::RawD256:
        return "RawD256";
      case Compression::DeltaD8:
        return "DeltaD8";
      case Compression::DeltaD16:
        return "DeltaD16";
      case Compression::DeltaD256:
        return "DeltaD256";
      case Compression::Ideal:
        return "Ideal";
    }
    return "?";
}

int
AcceleratorConfig::filterGroups(int out_channels) const
{
    int tiles_for_filters =
        (out_channels + filtersPerTile - 1) / filtersPerTile;
    return (tiles_for_filters + tiles - 1) / tiles;
}

int
AcceleratorConfig::spatialSplit(int out_channels) const
{
    if (!spatialWorkSharing)
        return 1;
    int tiles_for_filters =
        (out_channels + filtersPerTile - 1) / filtersPerTile;
    return std::max(1, tiles / tiles_for_filters);
}

std::string
AcceleratorConfig::describe() const
{
    std::ostringstream os;
    os << to_string(design) << ": " << tiles << " tiles x "
       << filtersPerTile << " filters x " << lanesPerFilter << " lanes";
    if (design != Design::Vaa)
        os << " x " << windowColumns << " window columns"
           << ", T" << termsPerFilter;
    os << ", AM " << (amBytes >> 10) << "KB, WM " << (wmBytes >> 10)
       << "KB, " << to_string(compression);
    return os.str();
}

ConfigValidation
AcceleratorConfig::validate() const
{
    ConfigValidation v;
    auto require = [&](bool ok, const char *field, std::string msg) {
        if (!ok)
            v.issues.push_back({field, std::move(msg)});
    };
    require(tiles >= 1, "tiles", "must be >= 1");
    require(filtersPerTile >= 1, "filtersPerTile", "must be >= 1");
    require(lanesPerFilter >= 1, "lanesPerFilter", "must be >= 1");
    require(windowColumns >= 1, "windowColumns", "must be >= 1");
    require(termsPerFilter >= 1, "termsPerFilter", "must be >= 1");
    if (termsPerFilter >= 1 && lanesPerFilter >= 1)
        require(termsPerFilter <= lanesPerFilter, "termsPerFilter",
                "cannot exceed lanesPerFilter (T_x serializes lanes, "
                "it never adds them)");
    require(clockHz > 0.0, "clockHz", "must be positive");
    require(amBytes > 0, "amBytes", "must be nonzero");
    require(wmBytes > 0, "wmBytes", "must be nonzero");
    // No windowColumns/design cross-check: VAA ignores the field, and
    // reusing one config across designs (as the tests do) is legal.
    return v;
}

const AcceleratorConfig &
AcceleratorConfig::validated() const
{
    ConfigValidation v = validate();
    if (!v.ok())
        throw std::invalid_argument("AcceleratorConfig invalid: " +
                                    v.summary());
    return *this;
}

AcceleratorConfig
defaultVaaConfig()
{
    AcceleratorConfig cfg;
    cfg.design = Design::Vaa;
    cfg.tiles = 4;
    cfg.filtersPerTile = 16;
    cfg.lanesPerFilter = 16;
    cfg.windowColumns = 1;
    cfg.termsPerFilter = 16;
    cfg.amBytes = std::size_t{1} << 20; // 1MB uncompressed
    cfg.wmBytes = std::size_t{1} << 19; // 512KB
    cfg.compression = Compression::None;
    return cfg;
}

AcceleratorConfig
defaultPraConfig()
{
    AcceleratorConfig cfg = defaultVaaConfig();
    cfg.design = Design::Pra;
    cfg.windowColumns = 16;
    cfg.compression = Compression::Profiled;
    return cfg;
}

AcceleratorConfig
defaultDiffyConfig()
{
    AcceleratorConfig cfg = defaultVaaConfig();
    cfg.design = Design::Diffy;
    cfg.windowColumns = 16;
    cfg.amBytes = std::size_t{1} << 19; // 512KB thanks to DeltaD16
    cfg.compression = Compression::DeltaD16;
    return cfg;
}

} // namespace diffy
