#include "arch/config.hh"

#include <algorithm>
#include <sstream>

namespace diffy
{

std::string
to_string(Design d)
{
    switch (d) {
      case Design::Vaa:
        return "VAA";
      case Design::Pra:
        return "PRA";
      case Design::Diffy:
        return "Diffy";
    }
    return "?";
}

std::string
to_string(Compression c)
{
    switch (c) {
      case Compression::None:
        return "NoCompression";
      case Compression::Rlez:
        return "RLEz";
      case Compression::Rle:
        return "RLE";
      case Compression::Profiled:
        return "Profiled";
      case Compression::RawD8:
        return "RawD8";
      case Compression::RawD16:
        return "RawD16";
      case Compression::RawD256:
        return "RawD256";
      case Compression::DeltaD8:
        return "DeltaD8";
      case Compression::DeltaD16:
        return "DeltaD16";
      case Compression::DeltaD256:
        return "DeltaD256";
      case Compression::Ideal:
        return "Ideal";
    }
    return "?";
}

int
AcceleratorConfig::filterGroups(int out_channels) const
{
    int tiles_for_filters =
        (out_channels + filtersPerTile - 1) / filtersPerTile;
    return (tiles_for_filters + tiles - 1) / tiles;
}

int
AcceleratorConfig::spatialSplit(int out_channels) const
{
    if (!spatialWorkSharing)
        return 1;
    int tiles_for_filters =
        (out_channels + filtersPerTile - 1) / filtersPerTile;
    return std::max(1, tiles / tiles_for_filters);
}

std::string
AcceleratorConfig::describe() const
{
    std::ostringstream os;
    os << to_string(design) << ": " << tiles << " tiles x "
       << filtersPerTile << " filters x " << lanesPerFilter << " lanes";
    if (design != Design::Vaa)
        os << " x " << windowColumns << " window columns"
           << ", T" << termsPerFilter;
    os << ", AM " << (amBytes >> 10) << "KB, WM " << (wmBytes >> 10)
       << "KB, " << to_string(compression);
    return os.str();
}

AcceleratorConfig
defaultVaaConfig()
{
    AcceleratorConfig cfg;
    cfg.design = Design::Vaa;
    cfg.tiles = 4;
    cfg.filtersPerTile = 16;
    cfg.lanesPerFilter = 16;
    cfg.windowColumns = 1;
    cfg.termsPerFilter = 16;
    cfg.amBytes = std::size_t{1} << 20; // 1MB uncompressed
    cfg.wmBytes = std::size_t{1} << 19; // 512KB
    cfg.compression = Compression::None;
    return cfg;
}

AcceleratorConfig
defaultPraConfig()
{
    AcceleratorConfig cfg = defaultVaaConfig();
    cfg.design = Design::Pra;
    cfg.windowColumns = 16;
    cfg.compression = Compression::Profiled;
    return cfg;
}

AcceleratorConfig
defaultDiffyConfig()
{
    AcceleratorConfig cfg = defaultVaaConfig();
    cfg.design = Design::Diffy;
    cfg.windowColumns = 16;
    cfg.amBytes = std::size_t{1} << 19; // 512KB thanks to DeltaD16
    cfg.compression = Compression::DeltaD16;
    return cfg;
}

} // namespace diffy
