#include "arch/memtech.hh"

#include <stdexcept>

namespace diffy
{

namespace
{

/**
 * Peak interface bandwidths (GB/s per channel), derated to 80%
 * sustainable for the streaming access patterns of the dataflow.
 */
const struct { const char *name; double peak; } kTechs[] = {
    {"LPDDR3-1600", 12.8},
    {"LPDDR3E-2133", 17.0},
    {"LPDDR4-3200", 25.6},
    {"LPDDR4X-3733", 29.9},
    {"LPDDR4X-4267", 34.1},
    {"DDR4-3200", 25.6},
    {"HBM2", 256.0},
    {"HBM3", 409.6},
};

constexpr double kDerate = 0.8;

} // namespace

std::string
MemTech::label() const
{
    if (channels == 1)
        return name;
    return name + "-x" + std::to_string(channels);
}

MemTech
memTechByName(const std::string &name, int channels)
{
    for (const auto &t : kTechs) {
        if (name == t.name)
            return MemTech{t.name, t.peak * kDerate, channels};
    }
    throw std::invalid_argument("unknown memory technology: " + name);
}

std::vector<MemTech>
fig15MemorySweep()
{
    return {
        memTechByName("LPDDR3-1600"),  memTechByName("LPDDR3E-2133"),
        memTechByName("LPDDR4-3200"),  memTechByName("LPDDR4X-3733"),
        memTechByName("LPDDR4X-4267"), memTechByName("HBM2"),
    };
}

std::vector<MemTech>
fig18MemoryLadder()
{
    return {
        memTechByName("LPDDR3-1600", 1),  memTechByName("LPDDR3-1600", 2),
        memTechByName("LPDDR3E-2133", 2), memTechByName("LPDDR4-3200", 2),
        memTechByName("LPDDR4X-3733", 2), memTechByName("LPDDR4X-4267", 2),
        memTechByName("HBM2", 1),         memTechByName("HBM3", 1),
    };
}

} // namespace diffy
