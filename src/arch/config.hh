/**
 * @file
 * Accelerator configuration descriptors (paper Table IV).
 *
 * All three designs are normalized to the same peak compute
 * throughput: the equivalent of 1K 16x16b multiply-accumulate
 * operations per cycle at 1 GHz.
 *
 *  - VAA  (DaDianNao-like): value-agnostic tiles of 16 inner-product
 *    units x 16 activation lanes; 4 tiles = 1024 MACs/cycle.
 *  - PRA  (Bit-Pragmatic): term-serial SIP grid of 16 window columns x
 *    16 filter rows per tile, 16 activation lanes per SIP; matches VAA
 *    throughput when activations average 16 effectual terms and
 *    exceeds it otherwise.
 *  - Diffy: PRA plus per-SIP Differential Reconstruction engines and a
 *    per-tile Delta-out engine.
 */

#ifndef DIFFY_ARCH_CONFIG_HH
#define DIFFY_ARCH_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

namespace diffy
{

/** One field-level problem found by AcceleratorConfig::validate(). */
struct ConfigIssue
{
    std::string field;   ///< offending field, e.g. "tiles"
    std::string message; ///< what is wrong with it

    bool operator==(const ConfigIssue &o) const = default;
};

/**
 * Structured outcome of configuration validation: ok() or the full
 * list of field-level issues, mirroring the structured DecodeResult
 * convention of the hardened codec path (see DESIGN.md §7).
 */
struct ConfigValidation
{
    std::vector<ConfigIssue> issues;

    bool ok() const { return issues.empty(); }

    /** All issues joined as "field: message; ..." (empty when ok). */
    std::string summary() const;
};

/** Which timing model a configuration drives. */
enum class Design
{
    Vaa,
    Pra,
    Diffy
};

/** Off-chip activation compression schemes studied by the paper. */
enum class Compression
{
    None,     ///< 16b fixed for every value
    Rlez,     ///< run-length on zeros
    Rle,      ///< run-length on repeated values
    Profiled, ///< per-layer profiled precision
    RawD8,    ///< dynamic per-group precision, raw values, group 8
    RawD16,   ///< group 16
    RawD256,  ///< group 256
    DeltaD8,  ///< dynamic per-group precision on deltas, group 8
    DeltaD16, ///< group 16 (Diffy's scheme)
    DeltaD256,///< group 256
    Ideal     ///< infinite off-chip bandwidth
};

std::string to_string(Design d);
std::string to_string(Compression c);

/** One accelerator configuration. */
struct AcceleratorConfig
{
    Design design = Design::Diffy;
    /** Number of processing tiles. */
    int tiles = 4;
    /** Filters processed concurrently per tile. */
    int filtersPerTile = 16;
    /** Activation (channel) lanes per inner product / SIP. */
    int lanesPerFilter = 16;
    /**
     * Window columns processed concurrently per tile (PRA/Diffy SIP
     * grid width). VAA has a single column.
     */
    int windowColumns = 16;
    /**
     * Terms processed concurrently per filter: the T_x knob of
     * Fig 16. Equals lanesPerFilter in the default T16 configuration;
     * T1 serializes one term per filter per cycle.
     */
    int termsPerFilter = 16;
    /** Clock frequency in Hz (1 GHz per the paper). */
    double clockHz = 1e9;
    /** Activation memory capacity in bytes. */
    std::size_t amBytes = std::size_t{1} << 20;
    /** Weight memory capacity in bytes. */
    std::size_t wmBytes = std::size_t{1} << 19;
    /** Off-chip compression scheme for activations. */
    Compression compression = Compression::DeltaD16;
    /**
     * Allow surplus tiles to work-share output rows when the filter
     * lanes are already covered. The paper's default dataflow
     * partitions only across filters (so few-filter layers idle most
     * lanes — Fig 12); its scaled-up configurations of Fig 18
     * necessarily distribute the frame across tiles, which this flag
     * enables.
     */
    bool spatialWorkSharing = false;

    /** Peak multiply-accumulate throughput per cycle (16b MACs). */
    double peakMacsPerCycle() const
    {
        return static_cast<double>(tiles) * filtersPerTile * lanesPerFilter;
    }

    /**
     * Sequential filter passes needed for a layer with @p out_channels
     * filters once the tiles' filter lanes are accounted for.
     */
    int filterGroups(int out_channels) const;

    /**
     * Spatial work-sharing factor: when the tile array covers every
     * filter in one pass with tiles to spare, the surplus tiles split
     * the output rows (how the paper's scaled-up configurations of
     * Fig 18 deploy extra tiles).
     */
    int spatialSplit(int out_channels) const;

    /** Human-readable one-line summary. */
    std::string describe() const;

    /**
     * Check every field for physical plausibility (positive geometry,
     * a nonzero clock, termsPerFilter within the lane count). Returns
     * all problems, not just the first.
     */
    ConfigValidation validate() const;

    /**
     * Throwing wrapper over validate(): returns *this when the
     * configuration is sound, otherwise throws std::invalid_argument
     * carrying the full issue summary. Simulation entry points call
     * this so a bad configuration fails with a message naming the
     * field instead of dividing by zero deep in a timing model.
     */
    const AcceleratorConfig &validated() const;
};

/** The paper's default VAA configuration (Table IV). */
AcceleratorConfig defaultVaaConfig();

/** The paper's default PRA configuration (Table IV). */
AcceleratorConfig defaultPraConfig();

/** The paper's default Diffy configuration (Table IV). */
AcceleratorConfig defaultDiffyConfig();

} // namespace diffy

#endif // DIFFY_ARCH_CONFIG_HH
