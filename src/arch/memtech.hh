/**
 * @file
 * Off-chip memory technology table for the Fig 15 / Fig 18 sweeps.
 *
 * Each entry models a DRAM interface as an aggregate sustained
 * bandwidth (per channel x channels). The paper sweeps from
 * LPDDR3-1600 to HBM2; we add HBM3 for the Fig 18 scaling study.
 */

#ifndef DIFFY_ARCH_MEMTECH_HH
#define DIFFY_ARCH_MEMTECH_HH

#include <string>
#include <vector>

namespace diffy
{

/** One off-chip memory configuration. */
struct MemTech
{
    std::string name;          ///< e.g. "LPDDR4-3200"
    double gbPerSecPerChannel; ///< sustained GB/s per channel
    int channels = 1;

    double totalGBs() const { return gbPerSecPerChannel * channels; }

    /** Bytes deliverable per accelerator cycle at @p clock_hz. */
    double bytesPerCycle(double clock_hz) const
    {
        return totalGBs() * 1e9 / clock_hz;
    }

    std::string label() const;
};

/** Named lookup; throws on unknown names. */
MemTech memTechByName(const std::string &name, int channels = 1);

/** The Fig 15 sweep: LPDDR3-1600 up to HBM2, single channel. */
std::vector<MemTech> fig15MemorySweep();

/** The Fig 18 ladder: LPDDR nodes at 1-2 channels, then HBM2/HBM3. */
std::vector<MemTech> fig18MemoryLadder();

} // namespace diffy

#endif // DIFFY_ARCH_MEMTECH_HH
