/**
 * @file
 * Analytic power / energy / area model (paper Tables VI and VII).
 *
 * The paper obtains these numbers from synthesis + layout (65 nm TSMC)
 * and CACTI; neither toolchain is available here, so we model each
 * component with per-event energy coefficients and fixed area costs
 * calibrated to the paper's published breakdowns (see DESIGN.md). The
 * *activity* that multiplies the coefficients — lane-cycles, term
 * operations, SRAM and DRAM traffic — comes from our cycle simulators,
 * so relative power and energy efficiency across VAA/PRA/Diffy are
 * produced, not assumed.
 */

#ifndef DIFFY_ENERGY_MODEL_HH
#define DIFFY_ENERGY_MODEL_HH

#include <string>
#include <vector>

#include "arch/config.hh"
#include "nn/trace.hh"
#include "sim/memsys.hh"

namespace diffy
{

/** One row of the Table VI/VII style breakdowns. */
struct ComponentReport
{
    std::string component;
    double watts = 0.0;
    double mm2 = 0.0;
};

/** Full power/area/efficiency report for one design. */
struct EnergyReport
{
    Design design = Design::Vaa;
    std::vector<ComponentReport> components;
    double totalWatts = 0.0;
    double totalMm2 = 0.0;
    /** Execution cycles the report was computed over. */
    double cycles = 0.0;
    /** On-chip energy for the run, joules. */
    double onChipJoules = 0.0;
    /** Off-chip DRAM energy for the run, joules. */
    double dramJoules = 0.0;
};

/**
 * Build the power/area report of a design executing @p perf (one
 * frame). @p compute supplies activity counts; @p trace supplies
 * value statistics for SRAM access accounting.
 */
EnergyReport buildEnergyReport(const NetworkTrace &trace,
                               const NetworkComputeResult &compute,
                               const FramePerf &perf,
                               const AcceleratorConfig &cfg);

/**
 * Energy efficiency of @p a relative to @p b for the same workload:
 * (perf_a / perf_b) / (power_a / power_b), the paper's metric.
 */
double relativeEnergyEfficiency(const EnergyReport &a, const FramePerf &pa,
                                const EnergyReport &b,
                                const FramePerf &pb);

} // namespace diffy

#endif // DIFFY_ENERGY_MODEL_HH
