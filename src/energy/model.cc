#include "energy/model.hh"

#include <cmath>

#include "encode/footprint.hh"

namespace diffy
{

namespace
{

/**
 * Per-event energy coefficients (pJ) and per-unit areas (mm^2),
 * 65 nm class. Values are calibrated so that the default Table IV
 * configurations land near the paper's published breakdowns; the
 * model's outputs scale with simulated activity, not with these
 * constants alone.
 */
struct Coefficients
{
    // Compute. A value-agnostic MAC is one 16x16b multiply; a PRA/
    // Diffy term op is a 16b shift-and-add, cheaper per op but the
    // serial grid carries 16x the lanes, whose clocked-but-starved
    // cycles cost sipIdlePj each — which is why the term-serial
    // designs draw more power than VAA despite doing less work
    // (paper Table VI).
    double vaaMacPj = 5.0;       ///< one 16x16b MAC
    double termOpPj = 2.0;       ///< one shift-and-add term op
    double sipIdlePj = 0.4;      ///< clocked but idle serial lane/cycle
    double drAddPj = 0.9;        ///< DR cascade addition per output
    // SRAM, per 16b access (CACTI-class, includes H-tree).
    double amAccessPj = 25.0;
    double wmAccessPj = 6.0;
    double abAccessPj = 0.5;     ///< ABin/ABout register file
    // Fixed-function engines
    double dispatchPj = 0.3;     ///< per activation dispatched
    double offsetGenPj = 0.25;   ///< per activation encoded
    double deltaOutPj = 0.55;    ///< per output value written as delta
    // Off-chip
    double dramPjPerBit = 18.0;
    // Areas (mm^2)
    double vaaComputeMm2 = 14.49;
    // PRA's SIP grid (16 window columns of serial lanes) outweighs
    // VAA's multiplier array at equal peak throughput.
    double praComputeMm2 = 21.7;
    double drEnginesMm2 = 1.10;          // Diffy's DR adders + muxes
    double amMm2PerKb = 12.10 / 1024.0;  // per CACTI-class SRAM density
    double wmMm2PerKb = 6.77 / 512.0;    // 512KB WM
    double abMm2 = 0.23;
    double dispatcherMm2 = 0.37;
    double offsetGensMm2 = 1.00;
    double deltaOutMm2 = 0.09;
};

const Coefficients kCoef;

/** Sum of all imap values of a trace, scaled to the frame. */
double
frameActivationCount(const NetworkTrace &trace, int frame_h, int frame_w)
{
    double total = 0.0;
    for (const auto &layer : trace.layers) {
        double h = static_cast<double>(frame_h) /
                   layer.spec.resolutionDivisor;
        double w = static_cast<double>(frame_w) /
                   layer.spec.resolutionDivisor;
        total += static_cast<double>(layer.spec.inChannels) * h * w;
    }
    return total;
}

/** Total frame MACs (scaled from the per-layer trace stats). */
double
frameMacs(const NetworkTrace &trace, int frame_h, int frame_w)
{
    double total = 0.0;
    for (const auto &layer : trace.layers) {
        double h = static_cast<double>(frame_h) /
                   layer.spec.resolutionDivisor;
        double w = static_cast<double>(frame_w) /
                   layer.spec.resolutionDivisor;
        double outputs = layer.spec.outDim(static_cast<int>(h)) *
                         static_cast<double>(
                             layer.spec.outDim(static_cast<int>(w))) *
                         layer.spec.outChannels;
        total += outputs * static_cast<double>(layer.spec.macsPerOutput());
    }
    return total;
}

/** Useful term operations over the frame (scaled per layer). */
double
frameTermOps(const NetworkTrace &trace, const NetworkComputeResult &compute,
             int frame_h, int frame_w)
{
    double total = 0.0;
    for (std::size_t li = 0; li < trace.layers.size(); ++li) {
        const auto &lt = trace.layers[li];
        const auto &cs = compute.layers[li];
        const int div = lt.spec.resolutionDivisor;
        double frame_out =
            lt.spec.outDim(std::max(1, frame_h / div)) *
            static_cast<double>(
                lt.spec.outDim(std::max(1, frame_w / div)));
        double trace_out =
            static_cast<double>(lt.outHeight()) * lt.outWidth();
        double scale = trace_out > 0.0 ? frame_out / trace_out : 0.0;
        total += cs.usefulSlots * scale;
    }
    return total;
}

} // namespace

EnergyReport
buildEnergyReport(const NetworkTrace &trace,
                  const NetworkComputeResult &compute,
                  const FramePerf &perf, const AcceleratorConfig &cfg)
{
    EnergyReport rep;
    rep.design = cfg.design;
    rep.cycles = perf.totalCycles;
    const double seconds = perf.totalCycles / cfg.clockHz;
    const int fh = perf.frameHeight;
    const int fw = perf.frameWidth;

    const double activations = frameActivationCount(trace, fh, fw);
    const double macs = frameMacs(trace, fh, fw);
    const double grid_lanes = cfg.peakMacsPerCycle() *
                              (cfg.design == Design::Vaa
                                   ? 1.0
                                   : static_cast<double>(
                                         cfg.windowColumns));

    // --- Compute energy ---
    double compute_j = 0.0;
    if (cfg.design == Design::Vaa) {
        compute_j = macs * kCoef.vaaMacPj * 1e-12;
    } else {
        const double term_ops = frameTermOps(trace, compute, fh, fw);
        double compute_cycles = 0.0;
        for (const auto &lp : perf.layers)
            compute_cycles += lp.computeCycles;
        const double total_slots = compute_cycles * grid_lanes;
        const double idle_slots = std::max(0.0, total_slots - term_ops);
        compute_j = (term_ops * kCoef.termOpPj +
                     idle_slots * kCoef.sipIdlePj) *
                    1e-12;
        if (cfg.design == Design::Diffy) {
            // DR cascade: one reconstruction add per output activation.
            double outputs = 0.0;
            for (const auto &layer : trace.layers) {
                double div = layer.spec.resolutionDivisor *
                             layer.spec.stride;
                outputs += layer.spec.outChannels *
                           (fh / div) * (fw / div);
            }
            compute_j += outputs * kCoef.drAddPj * 1e-12;
        }
    }

    // --- SRAM energy: each activation is fetched once per tile (the
    // AM is banked and bricks are broadcast per tile; window reuse is
    // captured by ABin); one AM write per output; WM re-read per
    // window pallet group ---
    const double am_reads = activations * cfg.tiles;
    double outputs_total = 0.0;
    for (const auto &layer : trace.layers) {
        double div = layer.spec.resolutionDivisor * layer.spec.stride;
        outputs_total += layer.spec.outChannels * (fh / div) * (fw / div);
    }
    const double am_writes = outputs_total;
    double wm_reads = 0.0;
    for (const auto &layer : trace.layers) {
        // Weights are re-read once per group of 16 windows; all three
        // designs keep the current filter set in per-IP registers
        // across a window group (PRA/Diffy pallets, VAA's NBout
        // reuse).
        double div = static_cast<double>(layer.spec.resolutionDivisor);
        double out_w = fw / div / layer.spec.stride;
        double out_h = fh / div / layer.spec.stride;
        double pallets = out_h * std::ceil(out_w / 16.0);
        wm_reads += pallets *
                    static_cast<double>(layer.spec.layerWeightBytes()) / 2.0;
    }
    const double am_j =
        (am_reads + am_writes) * kCoef.amAccessPj * 1e-12 *
        (cfg.compression == Compression::DeltaD16 ? 0.55 : 1.0);
    const double wm_j = wm_reads * kCoef.wmAccessPj * 1e-12;
    const double ab_j =
        (activations + outputs_total * 2.0) * kCoef.abAccessPj * 1e-12;
    const double dispatch_j = activations * kCoef.dispatchPj * 1e-12;
    const double offset_j = cfg.design == Design::Vaa
                                ? 0.0
                                : activations * kCoef.offsetGenPj * 1e-12;
    const double delta_out_j =
        cfg.design == Design::Diffy
            ? outputs_total * kCoef.deltaOutPj * 1e-12
            : 0.0;

    rep.onChipJoules = compute_j + am_j + wm_j + ab_j + dispatch_j +
                       offset_j + delta_out_j;

    // --- DRAM energy ---
    double traffic_bytes = 0.0;
    if (cfg.compression != Compression::Ideal) {
        traffic_bytes =
            frameTrafficBytes(trace, cfg.compression, fh, fw);
    }
    rep.dramJoules = traffic_bytes * 8.0 * kCoef.dramPjPerBit * 1e-12;

    // --- Areas ---
    const double am_kb = static_cast<double>(cfg.amBytes) / 1024.0;
    const double wm_kb = static_cast<double>(cfg.wmBytes) / 1024.0;
    double compute_mm2 = cfg.design == Design::Vaa
                             ? kCoef.vaaComputeMm2
                             : kCoef.praComputeMm2;
    if (cfg.design == Design::Diffy)
        compute_mm2 += kCoef.drEnginesMm2;

    auto add = [&](const std::string &name, double joules, double mm2) {
        rep.components.push_back(
            {name, seconds > 0.0 ? joules / seconds : 0.0, mm2});
    };
    add("Compute", compute_j, compute_mm2);
    add("AM", am_j, am_kb * kCoef.amMm2PerKb);
    add("WM", wm_j, wm_kb * kCoef.wmMm2PerKb);
    add("ABin+ABout", ab_j, kCoef.abMm2);
    add("Dispatcher", dispatch_j, kCoef.dispatcherMm2);
    add("Offset Gens", offset_j,
        cfg.design == Design::Vaa ? 0.0 : kCoef.offsetGensMm2);
    add("Delta_out", delta_out_j,
        cfg.design == Design::Diffy ? kCoef.deltaOutMm2 : 0.0);

    for (const auto &c : rep.components) {
        rep.totalWatts += c.watts;
        rep.totalMm2 += c.mm2;
    }
    return rep;
}

double
relativeEnergyEfficiency(const EnergyReport &a, const FramePerf &pa,
                         const EnergyReport &b, const FramePerf &pb)
{
    // Same workload: efficiency ratio = energy_b / energy_a.
    double ea = (a.totalWatts) * pa.totalCycles;
    double eb = (b.totalWatts) * pb.totalCycles;
    return ea > 0.0 ? eb / ea : 0.0;
}

} // namespace diffy
