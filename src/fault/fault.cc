#include "fault/fault.hh"

#include <algorithm>
#include <cstdio>

namespace diffy
{

std::string
to_string(FaultModel m)
{
    switch (m) {
      case FaultModel::SingleBit:
        return "single-bit";
      case FaultModel::Burst:
        return "burst";
      case FaultModel::BitRate:
        return "bit-rate";
    }
    return "?";
}

std::string
to_string(FaultTarget t)
{
    switch (t) {
      case FaultTarget::Any:
        return "any";
      case FaultTarget::Payload:
        return "payload";
      case FaultTarget::Header:
        return "header";
    }
    return "?";
}

std::string
FaultSpec::describe() const
{
    char buf[64];
    switch (model) {
      case FaultModel::SingleBit:
        std::snprintf(buf, sizeof buf, "%d-bit", flips);
        break;
      case FaultModel::Burst:
        std::snprintf(buf, sizeof buf, "burst%d", burstLength);
        break;
      case FaultModel::BitRate:
        std::snprintf(buf, sizeof buf, "ber%.0e", bitErrorRate);
        break;
    }
    return std::string(buf) + "@" + to_string(target);
}

namespace
{

void
flipBit(ByteVec &bytes, std::size_t bit)
{
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

/** Positions in [0, total_bits) belonging to the target class. */
std::vector<std::size_t>
candidateBits(std::size_t total_bits, const std::vector<BitRange> &headers,
              FaultTarget target)
{
    if (target == FaultTarget::Any) {
        std::vector<std::size_t> all(total_bits);
        for (std::size_t b = 0; b < total_bits; ++b)
            all[b] = b;
        return all;
    }
    std::vector<bool> is_header(total_bits, false);
    for (const BitRange &r : headers) {
        std::size_t end = std::min(r.first + r.count, total_bits);
        for (std::size_t b = r.first; b < end; ++b)
            is_header[b] = true;
    }
    std::vector<std::size_t> out;
    for (std::size_t b = 0; b < total_bits; ++b) {
        if (is_header[b] == (target == FaultTarget::Header))
            out.push_back(b);
    }
    return out;
}

} // namespace

FaultReport
FaultInjector::injectIntoBits(ByteVec &bytes,
                              std::size_t total_bits,
                              const std::vector<BitRange> &headers,
                              const FaultSpec &spec)
{
    FaultReport report;
    // Never index past the buffer, whatever the declared bit count.
    total_bits = std::min(total_bits, bytes.size() * 8);
    std::vector<std::size_t> candidates =
        candidateBits(total_bits, headers, spec.target);
    if (candidates.empty())
        return report;

    switch (spec.model) {
      case FaultModel::SingleBit: {
        // Sample without replacement by swap-and-shrink.
        std::size_t want = std::min<std::size_t>(
            spec.flips > 0 ? static_cast<std::size_t>(spec.flips) : 0,
            candidates.size());
        for (std::size_t k = 0; k < want; ++k) {
            std::size_t j =
                k + static_cast<std::size_t>(
                        rng_.below(candidates.size() - k));
            std::swap(candidates[k], candidates[j]);
            report.flippedBits.push_back(candidates[k]);
        }
        break;
      }
      case FaultModel::Burst: {
        std::size_t anchor = candidates[static_cast<std::size_t>(
            rng_.below(candidates.size()))];
        std::size_t len = spec.burstLength > 0
                              ? static_cast<std::size_t>(spec.burstLength)
                              : 1;
        for (std::size_t b = anchor;
             b < anchor + len && b < total_bits; ++b)
            report.flippedBits.push_back(b);
        break;
      }
      case FaultModel::BitRate: {
        for (std::size_t b : candidates) {
            if (rng_.uniform() < spec.bitErrorRate)
                report.flippedBits.push_back(b);
        }
        break;
      }
    }

    std::sort(report.flippedBits.begin(), report.flippedBits.end());
    for (std::size_t b : report.flippedBits)
        flipBit(bytes, b);
    return report;
}

FaultReport
FaultInjector::inject(EncodedTensor &enc, const FaultSpec &spec)
{
    return injectIntoBits(enc.bytes, enc.bits, enc.headerBits, spec);
}

FaultReport
FaultInjector::inject(TensorI16 &t, const FaultSpec &spec)
{
    FaultSpec raw_spec = spec;
    raw_spec.target = FaultTarget::Any; // raw tensors are all payload
    // View the tensor as a little-endian byte buffer, reusing the
    // bitstream path so models behave identically on both.
    ByteVec bytes(t.size() * 2, scratchAlloc<std::uint8_t>());
    for (std::size_t i = 0; i < t.size(); ++i) {
        auto u = static_cast<std::uint16_t>(t.data()[i]);
        bytes[2 * i] = static_cast<std::uint8_t>(u & 0xFF);
        bytes[2 * i + 1] = static_cast<std::uint8_t>(u >> 8);
    }
    FaultReport report =
        injectIntoBits(bytes, bytes.size() * 8, {}, raw_spec);
    for (std::size_t i = 0; i < t.size(); ++i) {
        auto u = static_cast<std::uint16_t>(
            bytes[2 * i] | (bytes[2 * i + 1] << 8));
        t.data()[i] = static_cast<std::int16_t>(u);
    }
    return report;
}

} // namespace diffy
