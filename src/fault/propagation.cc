#include "fault/propagation.hh"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace diffy
{

PropagationMetrics
compareTensors(const TensorI16 &clean, const TensorI16 &decoded)
{
    if (!(clean.shape() == decoded.shape()))
        throw std::invalid_argument("compareTensors: shape mismatch");
    PropagationMetrics m;
    m.totalValues = clean.size();
    double sq_err = 0.0;
    for (int c = 0; c < clean.channels(); ++c) {
        for (int y = 0; y < clean.height(); ++y) {
            std::size_t run = 0;
            for (int x = 0; x < clean.width(); ++x) {
                std::int32_t err = static_cast<std::int32_t>(
                                       decoded.at(c, y, x)) -
                                   clean.at(c, y, x);
                if (err != 0) {
                    ++m.corruptedValues;
                    ++run;
                    if (run > m.maxCorruptedRun)
                        m.maxCorruptedRun = run;
                    std::int32_t a = err < 0 ? -err : err;
                    if (a > m.maxAbsError)
                        m.maxAbsError = a;
                    sq_err += static_cast<double>(err) * err;
                } else {
                    run = 0;
                }
            }
        }
    }
    if (m.corruptedValues == 0 || m.totalValues == 0) {
        m.psnrDb = std::numeric_limits<double>::infinity();
    } else {
        // PSNR over the int16 dynamic range (peak 65535).
        double mse = sq_err / static_cast<double>(m.totalValues);
        m.psnrDb = 10.0 * std::log10(65535.0 * 65535.0 / mse);
    }
    return m;
}

PropagationMetrics
analyzeFaultedDecode(const ActivationCodec &codec, const TensorI16 &clean,
                     const FaultSpec &spec, std::uint64_t seed)
{
    EncodedTensor enc = codec.encode(clean);
    FaultInjector injector(seed);
    injector.inject(enc, spec);
    DecodeResult dec = codec.tryDecode(enc);
    if (!dec.ok()) {
        PropagationMetrics m;
        m.decodeError = true;
        m.status = dec.status;
        m.totalValues = clean.size();
        return m;
    }
    return compareTensors(clean, dec.tensor);
}

PropagationSummary
sweepFaults(const ActivationCodec &codec, const TensorI16 &clean,
            const FaultSpec &spec, int trials, std::uint64_t seed,
            bool sealStreams, int reanchorInterval)
{
    // Encode once; each trial faults a private copy. The seal happens
    // before injection, and the footer fields live outside the
    // faultable [0, bits) range, so every injected fault perturbs a
    // byte the CRC covers.
    EncodedTensor enc = codec.encode(clean);
    if (sealStreams)
        sealEncoded(enc);
    // Cost of re-decoding from the last clean anchor on detection.
    const std::size_t recoveryCost =
        reanchorInterval > 0 ? static_cast<std::size_t>(reanchorInterval)
                             : static_cast<std::size_t>(clean.width());
    Rng seeder(seed);
    PropagationSummary s;
    double psnr_sum = 0.0;
    double corrupted_sum = 0.0;
    std::uint64_t recovery_sum = 0;
    for (int trial = 0; trial < trials; ++trial) {
        FaultInjector injector(seeder.next());
        EncodedTensor faulted = enc;
        injector.inject(faulted, spec);
        DecodeResult dec = sealStreams ? codec.tryDecodeVerified(faulted)
                                       : codec.tryDecode(faulted);
        ++s.trials;
        if (!dec.ok()) {
            ++s.decodeErrors;
            if (dec.status == DecodeStatus::BadChecksum) {
                ++s.crcDetected;
                recovery_sum += recoveryCost;
            }
            continue;
        }
        PropagationMetrics m = compareTensors(clean, dec.tensor);
        if (m.corruptedValues == 0) {
            ++s.exactDecodes;
            continue;
        }
        ++s.silentCorruptions;
        corrupted_sum += static_cast<double>(m.corruptedValues);
        psnr_sum += m.psnrDb;
        if (m.maxCorruptedRun > s.maxCorruptedRun)
            s.maxCorruptedRun = m.maxCorruptedRun;
        if (m.maxAbsError > s.maxAbsError)
            s.maxAbsError = m.maxAbsError;
    }
    if (s.silentCorruptions > 0) {
        s.meanCorruptedValues =
            corrupted_sum / static_cast<double>(s.silentCorruptions);
        s.meanPsnrDb = psnr_sum / static_cast<double>(s.silentCorruptions);
    }
    if (s.crcDetected > 0)
        s.meanRecoveryCycles = static_cast<double>(recovery_sum) /
                               static_cast<double>(s.crcDetected);
    return s;
}

} // namespace diffy
