/**
 * @file
 * Error-propagation analysis over faulted codec streams.
 *
 * The question Diffy's delta storage raises (and the paper does not
 * quantify): when a stored bit flips, how far does the error travel
 * once the DR engine reconstructs values by prefix summation? The
 * analyzer encodes a clean tensor, injects faults, decodes through
 * the hardened path and compares: corrupted-value count, the longest
 * corrupted run inside a row (the blast radius that re-anchoring is
 * meant to bound), max absolute error, and PSNR against the clean
 * tensor. Structured decode errors are counted separately from
 * silent corruption — a detected failure is a far better outcome
 * than a plausible-looking wrong tensor.
 */

#ifndef DIFFY_FAULT_PROPAGATION_HH
#define DIFFY_FAULT_PROPAGATION_HH

#include <cstdint>

#include "encode/schemes.hh"
#include "fault/fault.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/** Outcome of decoding one faulted stream against its clean tensor. */
struct PropagationMetrics
{
    /** Hardened decoder returned a structured error. */
    bool decodeError = false;
    DecodeStatus status = DecodeStatus::Ok;

    std::size_t totalValues = 0;
    /** Values differing from the clean tensor (successful decodes). */
    std::size_t corruptedValues = 0;
    /**
     * Longest contiguous corrupted span within one (channel, row) —
     * the row-direction blast radius of the fault.
     */
    std::size_t maxCorruptedRun = 0;
    std::int32_t maxAbsError = 0;
    /**
     * PSNR in dB against the clean tensor over the int16 dynamic
     * range; +infinity when the decode is exact.
     */
    double psnrDb = 0.0;
};

/** Value-level comparison of a decoded tensor against the clean one. */
PropagationMetrics compareTensors(const TensorI16 &clean,
                                  const TensorI16 &decoded);

/**
 * Encode @p clean with @p codec, inject one fault per @p spec using
 * @p seed, decode through the hardened path and compare.
 */
PropagationMetrics analyzeFaultedDecode(const ActivationCodec &codec,
                                        const TensorI16 &clean,
                                        const FaultSpec &spec,
                                        std::uint64_t seed);

/** Aggregate of many independent injection trials. */
struct PropagationSummary
{
    std::size_t trials = 0;
    /** Trials whose decode returned a structured error (detected). */
    std::size_t decodeErrors = 0;
    /**
     * Detected specifically by the integrity footer (BadChecksum) —
     * a subset of decodeErrors, nonzero only when streams are sealed.
     * Every footer catch is a corruption that would otherwise have
     * been silent or mis-diagnosed by the structural checks alone.
     */
    std::size_t crcDetected = 0;
    /** Trials that decoded OK but with wrong values (silent). */
    std::size_t silentCorruptions = 0;
    /** Trials whose decode was bit-exact despite the fault. */
    std::size_t exactDecodes = 0;

    /** Mean corrupted values over silently-corrupted trials. */
    double meanCorruptedValues = 0.0;
    /** Worst row-direction blast radius over all trials. */
    std::size_t maxCorruptedRun = 0;
    std::int32_t maxAbsError = 0;
    /** Mean PSNR (dB) over silently-corrupted trials. */
    double meanPsnrDb = 0.0;

    /**
     * Recovery cost charged for detected corruption: re-decoding from
     * the last clean anchor costs one cycle per value recomputed —
     * the re-anchor interval K when the codec re-anchors, a full row
     * otherwise. Mean over detected trials; 0 when none.
     */
    double meanRecoveryCycles = 0.0;
};

/**
 * Run @p trials independent injections (per-trial seeds derived
 * deterministically from @p seed) and aggregate. Exactly reproducible:
 * same inputs → same summary.
 *
 * @param sealStreams when true, the encoded stream is sealed
 *        (sealEncoded()) before injection and decoded through
 *        tryDecodeVerified(), so the integrity footer converts
 *        otherwise-silent corruptions into detected BadChecksum
 *        errors (counted in crcDetected) at the price of
 *        meanRecoveryCycles per detection.
 * @param reanchorInterval the DeltaD re-anchor interval K of the
 *        codec under test (0 = anchors at row heads only); sets the
 *        per-detection recovery cost to K values, or a full row when
 *        0. Ignored unless @p sealStreams.
 */
PropagationSummary sweepFaults(const ActivationCodec &codec,
                               const TensorI16 &clean,
                               const FaultSpec &spec, int trials,
                               std::uint64_t seed,
                               bool sealStreams = false,
                               int reanchorInterval = 0);

} // namespace diffy

#endif // DIFFY_FAULT_PROPAGATION_HH
