/**
 * @file
 * Seeded, deterministic fault injection for encoded bitstreams and
 * raw tensors.
 *
 * Diffy stores activations as X-axis deltas (DeltaD16), so a single
 * corrupted bit can smear across an entire output row during
 * reconstruction — a failure mode raw-value storage does not have.
 * This module provides the measurement half of quantifying that
 * fragility: it flips bits under configurable fault models
 * (single-bit, contiguous burst, uniform per-bit rate), optionally
 * restricted to payload bits or to the group-precision/run-length
 * header bits that the codecs record in EncodedTensor::headerBits.
 *
 * All randomness comes from the repo's seeded Rng, so any injection
 * is exactly replayable from (seed, spec): same seed, same flips.
 */

#ifndef DIFFY_FAULT_FAULT_HH
#define DIFFY_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "encode/schemes.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/** How faulted bits are distributed over the target. */
enum class FaultModel
{
    SingleBit, ///< @c flips independent single-bit upsets
    Burst,     ///< one contiguous run of @c burstLength flipped bits
    BitRate    ///< each candidate bit flips with prob @c bitErrorRate
};

/** Which part of an encoded stream faults may land in. */
enum class FaultTarget
{
    Any,     ///< the whole stream
    Payload, ///< value bits only (outside every header range)
    Header   ///< group-precision / run-length metadata bits only
};

std::string to_string(FaultModel m);
std::string to_string(FaultTarget t);

/** One fault-injection configuration. */
struct FaultSpec
{
    FaultModel model = FaultModel::SingleBit;
    FaultTarget target = FaultTarget::Any;
    /** SingleBit: number of distinct upsets per injection. */
    int flips = 1;
    /** Burst: contiguous bits flipped (anchored inside the target). */
    int burstLength = 8;
    /** BitRate: per-bit flip probability over the target bits. */
    double bitErrorRate = 1e-4;

    /** Short label, e.g. "1-bit@header" or "burst8@any". */
    std::string describe() const;
};

/** Which bits an injection flipped (absolute stream positions). */
struct FaultReport
{
    std::vector<std::size_t> flippedBits; ///< sorted ascending

    bool operator==(const FaultReport &o) const = default;
};

/**
 * Deterministic bit-flipping engine. One injector can serve many
 * injections; each call advances the generator, so a fresh injector
 * from the same seed replays the same sequence of injections.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(std::uint64_t seed) : rng_(seed) {}

    /**
     * Flip bits of @p enc in place per @p spec. Candidate positions
     * are restricted to [0, enc.bits) and to the spec's target class;
     * a Burst is anchored on a target bit but may run past class
     * boundaries (bursts are physical, not format-aware). Returns the
     * flipped positions, sorted. If the target class is empty (e.g.
     * Header on NoCompression) nothing is flipped.
     */
    FaultReport inject(EncodedTensor &enc, const FaultSpec &spec);

    /**
     * Flip bits of a raw tensor in place. Every bit of every int16
     * value is payload, so the spec's target is ignored.
     */
    FaultReport inject(TensorI16 &t, const FaultSpec &spec);

  private:
    FaultReport injectIntoBits(ByteVec &bytes,
                               std::size_t total_bits,
                               const std::vector<BitRange> &headers,
                               const FaultSpec &spec);

    Rng rng_;
};

} // namespace diffy

#endif // DIFFY_FAULT_FAULT_HH
