#include "image/catalog.hh"

namespace diffy
{

namespace
{

std::vector<SceneParams>
makeScenes(const std::vector<SceneKind> &kinds, int count, int crop,
           std::uint64_t seed_base, double noise_sigma, double roughness)
{
    std::vector<SceneParams> scenes;
    scenes.reserve(count);
    for (int i = 0; i < count; ++i) {
        SceneParams p;
        p.kind = kinds[i % kinds.size()];
        p.width = crop;
        p.height = crop;
        p.seed = seed_base + static_cast<std::uint64_t>(i) * 7919;
        p.roughness = roughness;
        p.noiseSigma = noise_sigma;
        scenes.push_back(p);
    }
    return scenes;
}

} // namespace

std::vector<DatasetSpec>
datasetCatalog(int samples_per_set, int crop)
{
    std::vector<DatasetSpec> catalog;

    catalog.push_back({"CBSD68", "Berkeley segmentation test images",
                       68,
                       makeScenes({SceneKind::Nature, SceneKind::Portrait,
                                   SceneKind::City},
                                  samples_per_set, crop, 0x1001, 0.0, 0.55)});
    catalog.push_back({"McMaster", "CDM demosaicking set",
                       18,
                       makeScenes({SceneKind::Texture, SceneKind::Nature},
                                  samples_per_set, crop, 0x2002, 0.0, 0.5)});
    catalog.push_back({"Kodak24", "Kodak photographic set",
                       24,
                       makeScenes({SceneKind::Nature, SceneKind::Gradient,
                                   SceneKind::Portrait},
                                  samples_per_set, crop, 0x3003, 0.0, 0.45)});
    catalog.push_back({"RNI15", "real-noise images (camera, JPEG)",
                       15,
                       makeScenes({SceneKind::Nature, SceneKind::City},
                                  samples_per_set, crop, 0x4004, 0.04, 0.5)});
    catalog.push_back({"LIVE1", "super-resolution evaluation set",
                       29,
                       makeScenes({SceneKind::Nature, SceneKind::Texture},
                                  samples_per_set, crop, 0x5005, 0.0, 0.5)});
    catalog.push_back({"Set5+Set14", "classic super-resolution sets",
                       19,
                       makeScenes({SceneKind::Portrait, SceneKind::Nature,
                                   SceneKind::Texture},
                                  samples_per_set, crop, 0x6006, 0.0, 0.5)});
    catalog.push_back({"HD33", "HD frames: nature, city, texture",
                       33,
                       makeScenes({SceneKind::Nature, SceneKind::City,
                                   SceneKind::Texture},
                                  samples_per_set, crop, 0x7007, 0.0, 0.5)});
    return catalog;
}

std::vector<SceneParams>
defaultEvalScenes(int count, int crop)
{
    return makeScenes({SceneKind::Nature, SceneKind::City,
                       SceneKind::Texture, SceneKind::Gradient,
                       SceneKind::Portrait},
                      count, crop, 0xBEEF, 0.0, 0.5);
}

SceneParams
barbaraScene(int crop)
{
    SceneParams p;
    p.kind = SceneKind::Texture;
    p.width = crop;
    p.height = crop;
    p.seed = 0xBA1BA1;
    p.roughness = 0.55;
    p.noiseSigma = 0.0;
    return p;
}

} // namespace diffy
