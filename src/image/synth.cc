#include "image/synth.hh"

#include <cmath>
#include <stdexcept>

#include "common/rng.hh"

namespace diffy
{

namespace
{

/**
 * Smooth value-noise lattice: random values at grid points, bicubic
 * smoothstep interpolation in between. One octave of the fractal sum.
 */
class ValueNoise
{
  public:
    ValueNoise(Rng &rng, int gw, int gh) : gw_(gw), gh_(gh)
    {
        grid_.resize(static_cast<std::size_t>(gw) * gh);
        for (auto &v : grid_)
            v = static_cast<float>(rng.uniform(-1.0, 1.0));
    }

    float
    sample(double u, double v) const
    {
        // u, v in [0, 1): map to the grid with wraparound.
        double gx = u * gw_;
        double gy = v * gh_;
        int x0 = static_cast<int>(gx) % gw_;
        int y0 = static_cast<int>(gy) % gh_;
        int x1 = (x0 + 1) % gw_;
        int y1 = (y0 + 1) % gh_;
        double fx = gx - static_cast<int>(gx);
        double fy = gy - static_cast<int>(gy);
        double sx = fx * fx * (3.0 - 2.0 * fx);
        double sy = fy * fy * (3.0 - 2.0 * fy);
        double a = at(x0, y0) * (1 - sx) + at(x1, y0) * sx;
        double b = at(x0, y1) * (1 - sx) + at(x1, y1) * sx;
        return static_cast<float>(a * (1 - sy) + b * sy);
    }

  private:
    float at(int x, int y) const { return grid_[std::size_t(y) * gw_ + x]; }

    int gw_, gh_;
    std::vector<float> grid_;
};

/** Fractal (multi-octave) noise field in roughly [-1, 1]. */
Tensor3<float>
fractalField(Rng &rng, int w, int h, double roughness, int octaves)
{
    Tensor3<float> field(1, h, w, 0.0f);
    double amp = 1.0;
    double total = 0.0;
    int cells = 4;
    for (int o = 0; o < octaves; ++o) {
        ValueNoise noise(rng, cells, cells);
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                field.at(0, y, x) += static_cast<float>(
                    amp * noise.sample(double(x) / w, double(y) / h));
            }
        }
        total += amp;
        amp *= roughness; // persistence: higher = rougher spectrum
        cells *= 2;
        if (cells > std::max(w, h))
            break;
    }
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x)
            field.at(0, y, x) /= static_cast<float>(total);
    }
    return field;
}

float
clamp01(float v)
{
    return v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v);
}

/** Overlay random axis-aligned flat rectangles (buildings, windows). */
void
overlayRectangles(Rng &rng, Tensor3<float> &lum, int count)
{
    int h = lum.height();
    int w = lum.width();
    for (int i = 0; i < count; ++i) {
        int rw = 2 + static_cast<int>(rng.below(std::max(2, w / 3)));
        int rh = 2 + static_cast<int>(rng.below(std::max(2, h / 3)));
        int x0 = static_cast<int>(rng.below(std::max(1, w - rw)));
        int y0 = static_cast<int>(rng.below(std::max(1, h - rh)));
        float level = static_cast<float>(rng.uniform());
        for (int y = y0; y < y0 + rh && y < h; ++y) {
            for (int x = x0; x < x0 + rw && x < w; ++x)
                lum.at(0, y, x) = level;
        }
    }
}

/** Quasi-periodic texture base (stripes at a random orientation). */
void
overlayStripes(Rng &rng, Tensor3<float> &lum, double weight)
{
    int h = lum.height();
    int w = lum.width();
    double theta = rng.uniform(0.0, M_PI);
    double freq = rng.uniform(4.0, 14.0) * 2.0 * M_PI /
                  static_cast<double>(std::max(w, h));
    double cx = std::cos(theta) * freq;
    double cy = std::sin(theta) * freq;
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            double s = 0.5 + 0.5 * std::sin(cx * x + cy * y);
            lum.at(0, y, x) = static_cast<float>(
                (1.0 - weight) * lum.at(0, y, x) + weight * s);
        }
    }
}

/** Smooth radial blobs (portrait-like shading) plus a few contours. */
void
overlayBlobs(Rng &rng, Tensor3<float> &lum, int count)
{
    int h = lum.height();
    int w = lum.width();
    for (int i = 0; i < count; ++i) {
        double bx = rng.uniform(0.2, 0.8) * w;
        double by = rng.uniform(0.2, 0.8) * h;
        double r = rng.uniform(0.15, 0.45) * std::min(w, h);
        double level = rng.uniform(0.2, 0.9);
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                double d = std::hypot(x - bx, y - by) / r;
                if (d < 1.0) {
                    double wgt = 0.5 * (1.0 + std::cos(M_PI * d));
                    lum.at(0, y, x) = static_cast<float>(
                        lum.at(0, y, x) * (1.0 - wgt) + level * wgt);
                }
            }
        }
    }
}

} // namespace

Tensor3<float>
renderScene(const SceneParams &params)
{
    Rng rng(params.seed);
    const int w = params.width;
    const int h = params.height;

    // Luminance plane first; chroma is derived from lower-frequency
    // fields so channels stay correlated like real photographs.
    Tensor3<float> lum(1, h, w, 0.5f);
    switch (params.kind) {
      case SceneKind::Nature: {
        lum = fractalField(rng, w, h, params.roughness, 7);
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x)
                lum.at(0, y, x) = 0.5f + 0.5f * lum.at(0, y, x);
        }
        break;
      }
      case SceneKind::City: {
        lum = fractalField(rng, w, h, params.roughness * 0.6, 4);
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x)
                lum.at(0, y, x) = 0.5f + 0.35f * lum.at(0, y, x);
        }
        overlayRectangles(rng, lum, 24);
        break;
      }
      case SceneKind::Texture: {
        lum = fractalField(rng, w, h, params.roughness, 6);
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x)
                lum.at(0, y, x) = 0.5f + 0.3f * lum.at(0, y, x);
        }
        overlayStripes(rng, lum, 0.5);
        break;
      }
      case SceneKind::Gradient: {
        double gx = rng.uniform(-1.0, 1.0);
        double gy = rng.uniform(-1.0, 1.0);
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x) {
                double v = 0.5 + 0.4 * (gx * (double(x) / w - 0.5) +
                                        gy * (double(y) / h - 0.5));
                lum.at(0, y, x) = static_cast<float>(v);
            }
        }
        break;
      }
      case SceneKind::Portrait: {
        lum = fractalField(rng, w, h, params.roughness * 0.5, 4);
        for (int y = 0; y < h; ++y) {
            for (int x = 0; x < w; ++x)
                lum.at(0, y, x) = 0.45f + 0.2f * lum.at(0, y, x);
        }
        overlayBlobs(rng, lum, 4);
        break;
      }
    }

    // Low-frequency chroma offsets.
    Tensor3<float> chromaU = fractalField(rng, w, h, 0.35, 3);
    Tensor3<float> chromaV = fractalField(rng, w, h, 0.35, 3);

    Tensor3<float> img(3, h, w);
    for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) {
            float l = lum.at(0, y, x);
            float u = 0.15f * chromaU.at(0, y, x);
            float v = 0.15f * chromaV.at(0, y, x);
            float noise_r = 0.0f, noise_g = 0.0f, noise_b = 0.0f;
            if (params.noiseSigma > 0.0) {
                noise_r = static_cast<float>(
                    rng.gaussian(0.0, params.noiseSigma));
                noise_g = static_cast<float>(
                    rng.gaussian(0.0, params.noiseSigma));
                noise_b = static_cast<float>(
                    rng.gaussian(0.0, params.noiseSigma));
            }
            img.at(0, y, x) = clamp01(l + u + noise_r);
            img.at(1, y, x) = clamp01(l - 0.5f * u - 0.5f * v + noise_g);
            img.at(2, y, x) = clamp01(l + v + noise_b);
        }
    }
    return img;
}

SceneKind
sceneKindFromString(const std::string &name)
{
    if (name == "nature")
        return SceneKind::Nature;
    if (name == "city")
        return SceneKind::City;
    if (name == "texture")
        return SceneKind::Texture;
    if (name == "gradient")
        return SceneKind::Gradient;
    if (name == "portrait")
        return SceneKind::Portrait;
    throw std::invalid_argument("unknown scene kind: " + name);
}

std::string
to_string(SceneKind kind)
{
    switch (kind) {
      case SceneKind::Nature:
        return "nature";
      case SceneKind::City:
        return "city";
      case SceneKind::Texture:
        return "texture";
      case SceneKind::Gradient:
        return "gradient";
      case SceneKind::Portrait:
        return "portrait";
    }
    return "unknown";
}

double
meanAbsXDelta(const Tensor3<float> &img)
{
    double acc = 0.0;
    std::size_t n = 0;
    for (int c = 0; c < img.channels(); ++c) {
        for (int y = 0; y < img.height(); ++y) {
            for (int x = 1; x < img.width(); ++x) {
                acc += std::abs(img.at(c, y, x) - img.at(c, y, x - 1));
                ++n;
            }
        }
    }
    return n ? acc / static_cast<double>(n) : 0.0;
}

} // namespace diffy
