/**
 * @file
 * Deterministic frame sequences over the procedural scenes.
 *
 * The serving subsystem (DESIGN.md §13) consumes *streams* of frames,
 * not single images: the temporal-delta path pays only for what
 * changed between consecutive frames, so the generator must produce
 * realistic inter-frame redundancy. A FrameSequence renders one
 * oversized "world" image per stream and derives every frame from it
 * by a seeded camera model:
 *
 *  - Static : the same centered crop every frame (the temporal path's
 *             best case — all deltas are zero after the anchor);
 *  - Pan    : a triangle-wave camera translation, full rate in X and
 *             one third rate in Y (smooth motion, small deltas);
 *  - Jitter : per-frame hand-shake offsets drawn from a clamped
 *             Gaussian (uncorrelated motion, medium deltas);
 *  - Drift  : a static crop plus per-frame additive sensor noise
 *             (no motion but no exact repeats either — the worst case
 *             for naive frame-diffing, RNI15-like content).
 *
 * Determinism contract: frame(t) is a pure function of (params, t) —
 * no mutable state, so frames may be generated in any order, from any
 * thread, and regenerating frame t always yields the identical tensor.
 * This is what lets the serving tests replay a stream as the
 * per-frame reference oracle next to the temporal-delta path.
 */

#ifndef DIFFY_IMAGE_SEQUENCE_HH
#define DIFFY_IMAGE_SEQUENCE_HH

#include <cstdint>
#include <string>

#include "image/synth.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/** Camera model applied between consecutive frames of a sequence. */
enum class MotionKind
{
    Static, ///< identical crop every frame
    Pan,    ///< triangle-wave translation (smooth camera motion)
    Jitter, ///< per-frame Gaussian hand shake
    Drift   ///< static crop + per-frame additive sensor noise
};

/** Parse a MotionKind from its lowercase name; throws on unknown. */
MotionKind motionKindFromString(const std::string &name);

/** Lowercase name of a MotionKind. */
std::string to_string(MotionKind kind);

/** Parameters of one frame sequence. */
struct SequenceParams
{
    /** The underlying scene; width/height are the *frame* size. */
    SceneParams scene;
    MotionKind motion = MotionKind::Pan;
    /**
     * Peak camera excursion in pixels (Pan/Jitter) — the world image
     * is rendered with a margin of this many pixels on every side.
     * Must be >= 0; 0 degenerates every motion kind to Static framing.
     */
    int amplitude = 8;
    /** Seed of the camera path, independent of the scene seed. */
    std::uint64_t motionSeed = 1;
    /** Per-frame additive noise sigma for Drift, in [0,1] units. */
    double driftSigma = 0.02;

    /** @throws std::invalid_argument on out-of-range knobs. */
    void validate() const;
};

/**
 * A deterministic, random-access stream of frames. Construction
 * renders the world once; frame(t) is cheap (a crop, plus per-pixel
 * noise for Drift) and const, so one sequence can serve concurrent
 * readers.
 */
class FrameSequence
{
  public:
    /** @throws std::invalid_argument via SequenceParams::validate(). */
    explicit FrameSequence(const SequenceParams &params);

    const SequenceParams &params() const { return params_; }

    /** Frame height/width (the scene's, not the world's). */
    int height() const { return params_.scene.height; }
    int width() const { return params_.scene.width; }

    /**
     * Render frame @p t (3, H, W) in [0, 1]. Pure in (params, t):
     * any order, any thread, identical bytes on regeneration.
     */
    Tensor3<float> frame(std::int64_t t) const;

    /**
     * Camera offset of frame @p t inside the world image, in pixels
     * from the world's top-left corner. Exposed for tests.
     */
    struct Offset
    {
        int y = 0;
        int x = 0;
    };
    Offset offsetAt(std::int64_t t) const;

  private:
    SequenceParams params_;
    Tensor3<float> world_;
};

} // namespace diffy

#endif // DIFFY_IMAGE_SEQUENCE_HH
