/**
 * @file
 * Procedural image synthesis.
 *
 * The paper evaluates on standard photographic datasets (Berkeley,
 * McMaster, Kodak, RNI15, LIVE1, Set5+14, HD frames) which are not
 * redistributable here. This module substitutes them with procedural
 * generators that reproduce the image statistics Diffy depends on:
 *
 *  - an approximately 1/f (fractal) power spectrum, giving strong
 *    spatial correlation between adjacent pixels;
 *  - piecewise-smooth regions separated by sharp edges, giving the
 *    "deltas peak only at edges" structure of Fig 2;
 *  - optional sensor-style additive noise (RNI15-like content).
 *
 * Generators are deterministic given a seed, and expose a correlation
 * knob (octave roughness) so the core assumption can be stress-tested.
 */

#ifndef DIFFY_IMAGE_SYNTH_HH
#define DIFFY_IMAGE_SYNTH_HH

#include <cstdint>
#include <string>

#include "tensor/tensor.hh"

namespace diffy
{

/** Scene families produced by the synthesizer. */
enum class SceneKind
{
    Nature,   ///< fractal value-noise; forests / landscapes analogue
    City,     ///< piecewise-flat rectangles with hard edges
    Texture,  ///< quasi-periodic pattern plus fractal detail
    Gradient, ///< very smooth large-scale gradients (sky analogue)
    Portrait  ///< smooth blobs with a few contours (faces analogue)
};

/** Parameters controlling a synthetic scene. */
struct SceneParams
{
    SceneKind kind = SceneKind::Nature;
    int width = 128;
    int height = 128;
    std::uint64_t seed = 1;
    /** Spectral roughness in (0, 1]; higher = less correlated. */
    double roughness = 0.5;
    /** Additive Gaussian sensor noise sigma, in [0,1] value units. */
    double noiseSigma = 0.0;
};

/**
 * Render a 3-channel (RGB) image in [0, 1] value units.
 * Channels are correlated, as in natural photographs.
 */
Tensor3<float> renderScene(const SceneParams &params);

/** Parse a SceneKind from its lowercase name; throws on unknown names. */
SceneKind sceneKindFromString(const std::string &name);

/** Lowercase name of a SceneKind. */
std::string to_string(SceneKind kind);

/**
 * Average absolute difference between horizontally adjacent pixels,
 * a direct proxy for the spatial correlation Diffy exploits.
 */
double meanAbsXDelta(const Tensor3<float> &img);

} // namespace diffy

#endif // DIFFY_IMAGE_SYNTH_HH
