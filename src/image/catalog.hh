/**
 * @file
 * Dataset catalog mirroring the paper's Table II.
 *
 * Each catalog entry substitutes one of the paper's test sets with a
 * deterministic list of procedural scenes at matching resolutions
 * (see src/image/synth.hh for why this preserves the statistics the
 * experiments rely on). The sample counts are scaled down so every
 * experiment runs in minutes on one core; the `--samples` flag on the
 * bench binaries restores larger sweeps.
 */

#ifndef DIFFY_IMAGE_CATALOG_HH
#define DIFFY_IMAGE_CATALOG_HH

#include <string>
#include <vector>

#include "image/synth.hh"

namespace diffy
{

/** One Table II dataset substitute. */
struct DatasetSpec
{
    std::string name;        ///< paper dataset this stands in for
    std::string description; ///< what the paper used
    int paperSamples = 0;    ///< sample count reported in Table II
    std::vector<SceneParams> scenes; ///< our procedural substitutes
};

/**
 * The full catalog (CBSD68, McMaster, Kodak24, RNI15, LIVE1,
 * Set5+Set14, HD33). Scene resolutions match Table II; HD33 scenes
 * are generated at a crop resolution and marked for analytic scaling.
 *
 * @param samples_per_set number of procedural scenes per dataset
 * @param crop            spatial size at which scenes are rendered
 */
std::vector<DatasetSpec> datasetCatalog(int samples_per_set, int crop);

/**
 * A small default evaluation set: a few representative scenes drawn
 * from across the catalog, used by most bench binaries.
 */
std::vector<SceneParams> defaultEvalScenes(int count, int crop);

/**
 * The "Barbara"-analogue used by Fig 2: a textured scene with strong
 * periodic content and edges.
 */
SceneParams barbaraScene(int crop);

} // namespace diffy

#endif // DIFFY_IMAGE_CATALOG_HH
