#include "image/sequence.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hh"

namespace diffy
{

namespace
{

/**
 * Mix (seed, frame) into an independent per-frame seed stream —
 * same golden-ratio increment splitmix64 uses, so neighbouring
 * frames get uncorrelated generators.
 */
std::uint64_t
frameSeed(std::uint64_t seed, std::int64_t t)
{
    return seed ^ (0x9E3779B97F4A7C15ULL *
                   (static_cast<std::uint64_t>(t) + 0x51D5ULL));
}

/**
 * Triangle wave over phase with peak @p amp: ramps 0 -> 2*amp -> 0
 * with period 4*amp, covering every integer offset in [0, 2*amp].
 */
int
triangleWave(std::int64_t phase, int amp)
{
    if (amp <= 0)
        return 0;
    const std::int64_t period = 4LL * amp;
    std::int64_t p = phase % period;
    if (p < 0)
        p += period;
    return static_cast<int>(p <= 2 * amp ? p : period - p);
}

} // namespace

MotionKind
motionKindFromString(const std::string &name)
{
    if (name == "static")
        return MotionKind::Static;
    if (name == "pan")
        return MotionKind::Pan;
    if (name == "jitter")
        return MotionKind::Jitter;
    if (name == "drift")
        return MotionKind::Drift;
    throw std::invalid_argument("unknown motion kind: " + name);
}

std::string
to_string(MotionKind kind)
{
    switch (kind) {
      case MotionKind::Static:
        return "static";
      case MotionKind::Pan:
        return "pan";
      case MotionKind::Jitter:
        return "jitter";
      case MotionKind::Drift:
        return "drift";
    }
    return "?";
}

void
SequenceParams::validate() const
{
    if (scene.width <= 0 || scene.height <= 0)
        throw std::invalid_argument("FrameSequence: non-positive frame size");
    if (amplitude < 0)
        throw std::invalid_argument("FrameSequence: negative amplitude");
    if (driftSigma < 0.0)
        throw std::invalid_argument("FrameSequence: negative drift sigma");
}

FrameSequence::FrameSequence(const SequenceParams &params) : params_(params)
{
    params_.validate();
    SceneParams world = params_.scene;
    world.width += 2 * params_.amplitude;
    world.height += 2 * params_.amplitude;
    world_ = renderScene(world);
}

FrameSequence::Offset
FrameSequence::offsetAt(std::int64_t t) const
{
    const int amp = params_.amplitude;
    switch (params_.motion) {
      case MotionKind::Static:
      case MotionKind::Drift:
        return {amp, amp};
      case MotionKind::Pan:
        // X pans at full rate, Y at a third of it, so the camera
        // sweeps the margin diagonally without retracing its path
        // every period.
        return {triangleWave(t / 3, amp), triangleWave(t, amp)};
      case MotionKind::Jitter: {
        Rng rng(frameSeed(params_.motionSeed, t));
        auto shake = [&] {
            double v = rng.gaussian(0.0, amp / 2.0);
            int off = amp + static_cast<int>(std::lround(v));
            return std::clamp(off, 0, 2 * amp);
        };
        int y = shake();
        int x = shake();
        return {y, x};
      }
    }
    return {amp, amp};
}

Tensor3<float>
FrameSequence::frame(std::int64_t t) const
{
    const Offset off = offsetAt(t);
    Tensor3<float> img =
        world_.crop(off.y, off.x, params_.scene.height, params_.scene.width);
    if (params_.motion == MotionKind::Drift && params_.driftSigma > 0.0) {
        Rng rng(frameSeed(params_.motionSeed, t));
        float *p = img.data();
        for (std::size_t i = 0; i < img.size(); ++i) {
            double v = p[i] + rng.gaussian(0.0, params_.driftSigma);
            p[i] = static_cast<float>(std::clamp(v, 0.0, 1.0));
        }
    }
    return img;
}

} // namespace diffy
