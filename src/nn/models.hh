/**
 * @file
 * Model zoo: the five CI-DNNs of Table I plus the classification,
 * detection and segmentation models used in Fig 19.
 *
 * Topologies (depth, channel counts, kernel sizes, strides, dilation,
 * resolution divisors) follow the published architectures; weights are
 * synthesized (see DESIGN.md for why that preserves the studied
 * statistics). The Table I structural invariants — conv/ReLU layer
 * counts, max filter bytes, max per-layer filter bytes — are asserted
 * by the test suite against the paper's numbers.
 */

#ifndef DIFFY_NN_MODELS_HH
#define DIFFY_NN_MODELS_HH

#include <string>
#include <vector>

#include "nn/layer.hh"

namespace diffy
{

/** DnCNN: 20-layer residual Gaussian denoiser (Zhang et al.). */
NetworkSpec makeDnCnn();

/** FFDNet: denoiser on a 4x pixel-unshuffled input + noise map. */
NetworkSpec makeFfdNet();

/** IRCNN: 7-layer dilated-convolution denoiser prior. */
NetworkSpec makeIrCnn();

/** JointNet: joint demosaicking + denoising (Gharbi et al. style). */
NetworkSpec makeJointNet();

/** VDSR: 20-layer single-image super-resolution (Kim et al.). */
NetworkSpec makeVdsr();

/** All five Table I CI-DNNs, in the paper's order. */
std::vector<NetworkSpec> ciDnnSuite();

/** AlexNet convolutional layers (ImageNet classification). */
NetworkSpec makeAlexNetConv();

/** Network-in-Network convolutional layers. */
NetworkSpec makeNinConv();

/** VGG-19 convolutional layers. */
NetworkSpec makeVgg19Conv();

/** FCN semantic segmentation (VGG16 backbone + score layers). */
NetworkSpec makeFcnSeg();

/** YOLOv2 (Darknet-19 backbone) convolutional layers. */
NetworkSpec makeYoloV2Conv();

/** SegNet encoder-decoder convolutional layers. */
NetworkSpec makeSegNet();

/** The Fig 19 suite: classification + detection/segmentation models. */
std::vector<NetworkSpec> classificationSuite();

/**
 * MicroServe: a 3-layer, 8-channel per-pixel network sized for the
 * serving smoke paths (DESIGN.md §13). The Table I CI-DNNs cost
 * seconds per frame under the traced executor; this keeps their
 * all-3x3 per-pixel structure at a cost ctest and the CI saturation
 * smoke can afford. Not part of the paper's suites.
 */
NetworkSpec makeMicroServe();

/** Look up any zoo model by name; throws on unknown names. */
NetworkSpec makeNetwork(const std::string &name);

/** Names of every model in the zoo. */
std::vector<std::string> zooNames();

} // namespace diffy

#endif // DIFFY_NN_MODELS_HH
