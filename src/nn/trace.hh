/**
 * @file
 * Layer traces: the quantized value streams the accelerator models
 * consume.
 *
 * A LayerTrace captures, for one convolutional layer of one inference,
 * everything the cycle-level simulators and the analysis/compression
 * modules need: the quantized input feature map (imap), the quantized
 * weights, and the layer descriptor. Traces are serializable so bench
 * binaries can share a cache of forward passes.
 */

#ifndef DIFFY_NN_TRACE_HH
#define DIFFY_NN_TRACE_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "nn/layer.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/** Captured state of one layer execution. */
struct LayerTrace
{
    ConvLayerSpec spec;
    /** Quantized input activations (C, H, W), pre-padding. */
    TensorI16 imap;
    /** Fractional bits of the imap fixed-point format. */
    int imapFracBits = 0;
    /** Quantized filter bank (K, C, Kh, Kw). */
    FilterBankI16 weights;
    /** Fractional bits of the weight fixed-point format. */
    int weightFracBits = 0;

    /** Spatial output height for this trace's imap. */
    int outHeight() const { return spec.outDim(imap.height()); }
    /** Spatial output width for this trace's imap. */
    int outWidth() const { return spec.outDim(imap.width()); }
    /** Total output activations for this trace's imap. */
    std::size_t outCount() const
    {
        return static_cast<std::size_t>(spec.outChannels) * outHeight() *
               outWidth();
    }
    /** Fraction of nonzero quantized weights. */
    double weightDensity() const;
};

/** Captured state of one full-network inference. */
struct NetworkTrace
{
    std::string network;
    NetClass netClass = NetClass::CiDnn;
    /** Spatial size of the frame this trace was captured on. */
    int frameHeight = 0;
    int frameWidth = 0;
    std::vector<LayerTrace> layers;
};

/** Serialize a trace to a binary stream (format versioned). */
void saveTrace(const NetworkTrace &trace, std::ostream &os);

/**
 * Deserialize a trace written by saveTrace().
 * @throws std::runtime_error on format mismatch or truncation.
 */
NetworkTrace loadTrace(std::istream &is);

} // namespace diffy

#endif // DIFFY_NN_TRACE_HH
