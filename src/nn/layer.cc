#include "nn/layer.hh"

namespace diffy
{

int
NetworkSpec::reluLayerCount() const
{
    int count = 0;
    for (const auto &layer : layers)
        count += layer.relu ? 1 : 0;
    return count;
}

std::size_t
NetworkSpec::maxFilterBytes() const
{
    std::size_t best = 0;
    for (const auto &layer : layers)
        best = std::max(best, layer.filterBytes());
    return best;
}

std::size_t
NetworkSpec::maxLayerWeightBytes() const
{
    std::size_t best = 0;
    for (const auto &layer : layers)
        best = std::max(best, layer.layerWeightBytes());
    return best;
}

std::size_t
NetworkSpec::totalWeightBytes() const
{
    std::size_t total = 0;
    for (const auto &layer : layers)
        total += layer.layerWeightBytes();
    return total;
}

double
NetworkSpec::macsPerFrame(int frame_h, int frame_w) const
{
    double total = 0.0;
    for (const auto &layer : layers) {
        int in_h = frame_h / layer.resolutionDivisor;
        int in_w = frame_w / layer.resolutionDivisor;
        double outputs = static_cast<double>(layer.outDim(in_h)) *
                         layer.outDim(in_w) * layer.outChannels;
        total += outputs * static_cast<double>(layer.macsPerOutput());
    }
    return total;
}

} // namespace diffy
