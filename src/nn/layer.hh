/**
 * @file
 * Convolutional layer and network descriptors.
 *
 * Only convolutional (+ReLU) layers are modeled: the CI-DNNs of the
 * paper are fully convolutional, and for the classification models of
 * Fig 19 only the convolutional layers are accelerated (as in the
 * paper's methodology). Spatial resampling between layers (pooling /
 * pixel-shuffle) is expressed via the layer's input scale factor.
 */

#ifndef DIFFY_NN_LAYER_HH
#define DIFFY_NN_LAYER_HH

#include <string>
#include <vector>

#include "tensor/tensor.hh"

namespace diffy
{

/** One convolutional layer. */
struct ConvLayerSpec
{
    std::string name;
    int inChannels = 1;
    int outChannels = 1;
    int kernel = 3;   ///< square kernels throughout the studied models
    int stride = 1;
    int dilation = 1; ///< IRCNN uses dilated 3x3 kernels
    bool relu = true;
    /**
     * Resolution divisor of this layer's input relative to the network
     * input (e.g. 2 after one 2x2 pooling step, or for FFDNet's
     * pixel-unshuffled operation). Used when scaling work to a target
     * frame resolution.
     */
    int resolutionDivisor = 1;

    /** Effective receptive extent of the (possibly dilated) kernel. */
    int effectiveKernel() const { return dilation * (kernel - 1) + 1; }

    /** Same-padding amount used by all studied models. */
    int samePad() const { return (effectiveKernel() - 1) / 2; }

    /** Output spatial size for an input of the given size. */
    int outDim(int in) const
    {
        return (in + 2 * samePad() - effectiveKernel()) / stride + 1;
    }

    /** Multiply-accumulate operations per output activation. */
    std::size_t macsPerOutput() const
    {
        return static_cast<std::size_t>(inChannels) * kernel * kernel;
    }

    /** Weight footprint of one filter in bytes at 16-bit precision. */
    std::size_t filterBytes() const
    {
        return static_cast<std::size_t>(inChannels) * kernel * kernel * 2;
    }

    /** Weight footprint of the whole layer in bytes. */
    std::size_t layerWeightBytes() const
    {
        return filterBytes() * static_cast<std::size_t>(outChannels);
    }
};

/** Network categories used to group results as the paper does. */
enum class NetClass
{
    CiDnn,          ///< per-pixel computational imaging (Table I)
    Classification, ///< ImageNet-style classification
    Detection       ///< detection / segmentation (Fig 19 extras)
};

/** A whole (sequential) network. */
struct NetworkSpec
{
    std::string name;
    NetClass netClass = NetClass::CiDnn;
    /** Channels of the tensor fed to the first conv layer. */
    int inputChannels = 3;
    /**
     * Native input resolution for classification models; CI-DNNs are
     * resolution-agnostic and use 0 here.
     */
    int nativeResolution = 0;
    std::vector<ConvLayerSpec> layers;

    int convLayerCount() const { return static_cast<int>(layers.size()); }
    int reluLayerCount() const;

    /** Largest single filter across layers, bytes (Table I row 3). */
    std::size_t maxFilterBytes() const;

    /** Largest per-layer total filter footprint (Table I row 4). */
    std::size_t maxLayerWeightBytes() const;

    /** Total weight footprint across all layers, bytes. */
    std::size_t totalWeightBytes() const;

    /** MACs needed for one frame of the given full resolution. */
    double macsPerFrame(int frame_h, int frame_w) const;
};

} // namespace diffy

#endif // DIFFY_NN_LAYER_HH
