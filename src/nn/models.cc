#include "nn/models.hh"

#include <stdexcept>

namespace diffy
{

namespace
{

ConvLayerSpec
conv(std::string name, int in_c, int out_c, int kernel, bool relu,
     int stride = 1, int dilation = 1, int res_div = 1)
{
    ConvLayerSpec l;
    l.name = std::move(name);
    l.inChannels = in_c;
    l.outChannels = out_c;
    l.kernel = kernel;
    l.stride = stride;
    l.dilation = dilation;
    l.relu = relu;
    l.resolutionDivisor = res_div;
    return l;
}

std::string
layerName(const std::string &prefix, int index)
{
    return prefix + "_" + std::to_string(index);
}

} // namespace

NetworkSpec
makeDnCnn()
{
    // 20 conv layers: 3->64, 18x 64->64, 64->3; ReLU on all but the
    // last (19 ReLU layers, matching Table I).
    NetworkSpec net;
    net.name = "DnCNN";
    net.netClass = NetClass::CiDnn;
    net.inputChannels = 3;
    net.layers.push_back(conv("conv_1", 3, 64, 3, true));
    for (int i = 2; i <= 19; ++i)
        net.layers.push_back(conv(layerName("conv", i), 64, 64, 3, true));
    net.layers.push_back(conv("conv_20", 64, 3, 3, false));
    return net;
}

NetworkSpec
makeFfdNet()
{
    // FFDNet operates on a 2x2 pixel-unshuffled input (12 channels)
    // concatenated with 3 noise-level channels = 15-channel input at
    // half resolution; 96 feature channels; 12-channel output that is
    // re-shuffled to full resolution. 10 conv layers, 9 ReLU.
    NetworkSpec net;
    net.name = "FFDNet";
    net.netClass = NetClass::CiDnn;
    net.inputChannels = 15;
    net.layers.push_back(conv("conv_1", 15, 96, 3, true, 1, 1, 2));
    for (int i = 2; i <= 9; ++i) {
        net.layers.push_back(
            conv(layerName("conv", i), 96, 96, 3, true, 1, 1, 2));
    }
    net.layers.push_back(conv("conv_10", 96, 12, 3, false, 1, 1, 2));
    return net;
}

NetworkSpec
makeIrCnn()
{
    // 7 dilated conv layers (dilations 1,2,3,4,3,2,1), 64 channels,
    // 6 ReLU layers.
    NetworkSpec net;
    net.name = "IRCNN";
    net.netClass = NetClass::CiDnn;
    net.inputChannels = 3;
    const int dilations[7] = {1, 2, 3, 4, 3, 2, 1};
    net.layers.push_back(conv("conv_1", 3, 64, 3, true, 1, dilations[0]));
    for (int i = 2; i <= 6; ++i) {
        net.layers.push_back(conv(layerName("conv", i), 64, 64, 3, true, 1,
                                  dilations[i - 1]));
    }
    net.layers.push_back(conv("conv_7", 64, 3, 3, false, 1, dilations[6]));
    return net;
}

NetworkSpec
makeJointNet()
{
    // Joint demosaicking + denoising in the style of Gharbi et al.:
    // the Bayer mosaic is packed 2x2 into 4 channels processed at half
    // resolution, a 128-channel expansion layer feeds a pixel-shuffle
    // back to full resolution (32 channels + 3 mosaic channels), and a
    // short full-resolution head produces RGB. 19 conv layers, 16 ReLU,
    // max per-layer weights = 128 x 1.13KB = 144KB (Table I).
    NetworkSpec net;
    net.name = "JointNet";
    net.netClass = NetClass::CiDnn;
    net.inputChannels = 4;
    net.layers.push_back(conv("conv_1", 4, 64, 3, true, 1, 1, 2));
    for (int i = 2; i <= 15; ++i) {
        net.layers.push_back(
            conv(layerName("conv", i), 64, 64, 3, true, 1, 1, 2));
    }
    net.layers.push_back(conv("conv_16", 64, 128, 3, true, 1, 1, 2));
    // Full-resolution head after the pixel shuffle (128/4 + 3 = 35 ch).
    net.layers.push_back(conv("conv_17", 35, 64, 3, false));
    net.layers.push_back(conv("conv_18", 64, 64, 3, false));
    net.layers.push_back(conv("conv_19", 64, 3, 3, false));
    return net;
}

NetworkSpec
makeVdsr()
{
    // 20-layer residual super-resolution on the bicubic-upscaled
    // luminance plane: 1->64, 18x 64->64, 64->1; 19 ReLU.
    NetworkSpec net;
    net.name = "VDSR";
    net.netClass = NetClass::CiDnn;
    net.inputChannels = 1;
    net.layers.push_back(conv("conv_1", 1, 64, 3, true));
    for (int i = 2; i <= 19; ++i)
        net.layers.push_back(conv(layerName("conv", i), 64, 64, 3, true));
    net.layers.push_back(conv("conv_20", 64, 1, 3, false));
    return net;
}

std::vector<NetworkSpec>
ciDnnSuite()
{
    return {makeDnCnn(), makeFfdNet(), makeIrCnn(), makeJointNet(),
            makeVdsr()};
}

NetworkSpec
makeAlexNetConv()
{
    NetworkSpec net;
    net.name = "AlexNet";
    net.netClass = NetClass::Classification;
    net.inputChannels = 3;
    net.nativeResolution = 224;
    net.layers.push_back(conv("conv1", 3, 96, 11, true, 4, 1, 1));
    net.layers.push_back(conv("conv2", 96, 256, 5, true, 1, 1, 8));
    net.layers.push_back(conv("conv3", 256, 384, 3, true, 1, 1, 16));
    net.layers.push_back(conv("conv4", 384, 384, 3, true, 1, 1, 16));
    net.layers.push_back(conv("conv5", 384, 256, 3, true, 1, 1, 16));
    return net;
}

NetworkSpec
makeNinConv()
{
    NetworkSpec net;
    net.name = "NiN";
    net.netClass = NetClass::Classification;
    net.inputChannels = 3;
    net.nativeResolution = 224;
    net.layers.push_back(conv("conv1", 3, 96, 11, true, 4));
    net.layers.push_back(conv("cccp1", 96, 96, 1, true, 1, 1, 4));
    net.layers.push_back(conv("cccp2", 96, 96, 1, true, 1, 1, 4));
    net.layers.push_back(conv("conv2", 96, 256, 5, true, 1, 1, 8));
    net.layers.push_back(conv("cccp3", 256, 256, 1, true, 1, 1, 8));
    net.layers.push_back(conv("cccp4", 256, 256, 1, true, 1, 1, 8));
    net.layers.push_back(conv("conv3", 256, 384, 3, true, 1, 1, 16));
    net.layers.push_back(conv("cccp5", 384, 384, 1, true, 1, 1, 16));
    net.layers.push_back(conv("cccp6", 384, 384, 1, true, 1, 1, 16));
    net.layers.push_back(conv("conv4", 384, 1024, 3, true, 1, 1, 32));
    net.layers.push_back(conv("cccp7", 1024, 1024, 1, true, 1, 1, 32));
    net.layers.push_back(conv("cccp8", 1024, 1000, 1, true, 1, 1, 32));
    return net;
}

NetworkSpec
makeVgg19Conv()
{
    NetworkSpec net;
    net.name = "VGG19";
    net.netClass = NetClass::Classification;
    net.inputChannels = 3;
    net.nativeResolution = 224;
    struct Stage { int channels; int layers; int divisor; };
    const Stage stages[5] = {
        {64, 2, 1}, {128, 2, 2}, {256, 4, 4}, {512, 4, 8}, {512, 4, 16}};
    int in_c = 3;
    int idx = 1;
    for (const auto &s : stages) {
        for (int i = 0; i < s.layers; ++i) {
            net.layers.push_back(conv(layerName("conv", idx++), in_c,
                                      s.channels, 3, true, 1, 1, s.divisor));
            in_c = s.channels;
        }
    }
    return net;
}

NetworkSpec
makeFcnSeg()
{
    // FCN-8s style semantic segmentation: VGG16 backbone + score conv.
    NetworkSpec net = makeVgg19Conv();
    net.name = "FCN_Seg";
    net.netClass = NetClass::Detection;
    net.nativeResolution = 384;
    // VGG16 backbone: drop one conv from each of the three deep stages.
    std::vector<ConvLayerSpec> backbone;
    int stage_counts[5] = {2, 2, 3, 3, 3};
    int cursor = 0;
    int stage_sizes[5] = {2, 2, 4, 4, 4};
    for (int s = 0; s < 5; ++s) {
        for (int i = 0; i < stage_counts[s]; ++i)
            backbone.push_back(net.layers[cursor + i]);
        cursor += stage_sizes[s];
    }
    net.layers = std::move(backbone);
    net.layers.push_back(conv("score", 512, 21, 1, false, 1, 1, 32));
    return net;
}

NetworkSpec
makeYoloV2Conv()
{
    // Darknet-19 backbone + detection head at 416x416.
    NetworkSpec net;
    net.name = "YOLO_V2";
    net.netClass = NetClass::Detection;
    net.inputChannels = 3;
    net.nativeResolution = 416;
    auto block = [&](int idx, int in_c, int out_c, int k, int div) {
        net.layers.push_back(
            conv(layerName("conv", idx), in_c, out_c, k, true, 1, 1, div));
    };
    block(1, 3, 32, 3, 1);
    block(2, 32, 64, 3, 2);
    block(3, 64, 128, 3, 4);
    block(4, 128, 64, 1, 4);
    block(5, 64, 128, 3, 4);
    block(6, 128, 256, 3, 8);
    block(7, 256, 128, 1, 8);
    block(8, 128, 256, 3, 8);
    block(9, 256, 512, 3, 16);
    block(10, 512, 256, 1, 16);
    block(11, 256, 512, 3, 16);
    block(12, 512, 256, 1, 16);
    block(13, 256, 512, 3, 16);
    block(14, 512, 1024, 3, 32);
    block(15, 1024, 512, 1, 32);
    block(16, 512, 1024, 3, 32);
    block(17, 1024, 512, 1, 32);
    block(18, 512, 1024, 3, 32);
    block(19, 1024, 1024, 3, 32);
    block(20, 1024, 1024, 3, 32);
    net.layers.push_back(conv("detect", 1024, 425, 1, false, 1, 1, 32));
    return net;
}

NetworkSpec
makeSegNet()
{
    // VGG16 encoder + mirrored decoder.
    NetworkSpec net;
    net.name = "SegNet";
    net.netClass = NetClass::Detection;
    net.inputChannels = 3;
    net.nativeResolution = 360;
    struct Stage { int channels; int layers; int divisor; };
    const Stage enc[5] = {
        {64, 2, 1}, {128, 2, 2}, {256, 3, 4}, {512, 3, 8}, {512, 3, 16}};
    int in_c = 3;
    int idx = 1;
    for (const auto &s : enc) {
        for (int i = 0; i < s.layers; ++i) {
            net.layers.push_back(conv(layerName("enc", idx++), in_c,
                                      s.channels, 3, true, 1, 1, s.divisor));
            in_c = s.channels;
        }
    }
    const Stage dec[5] = {
        {512, 3, 16}, {256, 3, 8}, {128, 2, 4}, {64, 2, 2}, {64, 1, 1}};
    idx = 1;
    for (const auto &s : dec) {
        for (int i = 0; i < s.layers; ++i) {
            bool last_stage = (&s == &dec[4]) && (i == s.layers - 1);
            int out_c = s.channels;
            net.layers.push_back(conv(layerName("dec", idx++), in_c, out_c,
                                      3, !last_stage, 1, 1, s.divisor));
            in_c = out_c;
        }
    }
    net.layers.push_back(conv("classify", 64, 12, 3, false, 1, 1, 1));
    return net;
}

std::vector<NetworkSpec>
classificationSuite()
{
    return {makeAlexNetConv(), makeNinConv(), makeVgg19Conv(), makeFcnSeg(),
            makeYoloV2Conv(), makeSegNet()};
}

NetworkSpec
makeMicroServe()
{
    // Same per-pixel, all-3x3 shape as the CI-DNNs, shrunk to a depth
    // and width the serving smoke paths can run per-frame in ctest.
    NetworkSpec net;
    net.name = "MicroServe";
    net.netClass = NetClass::CiDnn;
    net.inputChannels = 3;
    net.layers.push_back(conv("conv_1", 3, 8, 3, true));
    net.layers.push_back(conv("conv_2", 8, 8, 3, true));
    net.layers.push_back(conv("conv_3", 8, 3, 3, false));
    return net;
}

NetworkSpec
makeNetwork(const std::string &name)
{
    for (const auto &net : ciDnnSuite()) {
        if (net.name == name)
            return net;
    }
    for (const auto &net : classificationSuite()) {
        if (net.name == name)
            return net;
    }
    if (name == "MicroServe")
        return makeMicroServe();
    throw std::invalid_argument("unknown network: " + name);
}

std::vector<std::string>
zooNames()
{
    std::vector<std::string> names;
    for (const auto &net : ciDnnSuite())
        names.push_back(net.name);
    for (const auto &net : classificationSuite())
        names.push_back(net.name);
    names.push_back("MicroServe");
    return names;
}

} // namespace diffy
