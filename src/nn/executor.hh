/**
 * @file
 * Quantized forward-pass executor with trace capture.
 *
 * The executor synthesizes He-initialized weights for a NetworkSpec,
 * builds the network-specific input encoding from an RGB scene
 * (luminance for VDSR, Bayer pack for JointNet, 2x2 pixel-unshuffle +
 * noise channels for FFDNet), runs the forward pass in float, and
 * quantizes each layer's activations to 16-bit fixed point — producing
 * the value streams (LayerTraces) that all accelerator models consume.
 *
 * Spatial resampling between layers (max pooling on the way down,
 * pixel shuffle on the way up) is derived from each layer's
 * resolutionDivisor so classification backbones and JointNet's
 * two-resolution pipeline run end to end.
 */

#ifndef DIFFY_NN_EXECUTOR_HH
#define DIFFY_NN_EXECUTOR_HH

#include <cstdint>

#include "nn/layer.hh"
#include "nn/trace.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/** Options controlling a traced forward pass. */
struct ExecutorOptions
{
    /** Seed namespace for the synthetic weights. */
    std::uint64_t weightSeed = 0xD1FF;
    /**
     * Activation quantization quality bound: the largest relative RMS
     * quantization error tolerated per layer. The executor picks the
     * coarsest fixed-point step meeting it, mirroring the paper's
     * quality-preserving precision profiling (Table III): activations
     * end up carrying ~8-12 significant bits rather than all 16.
     */
    double activationRelError = 0.01;
    /** Fraction of weights to randomly zero (SCNN sparsity studies). */
    double weightSparsity = 0.0;
    /** Seed for the sparsification mask. */
    std::uint64_t sparsitySeed = 0x5C44;
};

/**
 * Build the first-layer input tensor for @p net from an RGB scene in
 * [0, 1] (3, H, W). Handles the per-network input encodings described
 * in the file comment. H and W must be even for the half-resolution
 * encodings.
 */
Tensor3<float> buildNetworkInput(const NetworkSpec &net,
                                 const Tensor3<float> &rgb);

/** Synthesize the quantized filter bank for one layer. */
FilterBankI16 synthesizeWeights(const NetworkSpec &net,
                                const ConvLayerSpec &layer,
                                const ExecutorOptions &opts,
                                int *frac_bits_out);

/**
 * Drop the calling thread's memoized prepared (synthesized +
 * dequantized) weights. Registered with the thread-cache registry
 * (common/cache_registry.hh); exposed for tests that need a cold
 * cache.
 */
void clearPreparedWeightsCache();

/**
 * Run the full network on @p rgb and capture a per-layer trace.
 * The scene's resolution bounds the trace resolution; totals are
 * scaled analytically to larger frames by the simulators.
 */
NetworkTrace runNetwork(const NetworkSpec &net, const Tensor3<float> &rgb,
                        const ExecutorOptions &opts = {});

/**
 * Reference direct convolution in float (same-padding, stride,
 * dilation). Used by the executor and as the golden model for the
 * fixed-point differential-convolution tests.
 */
Tensor3<float> convolve(const Tensor3<float> &input,
                        const Tensor4<float> &weights,
                        int stride, int dilation);

/** 2x2 (or larger) max pooling by an integer factor. */
Tensor3<float> maxPool(const Tensor3<float> &input, int factor);

/**
 * Pixel shuffle: (C*r^2, H, W) -> (C, H*r, W*r). The channel count
 * must be divisible by r^2.
 */
Tensor3<float> pixelShuffle(const Tensor3<float> &input, int factor);

} // namespace diffy

#endif // DIFFY_NN_EXECUTOR_HH
