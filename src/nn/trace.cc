#include "nn/trace.hh"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "common/bitops.hh"

namespace diffy
{

double
LayerTrace::weightDensity()
 const
{
    if (weights.empty())
        return 0.0;
    std::size_t nonzero = 0;
    const std::int16_t *data = weights.data();
    for (std::size_t i = 0; i < weights.size(); ++i)
        nonzero += data[i] != 0;
    return static_cast<double>(nonzero) /
           static_cast<double>(weights.size());
}

namespace
{

/**
 * v2 bumped the magic when the CRC-framed envelope was introduced:
 * legacy footer-less files now fail the magic check, land on the
 * cache's corrupt-entry path, and are quarantined + regenerated —
 * exactly the recovery a stale format should get.
 */
constexpr std::uint32_t kTraceMagic = 0xD1FF7002;

/**
 * Ceiling on the declared body size of a trace file. The traces this
 * repo generates are tens of megabytes at most; the cap turns a
 * corrupted length field into a clean error instead of a
 * multi-gigabyte allocation.
 */
constexpr std::uint64_t kMaxTraceBytes = std::uint64_t{1} << 30;

template <typename T>
void
writePod(std::ostream &os, const T &v)
{
    os.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::istream &is)
{
    T v{};
    is.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!is)
        throw std::runtime_error("trace stream truncated");
    return v;
}

void
writeString(std::ostream &os, const std::string &s)
{
    writePod(os, static_cast<std::uint32_t>(s.size()));
    os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
readString(std::istream &is)
{
    auto n = readPod<std::uint32_t>(is);
    std::string s(n, '\0');
    is.read(s.data(), n);
    if (!is)
        throw std::runtime_error("trace stream truncated");
    return s;
}

void
writeI16Block(std::ostream &os, const std::int16_t *data, std::size_t n)
{
    os.write(reinterpret_cast<const char *>(data),
             static_cast<std::streamsize>(n * sizeof(std::int16_t)));
}

void
readI16Block(std::istream &is, std::int16_t *data, std::size_t n)
{
    is.read(reinterpret_cast<char *>(data),
            static_cast<std::streamsize>(n * sizeof(std::int16_t)));
    if (!is)
        throw std::runtime_error("trace stream truncated");
}

void
saveTraceBody(const NetworkTrace &trace, std::ostream &os)
{
    writeString(os, trace.network);
    writePod(os, static_cast<std::int32_t>(trace.netClass));
    writePod(os, static_cast<std::int32_t>(trace.frameHeight));
    writePod(os, static_cast<std::int32_t>(trace.frameWidth));
    writePod(os, static_cast<std::uint32_t>(trace.layers.size()));
    for (const auto &layer : trace.layers) {
        writeString(os, layer.spec.name);
        writePod(os, static_cast<std::int32_t>(layer.spec.inChannels));
        writePod(os, static_cast<std::int32_t>(layer.spec.outChannels));
        writePod(os, static_cast<std::int32_t>(layer.spec.kernel));
        writePod(os, static_cast<std::int32_t>(layer.spec.stride));
        writePod(os, static_cast<std::int32_t>(layer.spec.dilation));
        writePod(os, static_cast<std::int32_t>(layer.spec.relu ? 1 : 0));
        writePod(os,
                 static_cast<std::int32_t>(layer.spec.resolutionDivisor));
        writePod(os, static_cast<std::int32_t>(layer.imapFracBits));
        writePod(os, static_cast<std::int32_t>(layer.weightFracBits));
        const auto &is3 = layer.imap.shape();
        writePod(os, static_cast<std::int32_t>(is3.c));
        writePod(os, static_cast<std::int32_t>(is3.h));
        writePod(os, static_cast<std::int32_t>(is3.w));
        writeI16Block(os, layer.imap.data(), layer.imap.size());
        const auto &ws = layer.weights.shape();
        writePod(os, static_cast<std::int32_t>(ws.k));
        writePod(os, static_cast<std::int32_t>(ws.c));
        writePod(os, static_cast<std::int32_t>(ws.h));
        writePod(os, static_cast<std::int32_t>(ws.w));
        writeI16Block(os, layer.weights.data(), layer.weights.size());
    }
}

NetworkTrace
loadTraceBody(std::istream &is)
{
    NetworkTrace trace;
    trace.network = readString(is);
    trace.netClass = static_cast<NetClass>(readPod<std::int32_t>(is));
    trace.frameHeight = readPod<std::int32_t>(is);
    trace.frameWidth = readPod<std::int32_t>(is);
    auto layer_count = readPod<std::uint32_t>(is);
    trace.layers.resize(layer_count);
    for (auto &layer : trace.layers) {
        layer.spec.name = readString(is);
        layer.spec.inChannels = readPod<std::int32_t>(is);
        layer.spec.outChannels = readPod<std::int32_t>(is);
        layer.spec.kernel = readPod<std::int32_t>(is);
        layer.spec.stride = readPod<std::int32_t>(is);
        layer.spec.dilation = readPod<std::int32_t>(is);
        layer.spec.relu = readPod<std::int32_t>(is) != 0;
        layer.spec.resolutionDivisor = readPod<std::int32_t>(is);
        layer.imapFracBits = readPod<std::int32_t>(is);
        layer.weightFracBits = readPod<std::int32_t>(is);
        int ic = readPod<std::int32_t>(is);
        int ih = readPod<std::int32_t>(is);
        int iw = readPod<std::int32_t>(is);
        layer.imap = TensorI16(ic, ih, iw);
        readI16Block(is, layer.imap.data(), layer.imap.size());
        int wk = readPod<std::int32_t>(is);
        int wc = readPod<std::int32_t>(is);
        int wh = readPod<std::int32_t>(is);
        int ww = readPod<std::int32_t>(is);
        layer.weights = FilterBankI16(wk, wc, wh, ww);
        readI16Block(is, layer.weights.data(), layer.weights.size());
    }
    return trace;
}

} // namespace

void
saveTrace(const NetworkTrace &trace, std::ostream &os)
{
    // CRC-framed envelope: magic, u64 body length, body, u32
    // crc32c(body). The body is serialized to memory first so the
    // checksum covers exactly the bytes on the wire.
    std::ostringstream body(std::ios::binary);
    saveTraceBody(trace, body);
    const std::string bytes = body.str();
    writePod(os, kTraceMagic);
    writePod(os, static_cast<std::uint64_t>(bytes.size()));
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    writePod(os, crc32c(bytes.data(), bytes.size()));
}

NetworkTrace
loadTrace(std::istream &is)
{
    if (readPod<std::uint32_t>(is) != kTraceMagic)
        throw std::runtime_error("bad trace magic");
    auto byteCount = readPod<std::uint64_t>(is);
    if (byteCount > kMaxTraceBytes)
        throw std::runtime_error("trace declares an absurd body size");
    // Buffer and verify the whole body *before* parsing: a corrupt
    // length field inside the body can otherwise drive a huge
    // allocation, and a flipped tensor byte would silently smear into
    // downstream sims.
    std::string bytes(static_cast<std::size_t>(byteCount), '\0');
    is.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!is)
        throw std::runtime_error("trace stream truncated");
    auto expected = readPod<std::uint32_t>(is);
    if (crc32c(bytes.data(), bytes.size()) != expected)
        throw std::runtime_error(
            "trace checksum mismatch (detected corruption)");
    std::istringstream body(bytes, std::ios::binary);
    return loadTraceBody(body);
}

} // namespace diffy
