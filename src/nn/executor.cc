#include "nn/executor.hh"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_map>

#include "common/cache_registry.hh"
#include "common/fixed_point.hh"
#include "common/rng.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace diffy
{

Tensor3<float>
convolve(const Tensor3<float> &input, const Tensor4<float> &weights,
         int stride, int dilation)
{
    const int in_c = input.channels();
    const int in_h = input.height();
    const int in_w = input.width();
    const int k = weights.height();
    if (weights.channels() != in_c)
        throw std::invalid_argument("convolve: channel mismatch");
    const int eff_k = dilation * (k - 1) + 1;
    const int pad = (eff_k - 1) / 2;
    const int out_h = (in_h + 2 * pad - eff_k) / stride + 1;
    const int out_w = (in_w + 2 * pad - eff_k) / stride + 1;

    Tensor3<float> out(weights.filters(), out_h, out_w,
                       scratchAlloc<float>(), 0.0f);
    for (int f = 0; f < weights.filters(); ++f) {
        float *out_base = out.data() +
                          static_cast<std::size_t>(f) * out_h * out_w;
        for (int c = 0; c < in_c; ++c) {
            const float *in_base = input.data() +
                                   static_cast<std::size_t>(c) * in_h * in_w;
            for (int ky = 0; ky < k; ++ky) {
                for (int kx = 0; kx < k; ++kx) {
                    float wv = weights.at(f, c, ky, kx);
                    if (wv == 0.0f)
                        continue;
                    int dy = ky * dilation - pad;
                    int dx = kx * dilation - pad;
                    for (int oy = 0; oy < out_h; ++oy) {
                        int iy = oy * stride + dy;
                        if (iy < 0 || iy >= in_h)
                            continue;
                        const float *in_row = in_base +
                            static_cast<std::size_t>(iy) * in_w;
                        float *out_row = out_base +
                            static_cast<std::size_t>(oy) * out_w;
                        // Valid ox range: 0 <= ox*stride + dx < in_w.
                        int ox_lo = 0;
                        if (dx < 0)
                            ox_lo = (-dx + stride - 1) / stride;
                        const int ox_hi =
                            std::min(out_w, (in_w - 1 - dx) / stride + 1);
                        if (stride == 1) {
                            const float *ip = in_row + dx + ox_lo;
                            float *op = out_row + ox_lo;
                            for (int ox = ox_lo; ox < ox_hi; ++ox)
                                *op++ += wv * *ip++;
                        } else {
                            for (int ox = ox_lo; ox < ox_hi; ++ox) {
                                out_row[ox] +=
                                    wv * in_row[ox * stride + dx];
                            }
                        }
                    }
                }
            }
        }
    }
    return out;
}

Tensor3<float>
maxPool(const Tensor3<float> &input, int factor)
{
    const int c = input.channels();
    const int out_h = input.height() / factor;
    const int out_w = input.width() / factor;
    Tensor3<float> out(c, out_h, out_w, scratchAlloc<float>());
    for (int ch = 0; ch < c; ++ch) {
        for (int y = 0; y < out_h; ++y) {
            for (int x = 0; x < out_w; ++x) {
                float best = input.at(ch, y * factor, x * factor);
                for (int dy = 0; dy < factor; ++dy) {
                    for (int dx = 0; dx < factor; ++dx) {
                        float v =
                            input.at(ch, y * factor + dy, x * factor + dx);
                        if (v > best)
                            best = v;
                    }
                }
                out.at(ch, y, x) = best;
            }
        }
    }
    return out;
}

Tensor3<float>
pixelShuffle(const Tensor3<float> &input, int factor)
{
    const int r2 = factor * factor;
    if (input.channels() % r2 != 0)
        throw std::invalid_argument("pixelShuffle: channels % r^2 != 0");
    const int out_c = input.channels() / r2;
    const int out_h = input.height() * factor;
    const int out_w = input.width() * factor;
    Tensor3<float> out(out_c, out_h, out_w, scratchAlloc<float>());
    for (int c = 0; c < out_c; ++c) {
        for (int y = 0; y < out_h; ++y) {
            for (int x = 0; x < out_w; ++x) {
                int sub = (y % factor) * factor + (x % factor);
                out.at(c, y, x) =
                    input.at(c * r2 + sub, y / factor, x / factor);
            }
        }
    }
    return out;
}

namespace
{

/** Luminance plane of an RGB image. */
Tensor3<float>
luminance(const Tensor3<float> &rgb)
{
    Tensor3<float> out(1, rgb.height(), rgb.width(),
                       scratchAlloc<float>());
    for (int y = 0; y < rgb.height(); ++y) {
        for (int x = 0; x < rgb.width(); ++x) {
            out.at(0, y, x) = 0.299f * rgb.at(0, y, x) +
                              0.587f * rgb.at(1, y, x) +
                              0.114f * rgb.at(2, y, x);
        }
    }
    return out;
}

/** RGGB Bayer mosaic packed 2x2 into 4 half-resolution channels. */
Tensor3<float>
bayerPack(const Tensor3<float> &rgb)
{
    const int h2 = rgb.height() / 2;
    const int w2 = rgb.width() / 2;
    Tensor3<float> out(4, h2, w2, scratchAlloc<float>());
    for (int y = 0; y < h2; ++y) {
        for (int x = 0; x < w2; ++x) {
            out.at(0, y, x) = rgb.at(0, 2 * y, 2 * x);         // R
            out.at(1, y, x) = rgb.at(1, 2 * y, 2 * x + 1);     // G
            out.at(2, y, x) = rgb.at(1, 2 * y + 1, 2 * x);     // G
            out.at(3, y, x) = rgb.at(2, 2 * y + 1, 2 * x + 1); // B
        }
    }
    return out;
}

/** 2x2 pixel-unshuffle of all channels plus noise-sigma planes. */
Tensor3<float>
ffdnetPack(const Tensor3<float> &rgb)
{
    const int h2 = rgb.height() / 2;
    const int w2 = rgb.width() / 2;
    Tensor3<float> out(15, h2, w2, scratchAlloc<float>());
    for (int c = 0; c < 3; ++c) {
        for (int y = 0; y < h2; ++y) {
            for (int x = 0; x < w2; ++x) {
                out.at(c * 4 + 0, y, x) = rgb.at(c, 2 * y, 2 * x);
                out.at(c * 4 + 1, y, x) = rgb.at(c, 2 * y, 2 * x + 1);
                out.at(c * 4 + 2, y, x) = rgb.at(c, 2 * y + 1, 2 * x);
                out.at(c * 4 + 3, y, x) = rgb.at(c, 2 * y + 1, 2 * x + 1);
            }
        }
    }
    // Per-color noise standard deviation planes (constant).
    const float sigmas[3] = {0.0941f, 0.0941f, 0.0941f};
    for (int c = 0; c < 3; ++c) {
        for (int y = 0; y < h2; ++y) {
            for (int x = 0; x < w2; ++x)
                out.at(12 + c, y, x) = sigmas[c];
        }
    }
    return out;
}

/**
 * Resample / channel-adapt @p t to the expected next-layer input.
 * Downsampling uses max pooling (classification backbones);
 * upsampling uses pixel shuffle (JointNet's full-resolution head).
 */
Tensor3<float>
adaptToLayer(Tensor3<float> t, int cur_divisor, const ConvLayerSpec &next)
{
    if (next.resolutionDivisor > cur_divisor) {
        int factor = next.resolutionDivisor / cur_divisor;
        t = maxPool(t, factor);
    } else if (next.resolutionDivisor < cur_divisor) {
        int factor = cur_divisor / next.resolutionDivisor;
        int r2 = factor * factor;
        // Shuffle as many channel groups as divide evenly; any
        // remainder is handled by the channel adapter below.
        int usable = (t.channels() / r2) * r2;
        if (usable > 0) {
            Tensor3<float> head(usable, t.height(), t.width(),
                                scratchAlloc<float>());
            for (int c = 0; c < usable; ++c) {
                for (int y = 0; y < t.height(); ++y) {
                    for (int x = 0; x < t.width(); ++x)
                        head.at(c, y, x) = t.at(c, y, x);
                }
            }
            t = pixelShuffle(head, factor);
        }
    }
    if (t.channels() != next.inChannels) {
        // Structural adapter for concatenation-style inputs (e.g.
        // JointNet appends mosaic channels after the pixel shuffle):
        // replicate existing channels with decaying gain, or truncate.
        Tensor3<float> adapted(next.inChannels, t.height(), t.width(),
                               scratchAlloc<float>());
        for (int c = 0; c < next.inChannels; ++c) {
            int src = c % t.channels();
            float gain = c < t.channels() ? 1.0f : 0.7f;
            for (int y = 0; y < t.height(); ++y) {
                for (int x = 0; x < t.width(); ++x)
                    adapted.at(c, y, x) = gain * t.at(src, y, x);
            }
        }
        t = std::move(adapted);
    }
    return t;
}

/**
 * Quantize a float tensor to int16. The scale is the coarsest
 * power-of-two step whose relative RMS quantization error stays below
 * @p rel_error (capped by the range-driven maximum from
 * chooseFracBits), so activations carry only the significant bits a
 * quality-profiled fixed-point deployment would keep.
 */
TensorI16
quantizeTensor(const Tensor3<float> &t, double rel_error,
               int *frac_bits_out)
{
    float max_abs = 0.0f;
    double sum_sq = 0.0;
    const float *data = t.data();
    for (std::size_t i = 0; i < t.size(); ++i) {
        float a = std::fabs(data[i]);
        if (a > max_abs)
            max_abs = a;
        sum_sq += static_cast<double>(data[i]) * data[i];
    }
    int frac = chooseFracBits(max_abs);
    const double rms =
        t.size() ? std::sqrt(sum_sq / static_cast<double>(t.size())) : 0.0;
    if (rms > 0.0 && rel_error > 0.0) {
        // Uniform quantization with step q has RMS error q/sqrt(12);
        // the coarsest acceptable step solves q = rel*rms*sqrt(12).
        const double q = rel_error * rms * std::sqrt(12.0);
        const int frac_quality =
            static_cast<int>(std::ceil(-std::log2(q)));
        if (frac_quality < frac)
            frac = frac_quality < 0 ? 0 : frac_quality;
    }
    TensorI16 out(t.shape(), scratchAlloc<std::int16_t>());
    std::int16_t *od = out.data();
    const double scale = static_cast<double>(std::int64_t{1} << frac);
    for (std::size_t i = 0; i < t.size(); ++i) {
        od[i] = saturate16(
            static_cast<std::int64_t>(std::llround(data[i] * scale)));
    }
    if (frac_bits_out)
        *frac_bits_out = frac;
    return out;
}

/**
 * Synthesized weights of one layer, in both the quantized form the
 * trace carries and the dequantized float form the forward pass
 * consumes.
 */
struct PreparedWeights
{
    FilterBankI16 quantized;
    int fracBits = 0;
    Tensor4<float> dequantized;
};

// thread_local keeps sweep workers lock-free (same idiom as the
// sim/encode memo caches); cleared through the central registry
// (DESIGN.md §10, rule R2).
std::unordered_map<std::string, PreparedWeights> &
preparedWeightsCache()
{
    thread_local std::unordered_map<std::string, PreparedWeights> cache;
    return cache;
}

/**
 * Memoized weight synthesis + dequantization. Weight generation is a
 * pure function of (network, layer, options), and sweeps replay the
 * same network over many scenes — so the per-frame gaussian synthesis
 * and the float rebuild were pure waste.
 */
const PreparedWeights &
preparedWeights(const NetworkSpec &net, const ConvLayerSpec &layer,
                const ExecutorOptions &opts)
{
    auto &cache = preparedWeightsCache();
    // Tests build ad-hoc specs that reuse names with different shapes,
    // so the key covers every input synthesizeWeights() reads.
    std::string key = net.name + '/' + layer.name + '#' +
                      std::to_string(layer.inChannels) + 'x' +
                      std::to_string(layer.outChannels) + 'k' +
                      std::to_string(layer.kernel) + '@' +
                      std::to_string(opts.weightSeed) + '/' +
                      std::to_string(opts.sparsitySeed) + '/' +
                      std::to_string(opts.weightSparsity);
    auto it = cache.find(key);
    if (it == cache.end()) {
        PreparedWeights pw;
        pw.quantized = synthesizeWeights(net, layer, opts, &pw.fracBits);
        const auto &shape = pw.quantized.shape();
        pw.dequantized =
            Tensor4<float>(shape.k, shape.c, shape.h, shape.w);
        const double wscale =
            static_cast<double>(std::int64_t{1} << pw.fracBits);
        for (std::size_t i = 0; i < pw.quantized.size(); ++i) {
            pw.dequantized.data()[i] =
                static_cast<float>(pw.quantized.data()[i] / wscale);
        }
        it = cache.emplace(std::move(key), std::move(pw)).first;
    }
    return it->second;
}

} // namespace

void
clearPreparedWeightsCache()
{
    preparedWeightsCache().clear();
}

DIFFY_REGISTER_THREAD_CACHE(nn_executor_prepared_weights,
                            clearPreparedWeightsCache);

Tensor3<float>
buildNetworkInput(const NetworkSpec &net, const Tensor3<float> &rgb)
{
    if (rgb.channels() != 3)
        throw std::invalid_argument("buildNetworkInput expects RGB");
    if (net.name == "VDSR")
        return luminance(rgb);
    if (net.name == "FFDNet")
        return ffdnetPack(rgb);
    if (net.name == "JointNet")
        return bayerPack(rgb);
    // Identity nets still copy: the running activation is a per-frame
    // transient, so the copy lands on the ambient scratch resource.
    return Tensor3<float>(rgb, scratchAlloc<float>());
}

FilterBankI16
synthesizeWeights(const NetworkSpec &net, const ConvLayerSpec &layer,
                  const ExecutorOptions &opts, int *frac_bits_out)
{
    Rng rng(opts.weightSeed ^
            Rng::seedFromString(net.name + "/" + layer.name));
    const double fan_in =
        static_cast<double>(layer.inChannels) * layer.kernel * layer.kernel;
    const double stddev = std::sqrt(2.0 / fan_in);

    Tensor4<float> wf(layer.outChannels, layer.inChannels, layer.kernel,
                      layer.kernel);
    float max_abs = 0.0f;
    for (std::size_t i = 0; i < wf.size(); ++i) {
        float v = static_cast<float>(rng.gaussian(0.0, stddev));
        wf.data()[i] = v;
        float a = std::fabs(v);
        if (a > max_abs)
            max_abs = a;
    }
    if (opts.weightSparsity > 0.0) {
        Rng mask_rng(opts.sparsitySeed ^
                     Rng::seedFromString(net.name + "/" + layer.name));
        for (std::size_t i = 0; i < wf.size(); ++i) {
            if (mask_rng.uniform() < opts.weightSparsity)
                wf.data()[i] = 0.0f;
        }
    }

    int frac = chooseFracBits(max_abs);
    FilterBankI16 out(wf.shape().k, wf.shape().c, wf.shape().h, wf.shape().w);
    const double scale = static_cast<double>(std::int64_t{1} << frac);
    for (std::size_t i = 0; i < wf.size(); ++i) {
        out.data()[i] = saturate16(static_cast<std::int64_t>(
            std::llround(wf.data()[i] * scale)));
    }
    if (frac_bits_out)
        *frac_bits_out = frac;
    return out;
}

NetworkTrace
runNetwork(const NetworkSpec &net, const Tensor3<float> &rgb,
           const ExecutorOptions &opts)
{
    NetworkTrace trace;
    trace.network = net.name;
    trace.netClass = net.netClass;
    trace.frameHeight = rgb.height();
    trace.frameWidth = rgb.width();
    trace.layers.reserve(net.layers.size());

    Tensor3<float> activ = buildNetworkInput(net, rgb);
    int cur_divisor = net.layers.empty()
                          ? 1
                          : net.layers.front().resolutionDivisor;

    for (std::size_t li = 0; li < net.layers.size(); ++li) {
        const ConvLayerSpec &layer = net.layers[li];
        // Per-layer observability: a trace span (skipped without the
        // string build when tracing is off) and a latency histogram
        // keyed by net/layer for --metrics-out cost attribution.
        obs::Span span(obs::traceEnabled()
                           ? "layer:" + net.name + "/" + layer.name
                           : std::string());
        obs::ScopedLatency timer(obs::MetricsRegistry::instance().histogram(
            "nn.layer_seconds:" + net.name + "/" + layer.name));
        // Bring the running activation to this layer's resolution and
        // channel count (pooling / pixel shuffle between stages).
        activ = adaptToLayer(std::move(activ), cur_divisor, layer);
        cur_divisor = layer.resolutionDivisor;

        // Weight synthesis and dequantization are hoisted into a
        // per-(net, layer, options) memo: scene sweeps rebuild the
        // same banks for every frame otherwise.
        const PreparedWeights &pw = preparedWeights(net, layer, opts);

        LayerTrace lt;
        lt.spec = layer;
        // Allocator-extended copy: the memoized bank stays heap-owned
        // while the per-frame trace copy rides the scratch resource.
        lt.weights = FilterBankI16(pw.quantized,
                                   scratchAlloc<std::int16_t>());
        lt.weightFracBits = pw.fracBits;
        lt.imap = quantizeTensor(activ, opts.activationRelError,
                                 &lt.imapFracBits);

        // Float forward for the next layer's input.
        Tensor3<float> out = convolve(activ, pw.dequantized, layer.stride,
                                      layer.dilation);
        if (layer.relu) {
            for (std::size_t i = 0; i < out.size(); ++i) {
                if (out.data()[i] < 0.0f)
                    out.data()[i] = 0.0f;
            }
        }
        // Strided layers shrink the resolution for everything after.
        cur_divisor *= layer.stride;

        trace.layers.push_back(std::move(lt));
        activ = std::move(out);
    }
    return trace;
}

} // namespace diffy
