/**
 * @file
 * On-disk + in-memory cache of forward-pass traces, safe for
 * concurrent use.
 *
 * Several bench binaries consume the same (network, scene, crop)
 * forward passes; the cache keys traces by those parameters plus the
 * executor options and stores them under a cache directory (default
 * "traces/" beneath the working directory) so repeated runs skip the
 * float convolutions.
 *
 * Concurrency model (see DESIGN.md §8): lookups of completed entries
 * take a shared lock; the first requester of a missing key installs a
 * shared_future under an exclusive lock and then traces outside any
 * lock, so N sweep workers asking for the same trace block on one
 * single-flight computation instead of tracing N times. Disk stores
 * are write-to-temp + atomic rename, so a concurrent reader (even in
 * another process) never observes a half-written trace file.
 *
 * Crash-safe recovery (DESIGN.md §12): trace files carry a CRC-32C
 * envelope (see nn/trace.cc) validated on load. An entry that fails
 * the magic, length, or checksum check is renamed to
 * `<key>.trace.corrupt` for post-mortem inspection, counted in
 * `trace_cache.corrupt_evictions`, and regenerated through the same
 * single-flight path as a plain miss — garbage on disk never reaches
 * a simulation.
 */

#ifndef DIFFY_CORE_TRACE_CACHE_HH
#define DIFFY_CORE_TRACE_CACHE_HH

#include <functional>
#include <future>
#include <shared_mutex>
#include <string>
#include <unordered_map>

#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/trace.hh"

namespace diffy
{

/** Load-or-compute cache of network traces. Thread-safe. */
class TraceCache
{
  public:
    /** Trace computation hook (tests inject a counting stub). */
    using Tracer = std::function<NetworkTrace(
        const NetworkSpec &, const SceneParams &, const ExecutorOptions &)>;

    /**
     * @param directory cache directory; created on first store. An
     *                  empty string disables disk caching entirely.
     * @param tracer    computes a missing trace; defaults to
     *                  renderScene + runNetwork.
     */
    explicit TraceCache(std::string directory = "traces",
                        Tracer tracer = {});

    /**
     * Return the trace of @p net on the scene, computing and caching
     * it if absent. Concurrent calls for the same key share one
     * computation; calls for different keys proceed in parallel.
     */
    NetworkTrace get(const NetworkSpec &net, const SceneParams &scene,
                     const ExecutorOptions &opts = {});

    /** Cache key for a (network, scene, options) combination. */
    static std::string cacheKey(const NetworkSpec &net,
                                const SceneParams &scene,
                                const ExecutorOptions &opts);

  private:
    NetworkTrace compute(const std::string &key, const NetworkSpec &net,
                         const SceneParams &scene,
                         const ExecutorOptions &opts) const;

    std::string directory_;
    Tracer tracer_;
    /** Completed and in-flight entries, keyed by cacheKey(). */
    std::unordered_map<std::string, std::shared_future<NetworkTrace>>
        entries_;
    std::shared_mutex mutex_;
};

} // namespace diffy

#endif // DIFFY_CORE_TRACE_CACHE_HH
