/**
 * @file
 * On-disk cache of forward-pass traces.
 *
 * Several bench binaries consume the same (network, scene, crop)
 * forward passes; the cache keys traces by those parameters plus the
 * executor options and stores them under a cache directory (default
 * "traces/" beneath the working directory) so repeated runs skip the
 * float convolutions.
 */

#ifndef DIFFY_CORE_TRACE_CACHE_HH
#define DIFFY_CORE_TRACE_CACHE_HH

#include <string>

#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/trace.hh"

namespace diffy
{

/** Load-or-compute cache of network traces. */
class TraceCache
{
  public:
    /**
     * @param directory cache directory; created on first store. An
     *                  empty string disables disk caching entirely.
     */
    explicit TraceCache(std::string directory = "traces");

    /**
     * Return the trace of @p net on the scene, computing and caching
     * it if absent.
     */
    NetworkTrace get(const NetworkSpec &net, const SceneParams &scene,
                     const ExecutorOptions &opts = {});

    /** Cache key for a (network, scene, options) combination. */
    static std::string cacheKey(const NetworkSpec &net,
                                const SceneParams &scene,
                                const ExecutorOptions &opts);

  private:
    std::string directory_;
};

} // namespace diffy

#endif // DIFFY_CORE_TRACE_CACHE_HH
