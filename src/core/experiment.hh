/**
 * @file
 * Shared experiment driver for the bench binaries.
 *
 * Wraps the common pattern of every evaluation figure: trace the five
 * CI-DNNs (or the Fig 19 suite) over a set of scenes, run one or more
 * accelerator configurations, and aggregate speedups / FPS / traffic
 * across inputs. Bench binaries stay thin — they pick parameters and
 * print tables.
 */

#ifndef DIFFY_CORE_EXPERIMENT_HH
#define DIFFY_CORE_EXPERIMENT_HH

#include <functional>
#include <string>
#include <vector>

#include "arch/config.hh"
#include "arch/memtech.hh"
#include "core/trace_cache.hh"
#include "image/catalog.hh"
#include "nn/models.hh"
#include "runtime/sweep.hh"
#include "sim/runner.hh"

namespace diffy
{

/** Common command-line-derived parameters of an experiment run. */
struct ExperimentParams
{
    /** Crop resolution for CI-DNN traces. */
    int crop = 64;
    /** Number of evaluation scenes. */
    int scenes = 3;
    /** Target frame for scaled results (HD by default). */
    int frameHeight = 1080;
    int frameWidth = 1920;
    /** Off-chip memory for performance experiments. */
    std::string memTech = "DDR4-3200";
    int memChannels = 1;
    /**
     * Divisor applied to a classification model's native resolution
     * when tracing (simulation still targets the native frame); keeps
     * the Fig 19 suite tractable on one core. 1 = trace at native.
     */
    int classificationCropDivisor = 2;
    /** Trace cache directory ("" disables). */
    std::string cacheDir = "traces";
    /**
     * Sweep worker threads; 0 = auto (the DIFFY_THREADS environment
     * variable, defaulting to 1). Output tables are byte-identical at
     * every thread count (see runtime/sweep.hh).
     */
    int threads = 0;
    /** Seed namespace for per-job sweep RNGs. */
    std::uint64_t sweepSeed = 0;
    /**
     * File to receive a JSON metrics-registry snapshot when the bench
     * exits ("" disables). Written at exit, never to stdout, so the
     * table output stays byte-identical with or without it.
     */
    std::string metricsOut;
    /**
     * Failure policy of the experiment's sweeps (DESIGN.md §12).
     * keepGoing quarantines failing cells into the SweepReport
     * instead of rethrowing; maxRetries grants each cell extra
     * attempts with deterministic jittered backoff; jobTimeoutMs
     * quarantines any cell whose attempt overruns the soft deadline
     * (0 disables the watchdog).
     */
    bool keepGoing = false;
    int maxRetries = 0;
    std::int64_t jobTimeoutMs = 0;

    /** SweepPolicy equivalent of the keepGoing/maxRetries/jobTimeoutMs
     *  fields, ready for SweepScheduler::setPolicy(). */
    SweepPolicy sweepPolicy() const;

    /**
     * Build from argc/argv (--crop, --scenes, --frame-h, --threads,
     * --keep-going, --max-retries, --job-timeout-ms, --metrics-out,
     * ...). A non-empty --metrics-out arranges the exit-time snapshot
     * dump as a side effect.
     * @throws std::invalid_argument (with the full field-level issue
     *         summary) on malformed or out-of-range values, e.g. a
     *         non-numeric, non-positive or absurd --threads.
     */
    static ExperimentParams fromCli(int argc, const char *const *argv);

    /**
     * fromCli for binary entry points: on malformed values prints
     * "error: <details>" to stderr and exits with status 2 instead of
     * letting the exception escape main (an uncaught throw aborts via
     * std::terminate, which reads as a crash rather than a usage
     * error). Benches and examples should call this; library code and
     * tests use the throwing fromCli.
     */
    static ExperimentParams fromCliOrExit(int argc,
                                          const char *const *argv);

    /**
     * Check every field for plausibility (positive geometry and scene
     * counts, thread count within [0, kMaxSweepThreads]). Returns all
     * problems, not just the first — the same structured-validation
     * convention as AcceleratorConfig::validate().
     */
    ConfigValidation validate() const;

    /** Throwing wrapper over validate(), mirroring AcceleratorConfig. */
    const ExperimentParams &validated() const;
};

/**
 * Scheduler configured for the experiment: resolves params.threads
 * (0 = DIFFY_THREADS, else 1) and seeds jobs from params.sweepSeed.
 */
SweepScheduler makeSweepScheduler(const ExperimentParams &params);

/**
 * Deterministic parallel map over a flattened experiment grid:
 * evaluates @p fn(SweepJob&) for cells [0, cellCount) on the
 * experiment's worker threads and returns the results in cell order,
 * so downstream table construction is byte-identical at any thread
 * count. When DIFFY_SWEEP_STATS is set, a utilization summary is
 * printed to stderr (never stdout, which carries the tables).
 */
template <typename Fn>
auto
sweepCells(const ExperimentParams &params, std::size_t cellCount, Fn &&fn)
{
    SweepScheduler scheduler = makeSweepScheduler(params);
    auto results = scheduler.map(cellCount, std::forward<Fn>(fn));
    maybeReportSweepStats(scheduler.stats(), "cells");
    return results;
}

/** Traces of one network over several scenes. */
struct TracedNetwork
{
    NetworkSpec spec;
    std::vector<NetworkTrace> traces;
};

/** Trace every network of @p suite over the default evaluation scenes. */
std::vector<TracedNetwork> traceSuite(const std::vector<NetworkSpec> &suite,
                                      const ExperimentParams &params,
                                      const ExecutorOptions &opts = {});

/**
 * Average FPS of @p cfg over the traces of one network at the
 * experiment's frame resolution.
 */
double averageFps(const TracedNetwork &net, const AcceleratorConfig &cfg,
                  const MemTech &mem, const ExperimentParams &params,
                  DiffyMode mode = DiffyMode::Differential);

/**
 * Speedup of @p cfg over @p baseline for one network (ratio of average
 * frame times over the same scenes).
 */
double speedupOver(const TracedNetwork &net, const AcceleratorConfig &cfg,
                   const AcceleratorConfig &baseline, const MemTech &mem,
                   const ExperimentParams &params,
                   DiffyMode mode = DiffyMode::Differential);

/** The memory technology selected by the experiment parameters. */
MemTech experimentMemTech(const ExperimentParams &params);

} // namespace diffy

#endif // DIFFY_CORE_EXPERIMENT_HH
