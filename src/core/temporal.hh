/**
 * @file
 * Temporal-delta inference mode (DESIGN.md §13).
 *
 * The paper's differential convolution (Eq. 4) exploits *spatial*
 * deltas along a row; by the same linearity argument the relation
 * holds across *frames*:
 *
 *     o_t = conv(a_t) = conv(a_{t-1}) + conv(a_t - a_{t-1})
 *         = o_{t-1} + <W, Δa_t>
 *
 * exactly, in integer arithmetic, for any stride/dilation — provided
 * both frames share the same geometry and fixed-point format. This
 * module implements that relation over the nn-layer traces: per-layer
 * state holds the previous frame's imap and omap, a step either
 * re-anchors (full convolution, the per-frame reference path) or
 * applies the temporal-delta path, and the reconstruction can be
 * checked bit-exactly against the per-frame oracle.
 *
 * Re-anchor policy (mirroring the DeltaD codec's K knob): a layer
 * anchors when it has no state yet, when its geometry or fixed-point
 * format changed (a format change alters quantized values, so the
 * previous frame is not a valid reference), or every K-th frame when
 * a reanchor interval is set — bounding how far any upstream
 * corruption can propagate through a stream.
 *
 * Term accounting reports the work a term-serial accelerator would
 * pay on four encodings of the same layer input: raw values, spatial
 * deltas (Diffy's axis), temporal deltas (this module's axis), and
 * spatial deltas *of* the temporal deltas (both axes composed) — the
 * EXPERIMENTS.md ablation row.
 */

#ifndef DIFFY_CORE_TEMPORAL_HH
#define DIFFY_CORE_TEMPORAL_HH

#include <cstdint>
#include <vector>

#include "nn/trace.hh"
#include "tensor/tensor.hh"

namespace diffy
{

/**
 * Fixed-point convolution of an int32 delta map — the temporal
 * counterpart of convolveDirect(). Deltas of int16 activations need
 * 17 bits, hence the widened input type; geometry (same-padding,
 * stride, dilation) and 64-bit accumulation mirror convolveDirect()
 * exactly so o_{t-1} + conv(Δ) is bit-identical to conv(a_t).
 */
TensorI32 convolveTemporalDelta(const TensorI32 &delta,
                                const FilterBankI16 &bank, int stride,
                                int dilation);

/** Widen a frame-to-frame activation delta to its 17-bit range. */
TensorI32 temporalDelta(const TensorI16 &prev, const TensorI16 &cur);

/** Per-layer reference state of a temporal stream. */
struct TemporalLayerState
{
    bool valid = false;
    TensorI16 prevImap;
    TensorI32 prevOmap;
    int prevFracBits = 0;
};

/** Per-stream inference state: one entry per network layer. */
struct TemporalNetState
{
    std::vector<TemporalLayerState> layers;
};

/** Knobs of one temporal step. */
struct TemporalOptions
{
    /**
     * Re-anchor every K-th frame (frameIndex % K == 0); 0 anchors
     * only when a layer has no usable reference. The serving layer
     * reuses this as its periodic keyframe interval.
     */
    int reanchorInterval = 0;
    /**
     * Also run the per-frame reference convolution on every layer and
     * require bit-exact agreement — the oracle check the regression
     * tests and CI pin. Costs a second convolution per layer.
     */
    bool verifyAgainstOracle = false;
};

/** Outcome and work accounting of one temporal step. */
struct TemporalFrameStats
{
    int layerCount = 0;
    /** Layers that took the anchor (full per-frame) path. */
    int anchored = 0;
    /**
     * True when every layer's reconstruction matched the per-frame
     * oracle bit-exactly. Only meaningful under verifyAgainstOracle
     * (stays true otherwise).
     */
    bool exact = true;
    /** Input activations across all layers. */
    std::uint64_t values = 0;
    /** Booth terms of the raw imap values (the no-reuse baseline). */
    std::uint64_t rawTerms = 0;
    /** Booth terms of the spatial x-deltas (Diffy's encoding). */
    std::uint64_t spatialTerms = 0;
    /** Booth terms of the temporal deltas (delta-path layers only —
     *  anchored layers charge their raw terms here). */
    std::uint64_t temporalTerms = 0;
    /** Booth terms of spatial deltas of the temporal deltas. */
    std::uint64_t temporalSpatialTerms = 0;
    /** Wire footprint of the step under the temporal codec: encoded
     *  delta bits for delta-path layers, 16 bits/value at anchors. */
    std::uint64_t codecBits = 0;

    TemporalFrameStats &operator+=(const TemporalFrameStats &o);
};

/**
 * Advance one stream by one frame: for each layer of @p trace, either
 * re-anchor or apply the temporal-delta reconstruction, update
 * @p state, and account the work. @p frameIndex drives the periodic
 * re-anchor policy — it must be the stream's *global* frame index,
 * including frames that were dropped (a gap widens the temporal delta
 * but never corrupts it, since the previous *processed* frame is the
 * reference).
 *
 * @throws std::runtime_error under verifyAgainstOracle when a layer's
 *         reconstruction diverges from the per-frame oracle.
 */
TemporalFrameStats temporalStep(TemporalNetState &state,
                                const NetworkTrace &trace, int frameIndex,
                                const TemporalOptions &opts = {});

} // namespace diffy

#endif // DIFFY_CORE_TEMPORAL_HH
