#include "core/experiment.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "common/cli.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace diffy
{

ExperimentParams
ExperimentParams::fromCli(int argc, const char *const *argv)
{
    // --keep-going is a bare flag: without the declaration it would
    // swallow a following positional as its value.
    CliArgs args(argc, argv, {"keep-going"});
    ExperimentParams params;
    params.crop = static_cast<int>(args.getInt("crop", params.crop));
    params.scenes = static_cast<int>(args.getInt("scenes", params.scenes));
    params.frameHeight =
        static_cast<int>(args.getInt("frame-h", params.frameHeight));
    params.frameWidth =
        static_cast<int>(args.getInt("frame-w", params.frameWidth));
    params.memTech = args.getString("mem", params.memTech);
    params.memChannels =
        static_cast<int>(args.getInt("mem-channels", params.memChannels));
    params.classificationCropDivisor = static_cast<int>(args.getInt(
        "class-crop-div", params.classificationCropDivisor));
    params.cacheDir = args.getString("cache", params.cacheDir);
    params.threads = static_cast<int>(args.getInt("threads", params.threads));
    params.sweepSeed = static_cast<std::uint64_t>(
        args.getInt("sweep-seed", static_cast<std::int64_t>(params.sweepSeed)));
    params.metricsOut = args.getString("metrics-out", params.metricsOut);
    params.keepGoing = args.has("keep-going");
    params.maxRetries =
        static_cast<int>(args.getInt("max-retries", params.maxRetries));
    params.jobTimeoutMs = args.getInt("job-timeout-ms", params.jobTimeoutMs);

    ConfigValidation v = params.validate();
    // An explicit --threads must name a worker count; only the absent
    // flag means "auto". (Non-numeric values already throw from
    // getInt; negative values are flagged by validate().)
    if (args.has("threads") && params.threads == 0)
        v.issues.push_back(
            {"threads", "--threads expects a positive integer, got \"" +
                            args.getString("threads", "") + "\""});
    if (!v.ok())
        throw std::invalid_argument("ExperimentParams invalid: " +
                                    v.summary());
    if (!params.metricsOut.empty())
        obs::dumpMetricsOnExit(params.metricsOut);
    return params;
}

ExperimentParams
ExperimentParams::fromCliOrExit(int argc, const char *const *argv)
{
    try {
        return fromCli(argc, argv);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        std::exit(2);
    }
}

ConfigValidation
ExperimentParams::validate() const
{
    ConfigValidation v;
    auto require = [&](bool ok, const char *field, std::string msg) {
        if (!ok)
            v.issues.push_back({field, std::move(msg)});
    };
    require(crop >= 1, "crop", "must be >= 1");
    require(scenes >= 1, "scenes", "must be >= 1");
    require(frameHeight >= 1, "frameHeight", "must be >= 1");
    require(frameWidth >= 1, "frameWidth", "must be >= 1");
    require(memChannels >= 1, "memChannels", "must be >= 1");
    require(classificationCropDivisor >= 1, "classificationCropDivisor",
            "must be >= 1");
    require(threads >= 0, "threads",
            "must be >= 0 (0 = auto via DIFFY_THREADS)");
    require(threads <= kMaxSweepThreads, "threads",
            "exceeds the limit of " + std::to_string(kMaxSweepThreads));
    require(maxRetries >= 0, "maxRetries", "must be >= 0");
    require(maxRetries <= 100, "maxRetries",
            "over 100 retries is a configuration bug, not persistence");
    require(jobTimeoutMs >= 0, "jobTimeoutMs",
            "must be >= 0 (0 = no deadline)");
    return v;
}

SweepPolicy
ExperimentParams::sweepPolicy() const
{
    SweepPolicy policy;
    policy.mode = keepGoing ? FailurePolicy::KeepGoing
                            : FailurePolicy::FailFast;
    policy.maxRetries = maxRetries;
    policy.jobTimeoutMs = jobTimeoutMs;
    return policy;
}

const ExperimentParams &
ExperimentParams::validated() const
{
    ConfigValidation v = validate();
    if (!v.ok())
        throw std::invalid_argument("ExperimentParams invalid: " +
                                    v.summary());
    return *this;
}

SweepScheduler
makeSweepScheduler(const ExperimentParams &params)
{
    params.validated();
    SweepScheduler scheduler(params.threads, params.sweepSeed);
    scheduler.setPolicy(params.sweepPolicy());
    return scheduler;
}

std::vector<TracedNetwork>
traceSuite(const std::vector<NetworkSpec> &suite,
           const ExperimentParams &params, const ExecutorOptions &opts)
{
    obs::Span span(obs::Tracer::global(), "core.trace_suite");
    TraceCache cache(params.cacheDir);
    std::vector<SceneParams> scenes =
        defaultEvalScenes(params.scenes, params.crop);

    // Flatten the network x scene grid into jobs up front so the
    // scheduler's in-order reduction rebuilds the exact serial layout.
    struct TraceJob
    {
        std::size_t netIndex;
        SceneParams scene;
    };
    std::vector<TraceJob> jobs;
    jobs.reserve(suite.size() * scenes.size());
    for (std::size_t ni = 0; ni < suite.size(); ++ni) {
        const NetworkSpec &net = suite[ni];
        for (SceneParams scene : scenes) {
            // Classification models run at (a crop of) their native
            // resolution; CI-DNNs use the experiment crop.
            if (net.nativeResolution > 0) {
                int crop = net.nativeResolution /
                           std::max(1, params.classificationCropDivisor);
                // Keep the deepest backbone stage (divisor 32) at a
                // nonzero spatial extent.
                crop = std::max(crop, 64);
                scene.width = crop;
                scene.height = crop;
            }
            jobs.push_back({ni, scene});
        }
    }

    // Tracing dominates sweep wall-clock (float convolutions); the
    // TraceCache is single-flight and thread-safe, so every bench
    // parallelizes here without individual rewrites.
    SweepScheduler scheduler = makeSweepScheduler(params);
    std::vector<NetworkTrace> traces =
        scheduler.map(jobs.size(), [&](SweepJob &job) {
            const TraceJob &tj = jobs[job.index];
            return cache.get(suite[tj.netIndex], tj.scene, opts);
        });
    maybeReportSweepStats(scheduler.stats(), "traceSuite");

    std::vector<TracedNetwork> traced;
    traced.reserve(suite.size());
    std::size_t next = 0;
    for (const auto &net : suite) {
        TracedNetwork tn;
        tn.spec = net;
        tn.traces.reserve(scenes.size());
        for (std::size_t si = 0; si < scenes.size(); ++si)
            tn.traces.push_back(std::move(traces[next++]));
        traced.push_back(std::move(tn));
    }
    return traced;
}

MemTech
experimentMemTech(const ExperimentParams &params)
{
    return memTechByName(params.memTech, params.memChannels);
}

namespace
{

/** Frame height/width for a network under the experiment parameters. */
std::pair<int, int>
frameFor(const TracedNetwork &net, const ExperimentParams &params)
{
    if (net.spec.nativeResolution > 0)
        return {net.spec.nativeResolution, net.spec.nativeResolution};
    return {params.frameHeight, params.frameWidth};
}

} // namespace

double
averageFps(const TracedNetwork &net, const AcceleratorConfig &cfg,
           const MemTech &mem, const ExperimentParams &params,
           DiffyMode mode)
{
    auto [fh, fw] = frameFor(net, params);
    double total_cycles = 0.0;
    for (const auto &trace : net.traces) {
        total_cycles +=
            simulateFrame(trace, cfg, mem, fh, fw, mode).totalCycles;
    }
    if (total_cycles <= 0.0)
        return 0.0;
    double mean_cycles =
        total_cycles / static_cast<double>(net.traces.size());
    return cfg.clockHz / mean_cycles;
}

double
speedupOver(const TracedNetwork &net, const AcceleratorConfig &cfg,
            const AcceleratorConfig &baseline, const MemTech &mem,
            const ExperimentParams &params, DiffyMode mode)
{
    double fps_cfg = averageFps(net, cfg, mem, params, mode);
    double fps_base = averageFps(net, baseline, mem, params, mode);
    return fps_base > 0.0 ? fps_cfg / fps_base : 0.0;
}

} // namespace diffy
