#include "core/experiment.hh"

#include <algorithm>

#include "common/cli.hh"

namespace diffy
{

ExperimentParams
ExperimentParams::fromCli(int argc, const char *const *argv)
{
    CliArgs args(argc, argv);
    ExperimentParams params;
    params.crop = static_cast<int>(args.getInt("crop", params.crop));
    params.scenes = static_cast<int>(args.getInt("scenes", params.scenes));
    params.frameHeight =
        static_cast<int>(args.getInt("frame-h", params.frameHeight));
    params.frameWidth =
        static_cast<int>(args.getInt("frame-w", params.frameWidth));
    params.memTech = args.getString("mem", params.memTech);
    params.memChannels =
        static_cast<int>(args.getInt("mem-channels", params.memChannels));
    params.classificationCropDivisor = static_cast<int>(args.getInt(
        "class-crop-div", params.classificationCropDivisor));
    params.cacheDir = args.getString("cache", params.cacheDir);
    return params;
}

std::vector<TracedNetwork>
traceSuite(const std::vector<NetworkSpec> &suite,
           const ExperimentParams &params, const ExecutorOptions &opts)
{
    TraceCache cache(params.cacheDir);
    std::vector<SceneParams> scenes =
        defaultEvalScenes(params.scenes, params.crop);

    std::vector<TracedNetwork> traced;
    traced.reserve(suite.size());
    for (const auto &net : suite) {
        TracedNetwork tn;
        tn.spec = net;
        for (auto scene : scenes) {
            // Classification models run at (a crop of) their native
            // resolution; CI-DNNs use the experiment crop.
            if (net.nativeResolution > 0) {
                int crop = net.nativeResolution /
                           std::max(1, params.classificationCropDivisor);
                // Keep the deepest backbone stage (divisor 32) at a
                // nonzero spatial extent.
                crop = std::max(crop, 64);
                scene.width = crop;
                scene.height = crop;
            }
            tn.traces.push_back(cache.get(net, scene, opts));
        }
        traced.push_back(std::move(tn));
    }
    return traced;
}

MemTech
experimentMemTech(const ExperimentParams &params)
{
    return memTechByName(params.memTech, params.memChannels);
}

namespace
{

/** Frame height/width for a network under the experiment parameters. */
std::pair<int, int>
frameFor(const TracedNetwork &net, const ExperimentParams &params)
{
    if (net.spec.nativeResolution > 0)
        return {net.spec.nativeResolution, net.spec.nativeResolution};
    return {params.frameHeight, params.frameWidth};
}

} // namespace

double
averageFps(const TracedNetwork &net, const AcceleratorConfig &cfg,
           const MemTech &mem, const ExperimentParams &params,
           DiffyMode mode)
{
    auto [fh, fw] = frameFor(net, params);
    double total_cycles = 0.0;
    for (const auto &trace : net.traces) {
        total_cycles +=
            simulateFrame(trace, cfg, mem, fh, fw, mode).totalCycles;
    }
    if (total_cycles <= 0.0)
        return 0.0;
    double mean_cycles =
        total_cycles / static_cast<double>(net.traces.size());
    return cfg.clockHz / mean_cycles;
}

double
speedupOver(const TracedNetwork &net, const AcceleratorConfig &cfg,
            const AcceleratorConfig &baseline, const MemTech &mem,
            const ExperimentParams &params, DiffyMode mode)
{
    double fps_cfg = averageFps(net, cfg, mem, params, mode);
    double fps_base = averageFps(net, baseline, mem, params, mode);
    return fps_base > 0.0 ? fps_cfg / fps_base : 0.0;
}

} // namespace diffy
