/**
 * @file
 * Differential Convolution (the paper's core algorithm, Section III-C).
 *
 * Given the inner product o(x) = <W, window(x)>, the next output along
 * the row can be computed relative to it:
 *
 *   o(x+1) = o(x) + <W, window(x+1) - window(x)>            (Eq. 4)
 *
 * Because convolution is linear, this is *algebraically exact* in
 * integer arithmetic: the reference implementation here computes only
 * the leftmost output of each row directly and every other output
 * differentially, and the test suite checks bit-exact equality against
 * direct fixed-point convolution for all strides and dilations.
 */

#ifndef DIFFY_CORE_DIFFERENTIAL_CONV_HH
#define DIFFY_CORE_DIFFERENTIAL_CONV_HH

#include <cstdint>

#include "tensor/tensor.hh"

namespace diffy
{

/**
 * Direct fixed-point convolution with same-padding.
 * Accumulation is in 64-bit; no rescaling is applied.
 */
TensorI32 convolveDirect(const TensorI16 &imap, const FilterBankI16 &bank,
                         int stride, int dilation);

/**
 * Differential fixed-point convolution: leftmost output of each row
 * computed directly, all subsequent outputs via Eq. 4. Produces
 * bit-identical results to convolveDirect().
 */
TensorI32 convolveDifferential(const TensorI16 &imap,
                               const FilterBankI16 &bank, int stride,
                               int dilation);

/**
 * Differential convolution along the H (Y) dimension — the paper
 * notes Eq. 4 applies "along the H or the W dimensions". The topmost
 * output of each column is computed directly, subsequent outputs
 * relative to the window one stride above. Bit-identical to
 * convolveDirect().
 */
TensorI32 convolveDifferentialY(const TensorI16 &imap,
                                const FilterBankI16 &bank, int stride,
                                int dilation);

/**
 * Work counters for one convolution pass, in effectual Booth terms —
 * the unit a term-serial accelerator pays per cycle and lane.
 */
struct ConvWorkCount
{
    std::uint64_t multiplierTerms = 0; ///< terms fed to multipliers
    std::uint64_t macs = 0;            ///< multiply-accumulates issued
};

/** Count the term work of a direct convolution pass. */
ConvWorkCount countDirectWork(const TensorI16 &imap,
                              const FilterBankI16 &bank, int stride,
                              int dilation);

/** Count the term work of a differential convolution pass. */
ConvWorkCount countDifferentialWork(const TensorI16 &imap,
                                    const FilterBankI16 &bank, int stride,
                                    int dilation);

/** Count the term work of a Y-direction differential pass. */
ConvWorkCount countDifferentialWorkY(const TensorI16 &imap,
                                     const FilterBankI16 &bank, int stride,
                                     int dilation);

} // namespace diffy

#endif // DIFFY_CORE_DIFFERENTIAL_CONV_HH
