#include "core/temporal.hh"

#include <limits>
#include <stdexcept>
#include <vector>

#include "common/bitops.hh"
#include "core/differential_conv.hh"
#include "encode/temporal.hh"

namespace diffy
{

namespace
{

std::int32_t
clampToI32(std::int64_t v)
{
    if (v > std::numeric_limits<std::int32_t>::max() ||
        v < std::numeric_limits<std::int32_t>::min()) {
        throw std::overflow_error("temporal conv: accumulator overflow");
    }
    return static_cast<std::int32_t>(v);
}

/** Sum of per-value Booth term counts over an int16 plane. */
std::uint64_t
boothTermSum(const std::int16_t *src, std::size_t n)
{
    AlignedVec<std::uint8_t> terms(n, scratchAlloc<std::uint8_t>());
    boothTermsPlane(src, terms.data(), n);
    std::uint64_t sum = 0;
    for (std::uint8_t t : terms)
        sum += t;
    return sum;
}

std::uint64_t
boothTermSum(const std::int32_t *src, std::size_t n)
{
    AlignedVec<std::uint8_t> terms(n, scratchAlloc<std::uint8_t>());
    boothTermsPlane(src, terms.data(), n);
    std::uint64_t sum = 0;
    for (std::uint8_t t : terms)
        sum += t;
    return sum;
}

/**
 * X-axis deltas of an int32 map (row-leading values raw) — the
 * "both axes composed" encoding of the ablation. The int16 xDeltas()
 * in the tensor library cannot hold 17-bit temporal deltas.
 */
TensorI32
xDeltas32(const TensorI32 &t)
{
    TensorI32 out(t.shape(), scratchAlloc<std::int32_t>());
    for (int c = 0; c < t.channels(); ++c) {
        for (int y = 0; y < t.height(); ++y) {
            std::int32_t prev = 0;
            for (int x = 0; x < t.width(); ++x) {
                std::int32_t cur = t.at(c, y, x);
                out.at(c, y, x) = x == 0 ? cur : cur - prev;
                prev = cur;
            }
        }
    }
    return out;
}

} // namespace

TensorI32
convolveTemporalDelta(const TensorI32 &delta, const FilterBankI16 &bank,
                      int stride, int dilation)
{
    if (bank.channels() != delta.channels())
        throw std::invalid_argument("temporal conv: channel mismatch");
    if (bank.height() != bank.width())
        throw std::invalid_argument("temporal conv: non-square kernel");
    const int k = bank.height();
    const int eff_k = dilation * (k - 1) + 1;
    const int pad = (eff_k - 1) / 2;
    const int out_h = (delta.height() + 2 * pad - eff_k) / stride + 1;
    const int out_w = (delta.width() + 2 * pad - eff_k) / stride + 1;

    TensorI32 out(bank.filters(), out_h, out_w,
                  scratchAlloc<std::int32_t>());
    for (int f = 0; f < bank.filters(); ++f) {
        for (int oy = 0; oy < out_h; ++oy) {
            for (int ox = 0; ox < out_w; ++ox) {
                std::int64_t acc = 0;
                for (int c = 0; c < delta.channels(); ++c) {
                    for (int ky = 0; ky < k; ++ky) {
                        const int iy = oy * stride + ky * dilation - pad;
                        if (iy < 0 || iy >= delta.height())
                            continue;
                        for (int kx = 0; kx < k; ++kx) {
                            const int ix =
                                ox * stride + kx * dilation - pad;
                            if (ix < 0 || ix >= delta.width())
                                continue;
                            acc += static_cast<std::int64_t>(
                                       delta.at(c, iy, ix)) *
                                   bank.at(f, c, ky, kx);
                        }
                    }
                }
                out.at(f, oy, ox) = clampToI32(acc);
            }
        }
    }
    return out;
}

TensorI32
temporalDelta(const TensorI16 &prev, const TensorI16 &cur)
{
    if (prev.shape() != cur.shape())
        throw std::invalid_argument("temporalDelta: shape mismatch");
    TensorI32 out(cur.shape(), scratchAlloc<std::int32_t>());
    const std::int16_t *p = prev.data();
    const std::int16_t *c = cur.data();
    std::int32_t *d = out.data();
    for (std::size_t i = 0; i < out.size(); ++i)
        d[i] = static_cast<std::int32_t>(c[i]) -
               static_cast<std::int32_t>(p[i]);
    return out;
}

TemporalFrameStats &
TemporalFrameStats::operator+=(const TemporalFrameStats &o)
{
    layerCount += o.layerCount;
    anchored += o.anchored;
    exact = exact && o.exact;
    values += o.values;
    rawTerms += o.rawTerms;
    spatialTerms += o.spatialTerms;
    temporalTerms += o.temporalTerms;
    temporalSpatialTerms += o.temporalSpatialTerms;
    codecBits += o.codecBits;
    return *this;
}

TemporalFrameStats
temporalStep(TemporalNetState &state, const NetworkTrace &trace,
             int frameIndex, const TemporalOptions &opts)
{
    if (opts.reanchorInterval < 0)
        throw std::invalid_argument("temporalStep: negative reanchor");
    state.layers.resize(trace.layers.size());
    const TemporalCodec codec(16);

    TemporalFrameStats stats;
    stats.layerCount = static_cast<int>(trace.layers.size());
    for (std::size_t li = 0; li < trace.layers.size(); ++li) {
        const LayerTrace &lt = trace.layers[li];
        TemporalLayerState &st = state.layers[li];
        const std::size_t n = lt.imap.size();
        stats.values += n;

        const std::uint64_t rawTerms = boothTermSum(lt.imap.data(), n);
        const TensorI16 spatial = xDeltas(lt.imap);
        const std::uint64_t spatialTerms =
            boothTermSum(spatial.data(), n);
        stats.rawTerms += rawTerms;
        stats.spatialTerms += spatialTerms;

        // A format or geometry change invalidates the reference: the
        // previous frame's quantized values live in a different
        // fixed-point grid, so "o_{t-1} + conv(Δ)" would mix scales.
        const bool anchor =
            !st.valid || st.prevImap.shape() != lt.imap.shape() ||
            st.prevFracBits != lt.imapFracBits ||
            (opts.reanchorInterval > 0 &&
             frameIndex % opts.reanchorInterval == 0);

        TensorI32 omap;
        if (anchor) {
            omap = convolveDirect(lt.imap, lt.weights, lt.spec.stride,
                                  lt.spec.dilation);
            ++stats.anchored;
            stats.temporalTerms += rawTerms;
            stats.temporalSpatialTerms += spatialTerms;
            stats.codecBits += n * 16;
        } else {
            const TensorI32 delta = temporalDelta(st.prevImap, lt.imap);
            const TensorI32 deltaOut = convolveTemporalDelta(
                delta, lt.weights, lt.spec.stride, lt.spec.dilation);
            if (deltaOut.shape() != st.prevOmap.shape())
                throw std::logic_error(
                    "temporalStep: delta output geometry diverged");
            omap = TensorI32(deltaOut.shape(),
                             scratchAlloc<std::int32_t>());
            const std::int32_t *po = st.prevOmap.data();
            const std::int32_t *dl = deltaOut.data();
            std::int32_t *oo = omap.data();
            for (std::size_t i = 0; i < omap.size(); ++i)
                oo[i] = clampToI32(static_cast<std::int64_t>(po[i]) +
                                   dl[i]);
            stats.temporalTerms += boothTermSum(delta.data(), n);
            const TensorI32 both = xDeltas32(delta);
            stats.temporalSpatialTerms += boothTermSum(both.data(), n);
            stats.codecBits += codec.encode(st.prevImap, lt.imap).bits;

            if (opts.verifyAgainstOracle) {
                const TensorI32 oracle =
                    convolveDirect(lt.imap, lt.weights, lt.spec.stride,
                                   lt.spec.dilation);
                if (!(omap == oracle)) {
                    stats.exact = false;
                    throw std::runtime_error(
                        "temporalStep: layer " + lt.spec.name +
                        " reconstruction diverged from the per-frame "
                        "oracle at frame " + std::to_string(frameIndex));
                }
            }
        }

        // Copy-assign (not move): cross-frame state must stay on the
        // destination's resource. omap may be arena-backed under an
        // ArenaScope, and a move would adopt storage the next rewind()
        // recycles (common/aligned.hh propagation contract).
        st.prevImap = lt.imap;
        st.prevOmap = omap;
        st.prevFracBits = lt.imapFracBits;
        st.valid = true;
    }
    return stats;
}

} // namespace diffy
