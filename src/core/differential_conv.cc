#include "core/differential_conv.hh"

#include <limits>
#include <stdexcept>

#include "common/bitops.hh"

namespace diffy
{

namespace
{

void
checkShapes(const TensorI16 &imap, const FilterBankI16 &bank)
{
    if (bank.channels() != imap.channels())
        throw std::invalid_argument("conv: channel mismatch");
    if (bank.height() != bank.width())
        throw std::invalid_argument("conv: non-square kernel");
}

/** Inner product of one window against one filter, 64-bit exact. */
std::int64_t
windowDot(const TensorI16 &imap, const FilterBankI16 &bank, int f, int oy,
          int ox, int stride, int dilation, int pad)
{
    const int k = bank.height();
    std::int64_t acc = 0;
    for (int c = 0; c < imap.channels(); ++c) {
        for (int ky = 0; ky < k; ++ky) {
            const int iy = oy * stride + ky * dilation - pad;
            if (iy < 0 || iy >= imap.height())
                continue;
            for (int kx = 0; kx < k; ++kx) {
                const int ix = ox * stride + kx * dilation - pad;
                if (ix < 0 || ix >= imap.width())
                    continue;
                acc += static_cast<std::int64_t>(imap.at(c, iy, ix)) *
                       bank.at(f, c, ky, kx);
            }
        }
    }
    return acc;
}

/**
 * Inner product of the delta window (window at ox minus window at
 * ox-1) against one filter. Out-of-bounds taps read zero padding.
 */
std::int64_t
deltaWindowDot(const TensorI16 &imap, const FilterBankI16 &bank, int f,
               int oy, int ox, int stride, int dilation, int pad)
{
    const int k = bank.height();
    std::int64_t acc = 0;
    for (int c = 0; c < imap.channels(); ++c) {
        for (int ky = 0; ky < k; ++ky) {
            const int iy = oy * stride + ky * dilation - pad;
            if (iy < 0 || iy >= imap.height())
                continue;
            for (int kx = 0; kx < k; ++kx) {
                const int ix = ox * stride + kx * dilation - pad;
                const int ix_prev = ix - stride;
                std::int32_t cur =
                    (ix >= 0 && ix < imap.width()) ? imap.at(c, iy, ix)
                                                   : 0;
                std::int32_t prev =
                    (ix_prev >= 0 && ix_prev < imap.width())
                        ? imap.at(c, iy, ix_prev)
                        : 0;
                if (cur == prev)
                    continue;
                acc += static_cast<std::int64_t>(cur - prev) *
                       bank.at(f, c, ky, kx);
            }
        }
    }
    return acc;
}

std::int32_t
clampToI32(std::int64_t v)
{
    // Accumulators fit comfortably for 16b data and the kernel sizes
    // studied; keep a hard check rather than silent wraparound.
    if (v > std::numeric_limits<std::int32_t>::max() ||
        v < std::numeric_limits<std::int32_t>::min()) {
        throw std::overflow_error("conv: accumulator overflow");
    }
    return static_cast<std::int32_t>(v);
}

} // namespace

TensorI32
convolveDirect(const TensorI16 &imap, const FilterBankI16 &bank,
               int stride, int dilation)
{
    checkShapes(imap, bank);
    const int k = bank.height();
    const int eff_k = dilation * (k - 1) + 1;
    const int pad = (eff_k - 1) / 2;
    const int out_h = (imap.height() + 2 * pad - eff_k) / stride + 1;
    const int out_w = (imap.width() + 2 * pad - eff_k) / stride + 1;

    TensorI32 out(bank.filters(), out_h, out_w,
                  scratchAlloc<std::int32_t>());
    for (int f = 0; f < bank.filters(); ++f) {
        for (int oy = 0; oy < out_h; ++oy) {
            for (int ox = 0; ox < out_w; ++ox) {
                out.at(f, oy, ox) = clampToI32(windowDot(
                    imap, bank, f, oy, ox, stride, dilation, pad));
            }
        }
    }
    return out;
}

TensorI32
convolveDifferential(const TensorI16 &imap, const FilterBankI16 &bank,
                     int stride, int dilation)
{
    checkShapes(imap, bank);
    const int k = bank.height();
    const int eff_k = dilation * (k - 1) + 1;
    const int pad = (eff_k - 1) / 2;
    const int out_h = (imap.height() + 2 * pad - eff_k) / stride + 1;
    const int out_w = (imap.width() + 2 * pad - eff_k) / stride + 1;

    TensorI32 out(bank.filters(), out_h, out_w,
                  scratchAlloc<std::int32_t>());
    for (int f = 0; f < bank.filters(); ++f) {
        for (int oy = 0; oy < out_h; ++oy) {
            // Phase 1: leftmost output directly, the rest as
            // differential terms <W, delta window>.
            std::int64_t base = windowDot(imap, bank, f, oy, 0, stride,
                                          dilation, pad);
            out.at(f, oy, 0) = clampToI32(base);
            for (int ox = 1; ox < out_w; ++ox) {
                std::int64_t diff = deltaWindowDot(
                    imap, bank, f, oy, ox, stride, dilation, pad);
                // Phase 2 (cascaded reconstruction), fused here.
                base += diff;
                out.at(f, oy, ox) = clampToI32(base);
            }
        }
    }
    return out;
}

namespace
{

/**
 * Inner product of the Y-delta window (window at oy minus window at
 * oy-1) against one filter.
 */
std::int64_t
deltaWindowDotY(const TensorI16 &imap, const FilterBankI16 &bank, int f,
                int oy, int ox, int stride, int dilation, int pad)
{
    const int k = bank.height();
    std::int64_t acc = 0;
    for (int c = 0; c < imap.channels(); ++c) {
        for (int ky = 0; ky < k; ++ky) {
            const int iy = oy * stride + ky * dilation - pad;
            const int iy_prev = iy - stride;
            const bool cur_in = iy >= 0 && iy < imap.height();
            const bool prev_in = iy_prev >= 0 && iy_prev < imap.height();
            if (!cur_in && !prev_in)
                continue;
            for (int kx = 0; kx < k; ++kx) {
                const int ix = ox * stride + kx * dilation - pad;
                if (ix < 0 || ix >= imap.width())
                    continue;
                std::int32_t cur = cur_in ? imap.at(c, iy, ix) : 0;
                std::int32_t prev =
                    prev_in ? imap.at(c, iy_prev, ix) : 0;
                if (cur == prev)
                    continue;
                acc += static_cast<std::int64_t>(cur - prev) *
                       bank.at(f, c, ky, kx);
            }
        }
    }
    return acc;
}

} // namespace

TensorI32
convolveDifferentialY(const TensorI16 &imap, const FilterBankI16 &bank,
                      int stride, int dilation)
{
    checkShapes(imap, bank);
    const int k = bank.height();
    const int eff_k = dilation * (k - 1) + 1;
    const int pad = (eff_k - 1) / 2;
    const int out_h = (imap.height() + 2 * pad - eff_k) / stride + 1;
    const int out_w = (imap.width() + 2 * pad - eff_k) / stride + 1;

    TensorI32 out(bank.filters(), out_h, out_w,
                  scratchAlloc<std::int32_t>());
    for (int f = 0; f < bank.filters(); ++f) {
        for (int ox = 0; ox < out_w; ++ox) {
            std::int64_t base = windowDot(imap, bank, f, 0, ox, stride,
                                          dilation, pad);
            out.at(f, 0, ox) = clampToI32(base);
            for (int oy = 1; oy < out_h; ++oy) {
                base += deltaWindowDotY(imap, bank, f, oy, ox, stride,
                                        dilation, pad);
                out.at(f, oy, ox) = clampToI32(base);
            }
        }
    }
    return out;
}

ConvWorkCount
countDifferentialWorkY(const TensorI16 &imap, const FilterBankI16 &bank,
                       int stride, int dilation)
{
    checkShapes(imap, bank);
    const int k = bank.height();
    const int eff_k = dilation * (k - 1) + 1;
    const int pad = (eff_k - 1) / 2;
    const int out_h = (imap.height() + 2 * pad - eff_k) / stride + 1;
    const int out_w = (imap.width() + 2 * pad - eff_k) / stride + 1;

    ConvWorkCount wc;
    const std::uint64_t filters =
        static_cast<std::uint64_t>(bank.filters());
    for (int oy = 0; oy < out_h; ++oy) {
        for (int ox = 0; ox < out_w; ++ox) {
            for (int c = 0; c < imap.channels(); ++c) {
                for (int ky = 0; ky < k; ++ky) {
                    const int iy = oy * stride + ky * dilation - pad;
                    for (int kx = 0; kx < k; ++kx) {
                        const int ix =
                            ox * stride + kx * dilation - pad;
                        if (ix < 0 || ix >= imap.width())
                            continue;
                        std::int32_t cur =
                            (iy >= 0 && iy < imap.height())
                                ? imap.at(c, iy, ix)
                                : 0;
                        std::int32_t value = cur;
                        if (oy > 0) {
                            const int iyp = iy - stride;
                            std::int32_t prev =
                                (iyp >= 0 && iyp < imap.height())
                                    ? imap.at(c, iyp, ix)
                                    : 0;
                            value = cur - prev;
                        }
                        if (iy < 0 || iy >= imap.height()) {
                            if (oy == 0)
                                continue; // true padding zero
                        }
                        wc.multiplierTerms +=
                            static_cast<std::uint64_t>(
                                boothTerms(value)) *
                            filters;
                        wc.macs += filters;
                    }
                }
            }
        }
    }
    return wc;
}

namespace
{

template <bool kDifferential>
ConvWorkCount
countWork(const TensorI16 &imap, const FilterBankI16 &bank, int stride,
          int dilation)
{
    checkShapes(imap, bank);
    const int k = bank.height();
    const int eff_k = dilation * (k - 1) + 1;
    const int pad = (eff_k - 1) / 2;
    const int out_h = (imap.height() + 2 * pad - eff_k) / stride + 1;
    const int out_w = (imap.width() + 2 * pad - eff_k) / stride + 1;

    ConvWorkCount wc;
    // Work is identical across filters; count one filter's stream and
    // scale, since the activation term content does not depend on f.
    const std::uint64_t filters =
        static_cast<std::uint64_t>(bank.filters());
    for (int oy = 0; oy < out_h; ++oy) {
        for (int ox = 0; ox < out_w; ++ox) {
            for (int c = 0; c < imap.channels(); ++c) {
                for (int ky = 0; ky < k; ++ky) {
                    const int iy = oy * stride + ky * dilation - pad;
                    if (iy < 0 || iy >= imap.height())
                        continue;
                    for (int kx = 0; kx < k; ++kx) {
                        const int ix =
                            ox * stride + kx * dilation - pad;
                        std::int32_t cur =
                            (ix >= 0 && ix < imap.width())
                                ? imap.at(c, iy, ix)
                                : 0;
                        std::int32_t value = cur;
                        if (kDifferential && ox > 0) {
                            const int ixp = ix - stride;
                            std::int32_t prev =
                                (ixp >= 0 && ixp < imap.width())
                                    ? imap.at(c, iy, ixp)
                                    : 0;
                            value = cur - prev;
                        }
                        wc.multiplierTerms +=
                            static_cast<std::uint64_t>(
                                boothTerms(value)) *
                            filters;
                        wc.macs += filters;
                    }
                }
            }
        }
    }
    return wc;
}

} // namespace

ConvWorkCount
countDirectWork(const TensorI16 &imap, const FilterBankI16 &bank,
                int stride, int dilation)
{
    return countWork<false>(imap, bank, stride, dilation);
}

ConvWorkCount
countDifferentialWork(const TensorI16 &imap, const FilterBankI16 &bank,
                      int stride, int dilation)
{
    return countWork<true>(imap, bank, stride, dilation);
}

} // namespace diffy
