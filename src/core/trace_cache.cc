#include "core/trace_cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace diffy
{

TraceCache::TraceCache(std::string directory)
    : directory_(std::move(directory))
{}

std::string
TraceCache::cacheKey(const NetworkSpec &net, const SceneParams &scene,
                     const ExecutorOptions &opts)
{
    std::ostringstream os;
    os << net.name << "_" << to_string(scene.kind) << "_" << scene.width
       << "x" << scene.height << "_s" << std::hex << scene.seed << "_r"
       << static_cast<int>(scene.roughness * 1000) << "_n"
       << static_cast<int>(scene.noiseSigma * 1000) << "_w" << std::hex
       << opts.weightSeed << "_p"
       << static_cast<int>(opts.weightSparsity * 1000) << "_m" << std::hex
       << opts.sparsitySeed << "_q" << std::dec
       << static_cast<int>(opts.activationRelError * 100000);
    return os.str();
}

NetworkTrace
TraceCache::get(const NetworkSpec &net, const SceneParams &scene,
                const ExecutorOptions &opts)
{
    std::filesystem::path path;
    if (!directory_.empty()) {
        path = std::filesystem::path(directory_) /
               (cacheKey(net, scene, opts) + ".trace");
        if (std::filesystem::exists(path)) {
            std::ifstream in(path, std::ios::binary);
            try {
                return loadTrace(in);
            } catch (const std::exception &) {
                // Corrupt or stale cache entry: fall through and
                // recompute; the store below overwrites it.
            }
        }
    }

    Tensor3<float> rgb = renderScene(scene);
    NetworkTrace trace = runNetwork(net, rgb, opts);

    if (!directory_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(directory_, ec);
        if (!ec) {
            std::ofstream out(path, std::ios::binary);
            saveTrace(trace, out);
        }
    }
    return trace;
}

} // namespace diffy
