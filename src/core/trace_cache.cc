#include "core/trace_cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "obs/metrics.hh"
#include "obs/trace.hh"

namespace diffy
{

namespace
{

/** Registry handles for the trace-cache counters, resolved once. */
struct CacheMetrics
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &singleFlightWaits;
    obs::Counter &diskLoads;
    obs::Counter &corruptEvictions;
};

CacheMetrics &
cacheMetrics()
{
    auto &reg = obs::MetricsRegistry::instance();
    static CacheMetrics metrics{
        reg.counter("trace_cache.hits"),
        reg.counter("trace_cache.misses"),
        reg.counter("trace_cache.singleflight_waits"),
        reg.counter("trace_cache.disk_loads"),
        reg.counter("trace_cache.corrupt_evictions"),
    };
    return metrics;
}

} // namespace

TraceCache::TraceCache(std::string directory, Tracer tracer)
    : directory_(std::move(directory)), tracer_(std::move(tracer))
{
    if (!tracer_) {
        tracer_ = [](const NetworkSpec &net, const SceneParams &scene,
                     const ExecutorOptions &opts) {
            Tensor3<float> rgb = renderScene(scene);
            return runNetwork(net, rgb, opts);
        };
    }
}

std::string
TraceCache::cacheKey(const NetworkSpec &net, const SceneParams &scene,
                     const ExecutorOptions &opts)
{
    std::ostringstream os;
    os << net.name << "_" << to_string(scene.kind) << "_" << scene.width
       << "x" << scene.height << "_s" << std::hex << scene.seed << "_r"
       << static_cast<int>(scene.roughness * 1000) << "_n"
       << static_cast<int>(scene.noiseSigma * 1000) << "_w" << std::hex
       << opts.weightSeed << "_p"
       << static_cast<int>(opts.weightSparsity * 1000) << "_m" << std::hex
       << opts.sparsitySeed << "_q" << std::dec
       << static_cast<int>(opts.activationRelError * 100000);
    return os.str();
}

NetworkTrace
TraceCache::compute(const std::string &key, const NetworkSpec &net,
                    const SceneParams &scene,
                    const ExecutorOptions &opts) const
{
    obs::Span span(obs::Tracer::global(), "trace_cache.compute");
    std::filesystem::path path;
    if (!directory_.empty()) {
        path = std::filesystem::path(directory_) / (key + ".trace");
        if (std::filesystem::exists(path)) {
            std::ifstream in(path, std::ios::binary);
            try {
                NetworkTrace trace = loadTrace(in);
                cacheMetrics().diskLoads.add(1);
                return trace;
            } catch (const std::exception &) {
                // Corrupt or stale cache entry (bad magic, truncated,
                // or a CRC mismatch from loadTrace's verified
                // envelope): quarantine the file under a `.corrupt`
                // name so it can be inspected post-mortem and can
                // never be re-read as a valid entry, then fall
                // through to the single-flight recompute; the store
                // below writes a fresh, verified entry.
                in.close();
                cacheMetrics().corruptEvictions.add(1);
                std::error_code ec;
                std::filesystem::path corrupt = path;
                corrupt += ".corrupt";
                std::filesystem::rename(path, corrupt, ec);
                if (ec)
                    std::filesystem::remove(path, ec);
            }
        }
    }

    NetworkTrace trace = tracer_(net, scene, opts);

    if (!directory_.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(directory_, ec);
        if (!ec) {
            // Write-to-temp + rename: a concurrent reader (or another
            // process) never sees a partially written trace file.
            std::filesystem::path tmp = path;
            tmp += ".tmp";
            {
                std::ofstream out(tmp, std::ios::binary);
                saveTrace(trace, out);
            }
            std::filesystem::rename(tmp, path, ec);
            if (ec)
                std::filesystem::remove(tmp, ec);
        }
    }
    return trace;
}

NetworkTrace
TraceCache::get(const NetworkSpec &net, const SceneParams &scene,
                const ExecutorOptions &opts)
{
    const std::string key = cacheKey(net, scene, opts);

    {
        std::shared_lock<std::shared_mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            std::shared_future<NetworkTrace> future = it->second;
            lock.unlock();
            cacheMetrics().hits.add(1);
            return future.get();
        }
    }

    std::promise<NetworkTrace> promise;
    {
        std::unique_lock<std::shared_mutex> lock(mutex_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
            // Lost the install race: wait on the winner's flight.
            std::shared_future<NetworkTrace> future = it->second;
            lock.unlock();
            cacheMetrics().singleFlightWaits.add(1);
            return future.get();
        }
        entries_.emplace(key, promise.get_future().share());
    }
    cacheMetrics().misses.add(1);

    // Single-flight: this thread owns the computation for `key`; any
    // concurrent requester blocks on the shared_future installed
    // above. Tracing runs outside the lock so other keys make
    // progress meanwhile.
    try {
        NetworkTrace trace = compute(key, net, scene, opts);
        promise.set_value(trace);
        return trace;
    } catch (...) {
        // Waiters inherit the failure via the future; drop the entry
        // so a later get() can retry instead of replaying a stale
        // exception forever.
        promise.set_exception(std::current_exception());
        std::unique_lock<std::shared_mutex> lock(mutex_);
        entries_.erase(key);
        throw;
    }
}

} // namespace diffy
