#include "serve/saturation.hh"

#include <cmath>
#include <ostream>
#include <stdexcept>
#include <string>

#include "common/rng.hh"
#include "obs/metrics.hh"
#include "runtime/sweep.hh"

namespace diffy
{

namespace
{

/** Upper edge of a log2-nanosecond bucket, in seconds. */
double
bucketSeconds(std::int64_t bucket)
{
    return std::ldexp(1.0, static_cast<int>(bucket)) * 1e-9;
}

StreamLatency
latencyOf(int stream)
{
    StreamLatency out;
    out.stream = stream;
    const auto snap = obs::MetricsRegistry::instance()
                          .histogram("serve.frame_seconds:s" +
                                     std::to_string(stream))
                          .snapshot();
    out.samples = snap.stat.count();
    if (snap.log2Nanos.total() > 0) {
        out.p50Seconds = bucketSeconds(snap.log2Nanos.quantile(0.5));
        out.p99Seconds = bucketSeconds(snap.log2Nanos.quantile(0.99));
    }
    return out;
}

} // namespace

void
SaturationOptions::validate() const
{
    serve.validate();
    if (rounds < 1)
        throw std::invalid_argument(
            "SaturationOptions: rounds must be >= 1, got " +
            std::to_string(rounds));
    if (offeredGrid.empty())
        throw std::invalid_argument(
            "SaturationOptions: empty offered-load grid");
    for (int offered : offeredGrid)
        if (offered < 1)
            // Throw path: the message only materializes on rejection.
            throw std::invalid_argument(
                "SaturationOptions: offered load must be >= 1, got " +
                std::to_string(offered)); // diffy-lint: allow(R9)
}

SaturationPoint
runSaturationPoint(const ServeOptions &serve, int offeredPerRound,
                   int rounds, std::uint64_t arrivalSeed)
{
    auto &registry = obs::MetricsRegistry::instance();
    // Per-point quantiles: drop samples from earlier points (the
    // handles themselves are stable for the process lifetime).
    // Once per saturation point, not per served frame.
    for (int k = 0; k < serve.streams; ++k)
        registry
            .histogram("serve.frame_seconds:s" +
                       std::to_string(k)) // diffy-lint: allow(R9)
            .reset();
    registry.histogram("serve.batch_seconds").reset();

    StreamServer server(serve);
    for (int r = 0; r < rounds; ++r) {
        // Per-round generator: a higher offered load draws the same
        // arrival prefix plus extras, which is what makes the curve's
        // deterministic counters monotone in offered load.
        Rng rng(SweepScheduler::jobSeed(arrivalSeed,
                                        static_cast<std::size_t>(r)));
        for (int j = 0; j < offeredPerRound; ++j)
            server.offer(static_cast<int>(
                rng.below(static_cast<std::uint64_t>(serve.streams))));
        server.drainAll();
    }

    const ServeTotals totals = server.totals();
    SaturationPoint p;
    p.offeredPerRound = offeredPerRound;
    p.offered = totals.sum.offered;
    p.admitted = totals.sum.admitted;
    p.rejected = totals.sum.rejected;
    p.served = totals.sum.served;
    p.failed = totals.sum.failed;
    p.anchoredLayers = totals.sum.anchoredLayers;
    p.layers = totals.sum.layers;
    p.rawTerms = totals.sum.rawTerms;
    p.spatialTerms = totals.sum.spatialTerms;
    p.temporalTerms = totals.sum.temporalTerms;
    p.temporalSpatialTerms = totals.sum.temporalSpatialTerms;
    p.codecBits = totals.sum.codecBits;
    p.values = totals.sum.values;

    p.batchSeconds =
        registry.histogram("serve.batch_seconds").snapshot().stat.sum();
    p.throughputFps = p.batchSeconds > 0.0
                          ? static_cast<double>(p.served) / p.batchSeconds
                          : 0.0;
    p.latency.reserve(static_cast<std::size_t>(serve.streams));
    for (int k = 0; k < serve.streams; ++k)
        p.latency.push_back(latencyOf(k));
    return p;
}

SaturationCurve
runSaturation(const SaturationOptions &opts)
{
    opts.validate();
    SaturationCurve curve;
    curve.options = opts;
    curve.threads = SweepScheduler::resolveThreadCount(opts.serve.threads);
    curve.points.reserve(opts.offeredGrid.size());
    for (int offered : opts.offeredGrid)
        curve.points.push_back(runSaturationPoint(
            opts.serve, offered, opts.rounds, opts.arrivalSeed));
    return curve;
}

AllocationGateReport
runAllocationGate(const ServeOptions &serve, int warmupRounds,
                  int steadyRounds,
                  const std::function<void()> &onSteadyStart)
{
    if (warmupRounds < 1 || steadyRounds < 1)
        throw std::invalid_argument(
            "runAllocationGate: warmup and steady rounds must be >= 1");

    StreamServer server(serve);
    auto roundRobinRound = [&] {
        for (int k = 0; k < serve.streams; ++k)
            server.offer(k);
        server.drainAll();
    };

    for (int r = 0; r < warmupRounds; ++r)
        roundRobinRound();

    server.markSteadyState();
    const std::uint64_t servedBefore = server.totals().sum.served;
    if (onSteadyStart)
        onSteadyStart();

    for (int r = 0; r < steadyRounds; ++r)
        roundRobinRound();

    const BufferPool::Stats stats = server.bufferPool().stats();
    AllocationGateReport report;
    report.warmupRounds = warmupRounds;
    report.steadyRounds = steadyRounds;
    report.steadyPoolFetches = stats.steadyFetches;
    report.poolHeapFetches = stats.heapFetches;
    report.poolReuses = stats.reuses;
    report.poolBytesInUse = stats.bytesInUse;
    report.steadyServed = server.totals().sum.served - servedBefore;
    return report;
}

void
writeAllocationGateJson(const AllocationGateReport &report,
                        const ServeOptions &serve, std::ostream &os)
{
    os << "{\n  \"config\": {\n";
    os << "    \"network\": \"" << serve.network << "\",\n";
    os << "    \"streams\": " << serve.streams << ",\n";
    os << "    \"threads\": "
       << SweepScheduler::resolveThreadCount(serve.threads) << ",\n";
    os << "    \"frameHeight\": " << serve.frameHeight << ",\n";
    os << "    \"frameWidth\": " << serve.frameWidth << ",\n";
    os << "    \"reanchorInterval\": " << serve.reanchorInterval << ",\n";
    os << "    \"warmupRounds\": " << report.warmupRounds << ",\n";
    os << "    \"steadyRounds\": " << report.steadyRounds << "\n";
    os << "  },\n";
    os << "  \"steadyPoolFetches\": " << report.steadyPoolFetches << ",\n";
    os << "  \"poolHeapFetches\": " << report.poolHeapFetches << ",\n";
    os << "  \"poolReuses\": " << report.poolReuses << ",\n";
    os << "  \"poolBytesInUse\": " << report.poolBytesInUse << ",\n";
    os << "  \"steadyServed\": " << report.steadyServed << ",\n";
    os << "  \"opNewCalls\": " << report.opNewCalls << ",\n";
    os << "  \"opNewBytes\": " << report.opNewBytes << ",\n";
    os << "  \"passed\": " << (report.passed() ? "true" : "false") << "\n";
    os << "}\n";
}

void
writeSaturationJson(const SaturationCurve &curve, std::ostream &os)
{
    const ServeOptions &s = curve.options.serve;
    os.precision(12);
    os << "{\n  \"config\": {\n";
    os << "    \"network\": \"" << s.network << "\",\n";
    os << "    \"streams\": " << s.streams << ",\n";
    os << "    \"queueCapacity\": " << s.queueCapacity << ",\n";
    os << "    \"batchMax\": " << s.batchMax << ",\n";
    os << "    \"threads\": " << curve.threads << ",\n";
    os << "    \"reanchorInterval\": " << s.reanchorInterval << ",\n";
    os << "    \"frameHeight\": " << s.frameHeight << ",\n";
    os << "    \"frameWidth\": " << s.frameWidth << ",\n";
    os << "    \"motion\": \"" << to_string(s.motion) << "\",\n";
    os << "    \"amplitude\": " << s.amplitude << ",\n";
    os << "    \"rounds\": " << curve.options.rounds << ",\n";
    os << "    \"arrivalSeed\": " << curve.options.arrivalSeed << "\n";
    os << "  },\n  \"points\": [\n";
    for (std::size_t i = 0; i < curve.points.size(); ++i) {
        const SaturationPoint &p = curve.points[i];
        os << "    {\"offeredPerRound\": " << p.offeredPerRound;
        os << ", \"offered\": " << p.offered;
        os << ", \"admitted\": " << p.admitted;
        os << ", \"rejected\": " << p.rejected;
        os << ", \"served\": " << p.served;
        os << ", \"failed\": " << p.failed;
        os << ", \"anchoredLayers\": " << p.anchoredLayers;
        os << ", \"layers\": " << p.layers;
        os << ", \"rawTerms\": " << p.rawTerms;
        os << ", \"spatialTerms\": " << p.spatialTerms;
        os << ", \"temporalTerms\": " << p.temporalTerms;
        os << ", \"temporalSpatialTerms\": " << p.temporalSpatialTerms;
        os << ", \"codecBits\": " << p.codecBits;
        os << ", \"values\": " << p.values;
        os << ",\n     \"batchSeconds\": " << p.batchSeconds;
        os << ", \"throughputFps\": " << p.throughputFps;
        os << ",\n     \"latency\": [";
        for (std::size_t k = 0; k < p.latency.size(); ++k) {
            const StreamLatency &l = p.latency[k];
            os << (k ? ", " : "") << "{\"stream\": " << l.stream
               << ", \"samples\": " << l.samples
               << ", \"p50Seconds\": " << l.p50Seconds
               << ", \"p99Seconds\": " << l.p99Seconds << "}";
        }
        os << "]}" << (i + 1 < curve.points.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
}

} // namespace diffy
