#include "serve/stream_server.hh"

#include <array>
#include <stdexcept>
#include <utility>

#include "nn/models.hh"
#include "obs/metrics.hh"
#include "obs/pool_gauges.hh"
#include "runtime/sweep.hh"

namespace diffy
{

namespace
{

/** Scene family of stream @p k — cycled so a fleet of streams covers
 *  the synthesizer's statistics rather than five copies of one. */
SceneKind
streamScene(int k)
{
    switch (k % 5) {
      case 0:
        return SceneKind::Nature;
      case 1:
        return SceneKind::City;
      case 2:
        return SceneKind::Texture;
      case 3:
        return SceneKind::Gradient;
      default:
        return SceneKind::Portrait;
    }
}

constexpr std::size_t kFailureKinds =
    static_cast<std::size_t>(FailureKind::Unknown) + 1;

} // namespace

void
ServeOptions::validate() const
{
    auto bad = [](const std::string &msg) {
        throw std::invalid_argument("ServeOptions: " + msg);
    };
    if (streams < 1)
        bad("streams must be >= 1, got " + std::to_string(streams));
    if (queueCapacity < 1)
        bad("queueCapacity must be >= 1, got " +
            std::to_string(queueCapacity));
    if (batchMax < 1)
        bad("batchMax must be >= 1, got " + std::to_string(batchMax));
    if (threads < 0)
        bad("threads must be >= 0, got " + std::to_string(threads));
    if (reanchorInterval < 0)
        bad("reanchorInterval must be >= 0, got " +
            std::to_string(reanchorInterval));
    if (frameHeight < 8 || frameWidth < 8)
        bad("frame size must be >= 8x8, got " +
            std::to_string(frameHeight) + "x" + std::to_string(frameWidth));
    if (amplitude < 0)
        bad("amplitude must be >= 0, got " + std::to_string(amplitude));
}

/** One logical client: its sequence, temporal state, and tallies. */
struct StreamServer::Stream
{
    FrameSequence seq;
    TemporalNetState state;
    /** Next frame index to offer; advances on every offer. */
    std::int64_t clock = 0;
    StreamCounters counters;
    /** Per-stream latency histogram handle (stable for the process). */
    obs::LatencyHistogram *latency = nullptr;
    /**
     * Per-stream frame arena, rewound at the start of each job. Safe
     * because runBatch() never picks two requests of one stream, so at
     * most one worker touches this arena at a time, and nothing
     * arena-backed survives the job: cross-frame state (prevImap /
     * prevOmap) is copy-assigned, which keeps its heap storage.
     */
    FrameArena arena;

    Stream(const SequenceParams &p, BufferPool &pool)
        : seq(p), arena(pool)
    {}
};

StreamServer::StreamServer(const ServeOptions &opts)
    : opts_(opts), failuresByKind_(kFailureKinds, 0)
{
    opts_.validate();
    threads_ = SweepScheduler::resolveThreadCount(opts_.threads);
    net_ = makeNetwork(opts_.network);
    streams_.reserve(static_cast<std::size_t>(opts_.streams));
    for (int k = 0; k < opts_.streams; ++k) {
        SequenceParams p;
        p.scene.kind = streamScene(k);
        p.scene.width = opts_.frameWidth;
        p.scene.height = opts_.frameHeight;
        p.scene.seed = SweepScheduler::jobSeed(
            opts_.seed, static_cast<std::size_t>(k));
        p.motion = opts_.motion;
        p.amplitude = opts_.amplitude;
        p.motionSeed = SweepScheduler::jobSeed(
            opts_.seed ^ 0xD1FF5EEDULL, static_cast<std::size_t>(k));
        // One-time construction, not the steady-state serve path.
        auto s = std::make_unique<Stream>( // diffy-lint: allow(R9)
            p, buffers_);
        s->latency = &obs::MetricsRegistry::instance().histogram(
            "serve.frame_seconds:s" +
            std::to_string(k)); // diffy-lint: allow(R9)
        streams_.push_back(std::move(s));
    }
    if (threads_ > 1)
        pool_ = std::make_unique<ThreadPool>(threads_);
}

StreamServer::~StreamServer() = default;

bool
StreamServer::offer(int stream)
{
    if (stream < 0 || stream >= static_cast<int>(streams_.size()))
        throw std::out_of_range("StreamServer: no stream " +
                                std::to_string(stream));
    Stream &s = *streams_[static_cast<std::size_t>(stream)];
    ++s.counters.offered;
    // The frame clock tracks the *camera*, not the queue: a rejected
    // offer drops the frame, and the next admitted one carries the
    // correspondingly wider temporal delta.
    const std::int64_t frame = s.clock++;
    if (pending_.size() >= static_cast<std::size_t>(opts_.queueCapacity)) {
        ++s.counters.rejected;
        obs::MetricsRegistry::instance().counter("serve.rejected").add(1);
        return false;
    }
    pending_.push_back({stream, frame});
    ++s.counters.admitted;
    return true;
}

int
StreamServer::runBatch()
{
    // Drain up to batchMax requests, never two of one stream: frame
    // t+1 needs frame t's omap as its temporal reference, so a
    // stream's requests are strictly sequential across batches.
    // Unpicked requests are compacted toward the front in place —
    // FIFO order among what remains, and no scratch deque per batch.
    std::vector<Request> batch;
    batch.reserve(static_cast<std::size_t>(opts_.batchMax));
    std::vector<bool> picked(streams_.size(), false);
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending_.size(); ++i) {
        const Request r = pending_[i];
        if (batch.size() < static_cast<std::size_t>(opts_.batchMax) &&
            !picked[static_cast<std::size_t>(r.stream)]) {
            picked[static_cast<std::size_t>(r.stream)] = true;
            batch.push_back(r);
        } else {
            pending_[kept++] = r;
        }
    }
    pending_.resize(kept);
    if (batch.empty())
        return 0;

    struct JobResult
    {
        bool ok = false;
        FailureKind kind = FailureKind::None;
        std::string message;
        TemporalFrameStats stats;
    };
    std::vector<JobResult> results(batch.size());

    auto body = [this](const Request &req, JobResult &out) {
        Stream &s = *streams_[static_cast<std::size_t>(req.stream)];
        obs::ScopedLatency timer(*s.latency);
        // Recycle the previous frame's scratch storage and make the
        // arena ambient for everything this job allocates. JobResult
        // carries no tensors, so nothing arena-backed escapes.
        s.arena.rewind();
        ArenaScope scope(s.arena);
        try {
            const Tensor3<float> rgb = s.seq.frame(req.frame);
            const NetworkTrace trace = runNetwork(net_, rgb, opts_.exec);
            TemporalOptions topts;
            topts.reanchorInterval = opts_.reanchorInterval;
            topts.verifyAgainstOracle = opts_.verifyOracle;
            out.stats = temporalStep(s.state, trace,
                                     static_cast<int>(req.frame), topts);
            out.ok = true;
        } catch (...) {
            // Never escapes the job: classified into the sweep
            // taxonomy and recorded in slot order below, so failure
            // accounting is independent of scheduling.
            out.kind =
                classifyException(std::current_exception(), &out.message);
        }
    };

    {
        obs::ScopedLatency timer(
            obs::MetricsRegistry::instance().histogram(
                "serve.batch_seconds"));
        if (pool_) {
            for (std::size_t i = 0; i < batch.size(); ++i)
                pool_->submit(
                    [&, i] { body(batch[i], results[i]); });
            pool_->wait();
        } else {
            for (std::size_t i = 0; i < batch.size(); ++i)
                body(batch[i], results[i]);
        }
    }

    // Reduce in admission order — the deterministic half of the loop.
    auto &registry = obs::MetricsRegistry::instance();
    std::uint64_t servedDelta = 0;
    std::array<std::uint64_t, kFailureKinds> failedDelta{};
    for (std::size_t i = 0; i < batch.size(); ++i) {
        Stream &s = *streams_[static_cast<std::size_t>(batch[i].stream)];
        const JobResult &r = results[i];
        if (r.ok) {
            ++s.counters.served;
            s.counters.anchoredLayers +=
                static_cast<std::uint64_t>(r.stats.anchored);
            s.counters.layers +=
                static_cast<std::uint64_t>(r.stats.layerCount);
            s.counters.values += r.stats.values;
            s.counters.rawTerms += r.stats.rawTerms;
            s.counters.spatialTerms += r.stats.spatialTerms;
            s.counters.temporalTerms += r.stats.temporalTerms;
            s.counters.temporalSpatialTerms += r.stats.temporalSpatialTerms;
            s.counters.codecBits += r.stats.codecBits;
            ++servedDelta;
        } else {
            ++s.counters.failed;
            ++failuresByKind_[static_cast<std::size_t>(r.kind)];
            ++failedDelta[static_cast<std::size_t>(r.kind)];
        }
    }
    // Metric emission is batch-granular report assembly: the counter
    // names are built once per batch here, not once per frame above.
    if (servedDelta > 0)
        registry.counter("serve.frames").add(servedDelta);
    for (std::size_t k = 0; k < kFailureKinds; ++k)
        if (failedDelta[k] > 0)
            registry
                .counter("serve.errors." + // diffy-lint: allow(R9)
                         to_string(static_cast<FailureKind>(k)))
                .add(failedDelta[k]);
    obs::publishPoolGauges();
    return static_cast<int>(batch.size());
}

void
StreamServer::drainAll()
{
    while (runBatch() > 0) {
    }
}

const StreamCounters &
StreamServer::counters(int stream) const
{
    if (stream < 0 || stream >= static_cast<int>(streams_.size()))
        throw std::out_of_range("StreamServer: no stream " +
                                std::to_string(stream));
    return streams_[static_cast<std::size_t>(stream)]->counters;
}

ServeTotals
StreamServer::totals() const
{
    ServeTotals t;
    t.failuresByKind = failuresByKind_;
    for (const auto &s : streams_) {
        const StreamCounters &c = s->counters;
        t.sum.offered += c.offered;
        t.sum.admitted += c.admitted;
        t.sum.rejected += c.rejected;
        t.sum.served += c.served;
        t.sum.failed += c.failed;
        t.sum.anchoredLayers += c.anchoredLayers;
        t.sum.layers += c.layers;
        t.sum.values += c.values;
        t.sum.rawTerms += c.rawTerms;
        t.sum.spatialTerms += c.spatialTerms;
        t.sum.temporalTerms += c.temporalTerms;
        t.sum.temporalSpatialTerms += c.temporalSpatialTerms;
        t.sum.codecBits += c.codecBits;
    }
    return t;
}

} // namespace diffy
