/**
 * @file
 * Streaming inference server (DESIGN.md §13).
 *
 * The StreamServer turns the batch simulator into a long-lived
 * service: it owns N logical client streams, each a deterministic
 * FrameSequence plus the per-stream temporal-delta state
 * (core/temporal.hh), and admits frame-inference requests into
 * batches executed over a *persistent* worker pool.
 *
 * Why not a SweepScheduler per batch: SweepScheduler::run() is built
 * for one-shot grids — it spawns a fresh pool and clears every
 * registered thread cache at setup, which would cold-start the
 * executor's prepared-weights memo on every batch. A serving loop
 * keeps its pool (and therefore its per-thread memos) alive across
 * batches, and reuses only the scheduler's determinism idioms:
 * preallocated result slots, reduction in admission order, per-job
 * exception capture.
 *
 * Stream state machine (per stream):
 *
 *     Anchored --delta frame--> Delta --K-th frame/format change--+
 *        ^                                                        |
 *        +--------------------------------------------------------+
 *
 * A request is one frame of one stream. The stream's frame clock
 * advances on every *offer* — a rejected frame is dropped, not
 * deferred, so the next admitted frame carries a wider temporal delta
 * (exactly what a real camera feed does under backpressure). Rejected
 * offers are counted per stream and in the `serve.rejected` obs
 * counter.
 *
 * Admission/backpressure: a bounded FIFO of admitted requests
 * (queueCapacity). runBatch() drains up to batchMax requests, never
 * two of the same stream — frame t+1 needs frame t's output as its
 * temporal reference, so per-stream execution is sequential while
 * distinct streams run concurrently.
 *
 * Determinism contract: every counter and stat visible on stdout is a
 * pure function of the offer/admission sequence — independent of
 * thread count and scheduling. Wall-clock latency goes only to the
 * obs registry (per-stream `serve.frame_seconds:s<k>` histograms,
 * `serve.batch_seconds`), never stdout. Failures inside a job are
 * classified through the sweep failure taxonomy into
 * `serve.errors.<kind>` counters and the stream's failed tally.
 */

#ifndef DIFFY_SERVE_STREAM_SERVER_HH
#define DIFFY_SERVE_STREAM_SERVER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/pool.hh"
#include "core/temporal.hh"
#include "image/sequence.hh"
#include "nn/executor.hh"
#include "runtime/resilience.hh"
#include "runtime/thread_pool.hh"

namespace diffy
{

/** Configuration of a StreamServer. */
struct ServeOptions
{
    /** Zoo model served to every stream. */
    std::string network = "MicroServe";
    ExecutorOptions exec;
    /** Logical client streams. */
    int streams = 4;
    /** Bound on admitted-but-unserved requests (all streams). */
    int queueCapacity = 8;
    /** Most requests drained into one batch. */
    int batchMax = 4;
    /** Worker threads; 0 resolves via DIFFY_THREADS (fallback 1). */
    int threads = 1;
    /** Temporal re-anchor interval (the DeltaD K knob); 0 = never. */
    int reanchorInterval = 16;
    /** Frame geometry of every stream. */
    int frameHeight = 32;
    int frameWidth = 32;
    /** Seed namespace: stream k's scene/motion derive from (seed, k). */
    std::uint64_t seed = 1;
    /** Camera model of every stream's sequence. */
    MotionKind motion = MotionKind::Pan;
    /** Camera excursion in pixels. */
    int amplitude = 4;
    /** Check every delta reconstruction against the per-frame oracle. */
    bool verifyOracle = false;

    /** @throws std::invalid_argument naming the offending knob. */
    void validate() const;
};

/** Deterministic per-stream accounting. */
struct StreamCounters
{
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    /** Offers dropped by backpressure (queue full). */
    std::uint64_t rejected = 0;
    /** Frames fully served (inference retired). */
    std::uint64_t served = 0;
    /** Frames whose job failed (classified, stream keeps going). */
    std::uint64_t failed = 0;
    /** Layer executions that took the anchor path. */
    std::uint64_t anchoredLayers = 0;
    /** Layer executions across all served frames. */
    std::uint64_t layers = 0;
    /** Work/footprint tallies summed over served frames. */
    std::uint64_t values = 0;
    std::uint64_t rawTerms = 0;
    std::uint64_t spatialTerms = 0;
    std::uint64_t temporalTerms = 0;
    std::uint64_t temporalSpatialTerms = 0;
    std::uint64_t codecBits = 0;
};

/** Aggregate view over all streams (index order, deterministic). */
struct ServeTotals
{
    StreamCounters sum;
    /** Per-kind failure counts, indexed by FailureKind cast. */
    std::vector<std::uint64_t> failuresByKind;
};

/** A long-lived multi-stream inference server. */
class StreamServer
{
  public:
    /** @throws std::invalid_argument via ServeOptions::validate(). */
    explicit StreamServer(const ServeOptions &opts);
    ~StreamServer();

    StreamServer(const StreamServer &) = delete;
    StreamServer &operator=(const StreamServer &) = delete;

    const ServeOptions &options() const { return opts_; }
    /** Resolved worker count (>= 1). */
    int threads() const { return threads_; }

    /**
     * Offer stream @p stream's next frame. The stream's frame clock
     * always advances; returns false (and counts the rejection) when
     * the admission queue is at capacity.
     */
    bool offer(int stream);

    /** Admitted requests not yet served. */
    std::size_t pending() const { return pending_.size(); }

    /**
     * Drain up to batchMax admitted requests — at most one per stream
     * — and execute them on the worker pool. Returns the number of
     * requests executed (0 when the queue is empty).
     */
    int runBatch();

    /** Run batches until the admission queue is empty. */
    void drainAll();

    /** Counters of stream @p stream. */
    const StreamCounters &counters(int stream) const;

    /** Sum over streams plus the failure-kind breakdown. */
    ServeTotals totals() const;

    /**
     * Declare warmup over: any later pool heap fetch counts into the
     * pool.allocs_steady_state gauge (the zero-allocation gate).
     */
    void markSteadyState() { buffers_.markSteadyState(); }

    /** The server-owned buffer pool (stats inspection). */
    const BufferPool &bufferPool() const { return buffers_; }

  private:
    struct Stream;
    struct Request
    {
        int stream = 0;
        std::int64_t frame = 0;
    };

    void serveOne(Stream &s, std::int64_t frame);

    ServeOptions opts_;
    int threads_ = 1;
    NetworkSpec net_;
    /**
     * Recycled frame buffers. Declared before streams_: each Stream
     * owns a FrameArena leasing slabs from this pool, and members
     * destroy in reverse order, so every arena dies first.
     */
    BufferPool buffers_;
    std::vector<std::unique_ptr<Stream>> streams_;
    std::deque<Request> pending_;
    std::unique_ptr<ThreadPool> pool_; ///< null when threads_ == 1
    std::vector<std::uint64_t> failuresByKind_;
};

} // namespace diffy

#endif // DIFFY_SERVE_STREAM_SERVER_HH
