/**
 * @file
 * Offered-load saturation sweep over a StreamServer (DESIGN.md §13).
 *
 * The bench drives the server in rounds: each round injects
 * `offeredPerRound` frame offers (stream picked per offer from a
 * seeded arrival process), then drains the admission queue. Sweeping
 * offeredPerRound maps out the saturation curve — served throughput
 * rises until the admission queue caps it, beyond which extra offers
 * are rejected by backpressure.
 *
 * Determinism: arrivals for round r draw from an Rng seeded by
 * (arrivalSeed, r), so a *higher* offered load replays the same
 * arrival prefix and appends to it. Offered/admitted/served/rejected
 * counts are therefore exact functions of the grid — monotone in
 * offered load, identical at any thread count — and are what the CI
 * gate diffs. Wall-clock figures (throughput, per-stream p50/p99 from
 * the obs latency histograms) are inherently run-dependent and appear
 * only in the JSON artifact, never on stdout.
 */

#ifndef DIFFY_SERVE_SATURATION_HH
#define DIFFY_SERVE_SATURATION_HH

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <vector>

#include "serve/stream_server.hh"

namespace diffy
{

/** Configuration of one saturation sweep. */
struct SaturationOptions
{
    ServeOptions serve;
    /** Offers injected per round, one sweep point per entry. */
    std::vector<int> offeredGrid = {1, 2, 4, 8, 16};
    /** Inject-then-drain rounds per point. */
    int rounds = 8;
    /** Seed of the arrival process (stream choice per offer). */
    std::uint64_t arrivalSeed = 42;

    /** @throws std::invalid_argument naming the offending knob. */
    void validate() const;
};

/** Wall-clock latency summary of one stream at one sweep point. */
struct StreamLatency
{
    int stream = 0;
    std::uint64_t samples = 0;
    /** Approximate quantiles: upper edge of the log2-ns bucket. */
    double p50Seconds = 0.0;
    double p99Seconds = 0.0;
};

/** One point of the saturation curve. */
struct SaturationPoint
{
    int offeredPerRound = 0;
    /** Deterministic counters (the stdout-visible half). */
    std::uint64_t offered = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t served = 0;
    std::uint64_t failed = 0;
    std::uint64_t anchoredLayers = 0;
    std::uint64_t layers = 0;
    std::uint64_t rawTerms = 0;
    std::uint64_t spatialTerms = 0;
    std::uint64_t temporalTerms = 0;
    std::uint64_t temporalSpatialTerms = 0;
    std::uint64_t codecBits = 0;
    std::uint64_t values = 0;
    /** Wall-clock figures (JSON artifact only). */
    double batchSeconds = 0.0;
    double throughputFps = 0.0;
    std::vector<StreamLatency> latency;
};

/** A full sweep: one point per offered-load grid entry. */
struct SaturationCurve
{
    SaturationOptions options;
    int threads = 1;
    std::vector<SaturationPoint> points;
};

/**
 * Run one sweep point on a fresh StreamServer (fresh temporal state
 * and counters; the per-stream latency histograms are reset so the
 * point's quantiles cover only its own frames).
 */
SaturationPoint runSaturationPoint(const ServeOptions &serve,
                                   int offeredPerRound, int rounds,
                                   std::uint64_t arrivalSeed);

/** Run the whole grid. @throws std::invalid_argument via validate(). */
SaturationCurve runSaturation(const SaturationOptions &opts);

/**
 * Serialize the curve as a JSON object: a `config` block plus a
 * `points` array with per-stream latency records — the CI artifact.
 */
void writeSaturationJson(const SaturationCurve &curve, std::ostream &os);

/**
 * Result of the steady-state allocation gate (DESIGN.md §16).
 *
 * The gate's pass/fail signal is steadyPoolFetches — buffer-pool heap
 * fetches after markSteadyState() — which is exactly what the
 * `pool.allocs_steady_state` gauge reports. The operator-new tallies
 * are *observational*: the bench fills them from its counting shim so
 * the JSON artifact tracks total steady-state heap traffic over time,
 * but they include allocator noise the gate does not own (stdio,
 * metrics registry growth) and therefore never decide pass/fail.
 */
struct AllocationGateReport
{
    int warmupRounds = 0;
    int steadyRounds = 0;
    /** Pool heap fetches after warmup — must be 0 (the gate). */
    std::uint64_t steadyPoolFetches = 0;
    /** Pool heap fetches over the whole run (warmup included). */
    std::uint64_t poolHeapFetches = 0;
    /** Pool buffer reuses over the whole run. */
    std::uint64_t poolReuses = 0;
    /** Bytes parked in the server's pool at the end of the run. */
    std::uint64_t poolBytesInUse = 0;
    /** Frames served in the steady phase (sanity: gate did real work). */
    std::uint64_t steadyServed = 0;
    /** Bench-filled operator-new tallies for the steady phase (JSON). */
    std::uint64_t opNewCalls = 0;
    std::uint64_t opNewBytes = 0;

    bool passed() const { return steadyPoolFetches == 0; }
};

/**
 * Drive a fresh StreamServer through @p warmupRounds round-robin
 * inject-then-drain rounds (every stream offered once per round, so
 * each arena and pool bucket sees its worst-case demand), call
 * markSteadyState() and @p onSteadyStart (the bench's shim toggle),
 * then run @p steadyRounds more rounds and report the pool counters.
 * Round-robin rather than the seeded arrival process: warmup must
 * visit *every* stream, or an unlucky arrival draw would leave a cold
 * arena to fetch its first slab inside the steady window.
 */
AllocationGateReport
runAllocationGate(const ServeOptions &serve, int warmupRounds,
                  int steadyRounds,
                  const std::function<void()> &onSteadyStart = {});

/** Serialize the gate report as a JSON object — the CI artifact. */
void writeAllocationGateJson(const AllocationGateReport &report,
                             const ServeOptions &serve, std::ostream &os);

} // namespace diffy

#endif // DIFFY_SERVE_SATURATION_HH
