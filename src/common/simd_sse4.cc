/**
 * @file
 * SSE4 kernel table: the shared 128-bit implementations, compiled
 * with -msse4.2 in this TU only. Reached on x86 hosts without AVX2
 * (or via DIFFY_ISA=sse4).
 */

#include "common/simd.hh"
#include "common/simd_x86.hh"

namespace diffy::simd::detail
{

const KernelTable &
sse4Table()
{
    static const KernelTable t = {
        Isa::Sse4,          &x86::boothPlane16, &x86::boothPlane32,
        &x86::bitsPlane16,  &x86::bitsPlane32,  &x86::groupBits16,
        &x86::groupBits32,  &x86::deltaBits16,  &x86::addSat16,
        &x86::walkSumMax,   &x86::hashStripes,
    };
    return t;
}

} // namespace diffy::simd::detail
