/**
 * @file
 * 16-bit fixed-point helpers.
 *
 * All accelerators modeled in this repository (VAA, PRA, Diffy, SCNN)
 * operate on 16-bit fixed-point activations and weights, matching the
 * paper's Table IV configurations. Scales are expressed as a number of
 * fractional bits so that quantization is a pure shift and all
 * arithmetic stays in integers.
 */

#ifndef DIFFY_COMMON_FIXED_POINT_HH
#define DIFFY_COMMON_FIXED_POINT_HH

#include <cstdint>
#include <vector>

namespace diffy
{

/** Saturate @p v to the int16 range. */
std::int16_t saturate16(std::int64_t v);

/** Quantize a real value to Q(15 - fracBits).fracBits with saturation. */
std::int16_t quantize16(double v, int frac_bits);

/** Reconstruct the real value of a fixed-point quantity. */
double dequantize16(std::int16_t v, int frac_bits);

/**
 * Pick the largest fractional-bit count such that @p max_abs is
 * representable in 16 bits. Used for per-layer rescaling in the
 * quantized executor.
 */
int chooseFracBits(double max_abs);

/** Quantize a whole buffer with one shared scale. */
std::vector<std::int16_t> quantizeBuffer(const std::vector<double> &v,
                                         int frac_bits);

} // namespace diffy

#endif // DIFFY_COMMON_FIXED_POINT_HH
