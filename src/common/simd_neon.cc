/**
 * @file
 * NEON kernel table for aarch64, where Advanced SIMD is architectural
 * (no runtime probe needed). Follows the same exact-width chunk +
 * scalar tail contract as the x86 tables; results are bit-identical
 * to the scalar reference by construction (all ops are exact integer
 * arithmetic).
 */

#include "common/simd.hh"

#if defined(__aarch64__)

#include <bit>
#include <cstring>

#include <arm_neon.h>

namespace diffy::simd
{

namespace
{

/** Per-dword popcount of the four 32-bit lanes. */
inline uint32x4_t
popcountDwords(uint32x4_t v)
{
    return vpaddlq_u16(vpaddlq_u8(vcntq_u8(vreinterpretq_u8_u32(v))));
}

inline int32x4_t
nafXor(int32x4_t v)
{
    return veorq_s32(v, vaddq_s32(vaddq_s32(v, v), v));
}

inline uint32x4_t
foldSign(int32x4_t v)
{
    return vreinterpretq_u32_s32(veorq_s32(v, vshrq_n_s32(v, 31)));
}

inline uint32x4_t
bitWidthDwords(uint32x4_t m)
{
    m = vorrq_u32(m, vshrq_n_u32(m, 1));
    m = vorrq_u32(m, vshrq_n_u32(m, 2));
    m = vorrq_u32(m, vshrq_n_u32(m, 4));
    m = vorrq_u32(m, vshrq_n_u32(m, 8));
    m = vorrq_u32(m, vshrq_n_u32(m, 16));
    return popcountDwords(m);
}

/** Narrow two regs of 4 dword counts (< 256) into 8 bytes. */
inline void
storeCounts8(std::uint8_t *dst, uint32x4_t lo, uint32x4_t hi)
{
    const uint16x8_t w =
        vcombine_u16(vmovn_u32(lo), vmovn_u32(hi));
    vst1_u8(dst, vmovn_u16(w));
}

inline std::uint8_t
nafWeight64Scalar(std::int32_t v)
{
    const auto w = static_cast<std::int64_t>(v);
    return static_cast<std::uint8_t>(
        std::popcount(static_cast<std::uint64_t>(w ^ (3 * w))));
}

void
neonBoothPlane16(const std::int16_t *src, std::uint8_t *dst,
                 std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const int16x8_t v16 = vld1q_s16(src + i);
        const int32x4_t lo = vmovl_s16(vget_low_s16(v16));
        const int32x4_t hi = vmovl_s16(vget_high_s16(v16));
        storeCounts8(
            dst + i,
            popcountDwords(vreinterpretq_u32_s32(nafXor(lo))),
            popcountDwords(vreinterpretq_u32_s32(nafXor(hi))));
    }
    for (; i < n; ++i) {
        const std::int32_t v = src[i];
        dst[i] = static_cast<std::uint8_t>(
            std::popcount(static_cast<std::uint32_t>(v ^ (3 * v))));
    }
}

void
neonBoothPlane32(const std::int32_t *src, std::uint8_t *dst,
                 std::size_t n)
{
    // Same 2^29 exactness bound as the x86 tables: a chunk with any
    // large folded magnitude falls back to 64-bit scalar.
    const uint32x4_t big = vdupq_n_u32(0x1FFFFFFF);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const int32x4_t v = vld1q_s32(src + i);
        if (vmaxvq_u32(vcgtq_u32(foldSign(v), big)) != 0) {
            for (std::size_t t = 0; t < 4; ++t)
                dst[i + t] = nafWeight64Scalar(src[i + t]);
            continue;
        }
        const uint32x4_t cnt =
            popcountDwords(vreinterpretq_u32_s32(nafXor(v)));
        const uint16x4_t w = vmovn_u32(cnt);
        const uint8x8_t b = vmovn_u16(vcombine_u16(w, w));
        const std::uint32_t packed =
            vget_lane_u32(vreinterpret_u32_u8(b), 0);
        std::memcpy(dst + i, &packed, 4);
    }
    for (; i < n; ++i)
        dst[i] = nafWeight64Scalar(src[i]);
}

void
neonBitsPlane16(const std::int16_t *src, std::uint8_t *dst,
                std::size_t n)
{
    const uint32x4_t one = vdupq_n_u32(1);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const int16x8_t v16 = vld1q_s16(src + i);
        const int32x4_t lo = vmovl_s16(vget_low_s16(v16));
        const int32x4_t hi = vmovl_s16(vget_high_s16(v16));
        storeCounts8(
            dst + i,
            vaddq_u32(bitWidthDwords(foldSign(lo)), one),
            vaddq_u32(bitWidthDwords(foldSign(hi)), one));
    }
    for (; i < n; ++i) {
        const std::int32_t v = src[i];
        dst[i] = static_cast<std::uint8_t>(
            std::bit_width(static_cast<std::uint32_t>(v ^ (v >> 31))) +
            1);
    }
}

void
neonBitsPlane32(const std::int32_t *src, std::uint8_t *dst,
                std::size_t n)
{
    const uint32x4_t one = vdupq_n_u32(1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const int32x4_t v = vld1q_s32(src + i);
        const uint32x4_t cnt =
            vaddq_u32(bitWidthDwords(foldSign(v)), one);
        const uint16x4_t w = vmovn_u32(cnt);
        const uint8x8_t b = vmovn_u16(vcombine_u16(w, w));
        const std::uint32_t packed =
            vget_lane_u32(vreinterpret_u32_u8(b), 0);
        std::memcpy(dst + i, &packed, 4);
    }
    for (; i < n; ++i) {
        const std::int32_t v = src[i];
        dst[i] = static_cast<std::uint8_t>(
            std::bit_width(static_cast<std::uint32_t>(v ^ (v >> 31))) +
            1);
    }
}

int
neonGroupBits16(const std::int16_t *group, std::size_t n)
{
    uint16x8_t acc = vdupq_n_u16(0);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const int16x8_t v = vld1q_s16(group + i);
        acc = vorrq_u16(
            acc, vreinterpretq_u16_s16(
                     veorq_s16(v, vshrq_n_s16(v, 15))));
    }
    std::uint16_t lanes[8];
    vst1q_u16(lanes, acc);
    std::uint32_t m = 0;
    for (std::uint16_t l : lanes)
        m |= l;
    for (; i < n; ++i) {
        const std::int32_t v = group[i];
        m |= static_cast<std::uint32_t>(v ^ (v >> 31));
    }
    return std::bit_width(m) + 1;
}

int
neonGroupBits32(const std::int32_t *group, std::size_t n)
{
    uint32x4_t acc = vdupq_n_u32(0);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        acc = vorrq_u32(acc, foldSign(vld1q_s32(group + i)));
    std::uint32_t lanes[4];
    vst1q_u32(lanes, acc);
    std::uint32_t m = lanes[0] | lanes[1] | lanes[2] | lanes[3];
    for (; i < n; ++i) {
        const std::int32_t v = group[i];
        m |= static_cast<std::uint32_t>(v ^ (v >> 31));
    }
    return std::bit_width(m) + 1;
}

int
neonDeltaBits16(const std::int16_t *prev, const std::int16_t *cur,
                std::int32_t *delta, std::size_t n)
{
    uint32x4_t acc = vdupq_n_u32(0);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const int16x8_t p = vld1q_s16(prev + i);
        const int16x8_t c = vld1q_s16(cur + i);
        const int32x4_t d0 =
            vsubl_s16(vget_low_s16(c), vget_low_s16(p));
        const int32x4_t d1 =
            vsubl_s16(vget_high_s16(c), vget_high_s16(p));
        vst1q_s32(delta + i, d0);
        vst1q_s32(delta + i + 4, d1);
        acc = vorrq_u32(acc, foldSign(d0));
        acc = vorrq_u32(acc, foldSign(d1));
    }
    std::uint32_t lanes[4];
    vst1q_u32(lanes, acc);
    std::uint32_t m = lanes[0] | lanes[1] | lanes[2] | lanes[3];
    for (; i < n; ++i) {
        const std::int32_t d = static_cast<std::int32_t>(cur[i]) -
                               static_cast<std::int32_t>(prev[i]);
        delta[i] = d;
        m |= static_cast<std::uint32_t>(d ^ (d >> 31));
    }
    return std::bit_width(m) + 1;
}

void
neonAddSat16(const std::int16_t *prev, const std::int32_t *delta,
             std::int16_t *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const int16x8_t p = vld1q_s16(prev + i);
        const int32x4_t s0 =
            vaddq_s32(vmovl_s16(vget_low_s16(p)),
                      vld1q_s32(delta + i));
        const int32x4_t s1 =
            vaddq_s32(vmovl_s16(vget_high_s16(p)),
                      vld1q_s32(delta + i + 4));
        // vqmovn saturates int32 -> int16: exactly saturate16().
        vst1q_s16(out + i,
                  vcombine_s16(vqmovn_s32(s0), vqmovn_s32(s1)));
    }
    for (; i < n; ++i) {
        const std::int32_t v =
            static_cast<std::int32_t>(prev[i]) + delta[i];
        out[i] = static_cast<std::int16_t>(
            v < -32768 ? -32768 : (v > 32767 ? 32767 : v));
    }
}

std::int64_t
neonWalkSumMax(const std::uint8_t *base, std::size_t rowStride,
               std::size_t rows, int colStride, std::uint8_t *colMax,
               int cols)
{
    if (colStride != 1 || cols < 8)
        return scalarTable().walkSumMax(base, rowStride, rows,
                                        colStride, colMax, cols);
    std::int64_t total = 0;
    int j = 0;
    for (; j + 16 <= cols; j += 16) {
        uint8x16_t mx = vdupq_n_u8(0);
        uint32x4_t sums = vdupq_n_u32(0);
        for (std::size_t r = 0; r < rows; ++r) {
            const uint8x16_t v = vld1q_u8(base + r * rowStride + j);
            mx = vmaxq_u8(mx, v);
            sums = vpadalq_u16(sums, vpaddlq_u8(v));
        }
        vst1q_u8(colMax + j, mx);
        total += vaddvq_u32(sums);
    }
    if (j + 8 <= cols) {
        uint8x8_t mx = vdup_n_u8(0);
        uint32x2_t sums = vdup_n_u32(0);
        for (std::size_t r = 0; r < rows; ++r) {
            const uint8x8_t v = vld1_u8(base + r * rowStride + j);
            mx = vmax_u8(mx, v);
            sums = vpadal_u16(sums, vpaddl_u8(v));
        }
        vst1_u8(colMax + j, mx);
        total += vaddv_u32(sums);
        j += 8;
    }
    for (; j < cols; ++j) {
        std::uint8_t m = 0;
        for (std::size_t r = 0; r < rows; ++r) {
            const std::uint8_t v = base[r * rowStride + j];
            total += v;
            if (v > m)
                m = v;
        }
        colMax[j] = m;
    }
    return total;
}

void
neonHashStripes(const unsigned char *p, std::size_t stripes,
                std::uint32_t acc[8])
{
    const uint32x4_t c1 = vdupq_n_u32(0xCC9E2D51u);
    const uint32x4_t c2 = vdupq_n_u32(0x1B873593u);
    const uint32x4_t c3 = vdupq_n_u32(0xE6546B64u);
    uint32x4_t a0 = vld1q_u32(acc);
    uint32x4_t a1 = vld1q_u32(acc + 4);
    for (std::size_t s = 0; s < stripes; ++s) {
        for (int half = 0; half < 2; ++half) {
            uint32x4_t k = vreinterpretq_u32_u8(
                vld1q_u8(p + 32 * s + 16 * half));
            k = vmulq_u32(k, c1);
            k = vorrq_u32(vshlq_n_u32(k, 15), vshrq_n_u32(k, 17));
            k = vmulq_u32(k, c2);
            uint32x4_t &a = half == 0 ? a0 : a1;
            a = veorq_u32(a, k);
            a = vorrq_u32(vshlq_n_u32(a, 13), vshrq_n_u32(a, 19));
            a = vaddq_u32(
                vaddq_u32(a, vshlq_n_u32(a, 2)), c3);
        }
    }
    vst1q_u32(acc, a0);
    vst1q_u32(acc + 4, a1);
}

} // namespace

namespace detail
{

const KernelTable &
neonTable()
{
    static const KernelTable t = {
        Isa::Neon,        &neonBoothPlane16, &neonBoothPlane32,
        &neonBitsPlane16, &neonBitsPlane32,  &neonGroupBits16,
        &neonGroupBits32, &neonDeltaBits16,  &neonAddSat16,
        &neonWalkSumMax,  &neonHashStripes,
    };
    return t;
}

} // namespace detail

} // namespace diffy::simd

#endif // defined(__aarch64__)
