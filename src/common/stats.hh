/**
 * @file
 * Lightweight statistics helpers used by the analysis and simulation
 * modules: running moments, integer histograms with entropy and
 * quantile queries, and a joint histogram for conditional entropy.
 */

#ifndef DIFFY_COMMON_STATS_HH
#define DIFFY_COMMON_STATS_HH

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace diffy
{

/** Streaming mean / variance / min / max accumulator (Welford). */
class RunningStat
{
  public:
    void add(double x);
    void merge(const RunningStat &other);

    std::uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    /** Directly accumulated — exact under merge(), unlike mean_*n
     *  reconstruction which drifts for large counts. */
    double sum() const { return sum_; }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    double sum_ = 0.0;
};

/**
 * Histogram over integer symbols. Dense within a small range, used
 * for both value-entropy measurements (Fig 1) and effectual-term
 * distributions (Fig 3).
 */
class Histogram
{
  public:
    void add(std::int64_t symbol, std::uint64_t weight = 1);
    void merge(const Histogram &other);

    std::uint64_t total() const { return total_; }
    std::uint64_t countOf(std::int64_t symbol) const;

    /** Shannon entropy in bits per symbol. */
    double entropyBits() const;

    /** Fraction of mass at exactly @p symbol (e.g. sparsity at 0). */
    double fractionAt(std::int64_t symbol) const;

    /** Smallest symbol s such that P(X <= s) >= q. */
    std::int64_t quantile(double q) const;

    /** Mean symbol value. */
    double mean() const;

    /** Cumulative distribution as (symbol, P(X <= symbol)) pairs. */
    std::vector<std::pair<std::int64_t, double>> cdf() const;

    const std::map<std::int64_t, std::uint64_t> &bins() const
    {
        return bins_;
    }

  private:
    std::map<std::int64_t, std::uint64_t> bins_;
    std::uint64_t total_ = 0;
};

/**
 * Joint histogram over pairs of integer symbols, supporting the
 * conditional entropy H(A|A') measurement of Fig 1.
 */
class JointHistogram
{
  public:
    void add(std::int32_t a, std::int32_t b, std::uint64_t weight = 1);
    void merge(const JointHistogram &other);

    std::uint64_t total() const { return total_; }

    /** H(A, B) in bits. */
    double jointEntropyBits() const;

    /** H(A | B) = H(A, B) - H(B), in bits. */
    double conditionalEntropyBits() const;

    /** Marginal entropy of the second (conditioning) variable. */
    double marginalEntropyBBits() const;

  private:
    std::unordered_map<std::uint64_t, std::uint64_t> joint_;
    std::unordered_map<std::int32_t, std::uint64_t> marginalB_;
    std::uint64_t total_ = 0;
};

/** Geometric mean of a list of strictly positive values. */
double geometricMean(const std::vector<double> &values);

} // namespace diffy

#endif // DIFFY_COMMON_STATS_HH
