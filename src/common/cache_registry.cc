#include "common/cache_registry.hh"

#include <algorithm>
#include <mutex>

namespace diffy
{

namespace
{

struct Entry
{
    std::string name;
    ThreadCacheClearFn fn;
};

struct Registry
{
    std::mutex mutex;
    std::vector<Entry> entries;
};

/**
 * Meyers singleton: safe to touch from any TU's static initializers
 * and from concurrently running sweep threads. The mutex guards
 * registration (static-init time, plus tests) against concurrent
 * clears; hooks are copied out before invocation so a hook may not
 * re-enter the registry.
 */
Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

bool
registerThreadCacheClear(const char *name, ThreadCacheClearFn fn)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    auto same = [&](const Entry &e) {
        return e.fn == fn && e.name == name;
    };
    if (std::none_of(r.entries.begin(), r.entries.end(), same))
        r.entries.push_back(Entry{name, fn});
    return true;
}

void
clearRegisteredThreadCaches()
{
    std::vector<ThreadCacheClearFn> fns;
    {
        Registry &r = registry();
        std::lock_guard<std::mutex> lock(r.mutex);
        fns.reserve(r.entries.size());
        for (const Entry &e : r.entries)
            fns.push_back(e.fn);
    }
    for (ThreadCacheClearFn fn : fns)
        fn();
}

std::vector<std::string>
registeredThreadCacheNames()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    std::vector<std::string> names;
    names.reserve(r.entries.size());
    for (const Entry &e : r.entries)
        names.push_back(e.name);
    return names;
}

std::size_t
registeredThreadCacheCount()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    return r.entries.size();
}

} // namespace diffy
