/**
 * @file
 * AVX2 kernel table, compiled with -mavx2 in this TU only. The
 * plane and hash kernels run 256-bit lanes; the short-group and walk
 * kernels reuse the shared 128-bit implementations (group sizes and
 * window widths rarely exceed 16, so wider registers buy nothing
 * there).
 */

#include "common/simd.hh"
#include "common/simd_x86.hh"

namespace diffy::simd
{

namespace
{

/** Per-byte popcount via the nibble-LUT shuffle, 32 bytes at a time. */
inline __m256i
popcountBytes256(__m256i v)
{
    const __m256i lut = _mm256_setr_epi8(
        0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1, 1, 2, 1,
        2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
    const __m256i low = _mm256_set1_epi8(0x0F);
    const __m256i lo = _mm256_and_si256(v, low);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
    return _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                           _mm256_shuffle_epi8(lut, hi));
}

/** Per-dword popcount of the eight 32-bit lanes of @p v. */
inline __m256i
popcountDwords256(__m256i v)
{
    const __m256i bytes = popcountBytes256(v);
    const __m256i ones8 = _mm256_set1_epi8(1);
    const __m256i ones16 = _mm256_set1_epi16(1);
    return _mm256_madd_epi16(_mm256_maddubs_epi16(bytes, ones8),
                             ones16);
}

inline __m256i
nafXor256(__m256i v)
{
    const __m256i v3 =
        _mm256_add_epi32(_mm256_add_epi32(v, v), v);
    return _mm256_xor_si256(v, v3);
}

inline __m256i
foldSign256(__m256i v)
{
    return _mm256_xor_si256(v, _mm256_srai_epi32(v, 31));
}

inline __m256i
bitWidthDwords256(__m256i m)
{
    m = _mm256_or_si256(m, _mm256_srli_epi32(m, 1));
    m = _mm256_or_si256(m, _mm256_srli_epi32(m, 2));
    m = _mm256_or_si256(m, _mm256_srli_epi32(m, 4));
    m = _mm256_or_si256(m, _mm256_srli_epi32(m, 8));
    m = _mm256_or_si256(m, _mm256_srli_epi32(m, 16));
    return popcountDwords256(m);
}

/**
 * Pack 16 dword counts (two regs of 8, each < 256) into 16 linear
 * bytes. packs/packus interleave the 128-bit lanes, so a cross-lane
 * dword permute restores element order before the store.
 */
inline void
storeCounts16(std::uint8_t *dst, __m256i lo, __m256i hi)
{
    const __m256i w = _mm256_packs_epi32(lo, hi);
    const __m256i b =
        _mm256_packus_epi16(w, _mm256_setzero_si256());
    const __m256i order =
        _mm256_setr_epi32(0, 4, 1, 5, 0, 0, 0, 0);
    const __m256i lin = _mm256_permutevar8x32_epi32(b, order);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(dst),
                     _mm256_castsi256_si128(lin));
}

/** Pack 8 dword counts into 8 linear bytes. */
inline void
storeCounts8(std::uint8_t *dst, __m256i cnt)
{
    const __m256i w =
        _mm256_packs_epi32(cnt, _mm256_setzero_si256());
    const __m256i b =
        _mm256_packus_epi16(w, _mm256_setzero_si256());
    const __m256i order =
        _mm256_setr_epi32(0, 4, 0, 0, 0, 0, 0, 0);
    const __m256i lin = _mm256_permutevar8x32_epi32(b, order);
    _mm_storel_epi64(reinterpret_cast<__m128i *>(dst),
                     _mm256_castsi256_si128(lin));
}

/** Widen 16 int16 to two regs of 8 int32 (in element order). */
inline void
widen16(const std::int16_t *src, __m256i &lo, __m256i &hi)
{
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(src));
    lo = _mm256_cvtepi16_epi32(_mm256_castsi256_si128(v));
    hi = _mm256_cvtepi16_epi32(_mm256_extracti128_si256(v, 1));
}

void
avx2BoothPlane16(const std::int16_t *src, std::uint8_t *dst,
                 std::size_t n)
{
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m256i lo;
        __m256i hi;
        widen16(src + i, lo, hi);
        storeCounts16(dst + i, popcountDwords256(nafXor256(lo)),
                      popcountDwords256(nafXor256(hi)));
    }
    if (i < n)
        x86::boothPlane16(src + i, dst + i, n - i);
}

void
avx2BoothPlane32(const std::int32_t *src, std::uint8_t *dst,
                 std::size_t n)
{
    const __m256i big = _mm256_set1_epi32(0x1FFFFFFF);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        if (_mm256_movemask_epi8(
                _mm256_cmpgt_epi32(foldSign256(v), big)) != 0) {
            for (std::size_t t = 0; t < 8; ++t)
                dst[i + t] = x86::nafWeight64Scalar(src[i + t]);
            continue;
        }
        storeCounts8(dst + i, popcountDwords256(nafXor256(v)));
    }
    if (i < n)
        x86::boothPlane32(src + i, dst + i, n - i);
}

void
avx2BitsPlane16(const std::int16_t *src, std::uint8_t *dst,
                std::size_t n)
{
    const __m256i one = _mm256_set1_epi32(1);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        __m256i lo;
        __m256i hi;
        widen16(src + i, lo, hi);
        storeCounts16(
            dst + i,
            _mm256_add_epi32(bitWidthDwords256(foldSign256(lo)), one),
            _mm256_add_epi32(bitWidthDwords256(foldSign256(hi)),
                             one));
    }
    if (i < n)
        x86::bitsPlane16(src + i, dst + i, n - i);
}

void
avx2BitsPlane32(const std::int32_t *src, std::uint8_t *dst,
                std::size_t n)
{
    const __m256i one = _mm256_set1_epi32(1);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(src + i));
        storeCounts8(
            dst + i,
            _mm256_add_epi32(bitWidthDwords256(foldSign256(v)), one));
    }
    if (i < n)
        x86::bitsPlane32(src + i, dst + i, n - i);
}

void
avx2HashStripes(const unsigned char *p, std::size_t stripes,
                std::uint32_t acc[8])
{
    const __m256i c1 = _mm256_set1_epi32(
        static_cast<int>(0xCC9E2D51u));
    const __m256i c2 = _mm256_set1_epi32(
        static_cast<int>(0x1B873593u));
    const __m256i c3 = _mm256_set1_epi32(
        static_cast<int>(0xE6546B64u));
    __m256i a = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(acc));
    for (std::size_t s = 0; s < stripes; ++s) {
        __m256i k = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(p + 32 * s));
        k = _mm256_mullo_epi32(k, c1);
        k = _mm256_or_si256(_mm256_slli_epi32(k, 15),
                            _mm256_srli_epi32(k, 17));
        k = _mm256_mullo_epi32(k, c2);
        a = _mm256_xor_si256(a, k);
        a = _mm256_or_si256(_mm256_slli_epi32(a, 13),
                            _mm256_srli_epi32(a, 19));
        a = _mm256_add_epi32(
            _mm256_add_epi32(a, _mm256_slli_epi32(a, 2)), c3);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc), a);
}

} // namespace

namespace detail
{

const KernelTable &
avx2Table()
{
    static const KernelTable t = {
        Isa::Avx2,          &avx2BoothPlane16, &avx2BoothPlane32,
        &avx2BitsPlane16,   &avx2BitsPlane32,  &x86::groupBits16,
        &x86::groupBits32,  &x86::deltaBits16, &x86::addSat16,
        &x86::walkSumMax,   &x86::hashStripes,
    };
    return t;
}

} // namespace detail

} // namespace diffy::simd
