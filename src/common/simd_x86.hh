/**
 * @file
 * Shared 128-bit x86 kernel implementations (SSE4.1/SSSE3 level),
 * included by both the -msse4.2 and -mavx2 translation units. Only
 * those TUs may include this header (lint rule R8 confines raw
 * intrinsics to src/common/simd*).
 *
 * Tail handling follows the DESIGN.md §14 contract: exact-width
 * chunked loads (16/8/4-byte) plus scalar remainders — no masked
 * overreads — so callers need no padding and sanitizers stay quiet.
 *
 * Everything here has internal linkage (anonymous namespace): the two
 * including TUs are compiled with different -m flags, so letting the
 * linker COMDAT-merge one copy could leave VEX-encoded code behind
 * the SSE4 table and crash pre-AVX2 hardware. Each TU must own its
 * own instructions.
 */

#ifndef DIFFY_COMMON_SIMD_X86_HH
#define DIFFY_COMMON_SIMD_X86_HH

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include <immintrin.h>

namespace diffy::simd::x86
{

namespace
{

/** Per-byte popcount via the SSSE3 nibble-LUT shuffle. */
inline __m128i
popcountBytes(__m128i v)
{
    const __m128i lut = _mm_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2,
                                      3, 2, 3, 3, 4);
    const __m128i low = _mm_set1_epi8(0x0F);
    const __m128i lo = _mm_and_si128(v, low);
    const __m128i hi =
        _mm_and_si128(_mm_srli_epi16(v, 4), low);
    return _mm_add_epi8(_mm_shuffle_epi8(lut, lo),
                        _mm_shuffle_epi8(lut, hi));
}

/** Per-dword popcount of the four 32-bit lanes of @p v. */
inline __m128i
popcountDwords(__m128i v)
{
    const __m128i bytes = popcountBytes(v);
    // Horizontal add of the 4 byte counts per dword: bytes are <= 8,
    // so unsigned*signed maddubs never overflows int16.
    const __m128i ones8 = _mm_set1_epi8(1);
    const __m128i ones16 = _mm_set1_epi16(1);
    return _mm_madd_epi16(_mm_maddubs_epi16(bytes, ones8), ones16);
}

/** v ^ 3v in 32-bit lanes (exact while |v| < 2^29). */
inline __m128i
nafXor(__m128i v)
{
    const __m128i v3 = _mm_add_epi32(_mm_add_epi32(v, v), v);
    return _mm_xor_si128(v, v3);
}

/** Sign fold in 32-bit lanes: v ^ (v >> 31). */
inline __m128i
foldSign(__m128i v)
{
    return _mm_xor_si128(v, _mm_srai_epi32(v, 31));
}

/**
 * bit_width of each (non-negative) 32-bit lane via bit smearing:
 * after OR-ing in every right shift the lane holds 2^bit_width - 1,
 * whose popcount is the width.
 */
inline __m128i
bitWidthDwords(__m128i m)
{
    m = _mm_or_si128(m, _mm_srli_epi32(m, 1));
    m = _mm_or_si128(m, _mm_srli_epi32(m, 2));
    m = _mm_or_si128(m, _mm_srli_epi32(m, 4));
    m = _mm_or_si128(m, _mm_srli_epi32(m, 8));
    m = _mm_or_si128(m, _mm_srli_epi32(m, 16));
    return popcountDwords(m);
}

/** Pack two regs of 8 dword counts (each < 256) into 8 bytes. */
inline void
storeCounts8(std::uint8_t *dst, __m128i lo, __m128i hi)
{
    const __m128i w = _mm_packs_epi32(lo, hi);
    const __m128i b = _mm_packus_epi16(w, _mm_setzero_si128());
    _mm_storel_epi64(reinterpret_cast<__m128i *>(dst), b);
}

inline void
boothPlane16(const std::int16_t *src, std::uint8_t *dst, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i v16 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        const __m128i lo = _mm_cvtepi16_epi32(v16);
        const __m128i hi =
            _mm_cvtepi16_epi32(_mm_srli_si128(v16, 8));
        storeCounts8(dst + i, popcountDwords(nafXor(lo)),
                     popcountDwords(nafXor(hi)));
    }
    for (; i < n; ++i) {
        dst[i] = static_cast<std::uint8_t>(
            std::popcount(static_cast<std::uint32_t>(
                src[i] ^ (3 * static_cast<std::int32_t>(src[i])))));
    }
}

/** Scalar NAF weight of an int32, exact over the full domain. */
inline std::uint8_t
nafWeight64Scalar(std::int32_t v)
{
    const auto w = static_cast<std::int64_t>(v);
    return static_cast<std::uint8_t>(
        std::popcount(static_cast<std::uint64_t>(w ^ (3 * w))));
}

inline void
boothPlane32(const std::int32_t *src, std::uint8_t *dst, std::size_t n)
{
    // 32-bit lanes keep v^3v exact only while the folded magnitude is
    // below 2^29 (3v must not overflow). Encode-side deltas are
    // 17-bit quantities, so the wide path is the near-universal case;
    // a chunk containing any big value falls back to 64-bit scalar.
    const __m128i big = _mm_set1_epi32(0x1FFFFFFF);
    const __m128i shuffle = _mm_setr_epi8(
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        if (_mm_movemask_epi8(_mm_cmpgt_epi32(foldSign(v), big)) !=
            0) {
            for (std::size_t t = 0; t < 4; ++t)
                dst[i + t] = nafWeight64Scalar(src[i + t]);
            continue;
        }
        const __m128i cnt = popcountDwords(nafXor(v));
        const int packed = _mm_cvtsi128_si32(
            _mm_shuffle_epi8(cnt, shuffle));
        std::memcpy(dst + i, &packed, 4);
    }
    for (; i < n; ++i)
        dst[i] = nafWeight64Scalar(src[i]);
}

inline void
bitsPlane16(const std::int16_t *src, std::uint8_t *dst, std::size_t n)
{
    const __m128i one = _mm_set1_epi32(1);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i v16 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        const __m128i lo = _mm_cvtepi16_epi32(v16);
        const __m128i hi =
            _mm_cvtepi16_epi32(_mm_srli_si128(v16, 8));
        storeCounts8(
            dst + i,
            _mm_add_epi32(bitWidthDwords(foldSign(lo)), one),
            _mm_add_epi32(bitWidthDwords(foldSign(hi)), one));
    }
    for (; i < n; ++i) {
        const std::int32_t v = src[i];
        dst[i] = static_cast<std::uint8_t>(
            std::bit_width(static_cast<std::uint32_t>(v ^ (v >> 31))) +
            1);
    }
}

inline void
bitsPlane32(const std::int32_t *src, std::uint8_t *dst, std::size_t n)
{
    const __m128i one = _mm_set1_epi32(1);
    const __m128i shuffle = _mm_setr_epi8(
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i));
        const __m128i cnt =
            _mm_add_epi32(bitWidthDwords(foldSign(v)), one);
        const int packed = _mm_cvtsi128_si32(
            _mm_shuffle_epi8(cnt, shuffle));
        std::memcpy(dst + i, &packed, 4);
    }
    for (; i < n; ++i) {
        const std::int32_t v = src[i];
        dst[i] = static_cast<std::uint8_t>(
            std::bit_width(static_cast<std::uint32_t>(v ^ (v >> 31))) +
            1);
    }
}

/** OR-reduce the four 32-bit lanes of @p v. */
inline std::uint32_t
orReduceDwords(__m128i v)
{
    const std::uint64_t a = static_cast<std::uint64_t>(
        _mm_cvtsi128_si64(v));
    const std::uint64_t b = static_cast<std::uint64_t>(
        _mm_cvtsi128_si64(_mm_srli_si128(v, 8)));
    const std::uint64_t m = a | b;
    return static_cast<std::uint32_t>(m | (m >> 32));
}

inline int
groupBits16(const std::int16_t *group, std::size_t n)
{
    __m128i acc = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(group + i));
        // 16-bit sign fold: for int16 inputs it equals the low half
        // of the 32-bit fold and the high half is zero.
        acc = _mm_or_si128(
            acc, _mm_xor_si128(v, _mm_srai_epi16(v, 15)));
    }
    const std::uint32_t wide = orReduceDwords(acc);
    std::uint32_t m = (wide | (wide >> 16)) & 0xFFFFu;
    for (; i < n; ++i) {
        const std::int32_t v = group[i];
        m |= static_cast<std::uint32_t>(v ^ (v >> 31));
    }
    return std::bit_width(m) + 1;
}

inline int
groupBits32(const std::int32_t *group, std::size_t n)
{
    __m128i acc = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(group + i));
        acc = _mm_or_si128(acc, foldSign(v));
    }
    std::uint32_t m = orReduceDwords(acc);
    for (; i < n; ++i) {
        const std::int32_t v = group[i];
        m |= static_cast<std::uint32_t>(v ^ (v >> 31));
    }
    return std::bit_width(m) + 1;
}

inline int
deltaBits16(const std::int16_t *prev, const std::int16_t *cur,
            std::int32_t *delta, std::size_t n)
{
    __m128i acc = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i p16 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(prev + i));
        const __m128i c16 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(cur + i));
        const __m128i d0 =
            _mm_sub_epi32(_mm_cvtepi16_epi32(c16),
                          _mm_cvtepi16_epi32(p16));
        const __m128i d1 = _mm_sub_epi32(
            _mm_cvtepi16_epi32(_mm_srli_si128(c16, 8)),
            _mm_cvtepi16_epi32(_mm_srli_si128(p16, 8)));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(delta + i), d0);
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(delta + i + 4), d1);
        acc = _mm_or_si128(acc, foldSign(d0));
        acc = _mm_or_si128(acc, foldSign(d1));
    }
    std::uint32_t m = orReduceDwords(acc);
    for (; i < n; ++i) {
        const std::int32_t d = static_cast<std::int32_t>(cur[i]) -
                               static_cast<std::int32_t>(prev[i]);
        delta[i] = d;
        m |= static_cast<std::uint32_t>(d ^ (d >> 31));
    }
    return std::bit_width(m) + 1;
}

inline void
addSat16(const std::int16_t *prev, const std::int32_t *delta,
         std::int16_t *out, std::size_t n)
{
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m128i p16 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(prev + i));
        const __m128i s0 = _mm_add_epi32(
            _mm_cvtepi16_epi32(p16),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(delta + i)));
        const __m128i s1 = _mm_add_epi32(
            _mm_cvtepi16_epi32(_mm_srli_si128(p16, 8)),
            _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(delta + i + 4)));
        // packs_epi32 saturates to int16 — exactly saturate16(), and
        // the int32 sums are exact under the 18-bit delta contract.
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + i),
                         _mm_packs_epi32(s0, s1));
    }
    for (; i < n; ++i) {
        const std::int32_t v =
            static_cast<std::int32_t>(prev[i]) + delta[i];
        out[i] = static_cast<std::int16_t>(
            v < -32768 ? -32768 : (v > 32767 ? 32767 : v));
    }
}

/** Sum of the 16 bytes of @p v, as a 64-bit scalar. */
inline std::int64_t
sumBytes(__m128i v)
{
    const __m128i s = _mm_sad_epu8(v, _mm_setzero_si128());
    return _mm_cvtsi128_si64(s) +
           _mm_cvtsi128_si64(_mm_srli_si128(s, 8));
}

inline std::int64_t
walkSumMax(const std::uint8_t *base, std::size_t rowStride,
           std::size_t rows, int colStride, std::uint8_t *colMax,
           int cols)
{
    if (colStride != 1 || cols < 8) {
        // Strided windows (stride > 1) and narrow blocks: scalar.
        std::int64_t sum = 0;
        for (int j = 0; j < cols; ++j)
            colMax[j] = 0;
        for (std::size_t r = 0; r < rows; ++r) {
            const std::uint8_t *row = base + r * rowStride;
            for (int j = 0; j < cols; ++j) {
                const std::uint8_t v =
                    row[static_cast<std::size_t>(j) * colStride];
                sum += v;
                if (v > colMax[j])
                    colMax[j] = v;
            }
        }
        return sum;
    }

    std::int64_t total = 0;
    int j = 0;
    for (; j + 16 <= cols; j += 16) {
        __m128i mx = _mm_setzero_si128();
        __m128i sums = _mm_setzero_si128();
        for (std::size_t r = 0; r < rows; ++r) {
            const __m128i v = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(
                    base + r * rowStride + j));
            mx = _mm_max_epu8(mx, v);
            sums = _mm_add_epi64(
                sums, _mm_sad_epu8(v, _mm_setzero_si128()));
        }
        _mm_storeu_si128(reinterpret_cast<__m128i *>(colMax + j), mx);
        total += _mm_cvtsi128_si64(sums) +
                 _mm_cvtsi128_si64(_mm_srli_si128(sums, 8));
    }
    if (j + 8 <= cols) {
        __m128i mx = _mm_setzero_si128();
        for (std::size_t r = 0; r < rows; ++r) {
            const __m128i v = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(
                    base + r * rowStride + j));
            mx = _mm_max_epu8(mx, v);
            total += sumBytes(v);
        }
        _mm_storel_epi64(reinterpret_cast<__m128i *>(colMax + j), mx);
        j += 8;
    }
    for (; j < cols; ++j) {
        std::uint8_t m = 0;
        for (std::size_t r = 0; r < rows; ++r) {
            const std::uint8_t v = base[r * rowStride + j];
            total += v;
            if (v > m)
                m = v;
        }
        colMax[j] = m;
    }
    return total;
}

inline void
hashStripes(const unsigned char *p, std::size_t stripes,
            std::uint32_t acc[8])
{
    const __m128i c1 = _mm_set1_epi32(
        static_cast<int>(0xCC9E2D51u));
    const __m128i c2 = _mm_set1_epi32(
        static_cast<int>(0x1B873593u));
    const __m128i c3 = _mm_set1_epi32(
        static_cast<int>(0xE6546B64u));
    __m128i a0 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(acc));
    __m128i a1 = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(acc + 4));
    for (std::size_t s = 0; s < stripes; ++s) {
        for (int half = 0; half < 2; ++half) {
            __m128i k = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(p + 32 * s +
                                                  16 * half));
            k = _mm_mullo_epi32(k, c1);
            k = _mm_or_si128(_mm_slli_epi32(k, 15),
                             _mm_srli_epi32(k, 17));
            k = _mm_mullo_epi32(k, c2);
            __m128i &a = half == 0 ? a0 : a1;
            a = _mm_xor_si128(a, k);
            a = _mm_or_si128(_mm_slli_epi32(a, 13),
                             _mm_srli_epi32(a, 19));
            a = _mm_add_epi32(
                _mm_add_epi32(a, _mm_slli_epi32(a, 2)), c3);
        }
    }
    _mm_storeu_si128(reinterpret_cast<__m128i *>(acc), a0);
    _mm_storeu_si128(reinterpret_cast<__m128i *>(acc + 4), a1);
}

} // namespace

} // namespace diffy::simd::x86

#endif // DIFFY_COMMON_SIMD_X86_HH
