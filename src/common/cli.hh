/**
 * @file
 * Minimal command-line flag parsing for the bench and example
 * binaries. Supports "--name value" and "--name=value" forms, plus
 * bare boolean flags declared up front so they never swallow a
 * following positional argument.
 */

#ifndef DIFFY_COMMON_CLI_HH
#define DIFFY_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace diffy
{

/**
 * Parsed command line; unknown flags are collected, not rejected.
 *
 * Flags named in @p boolFlags never consume the next token as a value
 * ("--verbose trace.bin" keeps "trace.bin" as a positional); all other
 * "--name value" pairs bind the token as the flag's value. Tokens not
 * consumed as flag names or values are kept, in order, in
 * positionals().
 */
class CliArgs
{
  public:
    CliArgs(int argc, const char *const *argv,
            const std::set<std::string> &boolFlags = {});

    bool has(const std::string &name) const;
    std::string getString(const std::string &name,
                          const std::string &fallback) const;

    /**
     * Integer/double accessors validate the full token and throw
     * std::invalid_argument on malformed values ("--threads=abc")
     * rather than silently reading 0.
     */
    std::int64_t getInt(const std::string &name, std::int64_t fallback) const;
    double getDouble(const std::string &name, double fallback) const;
    bool getBool(const std::string &name, bool fallback) const;

    /** Arguments that were neither flag names nor flag values. */
    const std::vector<std::string> &positionals() const
    {
        return positionals_;
    }

  private:
    std::map<std::string, std::string> values_;
    std::vector<std::string> positionals_;
};

} // namespace diffy

#endif // DIFFY_COMMON_CLI_HH
