/**
 * @file
 * Minimal command-line flag parsing for the bench and example
 * binaries. Supports "--name value" and "--name=value" forms.
 */

#ifndef DIFFY_COMMON_CLI_HH
#define DIFFY_COMMON_CLI_HH

#include <cstdint>
#include <map>
#include <string>

namespace diffy
{

/** Parsed command line; unknown flags are collected, not rejected. */
class CliArgs
{
  public:
    CliArgs(int argc, const char *const *argv);

    bool has(const std::string &name) const;
    std::string getString(const std::string &name,
                          const std::string &fallback) const;
    std::int64_t getInt(const std::string &name, std::int64_t fallback) const;
    double getDouble(const std::string &name, double fallback) const;
    bool getBool(const std::string &name, bool fallback) const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace diffy

#endif // DIFFY_COMMON_CLI_HH
