/**
 * @file
 * Bit-level utilities shared across the Diffy code base.
 *
 * The central primitive is boothTerms(), which counts the number of
 * effectual terms of a value under the modified-Booth / canonical
 * signed-digit recoding used by Bit-Pragmatic style accelerators
 * (PRA, and by extension Diffy). A term-serial inner-product unit
 * spends one cycle per effectual term, so these counts directly
 * drive the cycle-level timing models in src/sim.
 */

#ifndef DIFFY_COMMON_BITOPS_HH
#define DIFFY_COMMON_BITOPS_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace diffy
{

/**
 * Count the effectual terms of @p v under canonical-signed-digit
 * (non-adjacent form) recoding. This is the number of +/- powers of
 * two a PRA-style serial inner product unit must process. Zero has
 * zero terms. The count is symmetric: boothTerms(v) == boothTerms(-v).
 *
 * Computed bit-parallel as popcount(v ^ 3v): the NAF digit at
 * position i is nonzero exactly where v and 3v differ, so the whole
 * count is O(1) instead of one iteration per signed digit.
 *
 * @param v Two's complement value (any 16-bit quantity fits).
 * @return Number of nonzero signed digits in the NAF of v.
 */
int boothTerms(std::int64_t v);

/**
 * Batched boothTerms() over a contiguous value plane:
 * dst[i] = boothTerms(src[i]) for i in [0, n). The int16 overload is
 * the term-tensor producer of the cycle simulators; the int32
 * overload serves differential streams, whose deltas need 17 bits.
 * Branch-free and auto-vectorizable; NAF counts of 16/32-bit values
 * always fit a uint8.
 */
void boothTermsPlane(const std::int16_t *src, std::uint8_t *dst,
                     std::size_t n);
void boothTermsPlane(const std::int32_t *src, std::uint8_t *dst,
                     std::size_t n);

/**
 * Decompose @p v into its canonical-signed-digit terms.
 *
 * Each element encodes one effectual term as (exponent, sign):
 * positive entries e mean +2^e, negative entries -(e+1) mean -2^e.
 * Summing the decoded terms reconstructs v exactly; tests rely on
 * this round-trip.
 *
 * @param v Value to decompose.
 * @return Encoded term list, most significant first.
 */
std::vector<int> boothDecompose(std::int64_t v);

/** Reconstruct a value from the encoding produced by boothDecompose(). */
std::int64_t boothReconstruct(const std::vector<int> &terms);

/**
 * Count the set bits of the magnitude of @p v — the effectual terms
 * of a plain (non-Booth) bit-serial design.
 */
int onesTerms(std::int64_t v);

/**
 * Minimum two's complement width able to represent @p v,
 * including the sign bit. bitsNeeded(0) == 1.
 */
int bitsNeeded(std::int64_t v);

/**
 * Batched bitsNeeded() over a contiguous value plane:
 * dst[i] = bitsNeeded(src[i]). Feeds the precision-serial (Dynamic
 * Stripes style) cost tensors the same way boothTermsPlane() feeds
 * the term-serial ones.
 */
void bitsNeededPlane(const std::int16_t *src, std::uint8_t *dst,
                     std::size_t n);
void bitsNeededPlane(const std::int32_t *src, std::uint8_t *dst,
                     std::size_t n);

/**
 * Minimum two's complement width able to represent every element of
 * @p group. Used by the dynamic per-group precision detectors
 * (RawD16 / DeltaD16 style schemes). Empty groups need 1 bit.
 */
int groupBitsNeeded(const std::int16_t *group, std::size_t n);

/**
 * 64-bit content hash (Murmur3-style, 8 bytes per mixing step). Used
 * by the simulation and footprint memo caches to identify identical
 * value streams cheaply. Deterministic for a given build of the
 * library; keys in-memory caches only, so the value is free to change
 * across library versions.
 */
std::uint64_t contentHash64(const void *data, std::size_t bytes,
                            std::uint64_t seed = 0xCBF29CE484222325ULL);

/**
 * CRC-32C (Castagnoli polynomial, as used by iSCSI/ext4) over @p bytes
 * bytes of @p data. Unlike contentHash64() — a fast in-memory memo key
 * whose value is free to change — this is a *stable wire checksum*:
 * the value is part of the on-disk trace format and the EncodedTensor
 * integrity footer, so it must never change across library versions.
 * Chain incremental computation by passing a previous result as
 * @p crc; crc32c("123456789") == 0xE3069283.
 */
std::uint32_t crc32c(const void *data, std::size_t bytes,
                     std::uint32_t crc = 0);

} // namespace diffy

#endif // DIFFY_COMMON_BITOPS_HH
