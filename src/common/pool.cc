#include "common/pool.hh"

#include <atomic>
#include <bit>

#include "common/cache_registry.hh"

namespace diffy
{

namespace
{

/* Process-wide tallies behind the pool.* gauges. common is the leaf
 * layer, so the pool cannot publish to obs itself; obs/pool_gauges.hh
 * reads these through the static accessors. */
std::atomic<std::uint64_t> g_bytesInUse{0};
std::atomic<std::uint64_t> g_steadyFetches{0};

/* The ambient scratch resource ArenaScope installs. A raw TLS pointer
 * (not a memo cache, but registered below all the same so sweep setup
 * provably starts arena-free on reused caller threads). */
thread_local MemoryResource *t_scratch = nullptr;

void
clearScratchResource()
{
    t_scratch = nullptr;
}

} // namespace

DIFFY_REGISTER_THREAD_CACHE(common_pool_scratch, clearScratchResource);

MemoryResource &
scratchResource() noexcept
{
    return t_scratch != nullptr ? *t_scratch : heapResource();
}

/* ------------------------------------------------------------------ */
/* BufferPool                                                          */
/* ------------------------------------------------------------------ */

BufferPool::BufferPool() : free_(65) {}

BufferPool::~BufferPool()
{
    std::lock_guard<std::mutex> lock(mu_);
    // Bucket of size 2^k lives at index bit_width(2^k) = k + 1.
    for (std::size_t idx = 1; idx < free_.size(); ++idx) {
        const std::size_t bytes = std::size_t{1} << (idx - 1);
        for (void *p : free_[idx]) {
            alignedFree(p, kBufferAlign);
            g_bytesInUse.fetch_sub(bytes,
                                   std::memory_order_relaxed);
        }
        free_[idx].clear();
    }
}

std::size_t
BufferPool::bucketBytes(std::size_t min_bytes) noexcept
{
    return std::bit_ceil(min_bytes < 64 ? std::size_t{64}
                                        : min_bytes);
}

void *
BufferPool::acquire(std::size_t min_bytes, std::size_t &block_bytes)
{
    const std::size_t want = bucketBytes(min_bytes);
    const std::size_t idx =
        static_cast<std::size_t>(std::bit_width(want));
    block_bytes = want;
    {
        std::lock_guard<std::mutex> lock(mu_);
        std::vector<void *> &bin = free_[idx];
        if (!bin.empty()) {
            void *p = bin.back();
            bin.pop_back();
            ++stats_.reuses;
            return p;
        }
        ++stats_.heapFetches;
        stats_.bytesInUse += want;
        if (steady_) {
            ++stats_.steadyFetches;
            g_steadyFetches.fetch_add(1, std::memory_order_relaxed);
        }
    }
    g_bytesInUse.fetch_add(want, std::memory_order_relaxed);
    return alignedAlloc(want, kBufferAlign);
}

void
BufferPool::release(void *p, std::size_t block_bytes) noexcept
{
    const std::size_t idx =
        static_cast<std::size_t>(std::bit_width(block_bytes));
    std::lock_guard<std::mutex> lock(mu_);
    free_[idx].push_back(p);
}

void
BufferPool::markSteadyState() noexcept
{
    std::lock_guard<std::mutex> lock(mu_);
    steady_ = true;
}

BufferPool::Stats
BufferPool::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::uint64_t
BufferPool::globalBytesInUse() noexcept
{
    return g_bytesInUse.load(std::memory_order_relaxed);
}

std::uint64_t
BufferPool::globalSteadyFetches() noexcept
{
    return g_steadyFetches.load(std::memory_order_relaxed);
}

/* ------------------------------------------------------------------ */
/* FrameArena                                                          */
/* ------------------------------------------------------------------ */

FrameArena::FrameArena(BufferPool &pool) : pool_(&pool) {}

FrameArena::~FrameArena()
{
    for (const Slab &slab : slabs_)
        pool_->release(slab.base, slab.cap);
}

void *
FrameArena::allocate(std::size_t bytes, std::size_t align)
{
    if (align < kBufferAlign)
        align = kBufferAlign;
    // Bump within the current slab, walking forward through retained
    // slabs (they may have different sizes after oversize requests).
    while (cur_ < slabs_.size()) {
        const Slab &slab = slabs_[cur_];
        const std::uintptr_t base =
            reinterpret_cast<std::uintptr_t>(slab.base);
        const std::uintptr_t aligned =
            (base + offset_ + align - 1) &
            ~(static_cast<std::uintptr_t>(align) - 1);
        const std::size_t end =
            static_cast<std::size_t>(aligned - base) + bytes;
        if (end <= slab.cap) {
            offset_ = end;
            return reinterpret_cast<void *>(aligned);
        }
        ++cur_;
        offset_ = 0;
    }
    // No retained slab fits: fetch one big enough from the pool.
    const std::size_t need =
        bytes + align > kSlabBytes ? bytes + align : kSlabBytes;
    Slab slab;
    slab.base = pool_->acquire(need, slab.cap);
    slabs_.push_back(slab);
    cur_ = slabs_.size() - 1;
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(slab.base);
    const std::uintptr_t aligned =
        (base + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
    offset_ = static_cast<std::size_t>(aligned - base) + bytes;
    return reinterpret_cast<void *>(aligned);
}

FrameArena::Checkpoint
FrameArena::checkpoint() const noexcept
{
    return Checkpoint{cur_, offset_};
}

void
FrameArena::rewind(const Checkpoint &cp) noexcept
{
    cur_ = cp.slab;
    offset_ = cp.offset;
}

/* ------------------------------------------------------------------ */
/* ArenaScope                                                          */
/* ------------------------------------------------------------------ */

ArenaScope::ArenaScope(FrameArena &arena) noexcept : prev_(t_scratch)
{
    t_scratch = &arena;
}

ArenaScope::~ArenaScope()
{
    t_scratch = prev_;
}

} // namespace diffy
