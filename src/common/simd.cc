/**
 * @file
 * Scalar reference kernels and the runtime ISA dispatcher. This TU is
 * compiled with baseline flags only — the scalar table must run on
 * any host the binary reaches. The SSE4/AVX2/NEON tables live in
 * simd_sse4.cc / simd_avx2.cc / simd_neon.cc behind per-TU -m flags.
 */

#include "common/simd.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace diffy::simd
{

namespace
{

/** NAF weight: popcount(v ^ 3v); exact in 32 bits for any int16. */
inline int
nafWeight32(std::int32_t v)
{
    return std::popcount(static_cast<std::uint32_t>(v ^ (3 * v)));
}

/** NAF weight in 64 bits: exact for any int32 input. */
inline int
nafWeight64(std::int64_t v)
{
    return std::popcount(static_cast<std::uint64_t>(v ^ (3 * v)));
}

/** Branch-free magnitude fold: v >= 0 ? v : ~v (see bitsNeeded()). */
inline std::uint32_t
foldSign32(std::int32_t v)
{
    return static_cast<std::uint32_t>(v ^ (v >> 31));
}

void
scalarBoothPlane16(const std::int16_t *src, std::uint8_t *dst,
                   std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint8_t>(nafWeight32(src[i]));
}

void
scalarBoothPlane32(const std::int32_t *src, std::uint8_t *dst,
                   std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint8_t>(nafWeight64(src[i]));
}

void
scalarBitsPlane16(const std::int16_t *src, std::uint8_t *dst,
                  std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::uint8_t>(
            std::bit_width(foldSign32(src[i])) + 1);
    }
}

void
scalarBitsPlane32(const std::int32_t *src, std::uint8_t *dst,
                  std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::uint8_t>(
            std::bit_width(foldSign32(src[i])) + 1);
    }
}

int
scalarGroupBits16(const std::int16_t *group, std::size_t n)
{
    // bit_width(a | b) == max(bit_width(a), bit_width(b)), so or-ing
    // the sign-folded magnitudes gives the group maximum in one
    // branch-free reduction.
    std::uint32_t m = 0;
    for (std::size_t i = 0; i < n; ++i)
        m |= foldSign32(group[i]);
    return std::bit_width(m) + 1;
}

int
scalarGroupBits32(const std::int32_t *group, std::size_t n)
{
    std::uint32_t m = 0;
    for (std::size_t i = 0; i < n; ++i)
        m |= foldSign32(group[i]);
    return std::bit_width(m) + 1;
}

int
scalarDeltaBits16(const std::int16_t *prev, const std::int16_t *cur,
                  std::int32_t *delta, std::size_t n)
{
    std::uint32_t m = 0;
    for (std::size_t i = 0; i < n; ++i) {
        delta[i] = static_cast<std::int32_t>(cur[i]) -
                   static_cast<std::int32_t>(prev[i]);
        m |= foldSign32(delta[i]);
    }
    return std::bit_width(m) + 1;
}

void
scalarAddSat16(const std::int16_t *prev, const std::int32_t *delta,
               std::int16_t *out, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::int32_t v =
            static_cast<std::int32_t>(prev[i]) + delta[i];
        out[i] = static_cast<std::int16_t>(
            std::clamp(v, -32768, 32767));
    }
}

std::int64_t
scalarWalkSumMax(const std::uint8_t *base, std::size_t rowStride,
                 std::size_t rows, int colStride, std::uint8_t *colMax,
                 int cols)
{
    std::int64_t sum = 0;
    for (int j = 0; j < cols; ++j)
        colMax[j] = 0;
    for (std::size_t r = 0; r < rows; ++r) {
        const std::uint8_t *row = base + r * rowStride;
        for (int j = 0; j < cols; ++j) {
            const std::uint8_t v =
                row[static_cast<std::size_t>(j) * colStride];
            sum += v;
            if (v > colMax[j])
                colMax[j] = v;
        }
    }
    return sum;
}

void
scalarHashStripes(const unsigned char *p, std::size_t stripes,
                  std::uint32_t acc[8])
{
    // Murmur3-x86 lane mix; every table must implement exactly this
    // per-lane recurrence (lanes are independent by construction).
    constexpr std::uint32_t c1 = 0xCC9E2D51u;
    constexpr std::uint32_t c2 = 0x1B873593u;
    for (std::size_t s = 0; s < stripes; ++s) {
        for (int l = 0; l < 8; ++l) {
            std::uint32_t k;
            std::memcpy(&k, p + 32 * s + 4 * l, 4);
            k *= c1;
            k = std::rotl(k, 15);
            k *= c2;
            acc[l] ^= k;
            acc[l] = std::rotl(acc[l], 13);
            acc[l] = acc[l] * 5 + 0xE6546B64u;
        }
    }
}

/** True when the running CPU can execute @p isa. */
bool
cpuSupports(Isa isa)
{
    switch (isa) {
      case Isa::Scalar:
        return true;
#if defined(__x86_64__) || defined(__i386__)
      case Isa::Sse4:
        return __builtin_cpu_supports("sse4.2") != 0;
      case Isa::Avx2:
        return __builtin_cpu_supports("avx2") != 0;
#endif
#if defined(__aarch64__)
      case Isa::Neon:
        return true; // NEON is architectural on aarch64.
#endif
      default:
        return false;
    }
}

const KernelTable *
resolveOnce()
{
    const char *env = std::getenv("DIFFY_ISA");
    if (env == nullptr || *env == '\0' ||
        std::string(env) == "native")
        return table(bestIsa());
    Isa want = Isa::Scalar;
    if (!parseIsa(env, want)) {
        std::fprintf(stderr,
                     "diffy: unknown DIFFY_ISA '%s' "
                     "(scalar|sse4|avx2|neon|native); using %s\n",
                     env, isaName(bestIsa()));
        return table(bestIsa());
    }
    const KernelTable *t = table(want);
    if (t == nullptr) {
        std::fprintf(stderr,
                     "diffy: DIFFY_ISA=%s is not available on this "
                     "host/build; falling back to scalar\n",
                     env);
        return &scalarTable();
    }
    return t;
}

} // namespace

const char *
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Scalar:
        return "scalar";
      case Isa::Sse4:
        return "sse4";
      case Isa::Avx2:
        return "avx2";
      case Isa::Neon:
        return "neon";
    }
    return "?";
}

bool
parseIsa(const std::string &name, Isa &out)
{
    for (Isa isa : {Isa::Scalar, Isa::Sse4, Isa::Avx2, Isa::Neon}) {
        if (name == isaName(isa)) {
            out = isa;
            return true;
        }
    }
    return false;
}

const KernelTable &
scalarTable()
{
    static const KernelTable t = {
        Isa::Scalar,        &scalarBoothPlane16, &scalarBoothPlane32,
        &scalarBitsPlane16, &scalarBitsPlane32,  &scalarGroupBits16,
        &scalarGroupBits32, &scalarDeltaBits16,  &scalarAddSat16,
        &scalarWalkSumMax,  &scalarHashStripes,
    };
    return t;
}

const KernelTable *
table(Isa isa)
{
    if (!cpuSupports(isa))
        return nullptr;
    switch (isa) {
      case Isa::Scalar:
        return &scalarTable();
#if DIFFY_SIMD_SSE4
      case Isa::Sse4:
        return &detail::sse4Table();
#endif
#if DIFFY_SIMD_AVX2
      case Isa::Avx2:
        return &detail::avx2Table();
#endif
#if DIFFY_SIMD_NEON
      case Isa::Neon:
        return &detail::neonTable();
#endif
      default:
        return nullptr;
    }
}

std::vector<Isa>
availableIsas()
{
    std::vector<Isa> out;
    for (Isa isa : {Isa::Scalar, Isa::Sse4, Isa::Avx2, Isa::Neon}) {
        if (table(isa) != nullptr)
            out.push_back(isa);
    }
    return out;
}

Isa
bestIsa()
{
    // The enumerators are ordered narrow-to-wide per architecture and
    // only one architecture's entries probe true on a given host, so
    // the last available ISA is the widest.
    return availableIsas().back();
}

const KernelTable &
kernels()
{
    // Resolved once, first use; the table is immutable afterwards, so
    // concurrent readers only ever see the same pointers (the static
    // initialization itself is thread-safe).
    static const KernelTable *resolved = resolveOnce();
    return *resolved;
}

Isa
activeIsa()
{
    return kernels().isa;
}

} // namespace diffy::simd
