#include "common/rng.hh"

#include <cmath>

namespace diffy
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &state)
{
    state += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

std::uint64_t
Rng::seedFromString(const std::string &label)
{
    // FNV-1a, then one splitmix64 round for avalanche.
    std::uint64_t h = 0xCBF29CE484222325ULL;
    for (unsigned char c : label) {
        h ^= c;
        h *= 0x100000001B3ULL;
    }
    return splitmix64(h);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::below(std::uint64_t n)
{
    // Rejection-free modulo is fine here; bias is negligible for the
    // ranges used (all far below 2^32).
    return next() % n;
}

double
Rng::gaussian()
{
    if (haveSpare_) {
        haveSpare_ = false;
        return spare_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-12);
    double u2 = uniform();
    double mag = std::sqrt(-2.0 * std::log(u1));
    spare_ = mag * std::sin(2.0 * M_PI * u2);
    haveSpare_ = true;
    return mag * std::cos(2.0 * M_PI * u2);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

} // namespace diffy
