/**
 * @file
 * Plain-text table renderer used by the bench binaries to print
 * paper-style tables and figure series to stdout.
 */

#ifndef DIFFY_COMMON_TABLE_HH
#define DIFFY_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace diffy
{

/** Column-aligned text table with a title and a header row. */
class TextTable
{
  public:
    explicit TextTable(std::string title);

    void setHeader(std::vector<std::string> header);
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double v, int precision = 2);

    /** Convenience: format as a multiplicative factor, e.g. "7.10x". */
    static std::string factor(double v, int precision = 2);

    /** Convenience: format as a percentage, e.g. "55.0%". */
    static std::string percent(double v, int precision = 1);

    /** Render to a string (also see print()). */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace diffy

#endif // DIFFY_COMMON_TABLE_HH
