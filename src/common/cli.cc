#include "common/cli.hh"

#include <charconv>
#include <cstdlib>
#include <stdexcept>

namespace diffy
{

CliArgs::CliArgs(int argc, const char *const *argv,
                 const std::set<std::string> &boolFlags)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positionals_.push_back(std::move(arg));
            continue;
        }
        arg = arg.substr(2);
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (boolFlags.count(arg) != 0) {
            // Declared boolean: never swallow the next token — it is a
            // positional (the historical bug: "--verbose trace.bin"
            // bound verbose="trace.bin" and lost the file argument).
            values_[arg] = "true";
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)) {
            values_[arg] = argv[++i];
        } else {
            values_[arg] = "true";
        }
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
CliArgs::getString(const std::string &name, const std::string &fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
CliArgs::getInt(const std::string &name, std::int64_t fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    const std::string &text = it->second;
    std::int64_t value = 0;
    auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec != std::errc{} || end != text.data() + text.size())
        throw std::invalid_argument("--" + name + " expects an integer, got \"" +
                                    text + "\"");
    return value;
}

double
CliArgs::getDouble(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    const std::string &text = it->second;
    // strtod rather than from_chars<double>: libstdc++'s FP from_chars
    // support is newer than the rest of our C++20 floor.
    char *end = nullptr;
    double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0')
        throw std::invalid_argument("--" + name + " expects a number, got \"" +
                                    text + "\"");
    return value;
}

bool
CliArgs::getBool(const std::string &name, bool fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
}

} // namespace diffy
