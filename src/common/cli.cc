#include "common/cli.hh"

#include <cstdlib>

namespace diffy
{

CliArgs::CliArgs(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            continue;
        arg = arg.substr(2);
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            values_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0)) {
            values_[arg] = argv[++i];
        } else {
            values_[arg] = "true";
        }
    }
}

bool
CliArgs::has(const std::string &name) const
{
    return values_.count(name) > 0;
}

std::string
CliArgs::getString(const std::string &name, const std::string &fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
}

std::int64_t
CliArgs::getInt(const std::string &name, std::int64_t fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atoll(it->second.c_str());
}

double
CliArgs::getDouble(const std::string &name, double fallback) const
{
    auto it = values_.find(name);
    return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

bool
CliArgs::getBool(const std::string &name, bool fallback) const
{
    auto it = values_.find(name);
    if (it == values_.end())
        return fallback;
    return it->second == "true" || it->second == "1" || it->second == "yes";
}

} // namespace diffy
