/**
 * @file
 * Central registry of thread-local memo-cache clear hooks.
 *
 * Several hot paths memoize pure functions in `thread_local` maps
 * (the pallet-walk cache in sim/pra, the bits-per-value and profiled-
 * precision memos in encode/footprint, the prepared-weights cache in
 * nn/executor). Each such cache is a correctness hazard if a stale
 * entry survives a sweep reconfiguration, and an operational hazard if
 * its clear hook exists only as an ad-hoc function nobody remembers to
 * call. This registry centralizes the hooks:
 *
 *  - every translation unit that declares a `thread_local` memo cache
 *    registers a clear function with DIFFY_REGISTER_THREAD_CACHE
 *    (diffy-lint rule R2 enforces this);
 *  - clearRegisteredThreadCaches() invokes every registered hook *on
 *    the calling thread* — thread_local storage is per-thread, so the
 *    call resets only the caller's instances. SweepScheduler::run()
 *    calls it at sweep setup, which covers both execution modes: the
 *    serial inline path reuses the caller thread across sweeps (where
 *    stale memos could otherwise persist), and the pool path spawns
 *    fresh workers whose caches start empty.
 *
 * Registration happens during static initialization via the macro's
 * file-scope registrar object; the registry itself is a Meyers
 * singleton, so it is constructed on first use regardless of TU
 * initialization order.
 */

#ifndef DIFFY_COMMON_CACHE_REGISTRY_HH
#define DIFFY_COMMON_CACHE_REGISTRY_HH

#include <cstddef>
#include <string>
#include <vector>

namespace diffy
{

/** Clears the calling thread's instance of one thread_local cache. */
using ThreadCacheClearFn = void (*)();

/**
 * Register a clear hook under a diagnostic name. Returns true so the
 * macro below can initialize a file-scope registrar. Idempotent per
 * (name, fn) pair: re-registration (e.g. from a test harness) is
 * ignored.
 */
bool registerThreadCacheClear(const char *name, ThreadCacheClearFn fn);

/** Run every registered hook on the calling thread. */
void clearRegisteredThreadCaches();

/** Diagnostic names of the registered hooks, in registration order. */
std::vector<std::string> registeredThreadCacheNames();

/** Number of registered hooks. */
std::size_t registeredThreadCacheCount();

} // namespace diffy

/**
 * Register @p fn as the clear hook of the thread_local cache(s) in
 * this translation unit. Place at namespace scope in the same file as
 * the `thread_local` declaration.
 */
#define DIFFY_REGISTER_THREAD_CACHE(tag, fn)                              \
    namespace                                                             \
    {                                                                     \
    [[maybe_unused]] const bool diffy_cache_registrar_##tag =             \
        ::diffy::registerThreadCacheClear(#tag, fn);                      \
    }                                                                     \
    static_assert(true, "require a trailing semicolon")

#endif // DIFFY_COMMON_CACHE_REGISTRY_HH
