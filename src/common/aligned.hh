/**
 * @file
 * 32-byte-aligned allocation for the plane buffers the SIMD kernels
 * chew through (term planes, delta scratch rows, imap storage).
 *
 * The vector kernels themselves use unaligned loads — exact-width
 * chunking handles tails, so alignment is a throughput optimization,
 * not a correctness requirement — but keeping every plane on a
 * 32-byte boundary lets aligned 256-bit accesses dominate.
 *
 * AlignedAllocator is stateful: it carries a MemoryResource pointer,
 * defaulting to the global heap but swappable for a pool-backed
 * FrameArena (common/pool.hh). The propagation traits follow the
 * std::pmr playbook so mixing heap- and arena-backed vectors is
 * well-defined:
 *
 *  - copy assignment keeps the destination's resource (POCCA=false):
 *    persistent state copy-assigned from a per-frame arena tensor
 *    stays on the heap and reuses its capacity;
 *  - move assignment and swap transfer the resource (POCMA/POCS=
 *    true): both stay O(1) and never mix a buffer with the wrong
 *    deallocator — but they DO adopt the source's arena, so never
 *    move/swap a scratch buffer into state that outlives the frame;
 *  - copy construction selects the default (heap) allocator
 *    (select_on_container_copy_construction), so copies never
 *    silently inherit an arena.
 */

#ifndef DIFFY_COMMON_ALIGNED_HH
#define DIFFY_COMMON_ALIGNED_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

namespace diffy
{

/** Alignment of every bulk value/plane buffer: one AVX2 register. */
inline constexpr std::size_t kBufferAlign = 32;

/**
 * Allocate @p bytes with @p align alignment via aligned operator new,
 * so sanitizers track the block like any other allocation. Release
 * with alignedFree() using the same alignment.
 */
inline void *
alignedAlloc(std::size_t bytes, std::size_t align = kBufferAlign)
{
    return ::operator new(bytes, std::align_val_t{align});
}

inline void
alignedFree(void *p, std::size_t align = kBufferAlign) noexcept
{
    ::operator delete(p, std::align_val_t{align});
}

/**
 * Upstream source of raw aligned memory behind AlignedAllocator — the
 * project-local analogue of std::pmr::memory_resource. Two
 * implementations exist: the process-wide heap (below) and the
 * per-frame bump arena (common/pool.hh).
 */
class MemoryResource
{
  public:
    virtual ~MemoryResource() = default;
    virtual void *allocate(std::size_t bytes, std::size_t align) = 0;
    virtual void deallocate(void *p, std::size_t bytes,
                            std::size_t align) noexcept = 0;
};

namespace detail
{

class HeapMemoryResource final : public MemoryResource
{
  public:
    void *
    allocate(std::size_t bytes, std::size_t align) override
    {
        return alignedAlloc(bytes, align);
    }

    void
    deallocate(void *p, std::size_t, std::size_t align) noexcept override
    {
        alignedFree(p, align);
    }
};

} // namespace detail

/** The process-wide heap resource — the allocator default. */
inline MemoryResource &
heapResource() noexcept
{
    static detail::HeapMemoryResource heap;
    return heap;
}

/**
 * The ambient scratch resource for the current thread: the FrameArena
 * installed by an ArenaScope (common/pool.hh), or the heap when no
 * scope is active. Defined in pool.cc.
 */
MemoryResource &scratchResource() noexcept;

/**
 * C++20 allocator over a MemoryResource. Defaults to the heap; see
 * the file comment for the propagation contract.
 */
template <typename T>
struct AlignedAllocator
{
    using value_type = T;
    using propagate_on_container_copy_assignment = std::false_type;
    using propagate_on_container_move_assignment = std::true_type;
    using propagate_on_container_swap = std::true_type;
    using is_always_equal = std::false_type;

    AlignedAllocator() noexcept : res_(&heapResource()) {}

    explicit AlignedAllocator(MemoryResource *res) noexcept : res_(res)
    {}

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U> &other) noexcept
        : res_(other.resource())
    {}

    /** Copies never inherit an arena (the std::pmr idiom). */
    AlignedAllocator
    select_on_container_copy_construction() const noexcept
    {
        return AlignedAllocator();
    }

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(
            res_->allocate(n * sizeof(T), alignFor()));
    }

    void
    deallocate(T *p, std::size_t n) noexcept
    {
        res_->deallocate(p, n * sizeof(T), alignFor());
    }

    MemoryResource *
    resource() const noexcept
    {
        return res_;
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U> &other) const noexcept
    {
        return res_ == other.resource();
    }

  private:
    static constexpr std::size_t
    alignFor() noexcept
    {
        return alignof(T) > kBufferAlign ? alignof(T) : kBufferAlign;
    }

    MemoryResource *res_;
};

/**
 * Allocator bound to the current thread's scratch resource — arena
 * inside an ArenaScope, heap elsewhere. The opt-in handle transient
 * per-frame buffers use; nothing routes to an arena implicitly.
 */
template <typename T>
AlignedAllocator<T>
scratchAlloc() noexcept
{
    return AlignedAllocator<T>(&scratchResource());
}

/** std::vector whose storage starts on a kBufferAlign boundary. */
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

/** Aligned byte buffer — encoded streams, bitstream payloads. */
using ByteVec = AlignedVec<std::uint8_t>;

} // namespace diffy

#endif // DIFFY_COMMON_ALIGNED_HH
