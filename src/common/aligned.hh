/**
 * @file
 * 32-byte-aligned allocation for the plane buffers the SIMD kernels
 * chew through (term planes, delta scratch rows, imap storage).
 *
 * The vector kernels themselves use unaligned loads — exact-width
 * chunking handles tails, so alignment is a throughput optimization,
 * not a correctness requirement — but keeping every plane on a
 * 32-byte boundary lets aligned 256-bit accesses dominate and is the
 * first brick toward the pooled/arena buffers of ROADMAP item 5.
 */

#ifndef DIFFY_COMMON_ALIGNED_HH
#define DIFFY_COMMON_ALIGNED_HH

#include <cstddef>
#include <new>
#include <vector>

namespace diffy
{

/** Alignment of every bulk value/plane buffer: one AVX2 register. */
inline constexpr std::size_t kBufferAlign = 32;

/**
 * Allocate @p bytes with @p align alignment via aligned operator new,
 * so sanitizers track the block like any other allocation. Release
 * with alignedFree() using the same alignment.
 */
inline void *
alignedAlloc(std::size_t bytes, std::size_t align = kBufferAlign)
{
    return ::operator new(bytes, std::align_val_t{align});
}

inline void
alignedFree(void *p, std::size_t align = kBufferAlign) noexcept
{
    ::operator delete(p, std::align_val_t{align});
}

/**
 * Minimal C++20 allocator over alignedAlloc(). All instances compare
 * equal (the global heap), so containers move/swap freely.
 */
template <typename T>
struct AlignedAllocator
{
    using value_type = T;

    AlignedAllocator() = default;

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U> &) noexcept
    {}

    T *
    allocate(std::size_t n)
    {
        return static_cast<T *>(alignedAlloc(n * sizeof(T)));
    }

    void
    deallocate(T *p, std::size_t) noexcept
    {
        alignedFree(p);
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U> &) const noexcept
    {
        return true;
    }
};

/** std::vector whose storage starts on a kBufferAlign boundary. */
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

} // namespace diffy

#endif // DIFFY_COMMON_ALIGNED_HH
