#include "common/fixed_point.hh"

#include <cmath>
#include <limits>

namespace diffy
{

std::int16_t
saturate16(std::int64_t v)
{
    if (v > std::numeric_limits<std::int16_t>::max())
        return std::numeric_limits<std::int16_t>::max();
    if (v < std::numeric_limits<std::int16_t>::min())
        return std::numeric_limits<std::int16_t>::min();
    return static_cast<std::int16_t>(v);
}

std::int16_t
quantize16(double v, int frac_bits)
{
    double scaled = v * static_cast<double>(std::int64_t{1} << frac_bits);
    return saturate16(static_cast<std::int64_t>(std::llround(scaled)));
}

double
dequantize16(std::int16_t v, int frac_bits)
{
    return static_cast<double>(v) /
           static_cast<double>(std::int64_t{1} << frac_bits);
}

int
chooseFracBits(double max_abs)
{
    // Need ceil(log2(max_abs)) integer bits plus sign; the rest of the
    // 16-bit budget goes to the fraction. Degenerate all-zero tensors
    // get the maximum fractional precision.
    if (max_abs <= 0.0)
        return 14;
    int int_bits = 0;
    while ((std::int64_t{1} << int_bits) <= static_cast<std::int64_t>(max_abs))
        ++int_bits;
    int frac = 15 - int_bits - 1; // sign + integer part + headroom bit
    if (frac < 0)
        frac = 0;
    if (frac > 14)
        frac = 14;
    return frac;
}

std::vector<std::int16_t>
quantizeBuffer(const std::vector<double> &v, int frac_bits)
{
    std::vector<std::int16_t> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = quantize16(v[i], frac_bits);
    return out;
}

} // namespace diffy
