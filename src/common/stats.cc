#include "common/stats.hh"

#include <cmath>

namespace diffy
{

void
RunningStat::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        if (x < min_)
            min_ = x;
        if (x > max_)
            max_ = x;
    }
    ++n_;
    sum_ += x;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    double delta = other.mean_ - mean_;
    std::uint64_t n = n_ + other.n_;
    double na = static_cast<double>(n_);
    double nb = static_cast<double>(other.n_);
    double nTotal = static_cast<double>(n);
    mean_ += delta * nb / nTotal;
    m2_ += other.m2_ + delta * delta * na * nb / nTotal;
    n_ = n;
    sum_ += other.sum_;
    if (other.min_ < min_)
        min_ = other.min_;
    if (other.max_ > max_)
        max_ = other.max_;
}

double
RunningStat::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
Histogram::add(std::int64_t symbol, std::uint64_t weight)
{
    bins_[symbol] += weight;
    total_ += weight;
}

void
Histogram::merge(const Histogram &other)
{
    for (const auto &[sym, cnt] : other.bins_) {
        bins_[sym] += cnt;
    }
    total_ += other.total_;
}

std::uint64_t
Histogram::countOf(std::int64_t symbol) const
{
    auto it = bins_.find(symbol);
    return it == bins_.end() ? 0 : it->second;
}

double
Histogram::entropyBits() const
{
    if (total_ == 0)
        return 0.0;
    double h = 0.0;
    double n = static_cast<double>(total_);
    for (const auto &[sym, cnt] : bins_) {
        double p = static_cast<double>(cnt) / n;
        h -= p * std::log2(p);
    }
    return h;
}

double
Histogram::fractionAt(std::int64_t symbol) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(countOf(symbol)) /
           static_cast<double>(total_);
}

std::int64_t
Histogram::quantile(double q) const
{
    if (total_ == 0)
        return 0;
    double target = q * static_cast<double>(total_);
    double acc = 0.0;
    std::int64_t last = bins_.begin()->first;
    for (const auto &[sym, cnt] : bins_) {
        acc += static_cast<double>(cnt);
        last = sym;
        if (acc >= target)
            return sym;
    }
    return last;
}

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    double acc = 0.0;
    for (const auto &[sym, cnt] : bins_)
        acc += static_cast<double>(sym) * static_cast<double>(cnt);
    return acc / static_cast<double>(total_);
}

std::vector<std::pair<std::int64_t, double>>
Histogram::cdf() const
{
    std::vector<std::pair<std::int64_t, double>> out;
    out.reserve(bins_.size());
    double acc = 0.0;
    double n = static_cast<double>(total_ ? total_ : 1);
    for (const auto &[sym, cnt] : bins_) {
        acc += static_cast<double>(cnt);
        out.emplace_back(sym, acc / n);
    }
    return out;
}

namespace
{

std::uint64_t
pairKey(std::int32_t a, std::int32_t b)
{
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(a)) << 32) |
           static_cast<std::uint64_t>(static_cast<std::uint32_t>(b));
}

} // namespace

void
JointHistogram::add(std::int32_t a, std::int32_t b, std::uint64_t weight)
{
    joint_[pairKey(a, b)] += weight;
    marginalB_[b] += weight;
    total_ += weight;
}

void
JointHistogram::merge(const JointHistogram &other)
{
    for (const auto &[key, cnt] : other.joint_)
        joint_[key] += cnt;
    for (const auto &[key, cnt] : other.marginalB_)
        marginalB_[key] += cnt;
    total_ += other.total_;
}

double
JointHistogram::jointEntropyBits() const
{
    if (total_ == 0)
        return 0.0;
    double h = 0.0;
    double n = static_cast<double>(total_);
    for (const auto &[key, cnt] : joint_) {
        double p = static_cast<double>(cnt) / n;
        h -= p * std::log2(p);
    }
    return h;
}

double
JointHistogram::marginalEntropyBBits() const
{
    if (total_ == 0)
        return 0.0;
    double h = 0.0;
    double n = static_cast<double>(total_);
    for (const auto &[key, cnt] : marginalB_) {
        double p = static_cast<double>(cnt) / n;
        h -= p * std::log2(p);
    }
    return h;
}

double
JointHistogram::conditionalEntropyBits() const
{
    return jointEntropyBits() - marginalEntropyBBits();
}

double
geometricMean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double acc = 0.0;
    for (double v : values)
        acc += std::log(v);
    return std::exp(acc / static_cast<double>(values.size()));
}

} // namespace diffy
