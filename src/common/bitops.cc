#include "common/bitops.hh"

#include <array>
#include <bit>
#include <cstring>

namespace diffy
{

namespace
{

/**
 * NAF weight of a sign-extended value that is at least two bits away
 * from the edges of its integer type: writing v in non-adjacent form,
 * a digit position is nonzero exactly where v and 3v disagree, so the
 * term count is popcount(v ^ 3v). For negative v both operands share
 * the sign-extension bits, which cancel in the xor.
 */
inline int
nafWeight32(std::int32_t v)
{
    return std::popcount(static_cast<std::uint32_t>(v ^ (3 * v)));
}

inline int
nafWeight64(std::int64_t v)
{
    return std::popcount(static_cast<std::uint64_t>(v ^ (3 * v)));
}

/** Branch-free magnitude fold: v >= 0 ? v : ~v (see bitsNeeded()). */
inline std::uint32_t
foldSign32(std::int32_t v)
{
    return static_cast<std::uint32_t>(v ^ (v >> 31));
}

} // namespace

int
boothTerms(std::int64_t v)
{
    // Bit-parallel NAF weight: popcount(v ^ 3v). The identity needs
    // the two top bits of 3v to survive, so evaluate in 128 bits to
    // stay exact over the whole int64 domain (the hot callers only
    // ever pass 16/17-bit quantities, but the contract is int64).
    const auto w =
        static_cast<unsigned __int128>(static_cast<__int128>(v));
    const unsigned __int128 x = w ^ (3 * w);
    return std::popcount(static_cast<std::uint64_t>(x)) +
           std::popcount(static_cast<std::uint64_t>(x >> 64));
}

void
boothTermsPlane(const std::int16_t *src, std::uint8_t *dst, std::size_t n)
{
    // 3v of an int16 fits in 18 bits, so 32-bit lanes are exact; the
    // loop is branch-free and auto-vectorizes.
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint8_t>(nafWeight32(src[i]));
}

void
boothTermsPlane(const std::int32_t *src, std::uint8_t *dst, std::size_t n)
{
    // 64-bit lanes keep 3v exact for any int32 (deltas of int16
    // streams need 17 bits; the encode-side callers pass int32).
    for (std::size_t i = 0; i < n; ++i)
        dst[i] = static_cast<std::uint8_t>(nafWeight64(src[i]));
}

std::vector<int>
boothDecompose(std::int64_t v)
{
    std::vector<int> terms;
    int exponent = 0;
    while (v != 0) {
        if (v & 1) {
            // d in {+1, -1} chosen so that (v - d) is divisible by 4,
            // which guarantees non-adjacency of the produced digits.
            std::int64_t d = 2 - (v & 3);
            if (d > 0)
                terms.push_back(exponent);
            else
                terms.push_back(-(exponent + 1));
            v -= d;
        }
        v >>= 1;
        ++exponent;
    }
    return terms;
}

std::int64_t
boothReconstruct(const std::vector<int> &terms)
{
    std::int64_t v = 0;
    for (int t : terms) {
        if (t >= 0)
            v += std::int64_t{1} << t;
        else
            v -= std::int64_t{1} << (-t - 1);
    }
    return v;
}

int
onesTerms(std::int64_t v)
{
    const auto u = static_cast<std::uint64_t>(v);
    const std::uint64_t mag = v < 0 ? 0 - u : u;
    return std::popcount(mag);
}

int
bitsNeeded(std::int64_t v)
{
    // Width of the shortest two's complement representation. A
    // non-negative v needs bit_width(v) magnitude bits plus a sign
    // bit; a negative v fits in n bits iff v >= -2^(n-1), i.e. iff
    // bit_width(~v) < n. Both cases collapse to folding the sign.
    const auto m = static_cast<std::uint64_t>(v < 0 ? ~v : v);
    // bit_width returns the operand's unsigned type; the value is at
    // most 64, so the narrowing to int is exact.
    return static_cast<int>(std::bit_width(m)) + 1;
}

void
bitsNeededPlane(const std::int16_t *src, std::uint8_t *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::uint8_t>(
            std::bit_width(foldSign32(src[i])) + 1);
    }
}

void
bitsNeededPlane(const std::int32_t *src, std::uint8_t *dst, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = static_cast<std::uint8_t>(
            std::bit_width(foldSign32(src[i])) + 1);
    }
}

std::uint64_t
contentHash64(const void *data, std::size_t bytes, std::uint64_t seed)
{
    // Murmur3-style 8-bytes-per-step mixing. This hashes every imap
    // on every pallet-walk and footprint memo lookup, so per-byte
    // FNV-1a was a measurable cost. Keys only in-memory caches: the
    // value may change across library versions (and between hosts of
    // different endianness) but is stable within a run and across
    // runs on one build — which is all the memo caches need.
    const std::uint64_t c1 = 0x87C37B91114253D5ULL;
    const std::uint64_t c2 = 0x4CF5AD432745937FULL;
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed ^ (static_cast<std::uint64_t>(bytes) * c1);

    std::size_t i = 0;
    for (; i + 8 <= bytes; i += 8) {
        std::uint64_t k;
        std::memcpy(&k, p + i, 8);
        k *= c1;
        k = std::rotl(k, 31);
        k *= c2;
        h ^= k;
        h = std::rotl(h, 27);
        h = h * 5 + 0x52DCE729ULL;
    }
    if (i < bytes) {
        std::uint64_t k = 0;
        for (std::size_t t = 0; i + t < bytes; ++t)
            k |= static_cast<std::uint64_t>(p[i + t]) << (8 * t);
        k *= c1;
        k = std::rotl(k, 31);
        k *= c2;
        h ^= k;
    }

    // fmix64 finalizer: full avalanche so the memo maps see
    // well-distributed buckets even for near-identical imaps.
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    h *= 0xC4CEB9FE1A85EC53ULL;
    h ^= h >> 33;
    return h;
}

namespace
{

/**
 * CRC-32C (Castagnoli) lookup table, reflected polynomial 0x82F63B78.
 * Built once at first use; 1 KiB, shared by every caller.
 */
const std::uint32_t *
crc32cTable()
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = n;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
            t[n] = c;
        }
        return t;
    }();
    return table.data();
}

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t bytes, std::uint32_t crc)
{
    const std::uint32_t *table = crc32cTable();
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = ~crc;
    for (std::size_t i = 0; i < bytes; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return ~c;
}

int
groupBitsNeeded(const std::int16_t *group, std::size_t n)
{
    // bit_width(a | b) == max(bit_width(a), bit_width(b)), so or-ing
    // the sign-folded magnitudes gives the group maximum in one
    // branch-free reduction.
    std::uint32_t m = 0;
    for (std::size_t i = 0; i < n; ++i)
        m |= foldSign32(group[i]);
    return std::bit_width(m) + 1;
}

} // namespace diffy
