#include "common/bitops.hh"

#include <array>
#include <bit>
#include <cstring>

#include "common/simd.hh"

namespace diffy
{

int
boothTerms(std::int64_t v)
{
    // Bit-parallel NAF weight: popcount(v ^ 3v). The identity needs
    // the two top bits of 3v to survive, so evaluate in 128 bits to
    // stay exact over the whole int64 domain (the hot callers only
    // ever pass 16/17-bit quantities, but the contract is int64).
    const auto w =
        static_cast<unsigned __int128>(static_cast<__int128>(v));
    const unsigned __int128 x = w ^ (3 * w);
    return std::popcount(static_cast<std::uint64_t>(x)) +
           std::popcount(static_cast<std::uint64_t>(x >> 64));
}

void
boothTermsPlane(const std::int16_t *src, std::uint8_t *dst, std::size_t n)
{
    // Batched kernels route through the runtime ISA dispatch table
    // (common/simd.hh); the scalar entries are the PR 3 reference
    // code, so every caller keeps byte-identical results under
    // DIFFY_ISA=scalar.
    simd::kernels().boothTermsPlane16(src, dst, n);
}

void
boothTermsPlane(const std::int32_t *src, std::uint8_t *dst, std::size_t n)
{
    simd::kernels().boothTermsPlane32(src, dst, n);
}

std::vector<int>
boothDecompose(std::int64_t v)
{
    std::vector<int> terms;
    int exponent = 0;
    while (v != 0) {
        if (v & 1) {
            // d in {+1, -1} chosen so that (v - d) is divisible by 4,
            // which guarantees non-adjacency of the produced digits.
            std::int64_t d = 2 - (v & 3);
            if (d > 0)
                terms.push_back(exponent);
            else
                terms.push_back(-(exponent + 1));
            v -= d;
        }
        v >>= 1;
        ++exponent;
    }
    return terms;
}

std::int64_t
boothReconstruct(const std::vector<int> &terms)
{
    std::int64_t v = 0;
    for (int t : terms) {
        if (t >= 0)
            v += std::int64_t{1} << t;
        else
            v -= std::int64_t{1} << (-t - 1);
    }
    return v;
}

int
onesTerms(std::int64_t v)
{
    const auto u = static_cast<std::uint64_t>(v);
    const std::uint64_t mag = v < 0 ? 0 - u : u;
    return std::popcount(mag);
}

int
bitsNeeded(std::int64_t v)
{
    // Width of the shortest two's complement representation. A
    // non-negative v needs bit_width(v) magnitude bits plus a sign
    // bit; a negative v fits in n bits iff v >= -2^(n-1), i.e. iff
    // bit_width(~v) < n. Both cases collapse to folding the sign.
    const auto m = static_cast<std::uint64_t>(v < 0 ? ~v : v);
    // bit_width returns the operand's unsigned type; the value is at
    // most 64, so the narrowing to int is exact.
    return static_cast<int>(std::bit_width(m)) + 1;
}

void
bitsNeededPlane(const std::int16_t *src, std::uint8_t *dst, std::size_t n)
{
    simd::kernels().bitsNeededPlane16(src, dst, n);
}

void
bitsNeededPlane(const std::int32_t *src, std::uint8_t *dst, std::size_t n)
{
    simd::kernels().bitsNeededPlane32(src, dst, n);
}

std::uint64_t
contentHash64(const void *data, std::size_t bytes, std::uint64_t seed)
{
    // Murmur3-style mixing. This hashes every imap on every
    // pallet-walk and footprint memo lookup, so per-byte FNV-1a was a
    // measurable cost. Keys only in-memory caches: the value may
    // change across library versions (and between hosts of different
    // endianness) but is stable within a run and across runs on one
    // build — which is all the memo caches need.
    //
    // Bulk input (>= 32 bytes) runs through eight independent 32-bit
    // lane accumulators (Murmur3-x86 lane mix, vectorizable — the
    // dispatched hashStripes kernel) whose final state is folded into
    // the serial 8-byte mixer; shorter input takes the serial mixer
    // alone, so sub-32-byte hashes are unchanged from the pre-SIMD
    // implementation.
    const std::uint64_t c1 = 0x87C37B91114253D5ULL;
    const std::uint64_t c2 = 0x4CF5AD432745937FULL;
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed ^ (static_cast<std::uint64_t>(bytes) * c1);

    auto mix8 = [&h, c1, c2](std::uint64_t k) {
        k *= c1;
        k = std::rotl(k, 31);
        k *= c2;
        h ^= k;
        h = std::rotl(h, 27);
        h = h * 5 + 0x52DCE729ULL;
    };

    std::size_t i = 0;
    const std::size_t stripes = bytes / 32;
    if (stripes > 0) {
        // Arbitrary odd constants diversify the lanes; the seed is
        // folded in so seeded hashes diverge in the bulk path too.
        std::uint32_t acc[8] = {0x9E3779B9u, 0x85EBCA6Bu, 0xC2B2AE35u,
                                0x27D4EB2Fu, 0x165667B1u, 0xD3A2646Cu,
                                0xFD7046C5u, 0xB55A4F09u};
        const auto s_lo = static_cast<std::uint32_t>(seed);
        const auto s_hi = static_cast<std::uint32_t>(seed >> 32);
        for (int l = 0; l < 8; ++l)
            acc[l] ^= (l & 1) != 0 ? s_hi : s_lo;
        simd::kernels().hashStripes(p, stripes, acc);
        for (int l = 0; l < 8; l += 2) {
            mix8(static_cast<std::uint64_t>(acc[l]) |
                 (static_cast<std::uint64_t>(acc[l + 1]) << 32));
        }
        i = stripes * 32;
    }
    for (; i + 8 <= bytes; i += 8) {
        std::uint64_t k;
        std::memcpy(&k, p + i, 8);
        mix8(k);
    }
    if (i < bytes) {
        std::uint64_t k = 0;
        for (std::size_t t = 0; i + t < bytes; ++t)
            k |= static_cast<std::uint64_t>(p[i + t]) << (8 * t);
        k *= c1;
        k = std::rotl(k, 31);
        k *= c2;
        h ^= k;
    }

    // fmix64 finalizer: full avalanche so the memo maps see
    // well-distributed buckets even for near-identical imaps.
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    h *= 0xC4CEB9FE1A85EC53ULL;
    h ^= h >> 33;
    return h;
}

namespace
{

/**
 * CRC-32C (Castagnoli) lookup table, reflected polynomial 0x82F63B78.
 * Built once at first use; 1 KiB, shared by every caller.
 */
const std::uint32_t *
crc32cTable()
{
    static const auto table = [] {
        std::array<std::uint32_t, 256> t{};
        for (std::uint32_t n = 0; n < 256; ++n) {
            std::uint32_t c = n;
            for (int k = 0; k < 8; ++k)
                c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
            t[n] = c;
        }
        return t;
    }();
    return table.data();
}

} // namespace

std::uint32_t
crc32c(const void *data, std::size_t bytes, std::uint32_t crc)
{
    const std::uint32_t *table = crc32cTable();
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint32_t c = ~crc;
    for (std::size_t i = 0; i < bytes; ++i)
        c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
    return ~c;
}

int
groupBitsNeeded(const std::int16_t *group, std::size_t n)
{
    return simd::kernels().groupBits16(group, n);
}

} // namespace diffy
