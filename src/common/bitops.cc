#include "common/bitops.hh"

#include <cstdlib>

namespace diffy
{

int
boothTerms(std::int64_t v)
{
    // Non-adjacent form: strip one signed digit per iteration.
    int count = 0;
    while (v != 0) {
        if (v & 1) {
            // d in {+1, -1} chosen so that (v - d) is divisible by 4,
            // which guarantees non-adjacency of the produced digits.
            std::int64_t d = 2 - (v & 3);
            v -= d;
            ++count;
        }
        v >>= 1;
    }
    return count;
}

std::vector<int>
boothDecompose(std::int64_t v)
{
    std::vector<int> terms;
    int exponent = 0;
    while (v != 0) {
        if (v & 1) {
            std::int64_t d = 2 - (v & 3);
            if (d > 0)
                terms.push_back(exponent);
            else
                terms.push_back(-(exponent + 1));
            v -= d;
        }
        v >>= 1;
        ++exponent;
    }
    return terms;
}

std::int64_t
boothReconstruct(const std::vector<int> &terms)
{
    std::int64_t v = 0;
    for (int t : terms) {
        if (t >= 0)
            v += std::int64_t{1} << t;
        else
            v -= std::int64_t{1} << (-t - 1);
    }
    return v;
}

int
onesTerms(std::int64_t v)
{
    std::uint64_t mag = static_cast<std::uint64_t>(v < 0 ? -v : v);
    int count = 0;
    while (mag) {
        count += mag & 1;
        mag >>= 1;
    }
    return count;
}

int
bitsNeeded(std::int64_t v)
{
    // Width of the shortest two's complement representation.
    if (v == 0)
        return 1;
    int bits = 1; // sign bit
    if (v > 0) {
        while (v) {
            ++bits;
            v >>= 1;
        }
        return bits;
    }
    // Negative: -2^(n-1) fits in n bits.
    std::int64_t mag = -v;
    int magBits = 0;
    while (mag) {
        ++magBits;
        mag >>= 1;
    }
    if (-v == (std::int64_t{1} << (magBits - 1)))
        return magBits; // exactly -2^(k-1) fits in k bits
    return magBits + 1;
}

std::uint64_t
contentHash64(const void *data, std::size_t bytes, std::uint64_t seed)
{
    const auto *p = static_cast<const unsigned char *>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}

int
groupBitsNeeded(const std::int16_t *group, std::size_t n)
{
    int bits = 1;
    for (std::size_t i = 0; i < n; ++i) {
        int b = bitsNeeded(group[i]);
        if (b > bits)
            bits = b;
    }
    return bits;
}

} // namespace diffy
