/**
 * @file
 * Runtime ISA dispatch for the hot kernels (DESIGN.md §14).
 *
 * Every batched inner loop of the reproduction — term/bits planes,
 * group-header reductions, temporal delta pack/unpack, the
 * interior-column pallet walk, content-hash bulk mixing — runs
 * through one function-pointer KernelTable resolved once at startup.
 * The scalar table is the PR 3 reference code and is always present;
 * SSE4/AVX2 (x86) and NEON (aarch64) tables are compiled in their own
 * translation units with per-TU -m flags, so the binary still runs on
 * baseline hardware and CPUID decides at runtime.
 *
 * Contract shared by every table: identical results to the scalar
 * table, bit for bit, on every input the callers can produce. Vector
 * implementations use exact-width chunked loads (32/16/8/4-byte) plus
 * scalar tails — never overreading masked loads — so no buffer
 * padding is required and sanitizers see only in-bounds accesses.
 *
 * `DIFFY_ISA=scalar|sse4|avx2|neon` overrides the CPUID probe for
 * testing (the CI byte-identical gates run every bench twice); an
 * unavailable or unknown request warns on stderr and falls back to
 * scalar so stdout purity is never at risk.
 */

#ifndef DIFFY_COMMON_SIMD_HH
#define DIFFY_COMMON_SIMD_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace diffy::simd
{

/** Instruction sets a kernel table can target. */
enum class Isa
{
    Scalar,
    Sse4,
    Avx2,
    Neon,
};

/** Lowercase name used by DIFFY_ISA and the bench JSON context. */
const char *isaName(Isa isa);

/** Parse an isaName() spelling; returns false on an unknown name. */
bool parseIsa(const std::string &name, Isa &out);

/**
 * The dispatch table. One instance per compiled-in ISA; all entries
 * are non-null and produce results identical to the scalar table.
 */
struct KernelTable
{
    Isa isa = Isa::Scalar;

    /** dst[i] = boothTerms(src[i]), NAF weight via popcount(v^3v). */
    void (*boothTermsPlane16)(const std::int16_t *src, std::uint8_t *dst,
                              std::size_t n) = nullptr;
    void (*boothTermsPlane32)(const std::int32_t *src, std::uint8_t *dst,
                              std::size_t n) = nullptr;

    /** dst[i] = bitsNeeded(src[i]) (two's complement width). */
    void (*bitsNeededPlane16)(const std::int16_t *src, std::uint8_t *dst,
                              std::size_t n) = nullptr;
    void (*bitsNeededPlane32)(const std::int32_t *src, std::uint8_t *dst,
                              std::size_t n) = nullptr;

    /** Group max of bitsNeeded over n values (>= 1, even when n==0). */
    int (*groupBits16)(const std::int16_t *group, std::size_t n) = nullptr;
    int (*groupBits32)(const std::int32_t *group, std::size_t n) = nullptr;

    /**
     * Temporal encode inner loop: delta[i] = cur[i] - prev[i] and the
     * group header width in one pass. Returns max(1, max bitsNeeded
     * over the deltas).
     */
    int (*deltaBits16)(const std::int16_t *prev, const std::int16_t *cur,
                       std::int32_t *delta, std::size_t n) = nullptr;

    /**
     * Temporal decode inner loop: out[i] = saturate16(prev[i] +
     * delta[i]). Deltas must fit 18 signed bits (the codecs cap
     * fields at kMaxFieldBits == 17), so prev + delta is exact int32.
     */
    void (*addSat16)(const std::int16_t *prev, const std::int32_t *delta,
                     std::int16_t *out, std::size_t n) = nullptr;

    /**
     * Pallet-walk interior block: over rows r in [0, rows) and
     * columns j in [0, cols), reads v = base[r*rowStride +
     * j*colStride], OVERWRITES colMax[j] with the per-column max and
     * returns the total sum of every element visited. rows >= 1.
     */
    std::int64_t (*walkSumMax)(const std::uint8_t *base,
                               std::size_t rowStride, std::size_t rows,
                               int colStride, std::uint8_t *colMax,
                               int cols) = nullptr;

    /**
     * contentHash64 bulk mixing: folds @p stripes 32-byte stripes of
     * @p p into the eight 32-bit lane accumulators (Murmur3-x86 lane
     * mix; see bitops.cc). Lanes stay independent, so any width of
     * vector can batch them.
     */
    void (*hashStripes)(const unsigned char *p, std::size_t stripes,
                        std::uint32_t acc[8]) = nullptr;
};

/** The reference table (PR 3 scalar kernels); always available. */
const KernelTable &scalarTable();

/**
 * Table for @p isa, or nullptr when it is not compiled in or the CPU
 * lacks it. table(Isa::Scalar) is never null.
 */
const KernelTable *table(Isa isa);

/** Every ISA with a usable table on this host, Scalar first. */
std::vector<Isa> availableIsas();

/** The widest available ISA (what the probe dispatches to). */
Isa bestIsa();

/**
 * The dispatched table: bestIsa() unless DIFFY_ISA overrides it.
 * Resolved once on first use and immutable afterwards (thread-safe).
 */
const KernelTable &kernels();

/** ISA of the dispatched table. */
Isa activeIsa();

namespace detail
{

// Per-ISA table factories, defined in their own -m-flagged TUs and
// referenced by the dispatcher only when compiled in.
const KernelTable &sse4Table();
const KernelTable &avx2Table();
const KernelTable &neonTable();

} // namespace detail

} // namespace diffy::simd

#endif // DIFFY_COMMON_SIMD_HH
