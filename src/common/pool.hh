/**
 * @file
 * Recycled aligned buffers for the frame pipeline: a size-bucketed
 * BufferPool plus a per-job FrameArena bump allocator (ROADMAP item
 * 5, modeled on tt-metal's bank/buffer split).
 *
 * Ownership and lifetime contract (DESIGN.md section 16):
 *
 *  - A BufferPool is owned by a long-lived orchestrator
 *    (StreamServer, SweepScheduler). It hands out 32-byte-aligned
 *    power-of-two blocks and keeps every freed block cached for
 *    reuse; memory returns to the heap only when the pool is
 *    destroyed.
 *  - A FrameArena draws slabs from its pool and bump-allocates out of
 *    them. rewind() makes every past allocation invalid but keeps the
 *    slabs, so the next frame runs allocation-free once the arena has
 *    grown to the pipeline's peak working set. Arenas must be
 *    destroyed before their pool.
 *  - An ArenaScope installs an arena as the calling thread's ambient
 *    scratch resource (scratchAlloc() in common/aligned.hh). One
 *    arena may be current on at most one thread at a time — arenas
 *    are single-writer and unsynchronized; the pool's free lists are
 *    the only shared (mutex-protected) state.
 *
 * markSteadyState() flips the pool into the "warmed up" regime in
 * which any further heap fetch is a bug; the steadyFetches counter
 * (surfaced as the pool.allocs_steady_state gauge, obs/pool_gauges.hh)
 * is the CI gate proving the frame loop allocates nothing.
 */

#ifndef DIFFY_COMMON_POOL_HH
#define DIFFY_COMMON_POOL_HH

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/aligned.hh"

namespace diffy
{

/**
 * Size-bucketed cache of 32-byte-aligned heap blocks. Thread-safe;
 * blocks are bucketed by power-of-two size (minimum 64 bytes) and
 * freed blocks are retained until the pool is destroyed.
 */
class BufferPool
{
  public:
    struct Stats
    {
        std::uint64_t heapFetches = 0;   ///< blocks fetched from heap
        std::uint64_t steadyFetches = 0; ///< ...after markSteadyState()
        std::uint64_t reuses = 0;        ///< acquisitions served cached
        std::uint64_t bytesInUse = 0;    ///< heap bytes owned (lent+cached)
    };

    BufferPool();
    ~BufferPool();
    BufferPool(const BufferPool &) = delete;
    BufferPool &operator=(const BufferPool &) = delete;

    /**
     * Return a block of at least @p min_bytes (rounded up to the
     * bucket size, written to @p block_bytes). The caller must hand
     * the block back via release() with the same @p block_bytes.
     */
    void *acquire(std::size_t min_bytes, std::size_t &block_bytes);

    /** Return a block to its bucket for reuse. */
    void release(void *p, std::size_t block_bytes) noexcept;

    /**
     * Declare warmup over: any later heap fetch counts into
     * steadyFetches and the process-wide steady-allocation gauge.
     */
    void markSteadyState() noexcept;

    Stats stats() const;

    /** Bucket (power-of-two, >= 64) a request rounds up to. */
    static std::size_t bucketBytes(std::size_t min_bytes) noexcept;

    /** Heap bytes currently owned by all live pools in the process. */
    static std::uint64_t globalBytesInUse() noexcept;

    /** Heap fetches after markSteadyState(), across all pools. */
    static std::uint64_t globalSteadyFetches() noexcept;

  private:
    mutable std::mutex mu_;
    std::vector<std::vector<void *>> free_; ///< index = bit width
    Stats stats_;
    bool steady_ = false;
};

/**
 * Per-job bump allocator over pool slabs. deallocate() is a no-op;
 * rewind() recycles everything at once. Single-threaded by contract.
 */
class FrameArena final : public MemoryResource
{
  public:
    /** Default slab size; oversize requests get a dedicated slab. */
    static constexpr std::size_t kSlabBytes = std::size_t{1} << 20;

    explicit FrameArena(BufferPool &pool);
    ~FrameArena() override;
    FrameArena(const FrameArena &) = delete;
    FrameArena &operator=(const FrameArena &) = delete;

    void *allocate(std::size_t bytes, std::size_t align) override;

    void
    deallocate(void *, std::size_t, std::size_t) noexcept override
    {}

    /** A position to rewind back to; Checkpoint{} is "empty". */
    struct Checkpoint
    {
        std::size_t slab = 0;
        std::size_t offset = 0;
    };

    Checkpoint checkpoint() const noexcept;

    /**
     * Drop every allocation made after @p cp (which must have been
     * taken on this arena). Slabs are retained for reuse.
     */
    void rewind(const Checkpoint &cp) noexcept;

    /** Drop every allocation; keep all slabs. */
    void
    rewind() noexcept
    {
        rewind(Checkpoint{});
    }

    std::size_t
    slabCount() const noexcept
    {
        return slabs_.size();
    }

  private:
    struct Slab
    {
        void *base = nullptr;
        std::size_t cap = 0;
    };

    BufferPool *pool_;
    std::vector<Slab> slabs_;
    std::size_t cur_ = 0;    ///< slab the bump pointer lives in
    std::size_t offset_ = 0; ///< bump offset within slabs_[cur_]
};

/**
 * RAII: install @p arena as the calling thread's ambient scratch
 * resource (scratchResource()/scratchAlloc()); restore the previous
 * resource on destruction. Scopes nest.
 */
class ArenaScope
{
  public:
    explicit ArenaScope(FrameArena &arena) noexcept;
    ~ArenaScope();
    ArenaScope(const ArenaScope &) = delete;
    ArenaScope &operator=(const ArenaScope &) = delete;

  private:
    MemoryResource *prev_;
};

} // namespace diffy

#endif // DIFFY_COMMON_POOL_HH
