/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic element of the reproduction (synthetic weights,
 * procedural images, SCNN weight sparsification) draws from this
 * splitmix64/xoshiro256** generator so that all experiments are exactly
 * reproducible from a named seed.
 */

#ifndef DIFFY_COMMON_RNG_HH
#define DIFFY_COMMON_RNG_HH

#include <cstdint>
#include <string>

namespace diffy
{

/** Small, fast, seedable PRNG (xoshiro256**). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed);

    /** Derive a deterministic seed from a label, e.g. a layer name. */
    static std::uint64_t seedFromString(const std::string &label);

    /** Next raw 64-bit draw. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @p n must be nonzero. */
    std::uint64_t below(std::uint64_t n);

    /** Standard normal draw (Box-Muller, cached pair). */
    double gaussian();

    /** Normal draw with the given moments. */
    double gaussian(double mean, double stddev);

  private:
    std::uint64_t s_[4];
    bool haveSpare_ = false;
    double spare_ = 0.0;
};

} // namespace diffy

#endif // DIFFY_COMMON_RNG_HH
