#include "common/table.hh"

#include <cstdio>
#include <sstream>

namespace diffy
{

TextTable::TextTable(std::string title) : title_(std::move(title)) {}

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(std::move(row));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
TextTable::factor(double v, int precision)
{
    return num(v, precision) + "x";
}

std::string
TextTable::percent(double v, int precision)
{
    return num(v * 100.0, precision) + "%";
}

std::string
TextTable::render() const
{
    // Column widths over header + all rows.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &row) {
        if (widths.size() < row.size())
            widths.resize(row.size(), 0);
        for (std::size_t i = 0; i < row.size(); ++i) {
            if (row[i].size() > widths[i])
                widths[i] = row[i].size();
        }
    };
    grow(header_);
    for (const auto &r : rows_)
        grow(r);

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < row.size() ? row[i] : "";
            os << cell;
            if (i + 1 < widths.size())
                os << std::string(widths[i] - cell.size() + 2, ' ');
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emit(header_);
        std::size_t line = 0;
        for (std::size_t i = 0; i < widths.size(); ++i)
            line += widths[i] + (i + 1 < widths.size() ? 2 : 0);
        os << std::string(line, '-') << "\n";
    }
    for (const auto &r : rows_)
        emit(r);
    return os.str();
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fputc('\n', stdout);
}

} // namespace diffy
