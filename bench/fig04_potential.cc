/**
 * @file
 * Fig 4: potential work reduction of processing only the effectual
 * terms of the raw activations (RawE) or of their deltas (DeltaE),
 * reported as speedups over the value-agnostic ALL baseline.
 */

#include <cstdio>

#include "analysis/terms.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);

    TextTable table("Fig 4: potential speedup over ALL (16 terms/value)");
    table.setHeader({"Network", "RawE", "DeltaE"});
    std::vector<double> raws, deltas;
    for (const auto &net : traced) {
        WorkPotential wp;
        for (const auto &trace : net.traces)
            wp.merge(networkWorkPotential(trace));
        table.addRow({net.spec.name, TextTable::factor(wp.rawSpeedup()),
                      TextTable::factor(wp.deltaSpeedup())});
        raws.push_back(wp.rawSpeedup());
        deltas.push_back(wp.deltaSpeedup());
    }
    table.addRow({"geomean", TextTable::factor(geometricMean(raws)),
                  TextTable::factor(geometricMean(deltas))});
    table.print();
    std::printf("Paper shape: DeltaE exceeds RawE for every CI-DNN; "
                "VDSR shows the largest potential.\n");
    return 0;
}
