/**
 * @file
 * Tables VI and VII: per-component power and area breakdowns of VAA,
 * PRA and Diffy, with relative energy efficiency, using activity from
 * the cycle simulators on the CI-DNN suite at HD.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/experiment.hh"
#include "energy/model.hh"

using namespace diffy;

namespace
{

struct DesignEval
{
    EnergyReport report;
    double cycles = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);
    MemTech mem = experimentMemTech(params);

    AcceleratorConfig configs[3] = {defaultVaaConfig(), defaultPraConfig(),
                                    defaultDiffyConfig()};
    configs[1].compression = Compression::DeltaD16;

    DesignEval evals[3];
    for (int d = 0; d < 3; ++d) {
        // Average the component powers over the suite (one scene per
        // network keeps the runtime modest; power is a rate, so the
        // average over networks is representative).
        EnergyReport total;
        double count = 0.0;
        for (const auto &net : traced) {
            const auto &trace = net.traces.front();
            auto compute = simulateCompute(trace, configs[d]);
            auto perf = combineWithMemory(trace, compute, configs[d],
                                          mem, params.frameHeight,
                                          params.frameWidth);
            auto rep =
                buildEnergyReport(trace, compute, perf, configs[d]);
            if (total.components.empty()) {
                total = rep;
            } else {
                for (std::size_t c = 0; c < rep.components.size(); ++c)
                    total.components[c].watts +=
                        rep.components[c].watts;
                total.totalWatts += rep.totalWatts;
            }
            evals[d].cycles += perf.totalCycles;
            count += 1.0;
        }
        for (auto &c : total.components)
            c.watts /= count;
        total.totalWatts /= count;
        evals[d].report = total;
    }

    TextTable tab6("Table VI: power breakdown [W]");
    tab6.setHeader({"Component", "VAA", "PRA", "Diffy"});
    for (std::size_t c = 0; c < evals[0].report.components.size(); ++c) {
        tab6.addRow({evals[0].report.components[c].component,
                     TextTable::num(evals[0].report.components[c].watts),
                     TextTable::num(evals[1].report.components[c].watts),
                     TextTable::num(evals[2].report.components[c].watts)});
    }
    tab6.addRow({"Total", TextTable::num(evals[0].report.totalWatts),
                 TextTable::num(evals[1].report.totalWatts),
                 TextTable::num(evals[2].report.totalWatts)});
    // Energy efficiency vs VAA: speedup / power ratio.
    auto efficiency = [&](int d) {
        double speedup = evals[0].cycles / evals[d].cycles;
        double power_ratio =
            evals[d].report.totalWatts / evals[0].report.totalWatts;
        return speedup / power_ratio;
    };
    tab6.addRow({"Energy efficiency", TextTable::factor(efficiency(0)),
                 TextTable::factor(efficiency(1)),
                 TextTable::factor(efficiency(2))});
    tab6.print();

    TextTable tab7("Table VII: area breakdown [mm^2]");
    tab7.setHeader({"Component", "VAA", "PRA", "Diffy"});
    for (std::size_t c = 0; c < evals[0].report.components.size(); ++c) {
        tab7.addRow({evals[0].report.components[c].component,
                     TextTable::num(evals[0].report.components[c].mm2),
                     TextTable::num(evals[1].report.components[c].mm2),
                     TextTable::num(evals[2].report.components[c].mm2)});
    }
    tab7.addRow({"Total", TextTable::num(evals[0].report.totalMm2),
                 TextTable::num(evals[1].report.totalMm2),
                 TextTable::num(evals[2].report.totalMm2)});
    tab7.addRow({"Normalized", TextTable::factor(1.0),
                 TextTable::factor(evals[1].report.totalMm2 /
                                   evals[0].report.totalMm2),
                 TextTable::factor(evals[2].report.totalMm2 /
                                   evals[0].report.totalMm2)});
    tab7.print();

    std::printf("Paper shape: PRA and Diffy draw more power than VAA "
                "but are 1.34x and 1.83x more energy efficient; Diffy's "
                "area overhead is below PRA's thanks to the smaller "
                "DeltaD16 AM.\n");
    return 0;
}
