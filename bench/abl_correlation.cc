/**
 * @file
 * Ablation: sensitivity to the core premise. Diffy's benefit comes
 * from spatial correlation of the input; this bench sweeps the scene
 * synthesizer's roughness knob (spectral persistence) and additive
 * sensor noise, reporting how the delta-term advantage and Diffy's
 * speedup over PRA respond. At the uncorrelated extreme Diffy should
 * degrade to PRA (and its Auto mode should protect it).
 */

#include <cstdio>

#include "analysis/terms.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    TraceCache cache(params.cacheDir);
    NetworkSpec net = makeDnCnn();
    MemTech mem = experimentMemTech(params);

    AcceleratorConfig pra = defaultPraConfig();
    pra.compression = Compression::DeltaD16;
    AcceleratorConfig dfy = defaultDiffyConfig();

    TextTable table("Ablation: spatial correlation sensitivity (DnCNN)");
    table.setHeader({"Roughness", "Noise", "Raw terms/val",
                     "Delta terms/val", "Diffy vs PRA",
                     "Auto vs PRA"});

    struct Point { double roughness, noise; };
    const Point points[] = {{0.3, 0.0}, {0.5, 0.0}, {0.7, 0.0},
                            {0.9, 0.0}, {0.5, 0.05}, {0.5, 0.15},
                            {0.9, 0.25}};

    for (const auto &pt : points) {
        SceneParams scene;
        scene.kind = SceneKind::Nature;
        scene.width = params.crop;
        scene.height = params.crop;
        scene.seed = 4242;
        scene.roughness = pt.roughness;
        scene.noiseSigma = pt.noise;
        NetworkTrace trace = cache.get(net, scene);

        TermStats raw, delta;
        for (const auto &layer : trace.layers) {
            raw.merge(rawTermStats(layer.imap));
            delta.merge(deltaTermStats(layer.imap));
        }

        double pra_cycles =
            simulateFrame(trace, pra, mem, params.frameHeight,
                          params.frameWidth)
                .totalCycles;
        double dfy_cycles =
            simulateFrame(trace, dfy, mem, params.frameHeight,
                          params.frameWidth)
                .totalCycles;
        double auto_cycles =
            simulateFrame(trace, dfy, mem, params.frameHeight,
                          params.frameWidth, DiffyMode::Auto)
                .totalCycles;

        table.addRow({TextTable::num(pt.roughness, 1),
                      TextTable::num(pt.noise, 2),
                      TextTable::num(raw.meanTerms()),
                      TextTable::num(delta.meanTerms()),
                      TextTable::factor(pra_cycles / dfy_cycles),
                      TextTable::factor(pra_cycles / auto_cycles)});
    }
    table.print();

    std::printf("Expected: rougher/noisier inputs shrink the delta "
                "advantage; Auto mode never drops below 1.00x vs "
                "PRA.\n");
    return 0;
}
