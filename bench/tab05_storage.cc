/**
 * @file
 * Table V: on-chip memory sizing — the activation memory (AM) needed
 * for the worst layer at HD width under each storage scheme, and the
 * weight memory (WM) sized for double-buffered filter sets.
 */

#include <algorithm>
#include <cstdio>

#include "common/table.hh"
#include "core/experiment.hh"
#include "encode/footprint.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);

    const Compression schemes[] = {Compression::None,
                                   Compression::Profiled,
                                   Compression::RawD16,
                                   Compression::DeltaD16};

    TextTable table("Table V: AM required at width " +
                    std::to_string(params.frameWidth) + " (KB)");
    std::vector<std::string> header = {"Network"};
    for (auto s : schemes)
        header.push_back(to_string(s));
    table.setHeader(header);

    std::vector<double> worst(std::size(schemes), 0.0);
    for (const auto &net : traced) {
        std::vector<std::string> row = {net.spec.name};
        for (std::size_t si = 0; si < std::size(schemes); ++si) {
            double bytes = 0.0;
            for (const auto &trace : net.traces) {
                bytes = std::max(
                    bytes, amRequiredBytes(trace, schemes[si],
                                           params.frameWidth));
            }
            worst[si] = std::max(worst[si], bytes);
            row.push_back(TextTable::num(bytes / 1024.0, 0));
        }
        table.addRow(row);
    }
    std::vector<std::string> suite_row = {"suite worst"};
    for (double w : worst)
        suite_row.push_back(TextTable::num(w / 1024.0, 0));
    table.addRow(suite_row);
    table.print();

    // Weight memory: double-buffer the largest concurrent filter set.
    std::size_t wm = 0;
    for (const auto &net : traced)
        wm = std::max(wm, net.spec.maxLayerWeightBytes());
    std::printf("WM (2x largest layer filter set): %zu KB\n\n",
                2 * wm / 1024);

    std::printf("Paper shape: ~964KB uncompressed -> 782KB Profiled -> "
                "514KB RawD16 -> 348KB DeltaD16 (55%%/32%% reductions). "
                "Our IRCNN rows include the dilated window extent, which "
                "raises its uncompressed requirement (see "
                "EXPERIMENTS.md).\n");
    return 0;
}
