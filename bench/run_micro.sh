#!/usr/bin/env bash
# Run the hot-kernel microbenchmarks (Booth counting, term planes,
# content hash, PRA/Diffy pallet walk, per-ISA kernel tables) and
# capture machine-readable results for perf-regression tracking.
#
# Usage: bench/run_micro.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR defaults to "build", OUT_JSON to "BENCH_kernels.json".
#   BENCH_MIN_TIME (seconds, default 0.05) bounds per-benchmark time.
#
# Two passes are recorded: the natively dispatched ISA to OUT_JSON and
# a DIFFY_ISA=scalar pass to ${OUT_JSON%.json}.scalar.json, so the
# vector-vs-oracle speedup is always in the artifacts. Each JSON's
# context carries diffy_isa / diffy_isa_env / diffy_native /
# diffy_build (see bench/micro_kernels.cc); a debug build of either
# the benchmark library or the kernels fails the run — debug numbers
# must never enter the perf trajectory.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_kernels.json}"
MIN_TIME="${BENCH_MIN_TIME:-0.05}"
BIN="$BUILD_DIR/bench/micro_kernels"
FILTER='BM_BoothTerms|BM_BoothTermsPlane|BM_ContentHash|BM_PalletWalk|BM_Isa'

if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (cmake --build $BUILD_DIR --target micro_kernels)" >&2
    exit 1
fi

# google-benchmark >= 1.7 wants a "0.05s" suffix; older releases only
# accept a bare double. Probe which spelling this binary understands.
MT="${MIN_TIME}s"
if ! "$BIN" --benchmark_list_tests --benchmark_min_time="$MT" \
        >/dev/null 2>&1; then
    MT="$MIN_TIME"
fi

# check_json FILE: fail on debug builds, print the dispatched ISA.
#
# diffy_build reflects how the timed kernel code itself was compiled
# and is always a hard failure when it is not "release". The
# google-benchmark State loop is header-inlined into that same TU, so
# library_build_type only covers the .so's setup/reporting code —
# still rejected by default, but BENCH_ALLOW_DEBUG_LIB=1 accepts it on
# distros (e.g. Debian's libbenchmark 1.7.1-1) that only ship a
# debug-built library.
check_json() {
    python3 - "$1" <<'EOF'
import json, os, sys

path = sys.argv[1]
with open(path) as f:
    ctx = json.load(f)["context"]
lib = ctx.get("library_build_type", "")
build = ctx.get("diffy_build", "")
if build != "release":
    print(f"error: {path} timed debug kernels "
          f"(diffy_build={build!r}); configure with "
          "-DCMAKE_BUILD_TYPE=Release", file=sys.stderr)
    sys.exit(1)
if lib == "debug" and os.environ.get("BENCH_ALLOW_DEBUG_LIB") != "1":
    print(f"error: {path} used a debug google-benchmark library "
          "(library_build_type='debug'); use a release libbenchmark "
          "or set BENCH_ALLOW_DEBUG_LIB=1 if only the distro's "
          "debug-built .so exists", file=sys.stderr)
    sys.exit(1)
print(f"{path}: dispatched isa={ctx.get('diffy_isa', '?')} "
      f"(DIFFY_ISA={ctx.get('diffy_isa_env', '')!r}, "
      f"native_build={ctx.get('diffy_native', '?')})")
EOF
}

run_pass() {
    local out="$1"
    "$BIN" --benchmark_filter="$FILTER" \
           --benchmark_min_time="$MT" \
           --benchmark_out="$out" \
           --benchmark_out_format=json
    check_json "$out"
}

run_pass "$OUT"

SCALAR_OUT="${OUT%.json}.scalar.json"
DIFFY_ISA=scalar run_pass "$SCALAR_OUT"

echo "wrote $OUT and $SCALAR_OUT"
