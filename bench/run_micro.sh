#!/usr/bin/env bash
# Run the hot-kernel microbenchmarks (Booth counting, term planes,
# content hash, PRA/Diffy pallet walk) and capture machine-readable
# results for perf-regression tracking.
#
# Usage: bench/run_micro.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR defaults to "build", OUT_JSON to "BENCH_kernels.json".
#   BENCH_MIN_TIME (seconds, default 0.05) bounds per-benchmark time.
#
# The console table goes to stdout; the JSON (with full context) is
# written to OUT_JSON. CI uploads the JSON as an artifact so the
# trajectory across PRs stays visible.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_kernels.json}"
MIN_TIME="${BENCH_MIN_TIME:-0.05}"
BIN="$BUILD_DIR/bench/micro_kernels"
FILTER='BM_BoothTerms|BM_BoothTermsPlane|BM_ContentHash|BM_PalletWalk'

if [ ! -x "$BIN" ]; then
    echo "error: $BIN not built (cmake --build $BUILD_DIR --target micro_kernels)" >&2
    exit 1
fi

# google-benchmark >= 1.7 wants a "0.05s" suffix; older releases only
# accept a bare double. Probe which spelling this binary understands.
MT="${MIN_TIME}s"
if ! "$BIN" --benchmark_list_tests --benchmark_min_time="$MT" \
        >/dev/null 2>&1; then
    MT="$MIN_TIME"
fi

"$BIN" --benchmark_filter="$FILTER" \
       --benchmark_min_time="$MT" \
       --benchmark_out="$OUT" \
       --benchmark_out_format=json

echo "wrote $OUT"
