/**
 * @file
 * Ablation: fault propagation through the activation codecs and the
 * re-anchoring containment knob.
 *
 * Diffy's storage advantage comes from keeping activations as X-axis
 * deltas (DeltaD16) and reconstructing them by prefix summation — so
 * a single corrupted stored bit can smear across a whole output row,
 * a failure mode raw-value storage (NoCompression, RawD16) does not
 * have. This bench quantifies that fragility: it sweeps codec x
 * fault model x re-anchor interval, injecting seeded deterministic
 * faults into encoded streams and decoding through the hardened
 * path. Reported per cell: detection rate (structured decode error),
 * silent-corruption rate, mean corrupted values per corrupted frame,
 * the worst in-row corrupted run (blast radius), max absolute error,
 * and PSNR. The DeltaD16.A<K> rows show the containment knob at
 * work: the blast radius is capped at K while the footprint cost of
 * the extra absolute anchors stays small.
 *
 * Deterministic: every number derives from --seed (default 1234), so
 * identical invocations print byte-identical tables.
 */

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "common/cli.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "encode/schemes.hh"
#include "fault/propagation.hh"

using namespace diffy;

namespace
{

/** Smooth ReLU-like activation tensor (DeltaD's favourable regime). */
TensorI16
syntheticActivations(std::uint64_t seed, int c, int h, int w)
{
    Rng rng(seed);
    TensorI16 t(c, h, w);
    for (int ch = 0; ch < c; ++ch) {
        for (int y = 0; y < h; ++y) {
            std::int32_t level =
                1000 + static_cast<std::int32_t>(rng.below(3000));
            for (int x = 0; x < w; ++x) {
                if (rng.uniform() < 0.3) {
                    t.at(ch, y, x) = 0;
                } else {
                    level += static_cast<std::int32_t>(rng.below(17)) - 8;
                    level = level < 0 ? 0 : level;
                    t.at(ch, y, x) = static_cast<std::int16_t>(level);
                }
            }
        }
    }
    return t;
}

std::string
fmtPsnr(const PropagationSummary &s)
{
    if (s.silentCorruptions == 0)
        return "-";
    return TextTable::num(s.meanPsnrDb, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv);
    std::uint64_t seed = 1234;
    int trials = 100;
    try {
        seed = static_cast<std::uint64_t>(args.getInt("seed", 1234));
        trials =
            std::max(1, static_cast<int>(args.getInt("trials", 100)));
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    TensorI16 clean = syntheticActivations(seed, 4, 16, 64);

    struct CodecCase
    {
        std::string label;
        std::unique_ptr<ActivationCodec> codec;
    };
    std::vector<CodecCase> codecs;
    codecs.push_back({"NoCompression", makeNoCompressionCodec()});
    codecs.push_back({"RawD16", makeRawDCodec(16)});
    codecs.push_back({"DeltaD16", makeDeltaDCodec(16)});
    codecs.push_back({"DeltaD16.A64", makeDeltaDCodec(16, 64)});
    codecs.push_back({"DeltaD16.A16", makeDeltaDCodec(16, 16)});
    codecs.push_back({"DeltaD16.A4", makeDeltaDCodec(16, 4)});

    std::vector<FaultSpec> faults;
    {
        FaultSpec s;
        s.model = FaultModel::SingleBit;
        s.target = FaultTarget::Payload;
        faults.push_back(s);
        s.target = FaultTarget::Header;
        faults.push_back(s);
        s.model = FaultModel::Burst;
        s.target = FaultTarget::Any;
        s.burstLength = 8;
        faults.push_back(s);
        s.model = FaultModel::BitRate;
        s.bitErrorRate = 1e-4;
        faults.push_back(s);
    }

    TextTable table("Ablation: fault propagation by codec, fault model "
                    "and re-anchor interval (" +
                    std::to_string(trials) + " trials/cell)");
    table.setHeader({"Codec", "bits/val", "Fault", "detected",
                     "silent", "exact", "corrupt vals", "max run",
                     "max |err|", "PSNR dB"});

    for (const auto &cc : codecs) {
        double bpv = cc.codec->bitsPerValue(clean);
        for (const FaultSpec &spec : faults) {
            // Per-cell seed mixes the user seed with stable indices so
            // adding a row never reshuffles the others.
            std::uint64_t cell_seed =
                seed ^ Rng::seedFromString(cc.label + spec.describe());
            PropagationSummary s = sweepFaults(*cc.codec, clean, spec,
                                               trials, cell_seed);
            double n = static_cast<double>(s.trials);
            table.addRow(
                {cc.label, TextTable::num(bpv, 2), spec.describe(),
                 TextTable::percent(static_cast<double>(s.decodeErrors) / n),
                 TextTable::percent(
                     static_cast<double>(s.silentCorruptions) / n),
                 TextTable::percent(static_cast<double>(s.exactDecodes) / n),
                 TextTable::num(s.meanCorruptedValues, 1),
                 std::to_string(s.maxCorruptedRun),
                 std::to_string(s.maxAbsError), fmtPsnr(s)});
        }
    }
    table.print();

    std::printf(
        "Reading: a payload flip corrupts exactly one value under raw\n"
        "storage but smears to the end of the row under DeltaD16 (the\n"
        "DR prefix sum); header flips desync the parse and are mostly\n"
        "caught by the hardened decoder as Truncated/BadHeader. The\n"
        "re-anchor interval K caps the silent blast radius at K values\n"
        "(max run column) for a footprint cost visible in bits/val —\n"
        "the containment knob trades storage for blast radius.\n");
    return 0;
}
