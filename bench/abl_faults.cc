/**
 * @file
 * Ablation: fault propagation through the activation codecs and the
 * re-anchoring containment knob — plus the chaos harness for the
 * resilient runtime (DESIGN.md §12).
 *
 * Diffy's storage advantage comes from keeping activations as X-axis
 * deltas (DeltaD16) and reconstructing them by prefix summation — so
 * a single corrupted stored bit can smear across a whole output row,
 * a failure mode raw-value storage (NoCompression, RawD16) does not
 * have. This bench quantifies that fragility: it sweeps codec x
 * fault model x re-anchor interval, injecting seeded deterministic
 * faults into encoded streams and decoding through the hardened
 * path. Each cell is measured twice: once over bare streams and once
 * over sealed streams (CRC-32C integrity footer), so the table shows
 * how many previously-silent corruptions the footer converts into
 * detected ones ("crc det") and what the re-anchor recovery costs
 * ("rec cyc" = mean values re-decoded from the last clean anchor per
 * detection).
 *
 * --chaos turns the bench into an end-to-end resilience exercise:
 * the same grid runs through the SweepScheduler in keep_going mode
 * while a seeded chaos plan injects transient job exceptions (healed
 * by retry), one permanently poisoned cell, one deadline overrun
 * (quarantined by the watchdog policy), and one on-disk TraceCache
 * corruption (quarantined to `.corrupt` and regenerated). Surviving
 * cells print byte-identically at any --threads value; the
 * SweepReport lists exactly the injected failures and can be dumped
 * with --report-json FILE for CI artifacts.
 *
 * Deterministic: every number derives from --seed (default 1234), so
 * identical invocations print byte-identical tables.
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/cli.hh"
#include "common/rng.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "core/trace_cache.hh"
#include "encode/schemes.hh"
#include "fault/propagation.hh"
#include "obs/metrics.hh"

using namespace diffy;

namespace
{

/** Smooth ReLU-like activation tensor (DeltaD's favourable regime). */
TensorI16
syntheticActivations(std::uint64_t seed, int c, int h, int w)
{
    Rng rng(seed);
    TensorI16 t(c, h, w);
    for (int ch = 0; ch < c; ++ch) {
        for (int y = 0; y < h; ++y) {
            std::int32_t level =
                1000 + static_cast<std::int32_t>(rng.below(3000));
            for (int x = 0; x < w; ++x) {
                if (rng.uniform() < 0.3) {
                    t.at(ch, y, x) = 0;
                } else {
                    level += static_cast<std::int32_t>(rng.below(17)) - 8;
                    level = level < 0 ? 0 : level;
                    t.at(ch, y, x) = static_cast<std::int16_t>(level);
                }
            }
        }
    }
    return t;
}

std::string
fmtPsnr(const PropagationSummary &s)
{
    if (s.silentCorruptions == 0)
        return "-";
    return TextTable::num(s.meanPsnrDb, 1);
}

/** One cell of the codec x fault grid. */
struct GridCell
{
    std::string label;
    double bitsPerValue = 0.0;
    int reanchor = 0;
    const ActivationCodec *codec = nullptr;
    FaultSpec spec;
};

/** Per-cell result: the bare and the CRC-sealed propagation sweeps. */
struct CellResult
{
    PropagationSummary bare;
    PropagationSummary sealed;
};

std::vector<GridCell>
buildGrid(const std::vector<std::pair<std::string, int>> &codecSpecs,
          const std::vector<std::unique_ptr<ActivationCodec>> &codecs,
          const std::vector<FaultSpec> &faults, const TensorI16 &clean)
{
    std::vector<GridCell> grid;
    for (std::size_t ci = 0; ci < codecs.size(); ++ci) {
        double bpv = codecs[ci]->bitsPerValue(clean);
        for (const FaultSpec &spec : faults) {
            GridCell cell;
            cell.label = codecSpecs[ci].first;
            cell.bitsPerValue = bpv;
            cell.reanchor = codecSpecs[ci].second;
            cell.codec = codecs[ci].get();
            cell.spec = spec;
            grid.push_back(cell);
        }
    }
    return grid;
}

CellResult
measureCell(const GridCell &cell, const TensorI16 &clean, int trials,
            std::uint64_t seed)
{
    // Per-cell seed mixes the user seed with stable labels so adding
    // a row never reshuffles the others.
    std::uint64_t cell_seed =
        seed ^ Rng::seedFromString(cell.label + cell.spec.describe());
    CellResult r;
    r.bare = sweepFaults(*cell.codec, clean, cell.spec, trials, cell_seed);
    r.sealed = sweepFaults(*cell.codec, clean, cell.spec, trials,
                           cell_seed, /*sealStreams=*/true, cell.reanchor);
    return r;
}

void
addCellRow(TextTable &table, const GridCell &cell, const CellResult &r)
{
    double n = static_cast<double>(std::max<std::size_t>(1, r.bare.trials));
    table.addRow(
        {cell.label, TextTable::num(cell.bitsPerValue, 2),
         cell.spec.describe(),
         TextTable::percent(static_cast<double>(r.bare.decodeErrors) / n),
         TextTable::percent(
             static_cast<double>(r.bare.silentCorruptions) / n),
         TextTable::percent(static_cast<double>(r.bare.exactDecodes) / n),
         TextTable::num(r.bare.meanCorruptedValues, 1),
         std::to_string(r.bare.maxCorruptedRun), fmtPsnr(r.bare),
         TextTable::percent(static_cast<double>(r.sealed.crcDetected) / n),
         TextTable::percent(
             static_cast<double>(r.sealed.silentCorruptions) / n),
         TextTable::num(r.sealed.meanRecoveryCycles, 1)});
}

TextTable
makeGridTable(int trials)
{
    TextTable table("Ablation: fault propagation by codec, fault model "
                    "and re-anchor interval; bare vs CRC-sealed streams "
                    "(" +
                    std::to_string(trials) + " trials/cell)");
    table.setHeader({"Codec", "bits/val", "Fault", "detected", "silent",
                     "exact", "corrupt vals", "max run", "PSNR dB",
                     "crc det", "silent|crc", "rec cyc"});
    return table;
}

/**
 * Seeded chaos plan over the grid: which cells fail transiently (and
 * how often), which cell is permanently poisoned, which overruns the
 * deadline, and which exercises the corrupt-TraceCache recovery.
 * Derived only from (seed, cellCount), never from scheduling.
 */
struct ChaosPlan
{
    std::vector<int> transientFails; ///< per-cell injected throw count
    std::size_t poisonedCell = 0;
    std::size_t overrunCell = 0;
    std::size_t cacheCell = 0;

    static ChaosPlan make(std::uint64_t seed, std::size_t cells,
                          int transientCells, int failsPerCell)
    {
        ChaosPlan plan;
        plan.transientFails.assign(cells, 0);
        Rng rng(seed ^ 0xC0A05EEDULL);
        // Distinct special cells, then transient cells on top.
        plan.poisonedCell = rng.below(cells);
        do
            plan.overrunCell = rng.below(cells);
        while (plan.overrunCell == plan.poisonedCell);
        do
            plan.cacheCell = rng.below(cells);
        while (plan.cacheCell == plan.poisonedCell ||
               plan.cacheCell == plan.overrunCell);
        int placed = 0;
        while (placed < transientCells) {
            std::size_t cell = rng.below(cells);
            if (cell == plan.poisonedCell || cell == plan.overrunCell ||
                plan.transientFails[cell] != 0)
                continue;
            plan.transientFails[cell] = failsPerCell;
            ++placed;
        }
        return plan;
    }
};

/** Tiny deterministic trace for the chaos TraceCache exercise. */
NetworkTrace
stubTrace()
{
    NetworkTrace trace;
    trace.network = "chaos-stub";
    trace.frameHeight = 8;
    trace.frameWidth = 8;
    LayerTrace layer;
    layer.spec.name = "conv0";
    layer.spec.inChannels = 1;
    layer.spec.outChannels = 1;
    layer.spec.kernel = 3;
    layer.imap = TensorI16(1, 8, 8);
    for (int y = 0; y < 8; ++y)
        for (int x = 0; x < 8; ++x)
            layer.imap.at(0, y, x) =
                static_cast<std::int16_t>(y * 8 + x);
    layer.weights = FilterBankI16(1, 1, 3, 3);
    trace.layers.push_back(std::move(layer));
    return trace;
}

/**
 * Prepare the on-disk corruption: store the stub trace through a
 * TraceCache, then flip bytes in the middle of the file. The sweep's
 * cache cell later reads it back through a fresh TraceCache, which
 * must detect the CRC mismatch, quarantine the file to `.corrupt`,
 * and regenerate. Returns the cache key.
 */
std::string
plantCorruptTrace(const std::string &dir, const NetworkSpec &net,
                  const SceneParams &scene)
{
    TraceCache seedCache(dir, [](const NetworkSpec &, const SceneParams &,
                                 const ExecutorOptions &) {
        return stubTrace();
    });
    (void)seedCache.get(net, scene);
    const std::string key = TraceCache::cacheKey(net, scene, {});
    std::filesystem::path path =
        std::filesystem::path(dir) / (key + ".trace");
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    const char garbage[4] = {'\x5a', '\xa5', '\x3c', '\xc3'};
    f.write(garbage, sizeof garbage);
    return key;
}

int
runChaos(ExperimentParams params, const CliArgs &args, std::uint64_t seed,
         int trials, const std::string &reportJsonPath)
{
    // Chaos exists to exercise recovery: keep_going is forced, and
    // the retry/deadline knobs get defaults generous enough for the
    // injected failures to heal unless the user overrides them. The
    // deadline must have slack for honest cells on slow machines
    // (sanitized builds run several times slower); the injected
    // overrun cell sleeps a multiple of it, so detection does not
    // depend on the margin being tight.
    params.keepGoing = true;
    if (!args.has("max-retries"))
        params.maxRetries = 2;
    if (!args.has("job-timeout-ms"))
        params.jobTimeoutMs = 2000;

    TensorI16 clean = syntheticActivations(seed, 4, 16, 64);

    std::vector<std::pair<std::string, int>> codecSpecs = {
        {"NoCompression", 0}, {"RawD16", 0},      {"DeltaD16", 0},
        {"DeltaD16.A64", 64}, {"DeltaD16.A16", 16}, {"DeltaD16.A4", 4}};
    std::vector<std::unique_ptr<ActivationCodec>> codecs;
    codecs.push_back(makeNoCompressionCodec());
    codecs.push_back(makeRawDCodec(16));
    codecs.push_back(makeDeltaDCodec(16));
    codecs.push_back(makeDeltaDCodec(16, 64));
    codecs.push_back(makeDeltaDCodec(16, 16));
    codecs.push_back(makeDeltaDCodec(16, 4));

    std::vector<FaultSpec> faults;
    {
        FaultSpec s;
        s.model = FaultModel::SingleBit;
        s.target = FaultTarget::Payload;
        faults.push_back(s);
        s.target = FaultTarget::Header;
        faults.push_back(s);
        s.model = FaultModel::Burst;
        s.target = FaultTarget::Any;
        s.burstLength = 8;
        faults.push_back(s);
        s.model = FaultModel::BitRate;
        s.bitErrorRate = 1e-4;
        faults.push_back(s);
    }
    std::vector<GridCell> grid =
        buildGrid(codecSpecs, codecs, faults, clean);

    ChaosPlan plan = ChaosPlan::make(seed, grid.size(),
                                     /*transientCells=*/3,
                                     /*failsPerCell=*/2);

    // On-disk corruption, planted before the sweep starts.
    const std::string cacheDir =
        (std::filesystem::path(params.cacheDir.empty() ? "traces"
                                                       : params.cacheDir) /
         "chaos")
            .string();
    NetworkSpec stubNet;
    stubNet.name = "chaos-stub";
    SceneParams stubScene;
    stubScene.width = 8;
    stubScene.height = 8;
    plantCorruptTrace(cacheDir, stubNet, stubScene);

    std::printf("chaos plan (seed %llu over %zu cells): "
                "%d transient cells x 2 throws, poisoned cell %zu, "
                "deadline overrun cell %zu, corrupt-cache cell %zu\n\n",
                static_cast<unsigned long long>(seed), grid.size(), 3,
                plan.poisonedCell, plan.overrunCell, plan.cacheCell);

    // Per-cell attempt counters: chaos failures are attempt-indexed,
    // never time-based, so the outcome is identical at every thread
    // count.
    std::vector<std::atomic<int>> attempts(grid.size());

    SweepScheduler scheduler = makeSweepScheduler(params);
    std::vector<CellResult> results =
        scheduler.map(grid.size(), [&](SweepJob &job) -> CellResult {
            std::size_t i = job.index;
            int attempt = attempts[i].fetch_add(1);
            if (attempt < plan.transientFails[i])
                throw DecodeError(
                    DecodeStatus::Truncated,
                    "chaos: injected transient decode failure");
            if (i == plan.poisonedCell)
                throw std::runtime_error("chaos: poisoned cell");
            if (i == plan.overrunCell)
                std::this_thread::sleep_for(std::chrono::milliseconds(
                    4 * std::max<std::int64_t>(1, params.jobTimeoutMs)));
            if (i == plan.cacheCell) {
                // Fresh TraceCache (no in-memory entry): must detect
                // the planted corruption, quarantine, regenerate.
                TraceCache cache(cacheDir,
                                 [](const NetworkSpec &,
                                    const SceneParams &,
                                    const ExecutorOptions &) {
                                     return stubTrace();
                                 });
                NetworkTrace t = cache.get(stubNet, stubScene);
                if (t.layers.size() != 1 ||
                    t.layers[0].imap.at(0, 7, 7) != 63)
                    throw std::runtime_error(
                        "chaos: regenerated trace is wrong");
            }
            return measureCell(grid[i], clean, trials, seed);
        });
    const SweepReport &report = scheduler.report();
    maybeReportSweepStats(scheduler.stats(), "chaos");

    TextTable table = makeGridTable(trials);
    for (std::size_t i = 0; i < grid.size(); ++i) {
        // The determinism contract covers *surviving* cells only:
        // quarantined rows hold default-constructed results and are
        // skipped.
        if (report.isQuarantined(i))
            continue;
        addCellRow(table, grid[i], results[i]);
    }
    table.print();

    std::printf("\n%s\n", report.summary().c_str());
    auto &reg = obs::MetricsRegistry::instance();
    std::printf("trace_cache.corrupt_evictions: %llu\n",
                static_cast<unsigned long long>(
                    reg.counter("trace_cache.corrupt_evictions").value()));

    if (!reportJsonPath.empty()) {
        std::ofstream out(reportJsonPath);
        report.writeJson(out);
    }

    // The chaos run is an assertion, not just a demo: exactly the
    // injected failures may appear in the report. The cache cell
    // recovers (the corruption is healed on load), the transient
    // cells recover by retry; only the poisoned and the overrun cell
    // stay quarantined.
    const std::size_t expectQuarantined = 2;
    if (report.quarantined != expectQuarantined ||
        report.retriedJobs != 3 || report.timedOut != 1) {
        std::fprintf(stderr,
                     "chaos: report mismatch (quarantined %zu, retried "
                     "%zu, timed out %zu)\n",
                     report.quarantined, report.retriedJobs,
                     report.timedOut);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    CliArgs args(argc, argv, {"chaos", "keep-going"});
    std::uint64_t seed = 1234;
    int trials = 100;
    try {
        seed = static_cast<std::uint64_t>(args.getInt("seed", 1234));
        trials =
            std::max(1, static_cast<int>(args.getInt("trials", 100)));
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    if (args.has("chaos"))
        return runChaos(params, args, seed, trials,
                        args.getString("report-json", ""));

    TensorI16 clean = syntheticActivations(seed, 4, 16, 64);

    std::vector<std::pair<std::string, int>> codecSpecs = {
        {"NoCompression", 0}, {"RawD16", 0},      {"DeltaD16", 0},
        {"DeltaD16.A64", 64}, {"DeltaD16.A16", 16}, {"DeltaD16.A4", 4}};
    std::vector<std::unique_ptr<ActivationCodec>> codecs;
    codecs.push_back(makeNoCompressionCodec());
    codecs.push_back(makeRawDCodec(16));
    codecs.push_back(makeDeltaDCodec(16));
    codecs.push_back(makeDeltaDCodec(16, 64));
    codecs.push_back(makeDeltaDCodec(16, 16));
    codecs.push_back(makeDeltaDCodec(16, 4));

    std::vector<FaultSpec> faults;
    {
        FaultSpec s;
        s.model = FaultModel::SingleBit;
        s.target = FaultTarget::Payload;
        faults.push_back(s);
        s.target = FaultTarget::Header;
        faults.push_back(s);
        s.model = FaultModel::Burst;
        s.target = FaultTarget::Any;
        s.burstLength = 8;
        faults.push_back(s);
        s.model = FaultModel::BitRate;
        s.bitErrorRate = 1e-4;
        faults.push_back(s);
    }
    std::vector<GridCell> grid =
        buildGrid(codecSpecs, codecs, faults, clean);

    // The grid itself runs through the sweep scheduler: cells are
    // independent, and the in-order reduction keeps the table
    // byte-identical at any --threads value.
    std::vector<CellResult> results =
        sweepCells(params, grid.size(), [&](SweepJob &job) {
            return measureCell(grid[job.index], clean, trials, seed);
        });

    TextTable table = makeGridTable(trials);
    for (std::size_t i = 0; i < grid.size(); ++i)
        addCellRow(table, grid[i], results[i]);
    table.print();

    std::printf(
        "Reading: a payload flip corrupts exactly one value under raw\n"
        "storage but smears to the end of the row under DeltaD16 (the\n"
        "DR prefix sum); header flips desync the parse and are mostly\n"
        "caught by the hardened decoder as Truncated/BadHeader. The\n"
        "re-anchor interval K caps the silent blast radius at K values\n"
        "(max run column) for a footprint cost visible in bits/val —\n"
        "the containment knob trades storage for blast radius. Sealed\n"
        "streams (CRC-32C footer) convert the remaining silent\n"
        "corruptions into detected ones (crc det vs silent|crc) for a\n"
        "recovery cost of re-decoding from the last clean anchor\n"
        "(rec cyc: K values, or a full row without re-anchoring).\n");
    return 0;
}
