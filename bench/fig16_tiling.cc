/**
 * @file
 * Fig 16: sensitivity to the tile configuration T_x — the number of
 * terms (weight x activation products) processed concurrently per
 * filter. Diffy and VAA are both reconfigured per point; shrinking
 * the synchronization group removes cross-lane imbalance and widens
 * Diffy's advantage (the paper reports 7.1x at T16 growing to 11.9x
 * at T1 on average).
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);
    MemTech mem = experimentMemTech(params);

    const int terms[] = {16, 8, 4, 2, 1};

    TextTable table("Fig 16: Diffy speedup over VAA per tile "
                    "configuration T_x");
    std::vector<std::string> header = {"Network"};
    for (int t : terms) {
        std::string label = "T";
        label += std::to_string(t);
        header.push_back(std::move(label));
    }
    table.setHeader(header);

    std::vector<std::vector<double>> cols(std::size(terms));
    for (const auto &net : traced) {
        std::vector<std::string> row = {net.spec.name};
        for (std::size_t ti = 0; ti < std::size(terms); ++ti) {
            AcceleratorConfig vaa = defaultVaaConfig();
            vaa.termsPerFilter = terms[ti];
            AcceleratorConfig dfy = defaultDiffyConfig();
            dfy.termsPerFilter = terms[ti];
            // Compare compute capability: use ideal memory so the
            // ratio isolates the tiling effect, as in the paper.
            vaa.compression = Compression::Ideal;
            dfy.compression = Compression::Ideal;
            double speedup = speedupOver(net, dfy, vaa, mem, params);
            cols[ti].push_back(speedup);
            row.push_back(TextTable::factor(speedup));
        }
        table.addRow(row);
    }
    std::vector<std::string> mean = {"geomean"};
    for (auto &col : cols)
        mean.push_back(TextTable::factor(geometricMean(col)));
    table.addRow(mean);
    table.print();

    std::printf("Paper shape: the advantage grows monotonically as T_x "
                "shrinks (7.1x at T16 -> 11.9x at T1); VDSR stays "
                "below its potential even at T1.\n");
    return 0;
}
