/**
 * @file
 * Fig 12: per-layer lane-utilization breakdown for Diffy at HD —
 * useful cycles, idle cycles (cross-lane synchronization and filter
 * underutilization) and stalls on off-chip memory.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);
    MemTech mem = experimentMemTech(params);
    AcceleratorConfig cfg = defaultDiffyConfig();

    for (const auto &net : traced) {
        TextTable table("Fig 12: Diffy lane utilization, " +
                        net.spec.name);
        table.setHeader({"Layer", "Useful", "Idle", "Stall",
                         "Cycle share"});
        // Average the per-layer breakdown over scenes.
        const auto &first = net.traces.front();
        std::vector<LayerPerf> acc(first.layers.size());
        double total_cycles = 0.0;
        for (const auto &trace : net.traces) {
            FramePerf perf =
                simulateFrame(trace, cfg, mem, params.frameHeight,
                              params.frameWidth);
            for (std::size_t i = 0; i < perf.layers.size(); ++i) {
                acc[i].layerName = perf.layers[i].layerName;
                acc[i].cycles += perf.layers[i].cycles;
                acc[i].usefulFraction +=
                    perf.layers[i].usefulFraction *
                    perf.layers[i].cycles;
                acc[i].idleFraction +=
                    perf.layers[i].idleFraction * perf.layers[i].cycles;
                acc[i].stallFraction +=
                    perf.layers[i].stallFraction *
                    perf.layers[i].cycles;
            }
            total_cycles += perf.totalCycles;
        }
        for (const auto &lp : acc) {
            if (lp.cycles <= 0.0)
                continue;
            table.addRow({lp.layerName,
                          TextTable::percent(lp.usefulFraction /
                                             lp.cycles),
                          TextTable::percent(lp.idleFraction / lp.cycles),
                          TextTable::percent(lp.stallFraction /
                                             lp.cycles),
                          TextTable::percent(lp.cycles / total_cycles)});
        }
        table.print();
    }

    std::printf("Paper shape: first layers underutilize (3 of 16 "
                "channel lanes busy; FFDNet excepted), last layers "
                "underutilize filter lanes, VDSR idles on cross-lane "
                "sync, off-chip stalls visible mainly for FFDNet and "
                "JointNet layers.\n");
    return 0;
}
