/**
 * @file
 * Fig 20: Diffy versus SCNN on the CI-DNN suite under four weight
 * sparsity assumptions (0 / 50 / 75 / 90 percent random pruning).
 * Compute-cycle comparison at matched 1024-multiplier peak.
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "core/experiment.hh"
#include "sim/scnn.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    const double sparsities[] = {0.0, 0.5, 0.75, 0.9};

    TextTable table("Fig 20: Diffy speedup over SCNN");
    table.setHeader({"Network", "SCNN0", "SCNN50", "SCNN75", "SCNN90"});

    AcceleratorConfig dfy = defaultDiffyConfig();
    std::vector<std::vector<double>> cols(std::size(sparsities));

    for (const auto &base_net : ciDnnSuite()) {
        std::vector<std::string> row = {base_net.name};
        for (std::size_t si = 0; si < std::size(sparsities); ++si) {
            ExecutorOptions opts;
            opts.weightSparsity = sparsities[si];
            auto traced = traceSuite({base_net}, params, opts);
            double scnn_cycles = 0.0, diffy_cycles = 0.0;
            for (const auto &trace : traced[0].traces) {
                scnn_cycles +=
                    simulateScnn(trace).totalComputeCycles();
                diffy_cycles +=
                    simulateCompute(trace, dfy).totalComputeCycles();
            }
            double speedup = scnn_cycles / diffy_cycles;
            cols[si].push_back(speedup);
            row.push_back(TextTable::factor(speedup));
        }
        table.addRow(row);
    }
    std::vector<std::string> mean = {"geomean"};
    for (auto &col : cols)
        mean.push_back(TextTable::factor(geometricMean(col)));
    table.addRow(mean);
    table.print();

    std::printf("Paper shape: Diffy ~5.4x / 4.5x / 2.4x / ~1.0x faster "
                "than SCNN at 0/50/75/90%% weight sparsity — SCNN "
                "needs implausibly sparse weights to catch up on "
                "CI-DNNs.\n");
    return 0;
}
