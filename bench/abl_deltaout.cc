/**
 * @file
 * Ablation: the Delta-out engine and the rejected read-side scheme.
 *
 * Section III-E describes two ways to obtain deltas: compute them as
 * values are read from the AM (rejected: recomputes on every read and
 * forfeits the storage/traffic savings), or once at the output of
 * each layer via the Delta-out engine (adopted). This bench
 * quantifies the difference the choice makes — identical compute
 * cycles, but the read-side scheme stores and moves raw values — and
 * checks how often the Delta-out occupancy floor actually paces a
 * pallet.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/experiment.hh"
#include "encode/footprint.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);
    MemTech mem = experimentMemTech(params);

    TextTable table("Ablation: Delta-out (write-side) vs read-side "
                    "delta computation");
    table.setHeader({"Network", "AM need write-side (KB)",
                     "AM need read-side (KB)", "Traffic write-side",
                     "Traffic read-side", "FPS write-side",
                     "FPS read-side"});

    for (const auto &net : traced) {
        // Write-side: activations live as DeltaD16 on-chip and off.
        // Read-side: storage and traffic are raw (RawD16 at best);
        // only the compute stream sees deltas.
        double am_w = 0.0, am_r = 0.0, traffic_w = 0.0, traffic_r = 0.0,
               base_traffic = 0.0;
        for (const auto &trace : net.traces) {
            am_w = std::max(am_w,
                            amRequiredBytes(trace, Compression::DeltaD16,
                                            params.frameWidth));
            am_r = std::max(am_r,
                            amRequiredBytes(trace, Compression::RawD16,
                                            params.frameWidth));
            traffic_w +=
                frameTrafficBytes(trace, Compression::DeltaD16,
                                  params.frameHeight, params.frameWidth);
            traffic_r +=
                frameTrafficBytes(trace, Compression::RawD16,
                                  params.frameHeight, params.frameWidth);
            base_traffic +=
                frameTrafficBytes(trace, Compression::None,
                                  params.frameHeight, params.frameWidth);
        }

        AcceleratorConfig write_side = defaultDiffyConfig();
        AcceleratorConfig read_side = defaultDiffyConfig();
        read_side.compression = Compression::RawD16;
        double fps_w = averageFps(net, write_side, mem, params);
        double fps_r = averageFps(net, read_side, mem, params);

        table.addRow({net.spec.name, TextTable::num(am_w / 1024.0, 0),
                      TextTable::num(am_r / 1024.0, 0),
                      TextTable::percent(traffic_w / base_traffic),
                      TextTable::percent(traffic_r / base_traffic),
                      TextTable::num(fps_w, 2),
                      TextTable::num(fps_r, 2)});
    }
    table.print();

    std::printf("Reading: compute speed is unchanged (deltas reach the "
                "SIPs either way) but the write-side scheme keeps the "
                "AM and traffic savings — the reason the paper adopts "
                "Delta-out.\n");
    return 0;
}
