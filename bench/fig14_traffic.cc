/**
 * @file
 * Fig 14: off-chip traffic per HD frame under eight compression
 * schemes, normalized to NoCompression, metadata included.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/experiment.hh"
#include "encode/footprint.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);

    const Compression schemes[] = {
        Compression::Rlez,    Compression::Rle,     Compression::Profiled,
        Compression::RawD256, Compression::RawD16,  Compression::RawD8,
        Compression::DeltaD256, Compression::DeltaD16,
    };

    TextTable table("Fig 14: off-chip traffic normalized to "
                    "NoCompression");
    std::vector<std::string> header = {"Network"};
    for (auto s : schemes)
        header.push_back(to_string(s));
    table.setHeader(header);

    std::vector<double> sums(std::size(schemes), 0.0);
    for (const auto &net : traced) {
        std::vector<std::string> row = {net.spec.name};
        double base = 0.0;
        for (const auto &trace : net.traces) {
            base += frameTrafficBytes(trace, Compression::None,
                                      params.frameHeight,
                                      params.frameWidth);
        }
        for (std::size_t si = 0; si < std::size(schemes); ++si) {
            double bytes = 0.0;
            for (const auto &trace : net.traces) {
                bytes += frameTrafficBytes(trace, schemes[si],
                                           params.frameHeight,
                                           params.frameWidth);
            }
            double ratio = bytes / base;
            sums[si] += ratio;
            row.push_back(TextTable::percent(ratio));
        }
        table.addRow(row);
    }
    std::vector<std::string> avg = {"average"};
    for (double s : sums)
        avg.push_back(TextTable::percent(s / traced.size()));
    table.addRow(avg);
    table.print();

    std::printf("Paper shape: Profiled ~54%%, RawD256 ~39%%, RawD16/8 "
                "~28%%, DeltaD16 ~22%% of uncompressed traffic; RLE "
                "variants help only VDSR.\n");
    return 0;
}
