/**
 * @file
 * google-benchmark microbenchmarks of the hot kernels: Booth-term
 * counting, the activation codecs, the direct and differential
 * fixed-point convolutions, and the PRA/Diffy pallet walk.
 *
 * The BM_Isa* family is registered at startup once per available
 * kernel table (common/simd.hh), so one run records scalar, SSE4 and
 * AVX2 side by side — that per-ISA speedup is the artifact
 * BENCH_kernels.json tracks across PRs. The dispatched ISA and build
 * flavor go into the JSON context (run_micro.sh refuses debug runs).
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "common/aligned.hh"
#include "common/bitops.hh"
#include "common/rng.hh"
#include "common/simd.hh"
#include "core/differential_conv.hh"
#include "encode/schemes.hh"
#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/models.hh"
#include "sim/diffy_sim.hh"
#include "sim/pra.hh"

namespace
{

using namespace diffy;

TensorI16
correlatedTensor(int c, int h, int w)
{
    Rng rng(1234);
    TensorI16 t(c, h, w);
    for (int ch = 0; ch < c; ++ch) {
        for (int y = 0; y < h; ++y) {
            std::int32_t level = 500;
            for (int x = 0; x < w; ++x) {
                level += static_cast<std::int32_t>(rng.below(17)) - 8;
                t.at(ch, y, x) = static_cast<std::int16_t>(
                    std::max(0, level));
            }
        }
    }
    return t;
}

void
BM_BoothTerms(benchmark::State &state)
{
    Rng rng(7);
    std::vector<std::int16_t> values(4096);
    for (auto &v : values)
        v = static_cast<std::int16_t>(rng.below(65536) - 32768);
    for (auto _ : state) {
        std::int64_t total = 0;
        for (auto v : values)
            total += boothTerms(v);
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_BoothTerms);

void
BM_BoothTermsPlane(benchmark::State &state)
{
    Rng rng(7);
    std::vector<std::int16_t> values(4096);
    for (auto &v : values)
        v = static_cast<std::int16_t>(rng.below(65536) - 32768);
    std::vector<std::uint8_t> terms(values.size());
    for (auto _ : state) {
        boothTermsPlane(values.data(), terms.data(), values.size());
        benchmark::DoNotOptimize(terms.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_BoothTermsPlane);

void
BM_ContentHash(benchmark::State &state)
{
    Rng rng(9);
    std::vector<std::int16_t> values(32768);
    for (auto &v : values)
        v = static_cast<std::int16_t>(rng.below(65536) - 32768);
    const std::size_t bytes = values.size() * sizeof(std::int16_t);
    for (auto _ : state) {
        std::uint64_t h = contentHash64(values.data(), bytes);
        benchmark::DoNotOptimize(h);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ContentHash);

void
BM_CodecEncode(benchmark::State &state)
{
    auto scheme = static_cast<Compression>(state.range(0));
    auto codec = makeCodec(scheme, 11);
    TensorI16 t = correlatedTensor(16, 32, 32);
    for (auto _ : state) {
        auto enc = codec->encode(t);
        benchmark::DoNotOptimize(enc.bits);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(t.size()));
    state.SetLabel(codec->name());
}
BENCHMARK(BM_CodecEncode)
    ->Arg(static_cast<int>(Compression::Rlez))
    ->Arg(static_cast<int>(Compression::Rle))
    ->Arg(static_cast<int>(Compression::Profiled))
    ->Arg(static_cast<int>(Compression::RawD16))
    ->Arg(static_cast<int>(Compression::DeltaD16));

void
BM_ConvDirect(benchmark::State &state)
{
    TensorI16 imap = correlatedTensor(16, 32, 32);
    Rng rng(3);
    FilterBankI16 bank(16, 16, 3, 3);
    for (std::size_t i = 0; i < bank.size(); ++i)
        bank.data()[i] = static_cast<std::int16_t>(rng.below(512) - 256);
    for (auto _ : state) {
        auto out = convolveDirect(imap, bank, 1, 1);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_ConvDirect);

void
BM_ConvDifferential(benchmark::State &state)
{
    TensorI16 imap = correlatedTensor(16, 32, 32);
    Rng rng(3);
    FilterBankI16 bank(16, 16, 3, 3);
    for (std::size_t i = 0; i < bank.size(); ++i)
        bank.data()[i] = static_cast<std::int16_t>(rng.below(512) - 256);
    for (auto _ : state) {
        auto out = convolveDifferential(imap, bank, 1, 1);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_ConvDifferential);

void
BM_PalletWalk(benchmark::State &state)
{
    const bool differential = state.range(0) != 0;
    LayerTrace lt;
    lt.spec.name = "bench";
    lt.spec.inChannels = 64;
    lt.spec.outChannels = 64;
    lt.spec.kernel = 3;
    lt.imap = correlatedTensor(64, 32, 32);
    lt.weights = FilterBankI16(64, 64, 3, 3, 1);
    AcceleratorConfig cfg = defaultDiffyConfig();
    for (auto _ : state) {
        // Clear the memo cache so every iteration times the real term
        // tensor build + pallet walk rather than a cache hit.
        clearWalkCache();
        auto stats = simulateTermSerialLayer(lt, cfg, differential);
        benchmark::DoNotOptimize(stats.computeCycles);
    }
    state.SetLabel(differential ? "diffy" : "pra");
}
BENCHMARK(BM_PalletWalk)->Arg(0)->Arg(1);

// ---------------------------------------------------------------
// Per-ISA kernel benches: same work, explicit kernel table. One
// instance per availableIsas() is registered in main(), named
// BM_Isa<Kernel>/<isa>, so a single run yields the scalar/SSE4/AVX2
// comparison directly.
// ---------------------------------------------------------------

AlignedVec<std::int16_t>
randomI16Plane(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    AlignedVec<std::int16_t> v(n);
    for (auto &x : v)
        x = static_cast<std::int16_t>(rng.below(65536) - 32768);
    return v;
}

void
BM_IsaBoothTermsPlane(benchmark::State &state,
                      const simd::KernelTable *kt)
{
    const auto values = randomI16Plane(4096, 7);
    AlignedVec<std::uint8_t> terms(values.size());
    for (auto _ : state) {
        kt->boothTermsPlane16(values.data(), terms.data(), values.size());
        benchmark::DoNotOptimize(terms.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(values.size()));
}

void
BM_IsaBitsNeededPlane(benchmark::State &state,
                      const simd::KernelTable *kt)
{
    const auto values = randomI16Plane(4096, 7);
    AlignedVec<std::uint8_t> bits(values.size());
    for (auto _ : state) {
        kt->bitsNeededPlane16(values.data(), bits.data(), values.size());
        benchmark::DoNotOptimize(bits.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(values.size()));
}

void
BM_IsaDeltaBits(benchmark::State &state, const simd::KernelTable *kt)
{
    const auto prev = randomI16Plane(4096, 11);
    const auto cur = randomI16Plane(4096, 12);
    AlignedVec<std::int32_t> deltas(prev.size());
    for (auto _ : state) {
        int bits = kt->deltaBits16(prev.data(), cur.data(),
                                   deltas.data(), prev.size());
        benchmark::DoNotOptimize(bits);
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(prev.size()));
}

void
BM_IsaWalkSumMax(benchmark::State &state, const simd::KernelTable *kt)
{
    // The pallet geometry of BM_PalletWalk's hot call: 16 channel
    // rows, a 32x32 plane per channel, 16-column blocks at stride 1.
    constexpr std::size_t kRowStride = 32 * 32;
    constexpr std::size_t kRows = 16;
    constexpr int kCols = 16;
    Rng rng(13);
    AlignedVec<std::uint8_t> plane(kRows * kRowStride);
    for (auto &b : plane)
        b = static_cast<std::uint8_t>(rng.below(18));
    std::uint8_t col_max[kCols];
    for (auto _ : state) {
        std::int64_t total = 0;
        for (std::size_t off = 0; off + kCols <= kRowStride;
             off += kCols) {
            total += kt->walkSumMax(plane.data() + off, kRowStride,
                                    kRows, 1, col_max, kCols);
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(
        state.iterations() *
        static_cast<std::int64_t>(kRows * kRowStride));
}

void
BM_IsaHashStripes(benchmark::State &state, const simd::KernelTable *kt)
{
    Rng rng(9);
    AlignedVec<unsigned char> buf(65536);
    for (auto &b : buf)
        b = static_cast<unsigned char>(rng.below(256));
    const std::size_t stripes = buf.size() / 32;
    for (auto _ : state) {
        std::uint32_t acc[8] = {1, 2, 3, 4, 5, 6, 7, 8};
        kt->hashStripes(buf.data(), stripes, acc);
        benchmark::DoNotOptimize(acc);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(buf.size()));
}

void
registerPerIsaBenches()
{
    for (simd::Isa isa : simd::availableIsas()) {
        const simd::KernelTable *kt = simd::table(isa);
        const std::string suffix = std::string("/") + simd::isaName(isa);
        benchmark::RegisterBenchmark(
            ("BM_IsaBoothTermsPlane" + suffix).c_str(),
            BM_IsaBoothTermsPlane, kt);
        benchmark::RegisterBenchmark(
            ("BM_IsaBitsNeededPlane" + suffix).c_str(),
            BM_IsaBitsNeededPlane, kt);
        benchmark::RegisterBenchmark(
            ("BM_IsaDeltaBits" + suffix).c_str(), BM_IsaDeltaBits, kt);
        benchmark::RegisterBenchmark(
            ("BM_IsaWalkSumMax" + suffix).c_str(), BM_IsaWalkSumMax, kt);
        benchmark::RegisterBenchmark(
            ("BM_IsaHashStripes" + suffix).c_str(), BM_IsaHashStripes,
            kt);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    registerPerIsaBenches();
    // JSON context for regression tracking: which table actually
    // dispatched, whether DIFFY_ISA forced it, and the build flavor
    // (run_micro.sh fails the run unless diffy_build == "release").
    benchmark::AddCustomContext("diffy_isa",
                                simd::isaName(simd::activeIsa()));
    const char *env = std::getenv("DIFFY_ISA");
    benchmark::AddCustomContext("diffy_isa_env", env ? env : "");
#if defined(DIFFY_NATIVE_BUILD)
    benchmark::AddCustomContext("diffy_native", "1");
#else
    benchmark::AddCustomContext("diffy_native", "0");
#endif
#if defined(NDEBUG)
    benchmark::AddCustomContext("diffy_build", "release");
#else
    benchmark::AddCustomContext("diffy_build", "debug");
#endif
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
