/**
 * @file
 * google-benchmark microbenchmarks of the hot kernels: Booth-term
 * counting, the activation codecs, the direct and differential
 * fixed-point convolutions, and the PRA/Diffy pallet walk.
 */

#include <benchmark/benchmark.h>

#include "common/bitops.hh"
#include "common/rng.hh"
#include "core/differential_conv.hh"
#include "encode/schemes.hh"
#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/models.hh"
#include "sim/diffy_sim.hh"
#include "sim/pra.hh"

namespace
{

using namespace diffy;

TensorI16
correlatedTensor(int c, int h, int w)
{
    Rng rng(1234);
    TensorI16 t(c, h, w);
    for (int ch = 0; ch < c; ++ch) {
        for (int y = 0; y < h; ++y) {
            std::int32_t level = 500;
            for (int x = 0; x < w; ++x) {
                level += static_cast<std::int32_t>(rng.below(17)) - 8;
                t.at(ch, y, x) = static_cast<std::int16_t>(
                    std::max(0, level));
            }
        }
    }
    return t;
}

void
BM_BoothTerms(benchmark::State &state)
{
    Rng rng(7);
    std::vector<std::int16_t> values(4096);
    for (auto &v : values)
        v = static_cast<std::int16_t>(rng.below(65536) - 32768);
    for (auto _ : state) {
        std::int64_t total = 0;
        for (auto v : values)
            total += boothTerms(v);
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_BoothTerms);

void
BM_BoothTermsPlane(benchmark::State &state)
{
    Rng rng(7);
    std::vector<std::int16_t> values(4096);
    for (auto &v : values)
        v = static_cast<std::int16_t>(rng.below(65536) - 32768);
    std::vector<std::uint8_t> terms(values.size());
    for (auto _ : state) {
        boothTermsPlane(values.data(), terms.data(), values.size());
        benchmark::DoNotOptimize(terms.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(values.size()));
}
BENCHMARK(BM_BoothTermsPlane);

void
BM_ContentHash(benchmark::State &state)
{
    Rng rng(9);
    std::vector<std::int16_t> values(32768);
    for (auto &v : values)
        v = static_cast<std::int16_t>(rng.below(65536) - 32768);
    const std::size_t bytes = values.size() * sizeof(std::int16_t);
    for (auto _ : state) {
        std::uint64_t h = contentHash64(values.data(), bytes);
        benchmark::DoNotOptimize(h);
    }
    state.SetBytesProcessed(state.iterations() *
                            static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_ContentHash);

void
BM_CodecEncode(benchmark::State &state)
{
    auto scheme = static_cast<Compression>(state.range(0));
    auto codec = makeCodec(scheme, 11);
    TensorI16 t = correlatedTensor(16, 32, 32);
    for (auto _ : state) {
        auto enc = codec->encode(t);
        benchmark::DoNotOptimize(enc.bits);
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(t.size()));
    state.SetLabel(codec->name());
}
BENCHMARK(BM_CodecEncode)
    ->Arg(static_cast<int>(Compression::Rlez))
    ->Arg(static_cast<int>(Compression::Rle))
    ->Arg(static_cast<int>(Compression::Profiled))
    ->Arg(static_cast<int>(Compression::RawD16))
    ->Arg(static_cast<int>(Compression::DeltaD16));

void
BM_ConvDirect(benchmark::State &state)
{
    TensorI16 imap = correlatedTensor(16, 32, 32);
    Rng rng(3);
    FilterBankI16 bank(16, 16, 3, 3);
    for (std::size_t i = 0; i < bank.size(); ++i)
        bank.data()[i] = static_cast<std::int16_t>(rng.below(512) - 256);
    for (auto _ : state) {
        auto out = convolveDirect(imap, bank, 1, 1);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_ConvDirect);

void
BM_ConvDifferential(benchmark::State &state)
{
    TensorI16 imap = correlatedTensor(16, 32, 32);
    Rng rng(3);
    FilterBankI16 bank(16, 16, 3, 3);
    for (std::size_t i = 0; i < bank.size(); ++i)
        bank.data()[i] = static_cast<std::int16_t>(rng.below(512) - 256);
    for (auto _ : state) {
        auto out = convolveDifferential(imap, bank, 1, 1);
        benchmark::DoNotOptimize(out.data());
    }
}
BENCHMARK(BM_ConvDifferential);

void
BM_PalletWalk(benchmark::State &state)
{
    const bool differential = state.range(0) != 0;
    LayerTrace lt;
    lt.spec.name = "bench";
    lt.spec.inChannels = 64;
    lt.spec.outChannels = 64;
    lt.spec.kernel = 3;
    lt.imap = correlatedTensor(64, 32, 32);
    lt.weights = FilterBankI16(64, 64, 3, 3, 1);
    AcceleratorConfig cfg = defaultDiffyConfig();
    for (auto _ : state) {
        // Clear the memo cache so every iteration times the real term
        // tensor build + pallet walk rather than a cache hit.
        clearWalkCache();
        auto stats = simulateTermSerialLayer(lt, cfg, differential);
        benchmark::DoNotOptimize(stats.computeCycles);
    }
    state.SetLabel(differential ? "diffy" : "pra");
}
BENCHMARK(BM_PalletWalk)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
