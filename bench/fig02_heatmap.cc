/**
 * @file
 * Fig 2: spatial structure of a CI-DNN imap — ASCII heatmaps of the
 * raw values, the X-axis deltas, and the effectual-term content of
 * both streams, for DnCNN's third convolutional layer on the textured
 * "barbara"-analogue scene, plus the summary statistics the paper
 * quotes (mean terms per activation vs per delta).
 */

#include <cstdio>

#include "analysis/heatmap.hh"
#include "analysis/terms.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    TraceCache cache(params.cacheDir);

    NetworkSpec net = makeDnCnn();
    SceneParams barbara = barbaraScene(params.crop);
    NetworkTrace trace = cache.get(net, barbara);

    const LayerTrace &layer = trace.layers[2]; // conv_3
    std::printf("DnCNN %s on the textured scene (%dx%d crop)\n\n",
                layer.spec.name.c_str(), params.crop, params.crop);

    const int art_h = 24, art_w = 48;
    std::printf("(a) raw imap |value| (channel mean):\n%s\n",
                renderAscii(rawMagnitudeHeatmap(layer.imap), art_h,
                            art_w)
                    .c_str());
    std::printf("(b) |delta| along X (channel mean):\n%s\n",
                renderAscii(deltaMagnitudeHeatmap(layer.imap), art_h,
                            art_w)
                    .c_str());
    std::printf("(c) effectual terms of the differential stream:\n%s\n",
                renderAscii(deltaTermsHeatmap(layer.imap), art_h, art_w)
                    .c_str());

    TermStats raw = rawTermStats(layer.imap);
    TermStats delta = deltaTermStats(layer.imap);
    TextTable table("Fig 2 summary: terms per value");
    table.setHeader({"Stream", "Mean terms", "Sparsity"});
    table.addRow({"raw activations", TextTable::num(raw.meanTerms()),
                  TextTable::percent(raw.sparsity())});
    table.addRow({"X-deltas", TextTable::num(delta.meanTerms()),
                  TextTable::percent(delta.sparsity())});
    table.addRow({"reduction",
                  TextTable::factor(raw.meanTerms() /
                                    std::max(1e-9, delta.meanTerms())),
                  ""});
    table.print();
    std::printf("Paper shape: ~3.65 terms/activation vs ~1.9 per delta "
                "(~1.9x) on DnCNN conv_3; deltas peak only at edges.\n");
    return 0;
}
