/**
 * @file
 * Fig 3: cumulative distribution of effectual terms per activation
 * and per delta over all CI-DNNs and all datasets, plus the average
 * sparsity of both streams.
 */

#include <cstdio>

#include "analysis/terms.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);

    TermStats raw, delta;
    for (const auto &net : traced) {
        for (const auto &trace : net.traces) {
            for (const auto &layer : trace.layers) {
                raw.merge(rawTermStats(layer.imap));
                delta.merge(deltaTermStats(layer.imap));
            }
        }
    }

    TextTable table("Fig 3: CDF of effectual terms per value");
    table.setHeader({"Terms <=", "Raw activations", "Deltas"});
    auto raw_cdf = raw.termHistogram.cdf();
    auto delta_cdf = delta.termHistogram.cdf();
    auto lookup = [](const auto &cdf, std::int64_t bound) {
        double p = 0.0;
        for (const auto &[sym, cum] : cdf) {
            if (sym <= bound)
                p = cum;
        }
        return p;
    };
    for (std::int64_t t = 0; t <= 8; ++t) {
        table.addRow({std::to_string(t),
                      TextTable::percent(lookup(raw_cdf, t)),
                      TextTable::percent(lookup(delta_cdf, t))});
    }
    table.print();

    TextTable summary("Fig 3 summary");
    summary.setHeader({"Stream", "Mean terms", "Sparsity"});
    summary.addRow({"raw", TextTable::num(raw.meanTerms()),
                    TextTable::percent(raw.sparsity())});
    summary.addRow({"delta", TextTable::num(delta.meanTerms()),
                    TextTable::percent(delta.sparsity())});
    summary.print();
    std::printf("Paper shape: deltas concentrate at fewer terms; raw "
                "sparsity ~43%%, delta sparsity ~48%%.\n");
    return 0;
}
