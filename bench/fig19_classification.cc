/**
 * @file
 * Fig 19: Diffy on classification / detection / segmentation models —
 * speedups of PRA and Diffy over VAA, plus the early-layer advantage
 * of Diffy over PRA the paper highlights.
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(classificationSuite(), params);
    MemTech mem = experimentMemTech(params);

    AcceleratorConfig vaa = defaultVaaConfig();
    AcceleratorConfig pra = defaultPraConfig();
    pra.compression = Compression::DeltaD16;
    AcceleratorConfig dfy = defaultDiffyConfig();

    TextTable table("Fig 19: classification/detection model speedups");
    table.setHeader({"Network", "PRA vs VAA", "Diffy vs VAA",
                     "Diffy vs PRA", "Diffy vs PRA (first 2 layers)"});

    std::vector<double> pra_col, dfy_col;
    for (const auto &net : traced) {
        double s_pra = speedupOver(net, pra, vaa, mem, params);
        double s_dfy = speedupOver(net, dfy, vaa, mem, params);

        // Early-layer comparison on compute cycles only.
        double early_pra = 0.0, early_dfy = 0.0;
        for (const auto &trace : net.traces) {
            auto rp = simulateCompute(trace, pra);
            auto rd = simulateCompute(trace, dfy);
            for (std::size_t i = 0;
                 i < std::min<std::size_t>(2, rp.layers.size()); ++i) {
                early_pra += rp.layers[i].computeCycles;
                early_dfy += rd.layers[i].computeCycles;
            }
        }
        table.addRow({net.spec.name, TextTable::factor(s_pra),
                      TextTable::factor(s_dfy),
                      TextTable::factor(s_dfy / s_pra),
                      TextTable::factor(early_pra / early_dfy)});
        pra_col.push_back(s_pra);
        dfy_col.push_back(s_dfy);
    }
    table.addRow({"geomean", TextTable::factor(geometricMean(pra_col)),
                  TextTable::factor(geometricMean(dfy_col)),
                  TextTable::factor(geometricMean(dfy_col) /
                                    geometricMean(pra_col)),
                  ""});
    table.print();

    std::printf("Paper shape: Diffy ~6.1x over VAA and ~1.16x over PRA "
                "on these models — smaller than on CI-DNNs but never a "
                "slowdown; the early layers (still image-like) gain "
                "over 2x versus PRA.\n");
    return 0;
}
