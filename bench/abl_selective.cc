/**
 * @file
 * Ablation (paper Section IV-A, last paragraph): per-layer *selective*
 * differential convolution. The paper reports that profiling each
 * layer and reverting to raw convolution where deltas hurt removes
 * the few per-layer slowdowns versus PRA but improves the total by
 * under 1%. This bench reproduces that comparison: always-raw
 * (PRA-equivalent), always-differential, and the Auto per-layer mode,
 * plus the count of layers where raw mode wins.
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);
    AcceleratorConfig cfg = defaultDiffyConfig();

    TextTable table("Ablation: per-layer selective differential mode "
                    "(compute cycles, lower is better)");
    table.setHeader({"Network", "Raw (PRA)", "Differential", "Auto",
                     "Auto vs Diff", "Layers preferring raw"});

    std::vector<double> gains;
    for (const auto &net : traced) {
        double raw = 0.0, diff = 0.0, aut = 0.0;
        int raw_wins = 0, layer_count = 0;
        for (const auto &trace : net.traces) {
            raw += simulateDiffy(trace, cfg, DiffyMode::Raw)
                       .totalComputeCycles();
            diff += simulateDiffy(trace, cfg, DiffyMode::Differential)
                        .totalComputeCycles();
            aut += simulateDiffy(trace, cfg, DiffyMode::Auto)
                       .totalComputeCycles();
            for (const auto &layer : trace.layers) {
                double d =
                    simulateDiffyLayer(layer, cfg,
                                       DiffyMode::Differential)
                        .computeCycles;
                double r = simulateDiffyLayer(layer, cfg, DiffyMode::Raw)
                               .computeCycles;
                raw_wins += r < d;
                ++layer_count;
            }
        }
        double gain = diff / aut;
        gains.push_back(gain);
        table.addRow({net.spec.name, TextTable::num(raw, 0),
                      TextTable::num(diff, 0), TextTable::num(aut, 0),
                      TextTable::factor(gain, 3),
                      std::to_string(raw_wins) + "/" +
                          std::to_string(layer_count)});
    }
    table.addRow({"geomean", "", "", "",
                  TextTable::factor(geometricMean(gains), 3), ""});
    table.print();

    std::printf("Paper shape: selective mode removes isolated per-layer "
                "slowdowns (JointNet, VDSR; at most ~10%% per layer) "
                "but changes the totals by under 1%%.\n");
    return 0;
}
