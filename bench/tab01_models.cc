/**
 * @file
 * Tables I, II and IV: the CI-DNN model suite, the dataset catalog
 * substitute, and the accelerator configurations under study.
 */

#include <cstdio>

#include "arch/config.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);

    TextTable tab1("Table I: CI-DNNs studied");
    tab1.setHeader({"Network", "Conv layers", "ReLU layers",
                    "Max filter (KB)", "Max layer filters (KB)",
                    "Total weights (KB)"});
    for (const auto &net : ciDnnSuite()) {
        tab1.addRow({net.name, std::to_string(net.convLayerCount()),
                     std::to_string(net.reluLayerCount()),
                     TextTable::num(net.maxFilterBytes() / 1024.0, 2),
                     std::to_string(net.maxLayerWeightBytes() / 1024),
                     std::to_string(net.totalWeightBytes() / 1024)});
    }
    tab1.print();

    TextTable tab2("Table II: input datasets (procedural substitutes)");
    tab2.setHeader({"Dataset", "Paper samples", "Scenes here",
                    "Description"});
    for (const auto &ds : datasetCatalog(params.scenes, params.crop)) {
        tab2.addRow({ds.name, std::to_string(ds.paperSamples),
                     std::to_string(ds.scenes.size()), ds.description});
    }
    tab2.print();

    TextTable tab4("Table IV: accelerator configurations");
    tab4.setHeader({"Design", "Configuration"});
    for (const auto &cfg : {defaultVaaConfig(), defaultPraConfig(),
                            defaultDiffyConfig()}) {
        tab4.addRow({to_string(cfg.design), cfg.describe()});
    }
    tab4.print();

    std::printf("All designs normalized to 1024 16x16b MACs/cycle at "
                "1 GHz.\n");
    return 0;
}
