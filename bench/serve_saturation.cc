/**
 * @file
 * Serving saturation bench (DESIGN.md §13).
 *
 * Sweeps offered load over a StreamServer: each grid point runs
 * --rounds inject-then-drain rounds at that arrival rate, and the
 * table reports the deterministic admission counters — offered,
 * admitted, rejected (backpressure drops), served — plus the
 * temporal-delta work ablation (temporal vs raw Booth terms, codec
 * bits per value). Counters are exact functions of the seeded arrival
 * process: the table is byte-identical at any --threads value, which
 * the CI determinism gate diffs.
 *
 * Wall-clock results — served throughput and per-stream p50/p99 from
 * the obs latency histograms — go to the JSON artifact (--out FILE),
 * never stdout.
 *
 * Quickstart:
 *   serve_saturation --streams 4 --offered 1,2,4,8,16 --out curve.json
 *
 * --alloc-gate switches the binary into the steady-state allocation
 * gate (DESIGN.md §16): --warmup-rounds round-robin rounds warm every
 * stream's arena, then --rounds more run with the buffer pool in
 * steady state. The process exits nonzero if the pool fetched any
 * heap block after warmup (`pool.allocs_steady_state` > 0). A
 * counting operator-new shim tallies all other heap traffic in the
 * steady window for the JSON artifact.
 */

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/cli.hh"
#include "common/table.hh"
#include "serve/saturation.hh"

using namespace diffy;

namespace
{

/**
 * Counting operator-new shim. Disabled (pass-through) until the gate
 * flips g_countAllocs at the steady-state boundary; the counters then
 * tally every global allocation — the observational half of the gate
 * report. malloc/free everywhere so any new/delete pairing is safe.
 */
std::atomic<bool> g_countAllocs{false};
std::atomic<std::uint64_t> g_opNewCalls{0};
std::atomic<std::uint64_t> g_opNewBytes{0};

void *
countedAlloc(std::size_t n, std::size_t align)
{
    if (g_countAllocs.load(std::memory_order_relaxed)) {
        g_opNewCalls.fetch_add(1, std::memory_order_relaxed);
        g_opNewBytes.fetch_add(n, std::memory_order_relaxed);
    }
    if (n == 0)
        n = 1;
    void *p = nullptr;
    if (align > alignof(std::max_align_t)) {
        if (posix_memalign(&p, align, n) != 0)
            p = nullptr;
    } else {
        p = std::malloc(n);
    }
    return p;
}

} // namespace

void *
operator new(std::size_t n)
{
    void *p = countedAlloc(n, 0);
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t align)
{
    void *p = countedAlloc(n, static_cast<std::size_t>(align));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t n, std::align_val_t align)
{
    return ::operator new(n, align);
}

void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    return countedAlloc(n, 0);
}

void *
operator new[](std::size_t n, const std::nothrow_t &) noexcept
{
    return countedAlloc(n, 0);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept { std::free(p); }
void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}
void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

namespace
{

/** Parse a comma-separated list of positive ints ("1,2,4"). */
std::vector<int>
parseGrid(const std::string &text)
{
    std::vector<int> grid;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        const std::string tok = text.substr(pos, comma - pos);
        if (tok.empty())
            throw std::invalid_argument(
                "--offered: empty entry in list '" + text + "'");
        std::size_t used = 0;
        int v = 0;
        try {
            v = std::stoi(tok, &used);
        } catch (const std::exception &) {
            used = 0; // fall through to the named diagnostic
        }
        if (used != tok.size())
            throw std::invalid_argument(
                "--offered expects a comma-separated int list, got '" +
                tok + "'");
        grid.push_back(v);
        pos = comma + 1;
    }
    return grid;
}

SaturationOptions
optionsFromCli(const CliArgs &args)
{
    SaturationOptions opts;
    opts.serve.network = args.getString("net", "MicroServe");
    opts.serve.streams = static_cast<int>(args.getInt("streams", 4));
    opts.serve.queueCapacity =
        static_cast<int>(args.getInt("queue-cap", 8));
    opts.serve.batchMax = static_cast<int>(args.getInt("batch", 4));
    opts.serve.threads = static_cast<int>(args.getInt("threads", 0));
    opts.serve.reanchorInterval =
        static_cast<int>(args.getInt("reanchor", 16));
    const int crop = static_cast<int>(args.getInt("crop", 32));
    opts.serve.frameHeight = crop;
    opts.serve.frameWidth = crop;
    opts.serve.seed =
        static_cast<std::uint64_t>(args.getInt("seed", 1));
    opts.serve.motion =
        motionKindFromString(args.getString("motion", "pan"));
    opts.serve.amplitude = static_cast<int>(args.getInt("amplitude", 4));
    opts.serve.verifyOracle = args.has("verify-oracle");
    opts.rounds = static_cast<int>(args.getInt("rounds", 8));
    opts.arrivalSeed =
        static_cast<std::uint64_t>(args.getInt("arrival-seed", 42));
    opts.offeredGrid = parseGrid(args.getString("offered", "1,2,4,8,16"));
    opts.validate();
    return opts;
}

/**
 * Steady-state allocation gate mode. Stdout carries exactly one
 * deterministic line (the gauge value); the run-dependent operator-new
 * tallies go to the JSON artifact only.
 */
int
runGateMode(const CliArgs &args, const SaturationOptions &opts)
{
    const int warmup =
        static_cast<int>(args.getInt("warmup-rounds", 4));
    AllocationGateReport report;
    try {
        report = runAllocationGate(
            opts.serve, warmup, opts.rounds,
            [] { g_countAllocs.store(true, std::memory_order_relaxed); });
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    g_countAllocs.store(false, std::memory_order_relaxed);
    report.opNewCalls = g_opNewCalls.load(std::memory_order_relaxed);
    report.opNewBytes = g_opNewBytes.load(std::memory_order_relaxed);

    std::printf("pool.allocs_steady_state %llu\n",
                static_cast<unsigned long long>(report.steadyPoolFetches));

    const std::string out = args.getString("out", "");
    if (!out.empty()) {
        std::ofstream os(out);
        if (!os) {
            std::fprintf(stderr, "error: cannot open %s\n", out.c_str());
            return 1;
        }
        writeAllocationGateJson(report, opts.serve, os);
    }
    if (!report.passed()) {
        std::fprintf(stderr,
                     "error: %llu pool heap fetches after warmup "
                     "(steady state must be allocation-free)\n",
                     static_cast<unsigned long long>(
                         report.steadyPoolFetches));
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliArgs args(argc, argv, {"verify-oracle", "alloc-gate"});
    SaturationOptions opts;
    try {
        opts = optionsFromCli(args);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }

    if (args.has("alloc-gate"))
        return runGateMode(args, opts);

    const SaturationCurve curve = runSaturation(opts);

    TextTable table("Serving saturation: " + opts.serve.network + " x " +
                    std::to_string(opts.serve.streams) + " streams (cap " +
                    std::to_string(opts.serve.queueCapacity) + ", batch " +
                    std::to_string(opts.serve.batchMax) + ", reanchor " +
                    std::to_string(opts.serve.reanchorInterval) + ")");
    table.setHeader({"offer/rnd", "offered", "admitted", "rejected",
                     "served", "failed", "anchor%", "tmp/raw", "bits/val"});
    for (const SaturationPoint &p : curve.points) {
        const double anchorPct =
            p.layers ? 100.0 * static_cast<double>(p.anchoredLayers) /
                           static_cast<double>(p.layers)
                     : 0.0;
        const double termRatio =
            p.rawTerms ? static_cast<double>(p.temporalTerms) /
                             static_cast<double>(p.rawTerms)
                       : 0.0;
        const double bitsPerValue =
            p.values ? static_cast<double>(p.codecBits) /
                           static_cast<double>(p.values)
                     : 0.0;
        table.addRow({std::to_string(p.offeredPerRound),
                      std::to_string(p.offered),
                      std::to_string(p.admitted),
                      std::to_string(p.rejected),
                      std::to_string(p.served),
                      std::to_string(p.failed),
                      TextTable::num(anchorPct, 1),
                      TextTable::num(termRatio, 3),
                      TextTable::num(bitsPerValue, 2)});
    }
    table.print();

    const std::string out = args.getString("out", "");
    if (!out.empty()) {
        std::ofstream os(out);
        if (!os) {
            std::fprintf(stderr, "error: cannot open %s\n", out.c_str());
            return 1;
        }
        writeSaturationJson(curve, os);
    }
    return 0;
}
