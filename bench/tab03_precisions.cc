/**
 * @file
 * Table III: profile-derived per-layer activation precisions for the
 * CI-DNN suite, plus the per-layer dynamic-group and delta-group
 * average widths that the RawD16 / DeltaD16 schemes achieve.
 */

#include <cstdio>
#include <sstream>

#include "analysis/precision.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);

    TextTable table("Table III: profiled per-layer activation precisions");
    table.setHeader({"Network", "Per-layer precisions (bits)"});
    for (const auto &net : traced) {
        PrecisionProfiler prof;
        for (const auto &trace : net.traces)
            prof.addTrace(trace);
        std::ostringstream row;
        auto profile = prof.profile();
        for (std::size_t i = 0; i < profile.size(); ++i)
            row << (i ? "-" : "") << profile[i];
        table.addRow({net.spec.name, row.str()});
    }
    table.print();

    TextTable dynamic("Average bits/value under dynamic group precision");
    dynamic.setHeader({"Network", "RawD16 (payload)", "DeltaD16 (payload)"});
    for (const auto &net : traced) {
        double raw_bits = 0.0, delta_bits = 0.0, layers = 0.0;
        for (const auto &trace : net.traces) {
            for (const auto &layer : trace.layers) {
                raw_bits += dynamicGroupBits(layer.imap, 16);
                delta_bits += dynamicGroupBitsDeltas(layer.imap, 16);
                layers += 1.0;
            }
        }
        dynamic.addRow({net.spec.name,
                        TextTable::num(raw_bits / layers),
                        TextTable::num(delta_bits / layers)});
    }
    dynamic.print();
    std::printf("Paper shape: profiled precisions ~7-13 bits; deltas "
                "need fewer bits than raw values everywhere.\n");
    return 0;
}
