/**
 * @file
 * Fig 11: performance of PRA and Diffy normalized to VAA at HD over a
 * DDR4-3200 interface, under four off-chip compression assumptions:
 * NoCompression, Profiled, DeltaD16 and Ideal (infinite bandwidth).
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);
    MemTech mem = experimentMemTech(params);

    const Compression schemes[] = {Compression::None,
                                   Compression::Profiled,
                                   Compression::DeltaD16,
                                   Compression::Ideal};

    AcceleratorConfig vaa = defaultVaaConfig();

    // Flatten the design x network x scheme grid into sweep cells;
    // sweepCells() reduces in cell order, so the tables below are
    // byte-identical at any --threads count.
    const Design designs[] = {Design::Pra, Design::Diffy};
    const std::size_t n_schemes = std::size(schemes);
    const std::size_t n_cells =
        std::size(designs) * traced.size() * n_schemes;
    std::vector<double> speedups =
        sweepCells(params, n_cells, [&](SweepJob &job) {
            std::size_t si = job.index % n_schemes;
            std::size_t ni = (job.index / n_schemes) % traced.size();
            Design design = designs[job.index / (n_schemes * traced.size())];
            AcceleratorConfig cfg = design == Design::Pra
                                        ? defaultPraConfig()
                                        : defaultDiffyConfig();
            cfg.compression = schemes[si];
            return speedupOver(traced[ni], cfg, vaa, mem, params);
        });

    std::size_t cell = 0;
    for (Design design : designs) {
        TextTable table("Fig 11: " + to_string(design) +
                        " speedup over VAA (" + mem.label() + ", " +
                        std::to_string(params.frameWidth) + "x" +
                        std::to_string(params.frameHeight) + ")");
        std::vector<std::string> header = {"Network"};
        for (auto s : schemes)
            header.push_back(to_string(s));
        table.setHeader(header);

        std::vector<std::vector<double>> columns(n_schemes);
        for (const auto &net : traced) {
            std::vector<std::string> row = {net.spec.name};
            for (std::size_t si = 0; si < n_schemes; ++si) {
                double speedup = speedups[cell++];
                row.push_back(TextTable::factor(speedup));
                columns[si].push_back(speedup);
            }
            table.addRow(row);
        }
        std::vector<std::string> mean_row = {"geomean"};
        for (auto &col : columns)
            mean_row.push_back(TextTable::factor(geometricMean(col)));
        table.addRow(mean_row);
        table.print();
    }

    std::printf("Paper shape: PRA ~5x and Diffy ~7.1x over VAA with "
                "DeltaD16; compression is needed to reach the Ideal "
                "speedups; VDSR gains the most.\n");
    return 0;
}
