/**
 * @file
 * Fig 18: scaling for real-time HD — the minimum number of Diffy
 * tiles and the weakest memory configuration that reach 30 FPS at
 * 1920x1080, per network and per compression scheme.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);
    const double target_fps = 30.0;

    const Compression schemes[] = {Compression::None,
                                   Compression::Profiled,
                                   Compression::DeltaD16};
    const int tile_ladder[] = {4, 8, 12, 16, 24, 32, 48, 64};
    auto mem_ladder = fig18MemoryLadder();

    TextTable table("Fig 18: minimum Diffy configuration for 30 FPS HD");
    table.setHeader({"Network", "Scheme", "Tiles", "Memory"});

    for (const auto &net : traced) {
        for (auto scheme : schemes) {
            bool found = false;
            for (int tiles : tile_ladder) {
                for (const auto &mem : mem_ladder) {
                    AcceleratorConfig cfg = defaultDiffyConfig();
                    cfg.tiles = tiles;
                    cfg.compression = scheme;
                    cfg.spatialWorkSharing = true; // scaled-up configs
                    double fps = averageFps(net, cfg, mem, params);
                    if (fps >= target_fps) {
                        table.addRow({net.spec.name, to_string(scheme),
                                      std::to_string(tiles),
                                      mem.label()});
                        found = true;
                        break;
                    }
                }
                if (found)
                    break;
            }
            if (!found) {
                table.addRow({net.spec.name, to_string(scheme), ">64",
                              "beyond HBM3"});
            }
        }
    }
    table.print();

    std::printf("Paper shape: DnCNN is the most demanding (32 tiles + "
                "HBM-class memory); FFDNet and JointNet reach 30 FPS "
                "with 8 tiles on dual-channel DDR3-class nodes under "
                "DeltaD16; compression lowers the memory bar at every "
                "tile count.\n");
    return 0;
}
