/**
 * @file
 * Fig 15: Diffy speedup over VAA as the off-chip memory technology
 * sweeps from LPDDR3-1600 to HBM2, for each compression scheme —
 * demonstrating that delta compression sustains the gains on weaker
 * memory nodes.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);

    const Compression schemes[] = {Compression::None,
                                   Compression::Profiled,
                                   Compression::DeltaD16};

    for (const auto &net : traced) {
        TextTable table("Fig 15: Diffy speedup over VAA, " +
                        net.spec.name);
        std::vector<std::string> header = {"Memory"};
        for (auto s : schemes)
            header.push_back(to_string(s));
        header.push_back("of max (DeltaD16)");
        table.setHeader(header);

        // VAA reference on the same memory node; max-possible uses
        // ideal bandwidth.
        AcceleratorConfig ideal_cfg = defaultDiffyConfig();
        ideal_cfg.compression = Compression::Ideal;
        double ideal_fps = averageFps(
            net, ideal_cfg, memTechByName("HBM2"), params);

        for (const auto &mem : fig15MemorySweep()) {
            std::vector<std::string> row = {mem.label()};
            AcceleratorConfig vaa = defaultVaaConfig();
            double delta_fps = 0.0;
            for (auto scheme : schemes) {
                AcceleratorConfig cfg = defaultDiffyConfig();
                cfg.compression = scheme;
                double speedup =
                    speedupOver(net, cfg, vaa, mem, params);
                if (scheme == Compression::DeltaD16)
                    delta_fps = averageFps(net, cfg, mem, params);
                row.push_back(TextTable::factor(speedup));
            }
            row.push_back(TextTable::percent(delta_fps / ideal_fps));
            table.addRow(row);
        }
        table.print();
    }

    std::printf("Paper shape: without compression only HBM2 avoids "
                "slowdowns; DeltaD16 keeps every network near its "
                "maximum from LPDDR4-3200 up, and within ~2%% for most "
                "already at LPDDR3E-2133.\n");
    return 0;
}
