/**
 * @file
 * Fig 1: per-network entropy of the activation stream — H(A), the
 * conditional entropy H(A|A') given the X-adjacent activation, and
 * the delta entropy H(D) — measured over the dataset catalog.
 */

#include <cstdio>

#include "analysis/entropy.hh"
#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);

    TextTable table("Fig 1: activation information content (bits/value)");
    table.setHeader({"Network", "H(A)", "H(A|A')", "H(D)",
                     "H(A)/H(A|A')", "H(A)/H(D)"});

    double sum_cond_ratio = 0.0;
    double sum_delta_ratio = 0.0;
    for (const auto &net : traced) {
        EntropyAccumulator acc;
        for (const auto &trace : net.traces)
            acc.addTrace(trace);
        table.addRow({net.spec.name, TextTable::num(acc.valueEntropy()),
                      TextTable::num(acc.conditionalEntropy()),
                      TextTable::num(acc.deltaEntropy()),
                      TextTable::factor(acc.conditionalRatio()),
                      TextTable::factor(acc.deltaRatio())});
        sum_cond_ratio += acc.conditionalRatio();
        sum_delta_ratio += acc.deltaRatio();
    }
    table.addRow({"average", "", "", "",
                  TextTable::factor(sum_cond_ratio / traced.size()),
                  TextTable::factor(sum_delta_ratio / traced.size())});
    table.print();

    std::printf("Paper shape: compression potential ~1.29x (IRCNN) to "
                "~1.62x (VDSR); H(A|A') and H(D) nearly identical on "
                "average (~1.4x).\n");
    return 0;
}
