/**
 * @file
 * Extension studies beyond the paper's figures:
 *
 *  1. Differential Dynamic Stripes — the related-work section
 *     suggests DS "could potentially benefit from differential
 *     convolution" since deltas need fewer bits. We measure the full
 *     ladder VAA -> DS -> DS+delta -> PRA -> Diffy at equal peak
 *     throughput.
 *  2. Delta direction — Section III-C notes Eq. 4 applies along H or
 *     W; we compare the X and Y delta streams' work on the CI-DNN
 *     suite (natural images are roughly isotropic, so both should
 *     save similar work).
 */

#include <cstdio>

#include "common/stats.hh"
#include "common/table.hh"
#include "core/differential_conv.hh"
#include "core/experiment.hh"
#include "sim/stripes.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);

    // --- Study 1: the accelerator ladder -------------------------
    TextTable ladder("Extension: compute speedup over VAA (ideal "
                     "memory, equal peak throughput)");
    ladder.setHeader({"Network", "DS", "DS+delta", "PRA", "Diffy"});

    AcceleratorConfig vaa_cfg = defaultVaaConfig();
    AcceleratorConfig grid = defaultPraConfig();
    AcceleratorConfig diffy_cfg = defaultDiffyConfig();

    std::vector<double> ds_col, dsd_col, pra_col, dfy_col;
    for (const auto &net : traced) {
        double vaa = 0.0, ds = 0.0, dsd = 0.0, pra = 0.0, dfy = 0.0;
        for (const auto &trace : net.traces) {
            vaa += simulateCompute(trace, vaa_cfg).totalComputeCycles();
            ds += simulateStripes(trace, grid).totalComputeCycles();
            dsd += simulateStripes(trace, grid, true)
                       .totalComputeCycles();
            pra += simulateCompute(trace, grid).totalComputeCycles();
            dfy +=
                simulateCompute(trace, diffy_cfg).totalComputeCycles();
        }
        ladder.addRow({net.spec.name, TextTable::factor(vaa / ds),
                       TextTable::factor(vaa / dsd),
                       TextTable::factor(vaa / pra),
                       TextTable::factor(vaa / dfy)});
        ds_col.push_back(vaa / ds);
        dsd_col.push_back(vaa / dsd);
        pra_col.push_back(vaa / pra);
        dfy_col.push_back(vaa / dfy);
    }
    ladder.addRow({"geomean", TextTable::factor(geometricMean(ds_col)),
                   TextTable::factor(geometricMean(dsd_col)),
                   TextTable::factor(geometricMean(pra_col)),
                   TextTable::factor(geometricMean(dfy_col))});
    ladder.print();
    std::printf("Expected: DS < PRA (widths exceed term counts), and "
                "the delta stream lifts DS just as it lifts PRA into "
                "Diffy — confirming the paper's related-work "
                "hypothesis.\n\n");

    // --- Study 2: delta direction --------------------------------
    TextTable direction("Extension: X vs Y delta-stream work "
                        "(effectual terms per MAC, middle layer)");
    direction.setHeader({"Network", "Direct", "X-deltas", "Y-deltas"});
    for (const auto &net : traced) {
        const auto &trace = net.traces.front();
        const auto &lt = trace.layers[trace.layers.size() / 2];
        auto d = countDirectWork(lt.imap, lt.weights, lt.spec.stride,
                                 lt.spec.dilation);
        auto x = countDifferentialWork(lt.imap, lt.weights,
                                       lt.spec.stride, lt.spec.dilation);
        auto y = countDifferentialWorkY(lt.imap, lt.weights,
                                        lt.spec.stride,
                                        lt.spec.dilation);
        auto per_mac = [](const ConvWorkCount &wc) {
            return static_cast<double>(wc.multiplierTerms) /
                   static_cast<double>(wc.macs);
        };
        direction.addRow({net.spec.name, TextTable::num(per_mac(d)),
                          TextTable::num(per_mac(x)),
                          TextTable::num(per_mac(y))});
    }
    direction.print();
    std::printf("Expected: X and Y savings are close (isotropic image "
                "statistics) — the row dataflow choice is about buffer "
                "layout, not about which direction correlates.\n");
    return 0;
}
