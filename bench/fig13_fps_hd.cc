/**
 * @file
 * Fig 13: absolute HD (1920x1080) frame rates of VAA, PRA and Diffy
 * under each off-chip compression scheme.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);
    MemTech mem = experimentMemTech(params);

    const Compression schemes[] = {Compression::None,
                                   Compression::Profiled,
                                   Compression::DeltaD16};

    TextTable table("Fig 13: FPS at " + std::to_string(params.frameWidth)
                    + "x" + std::to_string(params.frameHeight) + " (" +
                    mem.label() + ")");
    std::vector<std::string> header = {"Network"};
    for (Design d : {Design::Vaa, Design::Pra, Design::Diffy}) {
        for (auto s : schemes)
            header.push_back(to_string(d) + "/" + to_string(s));
    }
    table.setHeader(header);

    for (const auto &net : traced) {
        std::vector<std::string> row = {net.spec.name};
        for (Design design : {Design::Vaa, Design::Pra, Design::Diffy}) {
            for (auto scheme : schemes) {
                AcceleratorConfig cfg =
                    design == Design::Vaa   ? defaultVaaConfig()
                    : design == Design::Pra ? defaultPraConfig()
                                            : defaultDiffyConfig();
                cfg.compression = scheme;
                row.push_back(TextTable::num(
                    averageFps(net, cfg, mem, params), 2));
            }
        }
        table.addRow(row);
    }
    table.print();

    std::printf("Paper shape: VAA 0.7-3.9 FPS, PRA 2.6-18.9, Diffy "
                "3.9-28.5 with DeltaD16; only JointNet approaches "
                "real-time 30 FPS at this configuration.\n");
    return 0;
}
