/**
 * @file
 * Fig 17: absolute Diffy frame rates across lower input resolutions
 * (0.1 to 1 megapixel), showing where real-time processing (30 FPS)
 * becomes feasible with the default 4-tile configuration.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/experiment.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);
    MemTech mem = experimentMemTech(params);
    AcceleratorConfig cfg = defaultDiffyConfig();

    struct Res { int w, h; };
    const Res resolutions[] = {{320, 240},  {480, 320},  {640, 480},
                               {720, 576},  {800, 600},  {1024, 768},
                               {1280, 720}};

    TextTable table("Fig 17: Diffy FPS vs input resolution (" +
                    mem.label() + ")");
    std::vector<std::string> header = {"Resolution", "MP"};
    for (const auto &net : traced)
        header.push_back(net.spec.name);
    table.setHeader(header);

    for (const auto &res : resolutions) {
        ExperimentParams p = params;
        p.frameWidth = res.w;
        p.frameHeight = res.h;
        std::vector<std::string> row = {
            std::to_string(res.w) + "x" + std::to_string(res.h),
            TextTable::num(res.w * res.h / 1e6, 2)};
        for (const auto &net : traced)
            row.push_back(TextTable::num(averageFps(net, cfg, mem, p), 1));
        table.addRow(row);
    }
    table.print();

    std::printf("Paper shape: real-time 30 FPS for all models below "
                "~0.25MP except DnCNN (~19 FPS at 0.4MP); FPS falls "
                "roughly inversely with pixel count.\n");
    return 0;
}
