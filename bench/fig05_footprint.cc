/**
 * @file
 * Fig 5: off-chip imap footprint of six storage schemes, normalized
 * to fixed 16-bit storage, per CI-DNN.
 */

#include <cstdio>

#include "common/table.hh"
#include "core/experiment.hh"
#include "encode/footprint.hh"

using namespace diffy;

int
main(int argc, char **argv)
{
    ExperimentParams params = ExperimentParams::fromCliOrExit(argc, argv);
    auto traced = traceSuite(ciDnnSuite(), params);

    const Compression schemes[] = {
        Compression::None,   Compression::Rlez,   Compression::Rle,
        Compression::Profiled, Compression::RawD16, Compression::DeltaD16,
    };

    TextTable table("Fig 5: off-chip imap footprint (normalized to 16b)");
    std::vector<std::string> header = {"Network"};
    for (auto s : schemes)
        header.push_back(to_string(s));
    table.setHeader(header);

    for (const auto &net : traced) {
        std::vector<std::string> row = {net.spec.name};
        for (auto scheme : schemes) {
            double num = 0.0, den = 0.0;
            for (const auto &trace : net.traces) {
                NetworkFootprint fp = measureFootprint(trace, scheme);
                num += fp.totalBits();
                for (const auto &layer : fp.layers)
                    den += static_cast<double>(layer.values) * 16.0;
            }
            row.push_back(TextTable::percent(num / den));
        }
        table.addRow(row);
    }
    table.print();
    std::printf("Paper shape: Profiled ~47-61%%, RawD16 ~10-39%%, "
                "DeltaD16 ~8-30%%; RLE variants help only VDSR.\n");
    return 0;
}
