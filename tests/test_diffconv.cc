/**
 * @file
 * Property tests for Differential Convolution: bit-exact equivalence
 * with direct fixed-point convolution across strides, dilations,
 * kernel sizes and value distributions, plus the work-reduction
 * property on correlated inputs.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "core/differential_conv.hh"
#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/models.hh"

namespace diffy
{
namespace
{

TensorI16
randomImap(std::uint64_t seed, int c, int h, int w, int bound = 2000)
{
    Rng rng(seed);
    TensorI16 t(c, h, w);
    for (std::size_t i = 0; i < t.size(); ++i) {
        t.data()[i] = static_cast<std::int16_t>(
            static_cast<std::int32_t>(rng.below(2 * bound)) - bound);
    }
    return t;
}

FilterBankI16
randomBank(std::uint64_t seed, int k_filters, int c, int k, int bound = 300)
{
    Rng rng(seed);
    FilterBankI16 bank(k_filters, c, k, k);
    for (std::size_t i = 0; i < bank.size(); ++i) {
        bank.data()[i] = static_cast<std::int16_t>(
            static_cast<std::int32_t>(rng.below(2 * bound)) - bound);
    }
    return bank;
}

struct ConvCase
{
    int channels;
    int height;
    int width;
    int filters;
    int kernel;
    int stride;
    int dilation;
};

class DifferentialExactness : public ::testing::TestWithParam<ConvCase>
{};

TEST_P(DifferentialExactness, MatchesDirectBitExactly)
{
    const ConvCase &cc = GetParam();
    TensorI16 imap = randomImap(
        17 + static_cast<std::uint64_t>(cc.stride * 100 + cc.dilation),
        cc.channels, cc.height, cc.width);
    FilterBankI16 bank = randomBank(29, cc.filters, cc.channels, cc.kernel);
    TensorI32 direct = convolveDirect(imap, bank, cc.stride, cc.dilation);
    TensorI32 diff =
        convolveDifferential(imap, bank, cc.stride, cc.dilation);
    EXPECT_EQ(direct, diff);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, DifferentialExactness,
    ::testing::Values(
        ConvCase{1, 8, 8, 1, 3, 1, 1},    // minimal
        ConvCase{3, 12, 16, 4, 3, 1, 1},  // CI-DNN first layer shape
        ConvCase{8, 10, 10, 6, 3, 2, 1},  // stride 2
        ConvCase{4, 16, 16, 2, 3, 1, 4},  // IRCNN dilation 4
        ConvCase{2, 14, 14, 3, 5, 1, 1},  // 5x5 kernel
        ConvCase{5, 11, 13, 2, 3, 3, 1},  // odd sizes + stride 3
        ConvCase{2, 23, 9, 2, 11, 4, 1},  // AlexNet-like 11x11 s4
        ConvCase{1, 1, 32, 1, 3, 1, 1},   // single-row image
        ConvCase{1, 32, 1, 1, 3, 1, 1},   // single-column image
        ConvCase{6, 9, 9, 8, 1, 1, 1}));  // 1x1 kernels

TEST(DifferentialExactness, ExtremeValuesStayExact)
{
    // All-max / all-min imaps stress the accumulator paths.
    TensorI16 imap(2, 6, 6, 32767);
    for (int x = 0; x < 6; x += 2)
        imap.at(1, 3, x) = -32768;
    FilterBankI16 bank = randomBank(31, 3, 2, 3, 400);
    EXPECT_EQ(convolveDirect(imap, bank, 1, 1),
              convolveDifferential(imap, bank, 1, 1));
}

TEST(DifferentialExactness, RealTraceLayers)
{
    SceneParams p;
    p.kind = SceneKind::Texture;
    p.width = 20;
    p.height = 20;
    p.seed = 3;
    NetworkTrace trace = runNetwork(makeIrCnn(), renderScene(p));
    for (const auto &lt : trace.layers) {
        EXPECT_EQ(convolveDirect(lt.imap, lt.weights, lt.spec.stride,
                                 lt.spec.dilation),
                  convolveDifferential(lt.imap, lt.weights,
                                       lt.spec.stride, lt.spec.dilation))
            << lt.spec.name;
    }
}

TEST(DifferentialWork, FewerTermsOnCorrelatedImaps)
{
    SceneParams p;
    p.kind = SceneKind::Nature;
    p.width = 24;
    p.height = 24;
    p.seed = 5;
    NetworkTrace trace = runNetwork(makeDnCnn(), renderScene(p));
    const auto &lt = trace.layers[2];
    ConvWorkCount direct = countDirectWork(lt.imap, lt.weights,
                                           lt.spec.stride,
                                           lt.spec.dilation);
    ConvWorkCount diff = countDifferentialWork(lt.imap, lt.weights,
                                               lt.spec.stride,
                                               lt.spec.dilation);
    EXPECT_EQ(direct.macs, diff.macs);
    EXPECT_LT(diff.multiplierTerms, direct.multiplierTerms);
}

TEST(DifferentialWork, EqualOnUncorrelatedNoise)
{
    // On white noise the delta of two independent values is wider than
    // either; differential work must NOT be lower by construction.
    TensorI16 imap = randomImap(99, 4, 16, 16, 8000);
    FilterBankI16 bank = randomBank(7, 2, 4, 3);
    ConvWorkCount direct = countDirectWork(imap, bank, 1, 1);
    ConvWorkCount diff = countDifferentialWork(imap, bank, 1, 1);
    EXPECT_GT(static_cast<double>(diff.multiplierTerms),
              0.9 * static_cast<double>(direct.multiplierTerms));
}

TEST(DifferentialWork, ConstantImapCostsAlmostNothing)
{
    TensorI16 imap(4, 8, 16, 512);
    FilterBankI16 bank = randomBank(3, 2, 4, 3);
    ConvWorkCount diff = countDifferentialWork(imap, bank, 1, 1);
    ConvWorkCount direct = countDirectWork(imap, bank, 1, 1);
    // Only first-window taps and padding-boundary taps carry terms.
    EXPECT_LT(diff.multiplierTerms, direct.multiplierTerms / 3);
}

TEST(DifferentialConv, MismatchedShapesThrow)
{
    TensorI16 imap(3, 8, 8);
    FilterBankI16 bank(2, 4, 3, 3);
    EXPECT_THROW(convolveDirect(imap, bank, 1, 1), std::invalid_argument);
    EXPECT_THROW(convolveDifferential(imap, bank, 1, 1),
                 std::invalid_argument);
}

} // namespace
} // namespace diffy
