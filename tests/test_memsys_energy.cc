/**
 * @file
 * Tests for the footprint/traffic accounting, memory-system overlap
 * model, arch tables and the energy/area model.
 */

#include <gtest/gtest.h>

#include "arch/config.hh"
#include "arch/memtech.hh"
#include "encode/footprint.hh"
#include "energy/model.hh"
#include "image/synth.hh"
#include "nn/executor.hh"
#include "nn/models.hh"
#include "sim/runner.hh"

namespace diffy
{
namespace
{

NetworkTrace
sceneTrace(const NetworkSpec &net, int size = 24, std::uint64_t seed = 71)
{
    SceneParams p;
    p.kind = SceneKind::Nature;
    p.width = size;
    p.height = size;
    p.seed = seed;
    return runNetwork(net, renderScene(p));
}

TEST(ArchConfig, TableFourNormalization)
{
    // All designs are normalized to 1K MACs/cycle peak.
    EXPECT_DOUBLE_EQ(defaultVaaConfig().peakMacsPerCycle(), 1024.0);
    EXPECT_DOUBLE_EQ(defaultPraConfig().peakMacsPerCycle(), 1024.0);
    EXPECT_DOUBLE_EQ(defaultDiffyConfig().peakMacsPerCycle(), 1024.0);
    EXPECT_EQ(defaultVaaConfig().windowColumns, 1);
    EXPECT_EQ(defaultDiffyConfig().windowColumns, 16);
    EXPECT_EQ(defaultDiffyConfig().compression, Compression::DeltaD16);
}

TEST(ArchConfig, DescribeMentionsKeyParameters)
{
    std::string desc = defaultDiffyConfig().describe();
    EXPECT_NE(desc.find("Diffy"), std::string::npos);
    EXPECT_NE(desc.find("DeltaD16"), std::string::npos);
}

TEST(MemTech, LadderOrderingAndChannels)
{
    auto sweep = fig15MemorySweep();
    ASSERT_GE(sweep.size(), 6u);
    for (std::size_t i = 1; i < sweep.size(); ++i)
        EXPECT_GE(sweep[i].totalGBs(), sweep[i - 1].totalGBs());
    MemTech dual = memTechByName("LPDDR4-3200", 2);
    EXPECT_DOUBLE_EQ(dual.totalGBs(),
                     2.0 * memTechByName("LPDDR4-3200").totalGBs());
    EXPECT_EQ(dual.label(), "LPDDR4-3200-x2");
    EXPECT_THROW(memTechByName("DDR9-9999"), std::invalid_argument);
}

TEST(MemTech, BytesPerCycleAtGigahertz)
{
    MemTech hbm = memTechByName("HBM2");
    // 256 GB/s derated by 0.8 at 1 GHz -> 204.8 B/cycle.
    EXPECT_NEAR(hbm.bytesPerCycle(1e9), 204.8, 1e-9);
}

TEST(Footprint, NormalizedOrderingMatchesFigFive)
{
    NetworkTrace trace = sceneTrace(makeDnCnn());
    double none =
        measureFootprint(trace, Compression::None).normalizedTo16b();
    double profiled =
        measureFootprint(trace, Compression::Profiled).normalizedTo16b();
    double rawd =
        measureFootprint(trace, Compression::RawD16).normalizedTo16b();
    double deltad =
        measureFootprint(trace, Compression::DeltaD16).normalizedTo16b();
    EXPECT_DOUBLE_EQ(none, 1.0);
    EXPECT_LT(profiled, none);
    EXPECT_LT(rawd, profiled);
    EXPECT_LT(deltad, rawd);
}

TEST(Footprint, ProfileOverrideIsRespected)
{
    NetworkTrace trace = sceneTrace(makeIrCnn(), 16);
    std::vector<int> profile(trace.layers.size(), 8);
    NetworkFootprint fp =
        measureFootprint(trace, Compression::Profiled, profile);
    for (const auto &layer : fp.layers) {
        EXPECT_EQ(layer.profiledBits, 8);
        EXPECT_DOUBLE_EQ(layer.bitsPerValue, 8.0);
    }
}

TEST(Traffic, ScalesWithFrameArea)
{
    NetworkTrace trace = sceneTrace(makeIrCnn(), 16);
    double hd = frameTrafficBytes(trace, Compression::None, 1080, 1920);
    double quarter =
        frameTrafficBytes(trace, Compression::None, 540, 960);
    // Weights are constant; activations dominate at HD, so the ratio
    // sits a bit below 4.
    EXPECT_GT(hd / quarter, 3.3);
    EXPECT_LT(hd / quarter, 4.01);
}

TEST(Traffic, CompressionReducesBytes)
{
    NetworkTrace trace = sceneTrace(makeDnCnn());
    double none = frameTrafficBytes(trace, Compression::None, 1080, 1920);
    double delta =
        frameTrafficBytes(trace, Compression::DeltaD16, 1080, 1920);
    EXPECT_LT(delta, 0.6 * none);
}

TEST(Traffic, PerLayerIncludesWeights)
{
    NetworkTrace trace = sceneTrace(makeIrCnn(), 16);
    auto per_layer =
        perLayerTrafficBytes(trace, Compression::None, 64, 64);
    ASSERT_EQ(per_layer.size(), trace.layers.size());
    for (std::size_t i = 0; i < per_layer.size(); ++i) {
        EXPECT_GE(per_layer[i],
                  static_cast<double>(
                      trace.layers[i].spec.layerWeightBytes()));
    }
}

TEST(AmSizing, BaselineNearPaperTableFive)
{
    // Table V: uncompressed AM for the suite at HD is ~964KB, which
    // matches DnCNN's 64ch x 4 rows x 1920 x 16b = 960KB. Our model
    // reproduces that for DnCNN; IRCNN's dilated windows honestly
    // require buffering the dilated row extent (documented in
    // EXPERIMENTS.md), so the suite-wide worst case is larger.
    NetworkTrace dncnn = sceneTrace(makeDnCnn());
    double dncnn_kb =
        amRequiredBytes(dncnn, Compression::None, 1920) / 1024.0;
    EXPECT_GT(dncnn_kb, 700.0);
    EXPECT_LT(dncnn_kb, 1200.0);

    double worst = 0.0;
    for (const auto &net : ciDnnSuite()) {
        NetworkTrace trace = sceneTrace(net, 24);
        worst = std::max(
            worst, amRequiredBytes(trace, Compression::None, 1920));
    }
    EXPECT_LT(worst / 1024.0, 2600.0);
}

TEST(AmSizing, DeltaD16ShrinksRequirement)
{
    NetworkTrace trace = sceneTrace(makeDnCnn());
    double raw = amRequiredBytes(trace, Compression::None, 1920);
    double delta = amRequiredBytes(trace, Compression::DeltaD16, 1920);
    EXPECT_LT(delta, 0.75 * raw);
}

TEST(MemOverlap, IdealCompressionRemovesStalls)
{
    NetworkTrace trace = sceneTrace(makeDnCnn());
    AcceleratorConfig cfg = defaultDiffyConfig();
    cfg.compression = Compression::Ideal;
    MemTech slow = memTechByName("LPDDR3-1600");
    FramePerf perf = simulateFrame(trace, cfg, slow, 1080, 1920);
    for (const auto &lp : perf.layers) {
        EXPECT_DOUBLE_EQ(lp.memoryCycles, 0.0);
        EXPECT_DOUBLE_EQ(lp.stallFraction, 0.0);
    }
}

TEST(MemOverlap, SlowMemoryStallsUncompressedDiffy)
{
    NetworkTrace trace = sceneTrace(makeDnCnn());
    AcceleratorConfig cfg = defaultDiffyConfig();
    cfg.compression = Compression::None;
    MemTech slow = memTechByName("LPDDR3-1600");
    MemTech fast = memTechByName("HBM2");
    double slow_cycles =
        simulateFrame(trace, cfg, slow, 1080, 1920).totalCycles;
    double fast_cycles =
        simulateFrame(trace, cfg, fast, 1080, 1920).totalCycles;
    EXPECT_GT(slow_cycles, fast_cycles * 1.2);
}

TEST(MemOverlap, FractionsFormAPartition)
{
    NetworkTrace trace = sceneTrace(makeFfdNet());
    AcceleratorConfig cfg = defaultDiffyConfig();
    MemTech mem = memTechByName("LPDDR4-3200");
    FramePerf perf = simulateFrame(trace, cfg, mem, 1080, 1920);
    for (const auto &lp : perf.layers) {
        EXPECT_NEAR(lp.usefulFraction + lp.idleFraction +
                        lp.stallFraction,
                    1.0, 1e-9)
            << lp.layerName;
        EXPECT_GE(lp.usefulFraction, 0.0);
        EXPECT_GE(lp.idleFraction, 0.0);
        EXPECT_GE(lp.stallFraction, 0.0);
    }
}

TEST(MemOverlap, FpsInvertsWithCycles)
{
    NetworkTrace trace = sceneTrace(makeIrCnn(), 16);
    AcceleratorConfig cfg = defaultDiffyConfig();
    MemTech mem = memTechByName("DDR4-3200");
    FramePerf hd = simulateFrame(trace, cfg, mem, 1080, 1920);
    FramePerf small = simulateFrame(trace, cfg, mem, 270, 480);
    EXPECT_GT(small.fps(1e9), hd.fps(1e9) * 10.0);
}

TEST(Energy, DiffyMoreEfficientThanVaaAndPra)
{
    NetworkTrace trace = sceneTrace(makeDnCnn());
    MemTech mem = memTechByName("DDR4-3200");
    auto evaluate = [&](const AcceleratorConfig &cfg) {
        auto compute = simulateCompute(trace, cfg);
        auto perf =
            combineWithMemory(trace, compute, cfg, mem, 1080, 1920);
        auto report = buildEnergyReport(trace, compute, perf, cfg);
        return std::pair{report, perf};
    };
    auto [vaa_rep, vaa_perf] = evaluate(defaultVaaConfig());
    AcceleratorConfig pra_cfg = defaultPraConfig();
    pra_cfg.compression = Compression::DeltaD16;
    auto [pra_rep, pra_perf] = evaluate(pra_cfg);
    auto [dfy_rep, dfy_perf] = evaluate(defaultDiffyConfig());

    double dfy_vs_vaa =
        relativeEnergyEfficiency(dfy_rep, dfy_perf, vaa_rep, vaa_perf);
    double pra_vs_vaa =
        relativeEnergyEfficiency(pra_rep, pra_perf, vaa_rep, vaa_perf);
    EXPECT_GT(dfy_vs_vaa, 1.0);
    EXPECT_GT(dfy_vs_vaa, pra_vs_vaa);
}

TEST(Energy, ReportTotalsSumComponents)
{
    NetworkTrace trace = sceneTrace(makeIrCnn(), 16);
    AcceleratorConfig cfg = defaultDiffyConfig();
    MemTech mem = memTechByName("DDR4-3200");
    auto compute = simulateCompute(trace, cfg);
    auto perf = combineWithMemory(trace, compute, cfg, mem, 540, 960);
    auto report = buildEnergyReport(trace, compute, perf, cfg);
    double sum_w = 0.0, sum_a = 0.0;
    for (const auto &c : report.components) {
        sum_w += c.watts;
        sum_a += c.mm2;
    }
    EXPECT_NEAR(report.totalWatts, sum_w, 1e-9);
    EXPECT_NEAR(report.totalMm2, sum_a, 1e-9);
    EXPECT_GT(report.totalWatts, 0.0);
}

TEST(Energy, DeltaOutOnlyOnDiffy)
{
    NetworkTrace trace = sceneTrace(makeIrCnn(), 16);
    MemTech mem = memTechByName("DDR4-3200");
    for (auto make_cfg : {defaultVaaConfig, defaultPraConfig}) {
        AcceleratorConfig cfg = make_cfg();
        auto compute = simulateCompute(trace, cfg);
        auto perf =
            combineWithMemory(trace, compute, cfg, mem, 540, 960);
        auto report = buildEnergyReport(trace, compute, perf, cfg);
        for (const auto &c : report.components) {
            if (c.component == "Delta_out") {
                EXPECT_DOUBLE_EQ(c.watts, 0.0);
                EXPECT_DOUBLE_EQ(c.mm2, 0.0);
            }
        }
    }
}

TEST(Energy, AreaOrderingMatchesTableSeven)
{
    // Diffy (512KB AM) smaller than PRA (1MB AM), both above VAA-like
    // compute-only baseline ordering from the paper: VAA < Diffy < PRA.
    NetworkTrace trace = sceneTrace(makeIrCnn(), 16);
    MemTech mem = memTechByName("DDR4-3200");
    auto area = [&](const AcceleratorConfig &cfg) {
        auto compute = simulateCompute(trace, cfg);
        auto perf =
            combineWithMemory(trace, compute, cfg, mem, 540, 960);
        return buildEnergyReport(trace, compute, perf, cfg).totalMm2;
    };
    double vaa = area(defaultVaaConfig());
    double pra = area(defaultPraConfig());
    double dfy = area(defaultDiffyConfig());
    EXPECT_LT(vaa, dfy);
    EXPECT_LT(dfy, pra);
}

} // namespace
} // namespace diffy
