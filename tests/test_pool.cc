/**
 * @file
 * BufferPool / FrameArena unit tests plus the AlignedAllocator
 * propagation regression suite (DESIGN.md §16). The propagation tests
 * pin the contract that makes mixing heap- and arena-backed vectors
 * safe: copy assignment keeps the destination's resource, move
 * assignment and swap transfer it, copy construction falls back to
 * the heap.
 */

#include <cstdint>
#include <cstring>
#include <utility>

#include <gtest/gtest.h>

#include "common/aligned.hh"
#include "common/pool.hh"
#include "tensor/tensor.hh"

using namespace diffy;

TEST(BufferPool, BucketsRoundUpToPow2Min64)
{
    EXPECT_EQ(BufferPool::bucketBytes(1), 64u);
    EXPECT_EQ(BufferPool::bucketBytes(64), 64u);
    EXPECT_EQ(BufferPool::bucketBytes(65), 128u);
    EXPECT_EQ(BufferPool::bucketBytes(4096), 4096u);
    EXPECT_EQ(BufferPool::bucketBytes(4097), 8192u);
}

TEST(BufferPool, ReleasedBlocksAreReused)
{
    BufferPool pool;
    std::size_t got = 0;
    void *p = pool.acquire(100, got);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(got, 128u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % kBufferAlign, 0u);
    pool.release(p, got);

    std::size_t again = 0;
    void *q = pool.acquire(90, again); // same bucket
    EXPECT_EQ(q, p);
    EXPECT_EQ(again, 128u);
    pool.release(q, again);

    const BufferPool::Stats s = pool.stats();
    EXPECT_EQ(s.heapFetches, 1u);
    EXPECT_EQ(s.reuses, 1u);
    EXPECT_EQ(s.bytesInUse, 128u);
}

TEST(BufferPool, SteadyStateCountsOnlyPostMarkHeapFetches)
{
    BufferPool pool;
    std::size_t got = 0;
    void *p = pool.acquire(256, got);
    pool.release(p, got);
    EXPECT_EQ(pool.stats().steadyFetches, 0u);

    pool.markSteadyState();
    // Reuse from the bucket: not a heap fetch, gate stays green.
    void *q = pool.acquire(256, got);
    pool.release(q, got);
    EXPECT_EQ(pool.stats().steadyFetches, 0u);

    // A cold bucket after the mark is exactly what the gate catches.
    std::size_t big = 0;
    void *r = pool.acquire(100000, big);
    pool.release(r, big);
    EXPECT_EQ(pool.stats().steadyFetches, 1u);
}

TEST(FrameArena, BumpAllocatesAlignedAndRecycles)
{
    BufferPool pool;
    FrameArena arena(pool);
    void *a = arena.allocate(100, 32);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 32, 0u);
    arena.rewind();
    // Same storage again after a rewind: the zero-allocation loop.
    void *b = arena.allocate(100, 32);
    EXPECT_EQ(b, a);
    EXPECT_EQ(arena.slabCount(), 1u);
}

TEST(FrameArena, CheckpointRewindDropsOnlyLaterAllocations)
{
    BufferPool pool;
    FrameArena arena(pool);
    void *keep = arena.allocate(64, 32);
    std::memset(keep, 0x5A, 64);
    const FrameArena::Checkpoint cp = arena.checkpoint();

    void *scratch = arena.allocate(64, 32);
    ASSERT_NE(scratch, keep);
    arena.rewind(cp);

    // The pre-checkpoint block survives untouched...
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(static_cast<unsigned char *>(keep)[i], 0x5A);
    // ...and the post-checkpoint storage is handed out again.
    void *again = arena.allocate(64, 32);
    EXPECT_EQ(again, scratch);
}

TEST(FrameArena, OversizeRequestGetsDedicatedSlab)
{
    BufferPool pool;
    FrameArena arena(pool);
    void *small = arena.allocate(64, 32);
    ASSERT_NE(small, nullptr);
    void *big = arena.allocate(FrameArena::kSlabBytes + 1, 32);
    ASSERT_NE(big, nullptr);
    EXPECT_GE(arena.slabCount(), 2u);
    // The oversize slab is retained across rewinds like any other.
    arena.rewind();
    const std::size_t slabs = arena.slabCount();
    (void)arena.allocate(FrameArena::kSlabBytes + 1, 32);
    EXPECT_EQ(arena.slabCount(), slabs);
}

TEST(ArenaScope, InstallsAndRestoresAmbientScratch)
{
    EXPECT_EQ(&scratchResource(), &heapResource());
    BufferPool pool;
    FrameArena arena(pool);
    {
        ArenaScope scope(arena);
        EXPECT_EQ(&scratchResource(), &arena);
        AlignedVec<int> v(100, 0, scratchAlloc<int>());
        // The vector's storage really came from the arena.
        EXPECT_GT(arena.checkpoint().offset, 0u);
    }
    EXPECT_EQ(&scratchResource(), &heapResource());
}

/* ------------------------------------------------------------------ */
/* Allocator propagation regression (the POCCA/POCMA/POCS contract)    */
/* ------------------------------------------------------------------ */

TEST(AlignedAllocatorPropagation, CopyAssignKeepsDestinationResource)
{
    BufferPool pool;
    FrameArena arena(pool);
    AlignedVec<std::int16_t> persistent(8, 1); // heap-backed state
    {
        ArenaScope scope(arena);
        AlignedVec<std::int16_t> frame(64, 7, scratchAlloc<std::int16_t>());
        // POCCA = false: the assignment copies values, the destination
        // stays on the heap — safe to keep across the arena's rewind.
        persistent = frame;
    }
    arena.rewind();
    EXPECT_EQ(persistent.get_allocator().resource(), &heapResource());
    EXPECT_EQ(persistent.size(), 64u);
    for (std::int16_t v : persistent)
        EXPECT_EQ(v, 7);
}

TEST(AlignedAllocatorPropagation, MoveAssignTransfersAllocatorAndBuffer)
{
    BufferPool pool;
    FrameArena arena(pool);
    AlignedVec<std::int16_t> dst(4, 0);
    AlignedVec<std::int16_t> src(32, 3,
                                 AlignedAllocator<std::int16_t>(&arena));
    const std::int16_t *buf = src.data();
    // POCMA = true: O(1), the buffer and its deallocator move together.
    dst = std::move(src);
    EXPECT_EQ(dst.data(), buf);
    EXPECT_EQ(dst.get_allocator().resource(), &arena);
    // Must drop the adopted arena storage before the arena dies.
    dst = AlignedVec<std::int16_t>();
}

TEST(AlignedAllocatorPropagation, SwapExchangesAllocators)
{
    BufferPool pool;
    FrameArena arena(pool);
    AlignedVec<std::int16_t> a(8, 1);
    AlignedVec<std::int16_t> b(16, 2,
                               AlignedAllocator<std::int16_t>(&arena));
    const std::int16_t *pa = a.data();
    const std::int16_t *pb = b.data();
    // POCS = true: swapping unequal allocators is well-defined (no UB)
    // and keeps each buffer paired with the resource that made it.
    a.swap(b);
    EXPECT_EQ(a.data(), pb);
    EXPECT_EQ(b.data(), pa);
    EXPECT_EQ(a.get_allocator().resource(), &arena);
    EXPECT_EQ(b.get_allocator().resource(), &heapResource());
    a = AlignedVec<std::int16_t>(); // release arena storage first
}

TEST(AlignedAllocatorPropagation, CopyConstructionNeverInheritsArena)
{
    BufferPool pool;
    FrameArena arena(pool);
    AlignedVec<std::int16_t> src(16, 9,
                                 AlignedAllocator<std::int16_t>(&arena));
    // select_on_container_copy_construction: copies default to heap.
    AlignedVec<std::int16_t> copy(src);
    EXPECT_EQ(copy.get_allocator().resource(), &heapResource());
    EXPECT_EQ(copy, src);
}

TEST(AlignedAllocatorPropagation, TensorCopyAssignFromArenaStaysHeap)
{
    BufferPool pool;
    FrameArena arena(pool);
    TensorI16 state(Shape3{2, 4, 4}, 0);
    {
        ArenaScope scope(arena);
        TensorI16 frame(Shape3{2, 4, 4}, scratchAlloc<std::int16_t>(), 5);
        // The core/temporal.cc idiom: cross-frame state is
        // copy-assigned from per-frame arena tensors and must keep
        // its heap storage through the next rewind.
        state = frame;
    }
    arena.rewind();
    EXPECT_EQ(state.at(1, 2, 3), 5);
}
